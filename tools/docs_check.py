"""Validate that docs reference only things that exist (`make docs-check`).

Scans the given markdown files for three kinds of claims and fails (exit 1)
on any dead reference, so the README can't drift from the code:

* dotted ``repro.*`` module paths — the module must import (a trailing
  attribute like ``repro.models.zoo.build_model`` must resolve on it);
* ``python -m repro.cli <command>`` invocations — the subcommand must be
  registered in :func:`repro.cli.build_parser`;
* repo-relative paths (``src/...``, ``benchmarks/...``, ``examples/...``,
  ``docs/...``, ``tools/...``) — the file or directory must exist;
* ``make <target>`` mentions — the target must exist in the Makefile.

Usage: ``python tools/docs_check.py README.md docs/architecture.md``
"""

from __future__ import annotations

import importlib
import importlib.util
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

MODULE_RE = re.compile(r"\brepro(?:\.[a-zA-Z_][a-zA-Z_0-9]*)+")
CLI_RE = re.compile(r"python -m repro\.cli ([a-z][a-z0-9-]*)")
PATH_RE = re.compile(r"\b(?:src|benchmarks|examples|docs|tools)/[\w./-]*")
# Backticked only: prose like "make sure" must not read as a target claim.
MAKE_RE = re.compile(r"`make ([a-z][a-z-]*)`")


def check_module(dotted: str) -> str | None:
    """Return an error string if ``dotted`` neither imports nor resolves."""
    parts = dotted.split(".")
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        try:
            spec = importlib.util.find_spec(prefix)
        except ModuleNotFoundError:
            spec = None
        if spec is None:
            continue
        obj = importlib.import_module(prefix)
        for attr in parts[i:]:
            if not hasattr(obj, attr):
                return f"module {prefix!r} has no attribute {attr!r}"
            obj = getattr(obj, attr)
        return None
    return f"module {dotted!r} does not import"


def cli_commands() -> set[str]:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        return set(action.choices)
    return set()


def make_targets() -> set[str]:
    targets: set[str] = set()
    makefile = REPO / "Makefile"
    if makefile.exists():
        for line in makefile.read_text().splitlines():
            m = re.match(r"^([a-zA-Z][\w-]*)\s*:", line)
            if m:
                targets.add(m.group(1))
    return targets


def check_file(path: Path, commands: set[str], targets: set[str]) -> list[str]:
    text = path.read_text()
    errors: list[str] = []
    for dotted in sorted(set(MODULE_RE.findall(text))):
        err = check_module(dotted)
        if err:
            errors.append(f"{path.name}: {err}")
    for cmd in sorted(set(CLI_RE.findall(text))):
        if cmd not in commands:
            errors.append(
                f"{path.name}: CLI command {cmd!r} not registered "
                f"(have: {sorted(commands)})"
            )
    for ref in sorted(set(PATH_RE.findall(text))):
        ref = ref.rstrip("./")
        if ref and not (REPO / ref).exists():
            errors.append(f"{path.name}: path {ref!r} does not exist")
    for target in sorted(set(MAKE_RE.findall(text))):
        if target not in targets:
            errors.append(f"{path.name}: make target {target!r} not in Makefile")
    return errors


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] or [REPO / "README.md"]
    errors: list[str] = []
    for f in files:
        if not f.exists():
            errors.append(f"{f}: file not found")
            continue
        errors.extend(check_file(f, cli_commands(), make_targets()))
    if errors:
        print("docs-check FAILED:")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(f"docs-check OK: {', '.join(str(f) for f in files)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
