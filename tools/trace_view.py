#!/usr/bin/env python
"""Offline summary of a repro Chrome-trace JSON (see repro.obs.export).

Reads a trace written by ``--trace-out`` (or ``write_chrome_trace``) and
prints three operator-facing views without needing a trace UI:

* top spans by aggregated *self* time (duration minus child spans on the
  same lane), so a fat ``batch.execute`` does not hide its kernel steps;
* per-worker utilization: the union of device-occupancy intervals
  (``worker.busy`` lanes when present, else ``batch.execute``) over the
  trace's wall span, plus the idle-gap count and the longest gap;
* an ASCII histogram of request queue waits (``request.wait`` spans).

Stdlib only, deterministic output for a given input file.

Usage:
    python tools/trace_view.py TRACE_smoke.json [--top 10] [--buckets 8]
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

#: device-occupancy span names, in preference order (first present wins).
BUSY_SPANS = ("worker.busy", "batch.execute")


def load_events(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome-trace JSON (no traceEvents)")
    return events


def pid_names(events: list[dict]) -> dict[int, str]:
    """pid -> human name from the trace's process_name metadata events."""
    names: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            names[ev["pid"]] = ev.get("args", {}).get("name", str(ev["pid"]))
    return names


def self_times(events: list[dict]) -> dict[str, tuple[float, int]]:
    """Aggregate self time (us) and count per span name.

    Each (pid, tid) lane is swept over its span boundaries; every elementary
    time segment is attributed to the *innermost* covering span (latest
    start, then shortest).  For properly nested lanes this is the usual
    parent-minus-children self time; lanes whose spans partially overlap
    (flush-time batches on a backlogged worker) still partition cleanly
    instead of double counting.
    """
    lanes: dict[tuple, list[tuple]] = defaultdict(list)
    for ev in events:
        if ev.get("ph") == "X":
            lanes[(ev["pid"], ev["tid"])].append(
                (ev["ts"], ev["ts"] + ev["dur"], ev["dur"], ev["name"])
            )
    agg: dict[str, list[float]] = defaultdict(lambda: [0.0, 0])
    for lane in sorted(lanes):
        spans = lanes[lane]
        for _, _, _, name in spans:
            agg[name][1] += 1
        bounds = sorted({t for start, end, _, _ in spans for t in (start, end)})
        for lo, hi in zip(bounds, bounds[1:]):
            covering = [s for s in spans if s[0] <= lo and s[1] >= hi]
            if covering:
                innermost = max(covering, key=lambda s: (s[0], -s[2]))
                agg[innermost[3]][0] += hi - lo
    return {name: (total, count) for name, (total, count) in agg.items()}


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    merged: list[list[float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(a, b) for a, b in merged]


def worker_utilization(events: list[dict]) -> list[tuple[str, float, float, int, float]]:
    """(worker, busy_us, utilization, idle_gaps, max_gap_us) per pid."""
    xs = [ev for ev in events if ev.get("ph") == "X"]
    if not xs:
        return []
    t0 = min(ev["ts"] for ev in xs)
    t1 = max(ev["ts"] + ev["dur"] for ev in xs)
    wall = max(t1 - t0, 1e-12)
    names = pid_names(events)
    by_pid: dict[int, list[dict]] = defaultdict(list)
    for ev in xs:
        by_pid[ev["pid"]].append(ev)
    rows = []
    for pid in sorted(by_pid):
        pool = by_pid[pid]
        busy_name = next(
            (n for n in BUSY_SPANS if any(ev["name"] == n for ev in pool)), None
        )
        if busy_name is None:
            continue
        merged = _union([
            (ev["ts"], ev["ts"] + ev["dur"])
            for ev in pool if ev["name"] == busy_name
        ])
        busy = sum(b - a for a, b in merged)
        gaps = [b[0] - a[1] for a, b in zip(merged, merged[1:]) if b[0] > a[1]]
        rows.append((
            names.get(pid, str(pid)), busy, busy / wall,
            len(gaps), max(gaps) if gaps else 0.0,
        ))
    return rows


def queue_wait_histogram(events: list[dict], buckets: int) -> list[tuple[str, int]]:
    """Equal-width (label, count) buckets over request.wait durations (us)."""
    waits = sorted(
        ev["dur"] for ev in events
        if ev.get("ph") == "X" and ev.get("name") == "request.wait"
    )
    if not waits:
        return []
    lo, hi = waits[0], waits[-1]
    width = max((hi - lo) / buckets, 1e-9)
    counts = [0] * buckets
    for w in waits:
        counts[min(int((w - lo) / width), buckets - 1)] += 1
    return [
        (f"[{lo + i * width:10.1f}, {lo + (i + 1) * width:10.1f})", c)
        for i, c in enumerate(counts)
    ]


def summarize(path: str, top: int, buckets: int) -> str:
    events = load_events(path)
    xs = sum(1 for ev in events if ev.get("ph") == "X")
    instants = sum(1 for ev in events if ev.get("ph") == "i")
    lines = [f"{path}: {xs} spans, {instants} instant events"]

    lines.append("")
    lines.append(f"top {top} spans by self time:")
    lines.append(f"  {'span':<20s} {'count':>6s} {'self us':>12s} {'mean us':>10s}")
    ranked = sorted(
        self_times(events).items(), key=lambda kv: (-kv[1][0], kv[0])
    )[:top]
    for name, (total, count) in ranked:
        lines.append(
            f"  {name:<20s} {count:>6d} {total:>12.1f} {total / count:>10.2f}"
        )

    util = worker_utilization(events)
    if util:
        lines.append("")
        lines.append("per-worker device occupancy:")
        lines.append(
            f"  {'worker':<10s} {'busy us':>12s} {'util':>7s} "
            f"{'idle gaps':>10s} {'max gap us':>11s}"
        )
        for name, busy, frac, gaps, max_gap in util:
            lines.append(
                f"  {name:<10s} {busy:>12.1f} {frac:>6.1%} "
                f"{gaps:>10d} {max_gap:>11.1f}"
            )

    hist = queue_wait_histogram(events, buckets)
    if hist:
        peak = max(c for _, c in hist)
        lines.append("")
        lines.append("queue wait (request.wait, us):")
        for label, count in hist:
            bar = "#" * round(40 * count / peak) if count else ""
            lines.append(f"  {label} {count:>6d} {bar}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="summarize a repro Chrome-trace JSON offline"
    )
    parser.add_argument("trace", help="trace file from --trace-out")
    parser.add_argument("--top", type=int, default=10,
                        help="span names to list by self time (default 10)")
    parser.add_argument("--buckets", type=int, default=8,
                        help="queue-wait histogram buckets (default 8)")
    args = parser.parse_args(argv)
    print(summarize(args.trace, args.top, args.buckets))
    return 0


if __name__ == "__main__":
    sys.exit(main())
