"""cProfile one end-to-end functional model run (`make profile`).

Plans the model, materializes parameters, runs one warm-up inference, then
profiles a second run and prints the top-N functions by cumulative and by
internal time — the starting point for every simulator perf PR (this is how
the fast-path engine's remaining hot spots were found).

Usage::

    PYTHONPATH=src python tools/profile_run.py [model] [--engine fast|reference]
                                               [--dtype fp32|int8] [--gpu RTX]
                                               [--top 25]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("model", nargs="?", default="mobilenet_v2")
    parser.add_argument("--engine", choices=["fast", "reference"], default="fast")
    parser.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    parser.add_argument("--gpu", default="RTX")
    parser.add_argument("--top", type=int, default=25)
    args = parser.parse_args(argv)

    from repro.core.dtypes import DType
    from repro.gpu.specs import gpu_by_name
    from repro.runtime.session import build_session, seeded_input

    dtype = DType.INT8 if args.dtype == "int8" else DType.FP32
    session = build_session(
        args.model, gpu_by_name(args.gpu), dtype, engine=args.engine
    )
    x = seeded_input(session.graph, dtype)

    session.run(x)  # warm-up: BLAS threads, planner caches, allocators
    profiler = cProfile.Profile()
    profiler.enable()
    report = session.run(x)
    profiler.disable()

    print(f"{report.describe()}  [engine={args.engine}]\n")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    stats.sort_stats("tottime").print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
