"""cProfile one end-to-end functional model run or one planning pass.

``--what run`` (default) plans the model, materializes parameters, runs one
warm-up inference, then profiles a second run.  ``--what plan`` profiles
FusePlanner's whole-model pass in isolation — the tiling search over every
layer and fusion candidate — which is what the vectorized search engine
targets (``--search-engine reference`` profiles the scalar oracle instead).
Both modes print the top-N functions by cumulative and by internal time —
the starting point for every simulator perf PR (this is how the fast-path
engine's and the grid search's hot spots were found).

Usage::

    PYTHONPATH=src python tools/profile_run.py [model] [--what plan|run]
                                               [--engine fast|reference]
                                               [--search-engine vectorized|reference]
                                               [--dtype fp32|int8] [--gpu RTX]
                                               [--max-chain 2] [--top 25]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def _profile(fn, top: int) -> "object":
    profiler = cProfile.Profile()
    profiler.enable()
    out = fn()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("model", nargs="?", default="mobilenet_v2")
    parser.add_argument("--what", choices=["run", "plan"], default="run",
                        help="profile one functional inference (default) or "
                             "one FusePlanner whole-model pass in isolation")
    parser.add_argument("--engine", choices=["fast", "reference"], default="fast")
    parser.add_argument("--search-engine", choices=["vectorized", "reference"],
                        default="vectorized",
                        help="tiling search engine for --what plan")
    parser.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    parser.add_argument("--gpu", default="RTX")
    parser.add_argument("--max-chain", type=int, default=2)
    parser.add_argument("--top", type=int, default=25)
    args = parser.parse_args(argv)

    from repro.core.dtypes import DType
    from repro.gpu.specs import gpu_by_name

    dtype = DType.INT8 if args.dtype == "int8" else DType.FP32
    gpu = gpu_by_name(args.gpu)

    if args.what == "plan":
        from repro.models.zoo import build_model
        from repro.planner.memo import GeometryMemo
        from repro.planner.planner import FusePlanner

        graph = build_model(args.model, dtype)

        def plan_once():
            # A fresh memo per pass: profile the search itself, not the
            # cross-model cache hits a prior pass would leave behind.
            planner = FusePlanner(
                gpu, max_chain=args.max_chain,
                search_engine=args.search_engine, memo=GeometryMemo(),
            )
            return planner.plan(graph)

        plan = _profile(plan_once, args.top)
        print(f"{len(plan.steps)} plan steps for {args.model} on {gpu.name} "
              f"[search_engine={args.search_engine}]")
        return 0

    from repro.runtime.session import build_session, seeded_input

    session = build_session(
        args.model, gpu, dtype, max_chain=args.max_chain, engine=args.engine
    )
    x = seeded_input(session.graph, dtype)
    session.run(x)  # warm-up: BLAS threads, planner caches, allocators
    report = _profile(lambda: session.run(x), args.top)
    print(f"{report.describe()}  [engine={args.engine}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
