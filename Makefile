# Developer entry points. Everything runs offline on the simulated substrate.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-slo test-planner bench-smoke bench tune-smoke trace-smoke chaos-smoke docs-check lint profile

## tier-1 suite — must stay green (ROADMAP.md)
test:
	$(PYTHON) -m pytest -x -q

## just the SLO traffic-layer suite (fast iteration on serve/admission/autoscale)
test-slo:
	$(PYTHON) -m pytest tests/test_slo.py -q

## vectorized-search parity suite + the workers determinism guard
test-planner:
	$(PYTHON) -m pytest tests/test_planner_vectorized.py tests/test_workers.py -q

## quick serving + fleet + tuning + one-figure artifact pass (no full fig10
## sweep); emits BENCH_smoke.json so the bench trajectory accumulates in CI
## artifacts
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_serving_throughput.py \
	    benchmarks/bench_table2_fusion_cases.py \
	    benchmarks/bench_fleet_scaling.py \
	    benchmarks/bench_kernel_simulation.py \
	    benchmarks/bench_slo.py \
	    benchmarks/bench_tuning.py \
	    benchmarks/bench_planner_speed.py \
	    benchmarks/bench_fault_tolerance.py \
	    benchmarks/bench_obs_overhead.py --smoke \
	    --benchmark-only --benchmark-json=BENCH_smoke.json -q -s

## measure one model on one GPU and emit the tuning DB (TUNE_smoke.json);
## CI uploads it next to the bench trajectory artifacts
tune-smoke:
	rm -f TUNE_smoke.json
	$(PYTHON) -m repro.cli tune run --models mobilenet_v1 --gpus GTX \
	    --db TUNE_smoke.json --mode guided --iterations 8
	$(PYTHON) -m repro.cli tune show --db TUNE_smoke.json

## short deterministic autoscaled fleet replay -> Chrome-trace JSON +
## Prometheus text (TRACE_smoke.json / METRICS_smoke.txt, CI artifacts),
## then the offline trace summary as a smoke test of tools/trace_view.py
trace-smoke:
	$(PYTHON) -m repro.cli fleet --gpus RTX,RTX --models mobilenet_v2,xception \
	    --requests 48 --rate 20000 --autoscale 1:4 --cooldown-ms 2 \
	    --trace-out TRACE_smoke.json --metrics-out METRICS_smoke.txt
	$(PYTHON) tools/trace_view.py TRACE_smoke.json

## seeded chaos replay over a 4-worker fleet (crashes + recoveries, retries,
## failover) -> canonical availability/retry accounting in CHAOS_smoke.json
## (CI artifact); the run is deterministic, so the file is diffable across
## commits exactly like a bench trajectory
chaos-smoke:
	$(PYTHON) -m repro.cli fleet --gpus GTX,GTX,GTX,GTX \
	    --models mobilenet_v1,mobilenet_v2 --requests 64 --rate 8000 \
	    --slo-ms 12 --chaos 4:0.5 --retries 2 --retry-budget 0.5 \
	    --chaos-out CHAOS_smoke.json

## every paper artifact + the serving sweep (slow)
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

## cProfile top-25 of one MobileNetV2 functional run (fast engine) — the
## starting point for simulator perf PRs; pass ARGS="--engine reference",
## ARGS="--what plan" (planning in isolation), etc.
profile:
	$(PYTHON) tools/profile_run.py mobilenet_v2 --top 25 $(ARGS)

## fail if README.md / docs reference modules, commands or files that don't exist
docs-check:
	$(PYTHON) tools/docs_check.py README.md docs/architecture.md

## static checks: ruff (provisioned in CI; run `pip install ruff` locally)
## plus the in-tree AST invariant linter (determinism / parity / layering —
## see repro.analysis), which emits the canonical JSON report CI archives
lint:
	$(PYTHON) -m repro.analysis src --format json --output ANALYSIS_report.json
	$(PYTHON) -m ruff check src tests benchmarks tools examples
