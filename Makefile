# Developer entry points. Everything runs offline on the simulated substrate.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench docs-check lint

## tier-1 suite — must stay green (ROADMAP.md)
test:
	$(PYTHON) -m pytest -x -q

## quick serving + fleet + one-figure artifact pass (no full fig10 sweep);
## emits BENCH_smoke.json so the bench trajectory accumulates in CI artifacts
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_serving_throughput.py \
	    benchmarks/bench_table2_fusion_cases.py \
	    benchmarks/bench_fleet_scaling.py --smoke \
	    --benchmark-only --benchmark-json=BENCH_smoke.json -q -s

## every paper artifact + the serving sweep (slow)
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

## fail if README.md / docs reference modules, commands or files that don't exist
docs-check:
	$(PYTHON) tools/docs_check.py README.md docs/architecture.md

## static checks (ruff is provisioned in CI; run `pip install ruff` locally)
lint:
	$(PYTHON) -m ruff check src tests benchmarks tools examples
