"""Figures 10a/10b: end-to-end CNN speedup over TVM (FP32 and INT8)."""

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.experiments import figure10_11, format_table


@pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8], ids=["fp32", "int8"])
def test_fig10_end_to_end_speedup(benchmark, once, capsys, dtype):
    points = once(benchmark, lambda: figure10_11(dtype))
    with capsys.disabled():
        print(f"\n[Figure 10/{dtype}] end-to-end speedup over TVM")
        print(format_table(
            ["model", "gpu", "speedup", "fused layers", "ours (ms)", "tvm (ms)"],
            [[p.model, p.gpu, f"{p.speedup_vs_tvm:.2f}x", f"{p.fused_fraction:.0%}",
              f"{p.ours_latency_ms:.3f}", f"{p.tvm_latency_ms:.3f}"]
             for p in points],
        ))
        sp = [p.speedup_vs_tvm for p in points]
        print(f"-> avg {np.mean(sp):.2f}x max {max(sp):.2f}x min {min(sp):.2f}x "
              f"(paper fp32: avg 1.4x max 1.6x / int8: avg 1.5x max 1.8x)")
    assert min(p.speedup_vs_tvm for p in points) > 0.95
