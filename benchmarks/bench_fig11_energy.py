"""Figures 11a/11b: energy per inference normalized to TVM (FP32 and INT8)."""

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.experiments import figure10_11, format_table


@pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8], ids=["fp32", "int8"])
def test_fig11_energy_vs_tvm(benchmark, once, capsys, dtype):
    points = once(benchmark, lambda: figure10_11(dtype))
    with capsys.disabled():
        print(f"\n[Figure 11/{dtype}] energy per inference normalized to TVM")
        print(format_table(
            ["model", "gpu", "energy vs TVM", "GMA vs TVM"],
            [[p.model, p.gpu, f"{p.energy_vs_tvm:.2f}", f"{p.gma_vs_tvm:.2f}"]
             for p in points],
        ))
        e = [p.energy_vs_tvm for p in points]
        print(f"-> avg {np.mean(e):.2f} min {min(e):.2f} "
              f"(paper fp32: avg 0.59 min 0.34 / int8: avg 0.54 min 0.35)")
        # Energy savings exceed latency savings on average (paper §VI-C).
        inv_speedup = [1 / p.speedup_vs_tvm for p in points]
        print(f"-> mean normalized energy {np.mean(e):.2f} <= "
              f"mean normalized latency {np.mean(inv_speedup):.2f}")
    assert np.mean([p.energy_vs_tvm for p in points]) < 1.0
