"""Microbenchmarks of the simulator itself: functional kernel launches.

These are genuine wall-clock benchmarks (the figure benches above time
analytic sweeps): they execute tiled kernels over real tensors and are the
numbers to watch when optimizing the simulator's NumPy hot paths.

The engine-speedup benches compare the two execution engines — the
vectorized whole-grid ``"fast"`` path against the per-block interpreted
``"reference"`` path — on single kernels and on end-to-end functional model
runs, and record the speedup table in the pytest-benchmark JSON
(``BENCH_smoke.json`` via ``make bench-smoke``) so the trajectory
accumulates in CI artifacts.
"""

import time

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.gpu.specs import RTX_A4000
from repro.ir.layers import ConvKind, ConvSpec
from repro.kernels.params import chain_quant, make_layer_params
from repro.kernels.registry import build_fcm_kernel, build_lbl_kernel

_PW = ConvSpec("pw", ConvKind.POINTWISE, 64, 128, 56, 56)
_DW = ConvSpec("dw", ConvKind.DEPTHWISE, 128, 128, 56, 56, kernel=3, stride=1,
               padding=1)


def _ifm(spec, dtype=DType.FP32):
    rng = np.random.default_rng(0)
    if dtype is DType.INT8:
        return rng.integers(-128, 128, spec.ifm.shape).astype(np.int8)
    return rng.standard_normal(spec.ifm.shape).astype(np.float32)


def test_bench_pw_direct(benchmark):
    params = make_layer_params(_PW)
    x = _ifm(_PW)
    kernel_args = {"tile_m": 32, "tile_hw": 256}
    out = benchmark(
        lambda: build_lbl_kernel(params, kernel_args).simulate(x, RTX_A4000)
    )
    assert out.counters.total_bytes > 0


def test_bench_dw_direct(benchmark):
    params = make_layer_params(_DW)
    x = _ifm(_DW)
    kernel_args = {"tile_c": 32, "tile_h": 14, "tile_w": 14}
    out = benchmark(
        lambda: build_lbl_kernel(params, kernel_args).simulate(x, RTX_A4000)
    )
    assert out.counters.total_bytes > 0


@pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8], ids=["fp32", "int8"])
def test_bench_fcm_pwdw_r(benchmark, dtype):
    pw = _PW.with_dtype(dtype)
    dw = _DW.with_dtype(dtype)
    p1 = make_layer_params(pw)
    p2 = chain_quant(p1, dw)
    x = _ifm(pw, dtype)
    tiling = {"tile_f": 32, "tile_h": 14, "tile_w": 14}
    out = benchmark(
        lambda: build_fcm_kernel(FcmType.PWDW_R, p1, p2, tiling).simulate(
            x, RTX_A4000
        )
    )
    assert out.counters.total_bytes > 0


def test_bench_planner_layer_search(benchmark):
    from repro.planner.search import best_lbl_tiling

    out = benchmark(lambda: best_lbl_tiling(_PW, RTX_A4000))
    assert out.gma_bytes > 0


# ---- fast vs reference engine ------------------------------------------------
def _best_of(fn, rounds: int = 3) -> float:
    fn()  # warm caches / BLAS threads
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_engine_speedup_kernels(benchmark, once, smoke):
    """Single-kernel fast-vs-reference table (fine tiles = many blocks)."""
    rows = []
    cases = [
        ("pw 56x56 coarse", _PW, {"tile_m": 32, "tile_hw": 256}),
        ("pw 56x56 fine", _PW, {"tile_m": 8, "tile_hw": 49}),
        ("dw 56x56 coarse", _DW, {"tile_c": 32, "tile_h": 14, "tile_w": 14}),
        ("dw 56x56 fine", _DW, {"tile_c": 4, "tile_h": 7, "tile_w": 7}),
    ]
    speedups = {}
    for label, spec, tiling in cases:
        params = make_layer_params(spec)
        x = _ifm(spec)
        kernel = build_lbl_kernel(params, tiling)
        t_ref = _best_of(lambda: kernel.simulate(x, RTX_A4000, "reference"))
        t_fast = _best_of(lambda: kernel.simulate(x, RTX_A4000, "fast"))
        speedups[label] = t_ref / t_fast
        rows.append((label, t_ref * 1e3, t_fast * 1e3, t_ref / t_fast))
    print("\nengine speedup (single kernels):")
    print(f"{'case':18s} {'ref ms':>8s} {'fast ms':>8s} {'speedup':>8s}")
    for label, ref_ms, fast_ms, sp in rows:
        print(f"{label:18s} {ref_ms:8.2f} {fast_ms:8.2f} {sp:7.1f}x")
    med = float(np.median(list(speedups.values())))
    print(f"median single-kernel speedup: {med:.1f}x")
    benchmark.extra_info["speedups"] = {k: round(v, 2) for k, v in speedups.items()}
    benchmark.extra_info["median_speedup"] = round(med, 2)
    once(benchmark, lambda: build_lbl_kernel(
        make_layer_params(_PW), {"tile_m": 8, "tile_hw": 49}
    ).simulate(_ifm(_PW), RTX_A4000, "fast"))
    assert all(s > 1.0 for s in speedups.values())


def test_bench_engine_speedup_models(benchmark, once, smoke):
    """End-to-end functional model runs, fast vs reference engine.

    Emits the per-config wall clocks and the median speedup into the
    benchmark JSON (``BENCH_smoke.json`` under ``extra_info``) — the number
    the fast-path acceptance tracks.
    """
    from repro.runtime.session import build_session, seeded_input

    configs = [
        ("mobilenet_v1", DType.FP32),
        ("mobilenet_v2", DType.INT8),
    ]
    if not smoke:
        configs += [
            ("mobilenet_v2", DType.FP32),
            ("mobilenet_v1", DType.INT8),
            ("proxylessnas", DType.FP32),
            ("xception", DType.INT8),
        ]
    rows = []
    speedups = {}
    first_run = None
    for model, dtype in configs:
        session = build_session(model, RTX_A4000, dtype)
        x = seeded_input(session.graph, dtype)
        if first_run is None:
            first_run = (session, x)
        t_ref = _best_of(lambda: session.run(x, engine="reference"), rounds=2)
        t_fast = _best_of(lambda: session.run(x, engine="fast"), rounds=2)
        key = f"{model}/{dtype.value}"
        speedups[key] = t_ref / t_fast
        rows.append((key, t_ref * 1e3, t_fast * 1e3, t_ref / t_fast))
    print("\nengine speedup (end-to-end functional model runs):")
    print(f"{'model/dtype':22s} {'ref ms':>9s} {'fast ms':>9s} {'speedup':>8s}")
    for key, ref_ms, fast_ms, sp in rows:
        print(f"{key:22s} {ref_ms:9.1f} {fast_ms:9.1f} {sp:7.1f}x")
    med = float(np.median(list(speedups.values())))
    print(f"median end-to-end speedup: {med:.1f}x")
    benchmark.extra_info["speedups"] = {k: round(v, 2) for k, v in speedups.items()}
    benchmark.extra_info["median_speedup"] = round(med, 2)
    session, x = first_run
    once(benchmark, lambda: session.run(x, engine="fast"))
    assert all(s > 1.0 for s in speedups.values())
