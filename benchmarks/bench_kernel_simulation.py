"""Microbenchmarks of the simulator itself: functional kernel launches.

These are genuine wall-clock benchmarks (the figure benches above time
analytic sweeps): they execute tiled kernels over real tensors and are the
numbers to watch when optimizing the simulator's NumPy hot paths.
"""

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.gpu.specs import RTX_A4000
from repro.ir.layers import ConvKind, ConvSpec
from repro.kernels.params import chain_quant, make_layer_params
from repro.kernels.registry import build_fcm_kernel, build_lbl_kernel

_PW = ConvSpec("pw", ConvKind.POINTWISE, 64, 128, 56, 56)
_DW = ConvSpec("dw", ConvKind.DEPTHWISE, 128, 128, 56, 56, kernel=3, stride=1,
               padding=1)


def _ifm(spec, dtype=DType.FP32):
    rng = np.random.default_rng(0)
    if dtype is DType.INT8:
        return rng.integers(-128, 128, spec.ifm.shape).astype(np.int8)
    return rng.standard_normal(spec.ifm.shape).astype(np.float32)


def test_bench_pw_direct(benchmark):
    params = make_layer_params(_PW)
    x = _ifm(_PW)
    kernel_args = {"tile_m": 32, "tile_hw": 256}
    out = benchmark(
        lambda: build_lbl_kernel(params, kernel_args).simulate(x, RTX_A4000)
    )
    assert out.counters.total_bytes > 0


def test_bench_dw_direct(benchmark):
    params = make_layer_params(_DW)
    x = _ifm(_DW)
    kernel_args = {"tile_c": 32, "tile_h": 14, "tile_w": 14}
    out = benchmark(
        lambda: build_lbl_kernel(params, kernel_args).simulate(x, RTX_A4000)
    )
    assert out.counters.total_bytes > 0


@pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8], ids=["fp32", "int8"])
def test_bench_fcm_pwdw_r(benchmark, dtype):
    pw = _PW.with_dtype(dtype)
    dw = _DW.with_dtype(dtype)
    p1 = make_layer_params(pw)
    p2 = chain_quant(p1, dw)
    x = _ifm(pw, dtype)
    tiling = {"tile_f": 32, "tile_h": 14, "tile_w": 14}
    out = benchmark(
        lambda: build_fcm_kernel(FcmType.PWDW_R, p1, p2, tiling).simulate(
            x, RTX_A4000
        )
    )
    assert out.counters.total_bytes > 0


def test_bench_planner_layer_search(benchmark):
    from repro.planner.search import best_lbl_tiling

    out = benchmark(lambda: best_lbl_tiling(_PW, RTX_A4000))
    assert out.gma_bytes > 0
