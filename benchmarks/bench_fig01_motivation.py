"""Figure 1: operations & memory of standard vs DSC vs fused convolution."""

from repro.experiments import figure1, format_table


def test_fig01_motivation(benchmark, once, capsys):
    rows = once(benchmark, figure1)
    table = format_table(
        ["variant", "operations", "weights", "feature maps", "memory accesses"],
        [
            [r.variant, f"{r.operations:.1%}", f"{r.weights:.1%}",
             f"{r.feature_maps:.1%}", f"{r.memory_accesses:.1%}"]
            for r in rows
        ],
    )
    with capsys.disabled():
        print("\n[Figure 1] MobileNet conv, normalized to the standard conv")
        print(table)
    std, dsc, fused = rows
    assert dsc.operations < 0.15 and fused.memory_accesses < dsc.memory_accesses
