"""Availability and SLO attainment under escalating chaos.

Not a paper artifact — this tracks the fault-tolerance layer end to end:
the same seeded stream replayed over a 4-worker fleet while a seeded
MTBF/MTTR chaos plan crashes and recovers workers, with retries + failover
cleaning up behind them.  Each point reports availability, attainment and
the retry/requeue/lost accounting, so the bench trajectory records how the
failover machinery holds up as the serving stack evolves.

``--smoke`` (see benchmarks/conftest.py) shrinks the stream so `make
bench-smoke` stays fast.
"""

from repro.experiments import format_table
from repro.gpu.specs import GTX1660
from repro.serve import FaultPlan, RetryPolicy, capacity_rps, fleet_replay

MODELS = ("mobilenet_v1", "mobilenet_v2")
N_WORKERS = 4
SLO_BATCHES = 4
#: chaos intensity sweep: MTBF as a fraction of the stream duration
#: (None -> fault-free baseline; the no-fault path must stay untouched).
MTBF_FRACTIONS = (None, 0.5, 0.1)


def test_bench_fault_tolerance(benchmark, once, capsys, smoke):
    n_requests = 48 if smoke else 160
    max_batch = 8
    base = capacity_rps(GTX1660, MODELS[0], max_batch=max_batch)
    rate_rps = 2.0 * base  # half the 4-worker fleet's aggregate capacity
    slo_s = SLO_BATCHES * max_batch / base
    duration_s = n_requests / rate_rps
    retry = RetryPolicy(max_attempts=3, budget=0.5)

    def sweep():
        reports = []
        for frac in MTBF_FRACTIONS:
            plan = None
            if frac is not None:
                plan = FaultPlan.chaos(
                    N_WORKERS,
                    duration_s,
                    mtbf_s=frac * duration_s,
                    mttr_s=0.02 * duration_s,
                    seed=11,
                )
            reports.append(
                fleet_replay(
                    [GTX1660] * N_WORKERS,
                    list(MODELS),
                    n_requests,
                    rate_rps,
                    max_batch=max_batch,
                    slo_s=slo_s,
                    faults=plan,
                    retry=None if plan is None else retry,
                    probe_s=0.002 * duration_s,
                    seed=7,
                )
            )
        return reports

    reports = once(benchmark, sweep)
    with capsys.disabled():
        print(f"\n[Chaos] {N_WORKERS}x{GTX1660.name}, {n_requests} reqs @ "
              f"{rate_rps:.0f} rps, slo={slo_s * 1e3:.3f} ms"
              f"{' (smoke)' if smoke else ''}")
        rows = []
        for frac, r in zip(MTBF_FRACTIONS, reports):
            s = r.fault_stats
            rows.append([
                "none" if frac is None else f"{frac:g}x",
                f"{r.availability:.1%}",
                f"{r.attained / r.n_requests:.1%}",
                0 if s is None else s.crashes,
                0 if s is None else s.retries,
                0 if s is None else s.requeues,
                0 if s is None else s.lost,
                f"{r.latency_p99_s * 1e3:.3f}",
            ])
        print(format_table(
            ["mtbf", "availability", "attainment", "crashes", "retries",
             "requeues", "lost", "p99 ms"],
            rows,
        ))

    labels = ["none" if f is None else f"{f:g}x" for f in MTBF_FRACTIONS]
    benchmark.extra_info["availability"] = {
        lab: round(r.availability, 4) for lab, r in zip(labels, reports)
    }
    benchmark.extra_info["attainment"] = {
        lab: round(r.attained / r.n_requests, 4) for lab, r in zip(labels, reports)
    }
    benchmark.extra_info["lost"] = {
        lab: (0 if r.fault_stats is None else r.fault_stats.lost)
        for lab, r in zip(labels, reports)
    }

    # The fault-free point must stay on the untouched no-fault path, and
    # chaos must actually bite: workers go down, availability drops, yet
    # accepted-request accounting stays conserved at every point.
    assert reports[0].fault_stats is None
    assert reports[0].availability == 1.0
    assert reports[-1].fault_stats.crashes > 0
    assert reports[-1].availability < 1.0
    for r in reports:
        lost = 0 if r.fault_stats is None else r.fault_stats.lost
        assert len(r.latencies_s) + lost == r.n_requests
