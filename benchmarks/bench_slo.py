"""SLO attainment under overload: the serving stack's traffic-layer smoke.

Not a paper artifact — this tracks the SLO-aware serving layer end to end:
a heavy-tailed (lognormal) stream replayed at 1x/4x/16x the server's
analytic capacity with deadline-aware flushing and degrade-to-INT8
admission control.  The attainment/shed/degraded split per offered load
lands in ``BENCH_smoke.json`` under ``extra_info`` so the bench trajectory
records how admission behaviour moves as the cost model evolves.

``--smoke`` (see benchmarks/conftest.py) shrinks the stream so `make
bench-smoke` stays fast.
"""


from repro.experiments import format_table
from repro.gpu.specs import RTX_A4000
from repro.serve import attainment_curve, capacity_rps

MODEL = "mobilenet_v1"
OVERLOADS = (1.0, 4.0, 16.0)
SLO_BATCHES = 4  # SLO = this many full micro-batches of analytic work


def test_bench_slo_attainment(benchmark, once, capsys, smoke):
    n_requests = 64 if smoke else 192
    max_batch = 8
    base = capacity_rps(RTX_A4000, MODEL, max_batch=max_batch)
    slo_s = SLO_BATCHES * max_batch / base

    def sweep():
        return attainment_curve(
            RTX_A4000,
            MODEL,
            slo_s=slo_s,
            overloads=OVERLOADS,
            n_requests=n_requests,
            admission="degrade",
            arrival="lognormal",
            max_batch=max_batch,
            seed=7,
        )

    points = once(benchmark, sweep)
    with capsys.disabled():
        print(f"\n[SLO] {MODEL} on {RTX_A4000.name}, slo={slo_s * 1e3:.3f} ms, "
              f"{n_requests} reqs/point{' (smoke)' if smoke else ''}")
        print(format_table(
            ["load", "rps", "attainment", "shed", "degraded", "late",
             "p99 ms"],
            [[f"{p.overload:g}x", f"{p.rate_rps:.0f}", f"{p.attainment:.1%}",
              p.shed, p.degraded, p.late, f"{p.p99_s * 1e3:.4f}"]
             for p in points],
        ))

    benchmark.extra_info["slo_ms"] = round(slo_s * 1e3, 4)
    benchmark.extra_info["attainment"] = {
        f"{p.overload:g}x": round(p.attainment, 4) for p in points
    }
    benchmark.extra_info["shed"] = {f"{p.overload:g}x": p.shed for p in points}
    benchmark.extra_info["degraded"] = {
        f"{p.overload:g}x": p.degraded for p in points
    }

    # Overload must cost attainment monotonically, and the 1x point must
    # serve the large majority of requests in time.
    att = [p.attainment for p in points]
    assert all(a >= b for a, b in zip(att, att[1:])), att
    assert att[0] >= 0.5, att
    # Admission is live: heavy overload sheds rather than serving everyone late.
    assert points[-1].shed > 0
