"""Observability overhead: replay with null sinks vs live tracer+metrics.

Not a paper artifact — this is the zero-overhead acceptance gate for the
obs layer (`repro.obs`).  One request stream replays twice: once with the
default ``NullTracer``/``NullMetrics`` (the hot path every other benchmark
and test exercises) and once with a live ``Tracer`` + ``MetricsRegistry``
exporting Chrome-trace JSON and Prometheus text.  The two ``StreamReport``
results must be *identical* (instrumentation may observe, never perturb),
and enabled tracing must stay within a generous constant factor of the
uninstrumented run.
"""

import dataclasses
import time

from repro.gpu.specs import RTX_A4000
from repro.obs import MetricsRegistry, Tracer, chrome_trace_json, prometheus_text
from repro.serve import replay

#: enabled-tracing budget: a replay records a few hundred spans; anything
#: past this factor (plus absolute slack for timer noise on a ~10ms run)
#: means an emission crept onto the per-request hot path un-guarded.
MAX_OVERHEAD_RATIO = 5.0
SLACK_S = 0.05


def _replay(n_requests, tracer=None, metrics=None):
    return replay(
        RTX_A4000, "mobilenet_v2", n_requests=n_requests, rate_rps=5000.0,
        tracer=tracer, metrics=metrics,
    )


def _best_of(fn, rounds):
    best, result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def test_obs_overhead(benchmark, once, smoke, capsys):
    n_requests = 64 if smoke else 256
    rounds = 3 if smoke else 5

    base_s, base_report = _best_of(lambda: _replay(n_requests), rounds)

    def traced():
        tracer, metrics = Tracer(), MetricsRegistry()
        report = _replay(n_requests, tracer=tracer, metrics=metrics)
        return report, chrome_trace_json(tracer), prometheus_text(metrics)

    obs_s, (obs_report, trace_json, metrics_text) = _best_of(traced, rounds)
    once(benchmark, traced)

    ratio = obs_s / base_s
    benchmark.extra_info["baseline_s"] = base_s
    benchmark.extra_info["traced_s"] = obs_s
    benchmark.extra_info["overhead_ratio"] = ratio

    with capsys.disabled():
        print(f"\n[Obs] replay x{n_requests} requests: "
              f"null sinks {base_s * 1e3:.1f} ms, "
              f"traced+exported {obs_s * 1e3:.1f} ms "
              f"({ratio:.2f}x, {len(trace_json)} trace bytes, "
              f"{len(metrics_text)} metrics bytes)")

    # Instrumentation observes, never perturbs: every report field (incl.
    # the full latency vector) must match the uninstrumented replay.
    assert dataclasses.asdict(obs_report) == dataclasses.asdict(base_report)
    # And both exporters actually captured the stream.
    assert trace_json.count('"ph":"X"') > n_requests  # waits + batches + steps
    assert "repro_requests_total" in metrics_text
    assert obs_s <= MAX_OVERHEAD_RATIO * base_s + SLACK_S, (
        f"tracing overhead {ratio:.2f}x exceeds {MAX_OVERHEAD_RATIO}x budget"
    )
