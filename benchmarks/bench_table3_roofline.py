"""Table III: compute/memory-bound classification on GTX and RTX (FP32)."""

from repro.experiments import format_table, table3


def test_table3_roofline(benchmark, once, capsys):
    rows = once(benchmark, table3)
    by_gpu = {}
    for r in rows:
        by_gpu.setdefault(r.gpu, []).append(r)
    with capsys.disabled():
        print("\n[Table III] LBL vs FCM boundedness (C=compute, M=memory)")
        for gpu, rs in by_gpu.items():
            print(format_table(
                ["case", f"{gpu} LBL", f"{gpu} FCM"],
                [[r.case_id, r.lbl_label, r.fcm_bound] for r in rs],
            ))
    lbl = [r.lbl_first_bound for r in rows] + [r.lbl_second_bound for r in rows]
    assert lbl.count("M") > len(lbl) / 2  # LBL DW/PW mostly memory-bound
