"""Figure 7: FCM speedup over layer-by-layer execution, INT8, three GPUs."""

import numpy as np

from repro.core.dtypes import DType
from repro.experiments import figure6_7, format_table


def test_fig07_fcm_vs_lbl_int8(benchmark, once, capsys):
    points = once(benchmark, lambda: figure6_7(DType.INT8))
    with capsys.disabled():
        print("\n[Figure 7] FCM speedup over LBL (INT8)")
        print(format_table(
            ["case", "gpu", "module", "speedup", "GMA saving", "redundancy"],
            [[p.case_id, p.gpu, p.fcm_type, f"{p.speedup:.2f}x",
              f"{p.gma_saving:.0%}", f"{p.redundancy_ratio:.0%}"] for p in points],
        ))
        sp = [p.speedup for p in points]
        print(f"-> wins {sum(s > 1 for s in sp)}/{len(sp)}, "
              f"avg {np.mean(sp):.2f}x, max {max(sp):.2f}x "
              f"(paper: avg 1.4x, max 1.8x)")
    assert np.mean([p.speedup for p in points]) > 1.2
