"""Figure 8: global-memory access time, loads/stores split, normalized to LBL."""

from repro.experiments import figure8, format_table


def test_fig08_gma_time_breakdown(benchmark, once, capsys):
    bars = once(benchmark, figure8)
    with capsys.disabled():
        print("\n[Figure 8] GM access time (read+write), normalized to LBL total")
        print(format_table(
            ["case", "gpu", "variant", "read", "write", "total"],
            [[b.case_id, b.gpu, b.variant, f"{b.read_share:.2f}",
              f"{b.write_share:.2f}", f"{b.total:.2f}"] for b in bars],
        ))
    fcm = [b for b in bars if b.variant == "FCM"]
    assert all(b.total < 1.0 for b in fcm)  # fusion always cuts GM time
