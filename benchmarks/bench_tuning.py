"""Tuning-loop payoff: calibrated vs. uncalibrated estimates, warm vs. cold.

Not a paper artifact — this benchmarks the `repro.tune` subsystem's two
promises.  First, that fitting per-(GPU, dtype, kernel-family) correction
factors from measured records collapses the estimated-vs-measured latency
gap across the model zoo (the regression test asserts *reduction*; this
prints the actual error table).  Second, that warm-starting a fleet from a
TuningDB moves every planning pass off the serving critical path — visible
both in the replay accounting (0 critical-path planner invocations) and in
real wall-clock time to first result.

``--smoke`` (see benchmarks/conftest.py) shrinks the model set so `make
bench-smoke` stays fast.
"""

import time

from repro.core.dtypes import DType
from repro.experiments import format_table
from repro.gpu.specs import GTX1660, RTX_A4000
from repro.models.zoo import build_model, model_names
from repro.planner.planner import FusePlanner
from repro.runtime.session import InferenceSession
from repro.serve import FakeClock, Fleet, fleet_replay
from repro.tune import TuningDB, fit_calibration, measure_model, plan_cost_estimate

GPU = RTX_A4000
RATE_RPS = 1e6


def test_calibrated_vs_uncalibrated_estimates(benchmark, once, capsys, smoke):
    models = ("mobilenet_v1", "mobilenet_v2") if smoke else model_names()

    def run():
        db = TuningDB()
        for m in models:
            measure_model(m, GPU, DType.FP32, db=db, mode="guided", iterations=8)
        calib = fit_calibration(db)
        rows = []
        errors = {"uncal": [], "cal": []}
        for m in models:
            graph = build_model(m, DType.FP32)
            plan = FusePlanner(GPU).plan(graph)
            measured = InferenceSession(graph, plan).run_analytic().latency_s
            est_u = plan_cost_estimate(plan)
            est_c = plan_cost_estimate(plan, calib)
            err_u = abs(est_u - measured) / measured
            err_c = abs(est_c - measured) / measured
            errors["uncal"].append(err_u)
            errors["cal"].append(err_c)
            rows.append([
                m, f"{measured * 1e3:.3f}", f"{est_u * 1e3:.3f}",
                f"{est_c * 1e3:.3f}", f"{err_u:.1%}", f"{err_c:.1%}",
            ])
        return db, calib, rows, errors

    db, calib, rows, errors = once(benchmark, run)
    with capsys.disabled():
        print(f"\n[Tune] estimate quality on {GPU.name}, {len(rows)} models, "
              f"{len(db)} records, {len(calib)} factors"
              f"{' (smoke)' if smoke else ''}")
        print(format_table(
            ["model", "measured ms", "est ms", "calibrated ms", "err",
             "calibrated err"],
            rows,
        ))
        mean_u = sum(errors["uncal"]) / len(errors["uncal"])
        mean_c = sum(errors["cal"]) / len(errors["cal"])
        print(f"mean relative error: {mean_u:.1%} uncalibrated -> "
              f"{mean_c:.1%} calibrated")
    assert sum(errors["cal"]) < sum(errors["uncal"])


def test_warm_vs_cold_fleet_start(benchmark, once, capsys, smoke):
    models = ("mobilenet_v1",) if smoke else ("mobilenet_v1", "mobilenet_v2")
    gpus = [GTX1660, RTX_A4000]
    n_requests = 48 if smoke else 128

    def run():
        db = TuningDB()
        for gpu in gpus:
            for m in models:
                measure_model(m, gpu, DType.FP32, db=db, mode="guided",
                              iterations=4)
        out = {}
        # Cold: the fleet plans every model while requests are in flight,
        # inside the timed region.
        t0 = time.perf_counter()
        report = fleet_replay(gpus, list(models), n_requests, RATE_RPS)
        out["cold"] = (time.perf_counter() - t0, report)
        # Warm: boot (planning from the DB) happens before serving starts;
        # the timed region is the serving path only.
        clock = FakeClock()
        fleet = Fleet(gpus, db=db, clock=clock, sleep=clock.sleep)
        t0 = time.perf_counter()
        report = fleet_replay(gpus, list(models), n_requests, RATE_RPS,
                              fleet=fleet)
        out["warm"] = (time.perf_counter() - t0, report)
        return out

    out = once(benchmark, run)
    with capsys.disabled():
        print(f"\n[Tune] warm vs cold fleet start, {n_requests} reqs of "
              f"{','.join(models)} on {'+'.join(g.name for g in gpus)}"
              f"{' (smoke)' if smoke else ''}")
        rows = [
            [label, f"{wall * 1e3:.0f}", r.warm_starts,
             r.critical_path_planner_invocations,
             f"{r.throughput_img_s:.0f}", f"{r.latency_p99_s * 1e3:.2f}"]
            for label, (wall, r) in out.items()
        ]
        print(format_table(
            ["start", "wall ms", "warm plans", "critical-path plans",
             "img/s", "p99 ms"],
            rows,
        ))
    cold_wall, cold = out["cold"]
    warm_wall, warm = out["warm"]
    # The whole point: planning leaves the critical path entirely.
    assert cold.critical_path_planner_invocations > 0
    assert warm.critical_path_planner_invocations == 0
    assert warm.warm_starts == len(gpus) * len(models)
    # Both replays served everything; the warm one routed with plan
    # affinity from the very first request (cold fleets discover holders as
    # they plan, so the streams differ — deterministically, each).
    assert warm.n_requests == cold.n_requests == n_requests
    assert warm_wall < cold_wall  # planning happened before the replay
