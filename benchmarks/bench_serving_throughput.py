"""Serving throughput: batch size x model zoo sweep through `repro.serve`.

Not a paper artifact — this is the repo's throughput/serving scenario: plan
once via the LRU PlanCache, then execute batched passes whose launch
overheads and weight re-streams amortize across the micro-batch.  Reports
img/s, per-image latency and energy per batch size, plus a replayed request
stream's p50/p99 latency under micro-batching.
"""

import pytest

from repro.core.dtypes import DType
from repro.experiments import format_table
from repro.gpu.specs import RTX_A4000
from repro.models.zoo import CNN_MODELS
from repro.serve import ModelServer, replay

BATCHES = (1, 2, 4, 8, 16)


def test_serving_throughput_sweep(benchmark, once, capsys):
    server = ModelServer(RTX_A4000, cache_capacity=len(CNN_MODELS))

    def sweep():
        return {
            model: [server.submit_analytic(model, b) for b in BATCHES]
            for model in CNN_MODELS
        }

    reports = once(benchmark, sweep)
    with capsys.disabled():
        print("\n[Serving] batch sweep on RTX A4000 (fp32, analytic)")
        rows = []
        for model, reps in reports.items():
            base = reps[0].throughput_img_s
            for b, rep in zip(BATCHES, reps):
                rows.append([
                    model, b, f"{rep.throughput_img_s:.0f}",
                    f"{rep.latency_per_image_s * 1e3:.4f}",
                    f"{rep.energy_per_image_j * 1e3:.3f}",
                    f"{rep.throughput_img_s / base:.2f}x",
                ])
        print(format_table(
            ["model", "batch", "img/s", "ms/img", "mJ/img", "vs b=1"], rows
        ))
        stats = server.cache.stats
        print(f"-> {stats.planner_invocations} planning passes for "
              f"{len(CNN_MODELS)} models x {len(BATCHES)} batch sizes "
              f"({stats.hits} cache hits)")

    # One planning pass per model, however many batch sizes were served.
    assert server.cache.stats.planner_invocations == len(CNN_MODELS)
    # Batching must strictly pay on every model (acceptance: at least
    # MobileNetV2 and Xception improve from batch 1 -> 8).
    for model, reps in reports.items():
        tp = [r.throughput_img_s for r in reps]
        assert all(b > a for a, b in zip(tp, tp[1:])), (
            f"{model}: throughput not strictly increasing: {tp}"
        )


@pytest.mark.parametrize("rate", [2000.0, 8000.0], ids=["2krps", "8krps"])
def test_serving_stream_latency(benchmark, once, capsys, rate):
    report = once(
        benchmark,
        lambda: replay(
            RTX_A4000, "mobilenet_v2", n_requests=128, rate_rps=rate,
            dtype=DType.FP32, max_batch=8,
        ),
    )
    with capsys.disabled():
        print(f"\n[Serving] {report.describe()}")
    assert report.planner_invocations == 1
    assert report.latency_p99_s >= report.latency_p50_s > 0
    assert report.throughput_img_s > 0
