"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact (table or figure): it times
the harness computation via pytest-benchmark and prints the reproduced
rows/series so `pytest benchmarks/ --benchmark-only -s` emits the full
reproduction report (EXPERIMENTS.md records the paper-vs-measured deltas).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="shrink benchmark workloads for the fast `make bench-smoke` pass",
    )


@pytest.fixture
def smoke(request) -> bool:
    """True when the run should use the reduced smoke workload."""
    return bool(request.config.getoption("--smoke"))


def run_once(benchmark, fn):
    """Benchmark a harness with a single measured round (they are pure
    analytic sweeps — variance comes from the work, not the clock)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
