"""Figure 6: FCM speedup over layer-by-layer execution, FP32, three GPUs."""

import numpy as np

from repro.core.dtypes import DType
from repro.experiments import figure6_7, format_table


def test_fig06_fcm_vs_lbl_fp32(benchmark, once, capsys):
    points = once(benchmark, lambda: figure6_7(DType.FP32))
    with capsys.disabled():
        print("\n[Figure 6] FCM speedup over LBL (FP32)")
        print(format_table(
            ["case", "gpu", "module", "speedup", "GMA saving", "redundancy"],
            [[p.case_id, p.gpu, p.fcm_type, f"{p.speedup:.2f}x",
              f"{p.gma_saving:.0%}", f"{p.redundancy_ratio:.0%}"] for p in points],
        ))
        sp = [p.speedup for p in points]
        print(f"-> wins {sum(s > 1 for s in sp)}/{len(sp)}, "
              f"avg {np.mean(sp):.2f}x, max {max(sp):.2f}x "
              f"(paper: 67/72 wins, avg 1.3x, max 1.6x)")
    assert sum(p.speedup > 1 for p in points) / len(points) > 0.85
