"""Table II: FusePlanner-selected fusion cases and redundancy ratios."""

from repro.core.dtypes import DType
from repro.experiments import format_table, table2_rows


def test_table2_fp32(benchmark, once, capsys):
    rows = once(benchmark, lambda: table2_rows(DType.FP32))
    with capsys.disabled():
        print("\n[Table II / FP32] fusion cases (planner-selected)")
        print(format_table(list(rows[0]), [list(r.values()) for r in rows]))
    assert sum(r["fcm"] == "PWDW_R" for r in rows) > len(rows) / 2


def test_table2_int8(benchmark, once, capsys):
    rows = once(benchmark, lambda: table2_rows(DType.INT8))
    with capsys.disabled():
        print("\n[Table II / INT8] fusion cases (planner-selected)")
        print(format_table(list(rows[0]), [list(r.values()) for r in rows]))
    assert rows
