"""Chain fusion vs pairwise FCMs: whole-zoo GMA / latency comparison.

Beyond the paper: the interval-DP planner with ``max_chain=3`` fuses whole
PW->DW->PW inverted-residual runs that the pairwise matching must split.
This benchmark regenerates the comparison table for the four CNN workloads
at both precisions and asserts the headline claims: ``max_chain=2`` plans
equal the pairwise planner's (same estimated GMA), and MobileNetV2 INT8
strictly improves with ``max_chain=3``.
"""

from repro.core.dtypes import DType
from repro.experiments import chain_comparison, format_table
from repro.gpu.specs import RTX_A4000


def _table(points, tag, capsys):
    with capsys.disabled():
        print(f"\n[chains / {tag}] pairwise vs chain fusion (RTX)")
        print(format_table(
            ["model", "pairwise GMA", "chain GMA", "saving", "chains>=3",
             "longest", "speedup", "energy"],
            [[p.model, p.pairwise_gma_bytes, p.chain_gma_bytes,
              f"{p.gma_saving:.1%}", p.chain_count, p.longest_chain,
              f"{p.speedup_vs_pairwise:.2f}x",
              f"{p.energy_vs_pairwise:.2f}"] for p in points],
        ))


def test_chain_planner_fp32(benchmark, once, capsys):
    points = once(benchmark, lambda: chain_comparison(DType.FP32, gpu=RTX_A4000))
    _table(points, "FP32", capsys)
    assert all(p.chain_gma_bytes <= p.pairwise_gma_bytes for p in points)
    assert any(p.longest_chain >= 3 for p in points)


def test_chain_planner_int8(benchmark, once, capsys):
    points = once(benchmark, lambda: chain_comparison(DType.INT8, gpu=RTX_A4000))
    _table(points, "INT8", capsys)
    by_model = {p.model: p for p in points}
    # The acceptance headline: MobileNetV2 INT8 strictly beats pairwise.
    assert by_model["Mob_v2"].chain_gma_bytes < by_model["Mob_v2"].pairwise_gma_bytes
    assert by_model["Mob_v2"].longest_chain >= 3
