"""Fleet scaling: throughput and tail latency vs fleet size, 1 -> 4 workers.

Not a paper artifact — this is the repo's multi-GPU serving scenario: the
same saturating request stream replayed over growing fleets, homogeneous
(4x RTX A4000) and heterogeneous (RTX + GTX 1660 + Jetson Orin + RTX, the
paper's three evaluation GPUs mixed).  Each worker plans for its own silicon
via its own PlanCache; the plan-affinity scheduler spreads load only when a
holder's backlog exceeds the spill threshold.  Reports img/s, nearest-rank
p50/p99, mean micro-batch and the fleet-wide plan-cache hit rate per size.

``--smoke`` (see benchmarks/conftest.py) shrinks the stream so `make
bench-smoke` stays fast; the JSON that run emits (BENCH_smoke.json) is the
artifact CI uploads to track the bench trajectory.
"""

import pytest

from repro.experiments import format_table
from repro.gpu.specs import GTX1660, ORIN, RTX_A4000
from repro.serve import fleet_replay

SIZES = (1, 2, 3, 4)
HOMOGENEOUS = (RTX_A4000, RTX_A4000, RTX_A4000, RTX_A4000)
HETEROGENEOUS = (RTX_A4000, GTX1660, ORIN, RTX_A4000)
RATE_RPS = 1e6  # far beyond one worker's capacity: batches stay saturated


@pytest.mark.parametrize(
    "label, gpus, models, n_smoke",
    [
        ("homogeneous", HOMOGENEOUS, ("mobilenet_v2",), 96),
        # Heterogeneous fleets need a longer stream even in smoke mode: with
        # fewer batches the affinity scheduler's warm-up transient (both
        # models start on worker 0, spills replicate plans one worker at a
        # time) dominates and the scaling signal drowns.
        ("heterogeneous", HETEROGENEOUS, ("mobilenet_v2", "xception"), 192),
    ],
    ids=["homogeneous", "heterogeneous"],
)
def test_fleet_scaling(benchmark, once, capsys, smoke, label, gpus, models, n_smoke):
    n_requests = n_smoke if smoke else 256

    def sweep():
        return [
            fleet_replay(
                list(gpus[:size]),
                list(models),
                n_requests,
                RATE_RPS,
                max_batch=8,
                max_delay_s=2e-4,
            )
            for size in SIZES
        ]

    reports = once(benchmark, sweep)
    base = reports[0]
    with capsys.disabled():
        print(f"\n[Fleet] {label} scaling, {n_requests} reqs of "
              f"{','.join(models)} @ {RATE_RPS:g} rps"
              f"{' (smoke)' if smoke else ''}")
        rows = [
            [
                size, "+".join(r.gpus), f"{r.throughput_img_s:.0f}",
                f"{r.latency_p50_s * 1e3:.2f}", f"{r.latency_p99_s * 1e3:.2f}",
                f"{r.mean_batch:.1f}", f"{r.plan_hit_rate:.0%}",
                f"{r.throughput_img_s / base.throughput_img_s:.2f}x",
            ]
            for size, r in zip(SIZES, reports)
        ]
        print(format_table(
            ["size", "gpus", "img/s", "p50 ms", "p99 ms", "mean batch",
             "plan hits", "vs size 1"],
            rows,
        ))

    # Scaling must pay: strictly monotone throughput, and a floor on the
    # 4-worker speedup — ~3.8x homogeneous; heterogeneous lower (workers 2/3
    # are the slower GTX/Orin, and the second model warms up via spills).
    throughput = [r.throughput_img_s for r in reports]
    assert all(b > a for a, b in zip(throughput, throughput[1:])), throughput
    floor = 3.0 if label == "homogeneous" else 1.5
    assert throughput[-1] >= floor * throughput[0]
    if label == "homogeneous":
        # More workers must not worsen the tail on a saturating stream.
        assert reports[-1].latency_p99_s < reports[0].latency_p99_s
