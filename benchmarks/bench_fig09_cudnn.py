"""Figure 9: FCM / LBL / cuDNN algorithms vs IMPLICIT_PRECOMP_GEMM (FP32)."""

import numpy as np

from repro.experiments import figure9, format_table


def test_fig09_vs_cudnn(benchmark, once, capsys):
    points = once(benchmark, figure9)
    with capsys.disabled():
        print("\n[Figure 9] speedups normalized to IMPL_PRECOMP_GEMM (FP32)")
        print(format_table(
            ["case", "gpu", "GEMM", "IMP_GEMM", "our LBL", "FCM",
             "LBL GMA sav", "FCM GMA sav"],
            [[p.case_id, p.gpu, f"{p.gemm_speedup:.2f}",
              f"{p.implicit_gemm_speedup:.2f}", f"{p.lbl_speedup:.2f}",
              f"{p.fcm_speedup:.2f}", f"{p.lbl_gma_saving:.0%}",
              f"{p.fcm_gma_saving:.0%}"] for p in points],
        ))
        print(f"-> FCM avg {np.mean([p.fcm_speedup for p in points]):.2f}x "
              f"max {max(p.fcm_speedup for p in points):.2f}x "
              f"(paper: avg 2x, max 3.7x); "
              f"GMA savings up to LBL {max(p.lbl_gma_saving for p in points):.0%} / "
              f"FCM {max(p.fcm_gma_saving for p in points):.0%} "
              f"(paper: 63% / 83%)")
    assert max(p.fcm_gma_saving for p in points) > 0.7
