"""Ablation benches for the design choices DESIGN.md calls out.

1. **Planner-optimal vs naive tilings** — how much GMA the Eq. 2-4 search
   actually buys over fixed square/naive tile choices.
2. **Occupancy constraint** — what relaxing `#tiles >= #SMs` would change
   (the constraint is the paper's; this quantifies its traffic cost).
3. **Fusion legality of the module types** — per-type feasibility rates over
   all candidate pairs of the six models, FP32 vs INT8 (the mechanism behind
   the paper's Table II type shift).
"""


from repro.core.dtypes import DType
from repro.core.fcm import FcmType, candidate_fcm_types
from repro.core.tiling import PwTiling
from repro.errors import UnsupportedError
from repro.experiments import format_table
from repro.gpu.specs import GTX1660, RTX_A4000
from repro.ir.layers import ConvKind, ConvSpec
from repro.models.zoo import MODELS, build_model
from repro.planner.costs import pw_feasible, pw_gma
from repro.planner.search import best_fcm_tiling, best_lbl_tiling

_LAYERS = [
    ConvSpec("early", ConvKind.POINTWISE, 32, 64, 112, 112),
    ConvSpec("mid", ConvKind.POINTWISE, 256, 256, 28, 28),
    ConvSpec("late", ConvKind.POINTWISE, 512, 512, 14, 14),
]


def test_ablation_search_vs_naive(benchmark, once, capsys):
    def run():
        rows = []
        for spec in _LAYERS:
            best = best_lbl_tiling(spec, RTX_A4000)
            naive = []
            for tm, thw in ((32, 32), (64, 64), (spec.out_channels, 256)):
                t = PwTiling(tm, min(thw, spec.out_h * spec.out_w))
                if pw_feasible(spec, t, RTX_A4000):
                    naive.append(pw_gma(spec, t).total_bytes)
            worst = max(naive) if naive else float("nan")
            rows.append([spec.name, f"{best.gma_bytes / 1e6:.2f}",
                         f"{worst / 1e6:.2f}",
                         f"{worst / best.gma_bytes:.2f}x" if naive else "-"])
        return rows

    rows = once(benchmark, run)
    with capsys.disabled():
        print("\n[Ablation] Eq.2 tile search vs naive square tilings (RTX, MB)")
        print(format_table(["layer", "planner GMA", "worst naive GMA", "ratio"],
                           rows))
    assert all(float(r[1]) <= float(r[2]) for r in rows if r[3] != "-")


def test_ablation_occupancy_constraint(benchmark, once, capsys):
    """Relaxing #tiles >= #SMs: traffic gain on small-HW layers."""

    def run():
        spec = _LAYERS[2]  # 512x512 @ 14x14: the constrained regime
        constrained = best_lbl_tiling(spec, RTX_A4000).gma_bytes
        # Unconstrained minimum over the same vocabulary.
        best_free = None
        for tm in (8, 16, 32, 64, 128, 256, 512):
            for thw in (4, 8, 16, 32, 64, 128, 196):
                t = PwTiling(tm, thw)
                gma = pw_gma(spec, t).total_bytes
                if best_free is None or gma < best_free:
                    best_free = gma
        return constrained, best_free

    constrained, free = once(benchmark, run)
    with capsys.disabled():
        print(f"\n[Ablation] occupancy constraint on late PW layer: "
              f"constrained {constrained / 1e6:.2f} MB vs "
              f"unconstrained {free / 1e6:.2f} MB "
              f"({constrained / free:.2f}x traffic cost of full occupancy)")
    assert constrained >= free


def test_ablation_module_feasibility(benchmark, once, capsys):
    """Per-FCM-type feasibility over every candidate pair, FP32 vs INT8."""

    def run():
        rows = []
        for dtype in (DType.FP32, DType.INT8):
            counts: dict[str, list[int]] = {t.name: [0, 0] for t in FcmType}
            for model in MODELS:
                for cand in build_model(model, dtype).fusion_candidates():
                    try:
                        types = candidate_fcm_types(*cand.pair_kinds)
                    except UnsupportedError:
                        continue
                    for t in types:
                        counts[t.name][1] += 1
                        if best_fcm_tiling(t, cand.first, cand.second, GTX1660):
                            counts[t.name][0] += 1
            for name, (ok, total) in counts.items():
                if total:
                    rows.append([str(dtype), name, f"{ok}/{total}",
                                 f"{ok / total:.0%}"])
        return rows

    rows = once(benchmark, run)
    with capsys.disabled():
        print("\n[Ablation] FCM feasibility rate per type (GTX, all candidate pairs)")
        print(format_table(["dtype", "module", "feasible", "rate"], rows))
    # INT8 must be at least as feasible as FP32 for every module type.
    by = {(r[0], r[1]): float(r[3].rstrip("%")) for r in rows}
    for t in FcmType:
        if ("fp32", t.name) in by and ("int8", t.name) in by:
            assert by[("int8", t.name)] >= by[("fp32", t.name)] - 1e-9
