"""Planner search speed: vectorized grid search vs the scalar reference.

Not a paper artifact — this benchmarks the PR that turned FusePlanner's
tiling search ("explores all tile sizes that meet the constraints in
Equations 2, 3 and 4", §IV-B) from scalar Python loops into whole-grid
NumPy array programs, the same bulk-ops discipline `gpu/fastpath.py`
applies to kernel execution.  Three configurations plan the same zoo:

* ``reference`` — the scalar per-candidate loop, kept as the oracle.
* ``vectorized cold`` — grid search with a fresh geometry memo per model
  (pure search speed, no cross-model reuse).
* ``vectorized warm`` — grid search with one shared memo across the zoo
  (what a fleet boot or tune sweep actually sees: zoo layers repeat
  geometries heavily).

The parity assertion — every configuration returns bit-identical plans —
is the acceptance criterion; the speedups land in ``BENCH_smoke.json``
under ``extra_info`` so the plan-time trajectory accumulates in CI
artifacts.  A second benchmark records the `tune_models` process-pool
sweep wall-clock at workers=1 vs workers=4 (near-linear on multi-core
hosts; on single-core CI runners the pool only adds overhead, so the
recorded host core count is what makes the number interpretable) and
asserts the merged DBs are byte-identical.
"""

import os
import time

from repro.core.dtypes import DType
from repro.experiments import format_table
from repro.gpu.specs import GTX1660, RTX_A4000
from repro.models.zoo import build_model, model_names
from repro.planner.memo import GeometryMemo
from repro.planner.planner import FusePlanner
from repro.tune import tune_models

GPU = RTX_A4000


def _plan_zoo(models, graphs, *, engine, memo_per_model):
    """Plan every model, returning (plans, wall seconds)."""
    shared = GeometryMemo()
    plans = []
    t0 = time.perf_counter()
    for m in models:
        memo = GeometryMemo() if memo_per_model else shared
        planner = FusePlanner(GPU, search_engine=engine, memo=memo)
        plans.append(planner.plan(graphs[m]))
    return plans, time.perf_counter() - t0


def test_vectorized_vs_reference_plan_time(benchmark, once, capsys, smoke):
    models = ("mobilenet_v1", "mobilenet_v2", "xception") if smoke else model_names()
    graphs = {m: build_model(m, DType.FP32) for m in models}

    def run():
        ref, t_ref = _plan_zoo(models, graphs, engine="reference",
                               memo_per_model=True)
        cold, t_cold = _plan_zoo(models, graphs, engine="vectorized",
                                 memo_per_model=True)
        # Warm: one shared memo, pre-seeded by a throwaway pass — the
        # steady state of a long-lived process planning the zoo again.
        _plan_zoo(models, graphs, engine="vectorized", memo_per_model=False)
        warm, t_warm = _plan_zoo(models, graphs, engine="vectorized",
                                 memo_per_model=False)
        return ref, cold, warm, {"reference": t_ref, "vectorized_cold": t_cold,
                                 "vectorized_warm": t_warm}

    ref, cold, warm, walls = once(benchmark, run)
    # Bit-identical plans: same steps, tilings, GMA, redundancy everywhere.
    for r, c, w in zip(ref, cold, warm):
        assert r.steps == c.steps == w.steps
    speedup_cold = walls["reference"] / walls["vectorized_cold"]
    speedup_warm = walls["reference"] / walls["vectorized_warm"]
    benchmark.extra_info["plan_wall_s"] = {k: round(v, 4) for k, v in walls.items()}
    benchmark.extra_info["speedup_cold"] = round(speedup_cold, 2)
    benchmark.extra_info["speedup_warm"] = round(speedup_warm, 2)
    benchmark.extra_info["models"] = len(models)
    with capsys.disabled():
        print(f"\n[Planner] zoo plan time on {GPU.name}, {len(models)} models"
              f"{' (smoke)' if smoke else ''}")
        print(format_table(
            ["engine", "wall ms", "speedup vs reference"],
            [["reference", f"{walls['reference'] * 1e3:.1f}", "1.00x"],
             ["vectorized (cold memo)", f"{walls['vectorized_cold'] * 1e3:.1f}",
              f"{speedup_cold:.2f}x"],
             ["vectorized (warm memo)", f"{walls['vectorized_warm'] * 1e3:.1f}",
              f"{speedup_warm:.2f}x"]],
        ))
    assert speedup_cold > 1.0  # the grid search must actually be faster
    assert speedup_warm >= speedup_cold * 0.9  # memo hits never slow it down


def test_tune_sweep_workers_wall_clock(benchmark, once, capsys, smoke):
    models = ("mobilenet_v1",) if smoke else ("mobilenet_v1", "mobilenet_v2")
    gpus = [GTX1660, RTX_A4000]

    def run():
        out = {}
        for workers in (1, 4):
            t0 = time.perf_counter()
            db, _ = tune_models(models, gpus, mode="guided", iterations=4,
                                workers=workers)
            out[workers] = (time.perf_counter() - t0, db.dumps())
        return out

    out = once(benchmark, run)
    wall_1, dump_1 = out[1]
    wall_4, dump_4 = out[4]
    # Determinism is per-task: the merged DB never depends on worker count.
    assert dump_1 == dump_4
    cores = os.cpu_count() or 1
    benchmark.extra_info["tune_wall_s"] = {"workers_1": round(wall_1, 4),
                                           "workers_4": round(wall_4, 4)}
    benchmark.extra_info["tune_speedup_workers_4"] = round(wall_1 / wall_4, 2)
    benchmark.extra_info["host_cores"] = cores
    with capsys.disabled():
        print(f"\n[Planner] tune sweep {len(models)}x{len(gpus)} tasks, "
              f"host has {cores} core(s){' (smoke)' if smoke else ''}")
        print(format_table(
            ["workers", "wall ms", "speedup"],
            [["1", f"{wall_1 * 1e3:.0f}", "1.00x"],
             ["4", f"{wall_4 * 1e3:.0f}", f"{wall_1 / wall_4:.2f}x"]],
        ))
        if cores < 2:
            print("single-core host: the pool cannot beat serial here; the "
                  ">1.5x workers=4 target applies on >=4-core hosts")
