"""Plan and execute a full MobileNetV1 inference, ours vs the TVM baseline.

Shows the whole pipeline the paper evaluates end to end (Fig. 10/11): build
the model DAG, run FusePlanner, execute the fused plan functionally on the
simulated GPU, compile/execute the TVM baseline on the same weights, and
compare latency / energy / traffic.

Run:  python examples/plan_mobilenet.py [gpu]     (gpu: GTX | RTX | Orin)
"""

import sys

import numpy as np

from repro import DType, gpu_by_name
from repro.baselines import TvmCompiler
from repro.models import build_model
from repro.planner import FusePlanner
from repro.runtime import InferenceSession, TvmSession, compare, materialize_network, profile_table


def main(gpu_name: str = "RTX") -> None:
    gpu = gpu_by_name(gpu_name)
    graph = build_model("mobilenet_v1")

    plan = FusePlanner(gpu).plan(graph)
    print(plan.describe())
    print()

    params = materialize_network(graph, DType.FP32, seed=0)
    x = np.random.default_rng(0).standard_normal((3, 224, 224)).astype(np.float32)

    ours = InferenceSession(graph, plan, params).run(x)
    tvm_plan = TvmCompiler(gpu).compile(graph)
    tvm = TvmSession(graph, tvm_plan, params).run(x)

    assert np.allclose(ours.output, tvm.output, rtol=1e-3, atol=1e-4), \
        "both runtimes must compute the same network"

    print("ours:", ours.describe())
    print("tvm :", tvm.describe())
    print(compare(ours, tvm).describe())
    print()
    print(profile_table(ours, top=8))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "RTX")
