"""Bring your own GPU: how fusion decisions shift with the memory hierarchy.

FusePlanner's choices depend on the SM count, L1 size and the shared-memory
partition (paper §VI-A explains GTX's weaker results by its smaller
L1/shared budget).  This example defines a custom GPU, sweeps its shared
memory size, and shows the fused-layer fraction and module mix responding.

Run:  python examples/custom_gpu.py
"""


from repro import DType
from repro.gpu import GpuSpec
from repro.models import build_model
from repro.planner import FusePlanner


def make_gpu(shared_kb: int) -> GpuSpec:
    return GpuSpec(
        name=f"custom-{shared_kb}k",
        compute_capability="8.x",
        sm_count=32,
        cuda_cores=4096,
        l1_kb=max(shared_kb + 32, 96),
        shared_kb=shared_kb,
        l2_mb=2.0,
        dram="GDDR6",
        dram_bw_gbps=320.0,
        clock_ghz=1.5,
    )


def main() -> None:
    graph = build_model("mobilenet_v2")
    print(f"{'shared/SM':>10s} {'fused':>6s} {'FCM mix':40s} {'est GMA (MB)':>12s}")
    for shared_kb in (16, 32, 64, 96, 160):
        gpu = make_gpu(shared_kb)
        plan = FusePlanner(gpu).plan(graph)
        mix: dict[str, int] = {}
        for s in plan.fcm_steps:
            mix[s.fcm_type.name] = mix.get(s.fcm_type.name, 0) + 1
        mix_s = ", ".join(f"{k}x{v}" for k, v in sorted(mix.items())) or "-"
        print(
            f"{shared_kb:>9d}K {plan.fused_layer_fraction:>6.0%} {mix_s:40s} "
            f"{plan.est_total_gma_bytes / 1e6:>12.2f}"
        )
    # Precision has the same effect as more on-chip memory (paper §VI-A):
    gpu = make_gpu(64)
    for dtype in (DType.FP32, DType.INT8):
        plan = FusePlanner(gpu).plan(build_model("mobilenet_v2", dtype))
        print(f"{dtype}: fused {plan.fused_layer_fraction:.0%}, "
              f"est GMA {plan.est_total_gma_bytes / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
