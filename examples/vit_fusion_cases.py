"""Fusion inside convolutional ViTs: CeiT's LeFF and CMT's IRFFN blocks.

The paper's F9-F12 cases come from vision transformers whose feed-forward
networks hide PW-DW-PW convolution chains.  This example extracts those
chains, shows what FusePlanner decides per GPU and precision, and highlights
the INT8 effect (larger feasible tiles, less redundant recomputation).

Run:  python examples/vit_fusion_cases.py
"""

from repro import DType
from repro.gpu import ALL_GPUS
from repro.models import build_model
from repro.planner import FusePlanner


def main() -> None:
    for model_name, block in (("ceit", "blk1_leff"), ("cmt", "s2b1_ffn")):
        print(f"=== {model_name}: {block} (PW-DW-PW chain) ===")
        for dtype in (DType.FP32, DType.INT8):
            graph = build_model(model_name, dtype)
            pw1 = graph.spec(f"{block}_pw1")
            dw = graph.spec(f"{block}_dw")
            pw2 = graph.spec(f"{block}_pw2")
            print(f"  {dtype}: {pw1.describe()} -> {dw.describe()} -> {pw2.describe()}")
            for gpu in ALL_GPUS:
                planner = FusePlanner(gpu)
                for first, second in ((pw1, dw), (dw, pw2)):
                    d = planner.evaluate_pair(first, second)
                    if d is None:
                        print(f"    {gpu.name:5s} {first.name}->{second.name}: no feasible FCM")
                        continue
                    print(
                        f"    {gpu.name:5s} {first.name.split('_')[-1]}->"
                        f"{second.name.split('_')[-1]}: {d.fcm_type.name:7s} "
                        f"saves {d.savings_bytes / 1e3:8.1f} KB "
                        f"(redundancy {d.fcm.redundancy_ratio:.0%}, tiles {d.fcm.tiling})"
                    )
        print()


if __name__ == "__main__":
    main()
