"""Chain fusion walkthrough: pairwise FCMs vs arbitrary-length fused chains.

Plans MobileNetV2 twice — ``max_chain=2`` (the paper's pairwise modules,
reproduced bit-for-bit) and ``max_chain=3`` (whole PW->DW->PW
inverted-residual runs fused by the interval-DP planner) — executes both
analytically, and runs one fused chain functionally to show the three-stage
kernel is numerically exact.

Run:  python examples/chain_fusion.py [gpu]     (gpu: GTX | RTX | Orin)
"""

import sys

import numpy as np

from repro import DType, gpu_by_name
from repro.experiments import compare_chain_planning
from repro.kernels import FusedChainKernel, build_lbl_kernel, make_layer_params
from repro.kernels.params import chain_quant
from repro.models import build_model
from repro.planner import FusePlanner, best_lbl_tiling


def main(gpu_name: str = "RTX") -> None:
    gpu = gpu_by_name(gpu_name)

    # 1. Whole-model comparison: pairwise vs chain plans.
    cmp = compare_chain_planning("mobilenet_v2", gpu, DType.INT8, max_chain=3)
    print(
        f"MobileNetV2 int8 on {gpu.name}: pairwise GMA {cmp.pairwise_gma_bytes} B, "
        f"chain GMA {cmp.chain_gma_bytes} B ({cmp.gma_saving:.1%} saved, "
        f"{cmp.chain_count} chains of length >= 3, {cmp.speedup_vs_pairwise:.2f}x)"
    )

    # 2. One fused chain, functionally: the planner's longest pick.
    graph = build_model("mobilenet_v2", DType.FP32)
    plan = FusePlanner(gpu, max_chain=3).plan(graph)
    step = max(plan.fcm_steps, key=lambda s: s.length)
    print(f"\nlongest chain: {'+'.join(step.layer_names)} tiles={step.tiling}")

    params = [make_layer_params(step.specs[0], seed=0)]
    for spec in step.specs[1:]:
        params.append(chain_quant(params[-1], spec, seed=0))
    kernel = FusedChainKernel(
        params, step.tiling["tile_h"], step.tiling["tile_w"], step.tiling.get("tile_m")
    )
    x = np.random.default_rng(0).standard_normal(step.specs[0].ifm.shape).astype(np.float32)
    fused = kernel.simulate(x, gpu)

    ref, ref_bytes = x, 0
    for p in params:
        res = build_lbl_kernel(p, best_lbl_tiling(p.spec, gpu).tiling).simulate(ref, gpu)
        ref, ref_bytes = res.output, ref_bytes + res.counters.total_bytes
    assert np.allclose(fused.output, ref, rtol=1e-4, atol=1e-5)
    print(
        f"fused == layer-by-layer; traffic {fused.counters.total_bytes} B vs "
        f"{ref_bytes} B unfused "
        f"({1 - fused.counters.total_bytes / ref_bytes:.0%} saved), "
        f"redundant MACs {fused.counters.redundancy_ratio:.1%}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "RTX")
