"""Quickstart: fuse one depthwise-separable block and measure the gains.

Builds a MobileNet-style DSC pair (DW3x3 + PW1x1), runs it layer-by-layer
and as a fused FCM on the simulated RTX A4000, verifies the outputs are
identical, and prints the traffic/latency/energy comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.gpu import RTX_A4000
from repro.ir import ConvKind, ConvSpec
from repro.kernels import build_fcm_kernel, build_lbl_kernel, chain_quant, make_layer_params
from repro.planner import FusePlanner


def main() -> None:
    # 1. Describe the two layers (a MobileNetV1 block at 56x56).
    dw = ConvSpec("block_dw", ConvKind.DEPTHWISE, 128, 128, 56, 56,
                  kernel=3, stride=1, padding=1)
    pw = ConvSpec("block_pw", ConvKind.POINTWISE, 128, 128, 56, 56)

    # 2. Let FusePlanner pick the module type and tile sizes for this GPU.
    planner = FusePlanner(RTX_A4000)
    decision = planner.evaluate_pair(dw, pw)
    assert decision is not None, "no feasible FCM for this pair on this GPU"
    print(f"FusePlanner suggests {decision.fcm_type.name} with tiles {decision.fcm.tiling}")
    print(f"  estimated GMA: fused {decision.fcm.gma_bytes / 1e6:.2f} MB vs "
          f"LBL {(decision.lbl_first.gma_bytes + decision.lbl_second.gma_bytes) / 1e6:.2f} MB")

    # 3. Materialize weights and an input, then execute both ways.
    p_dw = make_layer_params(dw, seed=42)
    p_pw = chain_quant(p_dw, pw, seed=42)
    x = np.random.default_rng(0).standard_normal(dw.ifm.shape).astype(np.float32)

    lbl_dw = build_lbl_kernel(p_dw, planner.lbl_plan(dw).tiling).simulate(x, RTX_A4000)
    lbl_pw = build_lbl_kernel(p_pw, planner.lbl_plan(pw).tiling).simulate(
        lbl_dw.output, RTX_A4000
    )
    fused = build_fcm_kernel(
        decision.fcm_type, p_dw, p_pw, decision.fcm.tiling
    ).simulate(x, RTX_A4000)

    # 4. Same numbers, fewer bytes, fewer kernels.
    np.testing.assert_allclose(fused.output, lbl_pw.output, rtol=1e-4, atol=1e-4)
    lbl_bytes = lbl_dw.counters.total_bytes + lbl_pw.counters.total_bytes
    lbl_time = lbl_dw.timing().t_total_s + lbl_pw.timing().t_total_s
    t_fused = fused.timing()
    print(f"outputs identical: True")
    print(f"global traffic : LBL {lbl_bytes / 1e6:6.2f} MB   "
          f"FCM {fused.counters.total_bytes / 1e6:6.2f} MB "
          f"({1 - fused.counters.total_bytes / lbl_bytes:.0%} saved)")
    print(f"latency        : LBL {lbl_time * 1e6:6.1f} us   "
          f"FCM {t_fused.t_total_s * 1e6:6.1f} us "
          f"({lbl_time / t_fused.t_total_s:.2f}x speedup)")
    e_lbl = lbl_dw.energy().total_j + lbl_pw.energy().total_j
    print(f"energy         : LBL {e_lbl * 1e6:6.1f} uJ   "
          f"FCM {fused.energy().total_j * 1e6:6.1f} uJ")


if __name__ == "__main__":
    main()
