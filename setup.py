"""Legacy setup shim so `pip install -e .` works without the `wheel` package.

All metadata lives in pyproject.toml; this file only provides the legacy
`setup.py develop` entry point for offline environments.
"""

from setuptools import setup

setup()
