"""Measurement-feedback autotuning: measure → record → calibrate → warm-start.

The loop the paper closes with real hardware (§V-C), closed here over the
simulated substrate:

* :mod:`repro.tune.measure` — run planned kernels / tiling candidates and
  observe their cost (the analytic counters or the simulated kernel grid);
* :mod:`repro.tune.records` — persist every observation in a versioned,
  deterministic JSON-lines :class:`TuningDB` keyed by full geometry + GPU +
  dtype + convention;
* :mod:`repro.tune.calibrate` — fit per-(GPU, dtype, kernel-family)
  multiplicative corrections from the records and thread them back into
  FusePlanner's candidate ranking;
* warm-start — :meth:`repro.serve.cache.PlanCache.warm_start` replays a
  DB's model-level records at boot so serving never plans on the critical
  path.
"""

from .calibrate import Calibration, analytic_cost_s, fit_calibration
from .measure import (
    MODES,
    ModelMeasurement,
    estimated_step_cost_s,
    measure_model,
    measured_step_cost_s,
    plan_cost_estimate,
    simulated_kernel_cost_s,
    tune_models,
    tune_step_tiling,
)
from .records import (
    SCHEMA_VERSION,
    TuningDB,
    TuningKey,
    TuningRecord,
    chain_geometry,
    spec_geometry,
)

__all__ = [
    "Calibration",
    "analytic_cost_s",
    "fit_calibration",
    "MODES",
    "ModelMeasurement",
    "estimated_step_cost_s",
    "measure_model",
    "measured_step_cost_s",
    "plan_cost_estimate",
    "simulated_kernel_cost_s",
    "tune_models",
    "tune_step_tiling",
    "SCHEMA_VERSION",
    "TuningDB",
    "TuningKey",
    "TuningRecord",
    "chain_geometry",
    "spec_geometry",
]
