"""Measurement harness: observe what planned kernels actually cost.

The paper tunes "with the hardware in the loop" (§V-C); this module is that
loop over the simulated substrate.  For every step of a FusePlanner plan it
records the *analytic prediction* (:func:`~repro.tune.calibrate.
analytic_cost_s` of the planner's estimated GMA — the currency planning
decisions are made in) next to the *observed cost* (the measured-convention
counters through the roofline, i.e. what :meth:`InferenceSession.run_analytic`
charges, which the functional kernels match byte-for-byte), then searches the
step's feasible tiling grid by observed cost with the tie-break-fixed
:func:`~repro.baselines.autotune.random_search` backend.

Search modes:

* ``"exhaustive"`` — measure every feasible tiling (the grids are small:
  powers of two per axis);
* ``"random"`` — the paper's protocol: sample ``iterations`` candidates;
* ``"guided"`` (default) — DP-guided: the planner's analytically-chosen
  tiling is always measured, plus ``iterations`` sampled candidates, so the
  tuned result can never be worse than what planning already picked.

Two measurement backends exist for tilings: ``"counters"`` (default) prices
a candidate through the analytic counter builders in microseconds, and
``"kernel"`` actually materializes parameters and runs the simulated kernel
grid — slower, but the full hardware-in-the-loop path (their counters are
byte-identical by the integration tests, so both return the same cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.autotune import random_search
from ..baselines.cudnn import CudnnAlgo, cudnn_counters, cudnn_timing
from ..core.chain import FusedChain
from ..core.dtypes import DType
from ..errors import TuneError
from ..gpu.roofline import time_kernel
from ..gpu.specs import GpuSpec
from ..kernels.params import chain_quant, make_layer_params
from ..kernels.registry import build_chain_kernel, build_lbl_kernel
from ..models.zoo import build_model
from ..obs import resolve_metrics, resolve_tracer
from ..planner.analytic import chain_counters, lbl_counters
from ..planner.plan import (
    ChainStep,
    ExecutionPlan,
    LblStep,
    PlanStep,
    StdStep,
    step_family,
)
from ..planner.planner import FusePlanner
from ..planner.search import (
    enumerate_chain_tilings,
    enumerate_fcm_tilings,
    enumerate_lbl_tilings,
)
from ..runtime.glue import glue_counters
from ..runtime.network_params import materialize_network
from ..runtime.session import InferenceSession
from .calibrate import analytic_cost_s
from .records import TuningDB, TuningKey, TuningRecord, chain_geometry, spec_geometry

__all__ = [
    "MODES",
    "ModelMeasurement",
    "estimated_step_cost_s",
    "measured_step_cost_s",
    "simulated_kernel_cost_s",
    "tune_step_tiling",
    "plan_cost_estimate",
    "measure_model",
    "tune_models",
]

MODES = ("guided", "random", "exhaustive")

#: cuDNN algorithm shared with the runtime's standard-conv steps.
_STD_ALGO = CudnnAlgo.IMPLICIT_PRECOMP_GEMM


# ---- per-step costing ---------------------------------------------------------
def estimated_step_cost_s(step: PlanStep, gpu: GpuSpec, dtype: DType) -> float:
    """The planner-side analytic latency proxy for one step (uncalibrated)."""
    if isinstance(step, (LblStep, ChainStep)):
        return analytic_cost_s(step.est_gma_bytes, 1, gpu)
    if isinstance(step, StdStep):
        c = cudnn_counters(step.spec, _STD_ALGO)
    else:
        c = glue_counters(step.spec, dtype)
    return analytic_cost_s(c.total_bytes, c.kernel_launches, gpu)


def _step_gma_bytes(step: PlanStep, dtype: DType) -> int:
    if isinstance(step, (LblStep, ChainStep)):
        return step.est_gma_bytes
    if isinstance(step, StdStep):
        return cudnn_counters(step.spec, _STD_ALGO).total_bytes
    return glue_counters(step.spec, dtype).total_bytes


def measured_step_cost_s(
    step: PlanStep,
    gpu: GpuSpec,
    dtype: DType,
    tiling: dict[str, int] | None = None,
) -> float:
    """Observed batch-1 latency of one step (``tiling`` overrides the plan's).

    Matches :meth:`~repro.runtime.session.InferenceSession.run_analytic`
    exactly: measured-convention counters through the roofline for DW/PW
    work, the cuDNN timing model for standard convs.
    """
    if isinstance(step, ChainStep):
        t = tiling if tiling is not None else step.tiling
        c = chain_counters(step.specs, t, step.fcm_type)
    elif isinstance(step, LblStep):
        t = tiling if tiling is not None else step.tiling
        c = lbl_counters(step.spec, t)
    elif isinstance(step, StdStep):
        return cudnn_timing(step.spec, _STD_ALGO, gpu).t_total_s
    else:
        c = glue_counters(step.spec, dtype)
    return time_kernel(c, gpu, dtype).t_total_s


def simulated_kernel_cost_s(
    step: PlanStep,
    gpu: GpuSpec,
    dtype: DType,
    tiling: dict[str, int] | None = None,
    seed: int = 0,
    engine: str | None = None,
) -> float:
    """Hardware-in-the-loop variant: run the actual simulated kernel grid.

    Materializes deterministic parameters for the step's layer(s), builds the
    kernel through the registry, streams a seeded random IFM through the
    instrumented launch and prices the metered counters — by default on the
    vectorized ``"fast"`` engine, whose counters are bit-identical to the
    per-block ``"reference"`` launch (so the measured cost is the same and
    the tuning loop stops paying the interpreter tax per candidate).
    """
    from ..gpu.fastpath import resolve_engine

    engine = resolve_engine(engine)
    if not isinstance(step, (LblStep, ChainStep)):
        raise TuneError("only DW/PW (LBL or fused) steps have simulated kernels")
    t = tiling if tiling is not None else step.tiling
    specs = step.specs if isinstance(step, ChainStep) else (step.spec,)
    params = [make_layer_params(specs[0], seed=seed)]
    for spec in specs[1:]:
        params.append(chain_quant(params[-1], spec, seed=seed))
    if isinstance(step, ChainStep):
        kernel = build_chain_kernel(params, t, step.fcm_type)
    else:
        kernel = build_lbl_kernel(params[0], t)
    rng = np.random.default_rng(seed)
    shape = specs[0].ifm.shape
    if dtype is DType.INT8:
        ifm = rng.integers(-128, 128, shape).astype(np.int8)
    else:
        ifm = rng.standard_normal(shape).astype(np.float32)
    return kernel.simulate(ifm, gpu, engine).time_s


def _step_geometry(step: PlanStep) -> tuple:
    if isinstance(step, ChainStep):
        return chain_geometry(step.specs)
    if isinstance(step, (LblStep, StdStep)):
        return spec_geometry(step.spec)
    return (step.spec.op, step.spec.out_elements, step.spec.flops)


def _tiling_candidates(step: PlanStep, gpu: GpuSpec) -> list[dict[str, int]]:
    if isinstance(step, ChainStep):
        if step.fcm_type is not None:
            return enumerate_fcm_tilings(
                step.fcm_type, step.specs[0], step.specs[1], gpu
            )
        return enumerate_chain_tilings(FusedChain(step.specs), gpu)
    if isinstance(step, LblStep):
        return enumerate_lbl_tilings(step.spec, gpu)
    return []


def tune_step_tiling(
    step: PlanStep,
    gpu: GpuSpec,
    dtype: DType,
    *,
    mode: str = "guided",
    iterations: int = 20,
    seed: int = 0,
    backend: str = "counters",
    engine: str | None = None,
) -> tuple[dict[str, int], float, int]:
    """Search one step's feasible tiling grid by *observed* cost.

    Returns ``(tiling, measured_cost_s, candidates_evaluated)``.  Steps
    without a tiling vocabulary (std/glue) are measured as-is with one
    evaluation.  ``engine`` selects the execution engine of the ``"kernel"``
    backend (fast by default; ignored by the counter backend).
    """
    if mode not in MODES:
        raise TuneError(f"unknown search mode {mode!r}; choose from {MODES}")
    if backend not in ("counters", "kernel"):
        raise TuneError(f"unknown backend {backend!r}; 'counters' or 'kernel'")
    if iterations < 1:
        raise TuneError(f"measurement budget must be >= 1, got {iterations}")
    candidates = _tiling_candidates(step, gpu)
    if not candidates:
        return {}, measured_step_cost_s(step, gpu, dtype), 1

    # Memoized so ``evaluated`` reports *distinct* measurements: guided
    # mode's re-check of the planner's pick is free when the sampled set
    # already covered it.
    memo: dict[tuple, float] = {}

    def evaluate(t: dict[str, int]) -> float:
        k = tuple(sorted(t.items()))
        if k not in memo:
            if backend == "kernel":
                memo[k] = simulated_kernel_cost_s(step, gpu, dtype, t, seed, engine)
            else:
                memo[k] = measured_step_cost_s(step, gpu, dtype, t)
        return memo[k]

    budget = len(candidates) if mode == "exhaustive" else iterations
    best, cost, _ = random_search(candidates, evaluate, budget, seed=seed)
    # Guided: the planner's analytic pick is always measured too.
    if mode == "guided":
        planned_cost = evaluate(step.tiling)
        if planned_cost < cost:
            best, cost = step.tiling, planned_cost
    return dict(best), cost, len(memo)


# ---- whole-plan costing -------------------------------------------------------
def plan_cost_estimate(plan: ExecutionPlan, calibration=None) -> float:
    """Predict a plan's batch-1 analytic latency from its estimates alone.

    Uncalibrated this is the naive bytes-at-peak-bandwidth sum the planner
    reasons in; with a :class:`~repro.tune.calibrate.Calibration` each step's
    term is scaled by its family factor — the number the estimated-vs-
    measured error test pins down.
    """
    total = 0.0
    for step in plan.steps:
        est = estimated_step_cost_s(step, plan.gpu, plan.dtype)
        if calibration is not None:
            est *= calibration.factor(
                step_family(step), plan.gpu.name, plan.dtype.value
            )
        total += est
    return total


@dataclass(frozen=True)
class ModelMeasurement:
    """Summary of one tuned model: predictions vs. observations vs. tuned."""

    model: str
    gpu: str
    dtype: str
    convention: str
    max_chain: int
    est_cost_s: float  # naive analytic plan estimate
    measured_cost_s: float  # observed plan latency (run_analytic)
    tuned_cost_s: float  # observed latency with measurement-tuned tilings
    steps: int
    evaluated: int  # total tiling candidates measured
    records_added: int

    def describe(self) -> str:
        return (
            f"{self.model} on {self.gpu} ({self.dtype}, K={self.max_chain}): "
            f"est {self.est_cost_s * 1e3:.3f} ms vs measured "
            f"{self.measured_cost_s * 1e3:.3f} ms "
            f"(x{self.measured_cost_s / self.est_cost_s:.2f}), tuned "
            f"{self.tuned_cost_s * 1e3:.3f} ms; {self.steps} steps, "
            f"{self.evaluated} candidates measured, "
            f"{self.records_added} records"
        )


def measure_model(
    model: str,
    gpu: GpuSpec,
    dtype: DType = DType.FP32,
    *,
    db: TuningDB,
    convention: str = "paper",
    max_chain: int = 2,
    mode: str = "guided",
    iterations: int = 20,
    seed: int = 0,
    backend: str = "counters",
    engine: str | None = None,
    tracer=None,
    metrics=None,
) -> ModelMeasurement:
    """Plan one model, measure every step, tune tilings, persist records.

    Emits one :class:`~repro.tune.records.TuningRecord` per *distinct step
    geometry* (repeated identical blocks share a record; the best-measured
    one wins) plus one model-level record (family ``"model"``, geometry
    ``(model, max_chain)``) that the serving warm-start path replays.
    Every record carries its measurement provenance: ``"analytic"`` for the
    counter backend, else the execution engine the kernel backend ran on.

    ``tracer``/``metrics`` wrap the whole measurement in one
    ``tune.measure`` span (the planning pass nests inside) and tally
    candidate-measurement / record counters; the DB contents are identical
    with or without them.
    """
    tracer = resolve_tracer(tracer)
    metrics = resolve_metrics(metrics)
    if not (tracer.enabled or metrics.enabled):
        return _measure_model_impl(
            model, gpu, dtype, db=db, convention=convention, max_chain=max_chain,
            mode=mode, iterations=iterations, seed=seed, backend=backend,
            engine=engine, tracer=tracer, metrics=metrics,
        )
    with tracer.span(
        "tune.measure", model=model, gpu=gpu.name, dtype=dtype.value, mode=mode
    ):
        mm = _measure_model_impl(
            model, gpu, dtype, db=db, convention=convention, max_chain=max_chain,
            mode=mode, iterations=iterations, seed=seed, backend=backend,
            engine=engine, tracer=tracer, metrics=metrics,
        )
    metrics.counter(
        "repro_tune_candidates_total", help="Tiling candidates measured"
    ).inc(mm.evaluated, model=model, gpu=gpu.name)
    metrics.counter(
        "repro_tune_records_total", help="Tuning records persisted"
    ).inc(mm.records_added, model=model, gpu=gpu.name)
    return mm


def _measure_model_impl(
    model: str,
    gpu: GpuSpec,
    dtype: DType,
    *,
    db: TuningDB,
    convention: str,
    max_chain: int,
    mode: str,
    iterations: int,
    seed: int,
    backend: str,
    engine: str | None,
    tracer,
    metrics,
) -> ModelMeasurement:
    from ..gpu.fastpath import resolve_engine

    record_engine = "analytic" if backend == "counters" else resolve_engine(engine)
    graph = build_model(model, dtype)
    plan = FusePlanner(
        gpu, convention, max_chain=max_chain, tracer=tracer, metrics=metrics
    ).plan(graph)
    session = InferenceSession(
        graph, plan, materialize_network(graph, dtype, seed)
    )
    report = session.run_analytic()
    assert len(report.records) == len(plan.steps)

    added = 0
    evaluated_total = 0
    tuned_total = 0.0
    #: repeated identical blocks are ubiquitous in the zoo; their geometry
    #: shares one record, so the (dominant) tiling search runs once per
    #: distinct geometry, not once per occurrence.
    searched: dict[tuple[str, tuple], tuple[dict[str, int], float, int]] = {}
    for step, rec in zip(plan.steps, report.records):
        est = estimated_step_cost_s(step, gpu, dtype)
        family = step_family(step)
        geometry = _step_geometry(step)
        if (family, geometry) not in searched:
            result = tune_step_tiling(
                step, gpu, dtype, mode=mode, iterations=iterations, seed=seed,
                backend=backend, engine=engine,
            )
            searched[(family, geometry)] = result
            evaluated_total += result[2]  # measurements actually performed
        tiling, tuned, evaluated = searched[(family, geometry)]
        tuned_total += tuned
        key = TuningKey(
            family=family,
            geometry=geometry,
            gpu=gpu.name,
            dtype=dtype.value,
            convention=convention,
        )
        added += db.add(
            TuningRecord(
                key=key,
                tiling=tiling,
                est_cost_s=est,
                measured_cost_s=rec.time_s,
                tuned_cost_s=tuned,
                gma_bytes=_step_gma_bytes(step, dtype),
                evaluated=evaluated,
                seed=seed,
                engine=record_engine,
            )
        )

    est_plan = plan_cost_estimate(plan)
    measured_plan = report.latency_s
    added += db.add(
        TuningRecord(
            key=TuningKey(
                family="model",
                geometry=(model, max_chain),
                gpu=gpu.name,
                dtype=dtype.value,
                convention=convention,
            ),
            tiling={},
            est_cost_s=est_plan,
            measured_cost_s=measured_plan,
            tuned_cost_s=tuned_total,
            gma_bytes=report.total_gma_bytes,
            evaluated=evaluated_total,
            seed=seed,
            engine=record_engine,
        )
    )
    return ModelMeasurement(
        model=model,
        gpu=gpu.name,
        dtype=dtype.value,
        convention=convention,
        max_chain=max_chain,
        est_cost_s=est_plan,
        measured_cost_s=measured_plan,
        tuned_cost_s=tuned_total,
        steps=len(plan.steps),
        evaluated=evaluated_total,
        records_added=added,
    )


def _measure_one_job(job: tuple) -> tuple[str, ModelMeasurement]:
    """Worker-process entry: measure one (model, GPU) into a fresh DB.

    Returns the child DB's canonical dump (a string pickles cheaply and
    keeps the merge on the parent side, where ordering is controlled) plus
    the measurement summary.  Module-level so it is picklable by spawn-based
    pools too.
    """
    (model, gpu, dtype, convention, max_chain, mode, iterations, seed, backend, engine) = job
    child = TuningDB()
    mm = measure_model(
        model, gpu, dtype, db=child, convention=convention,
        max_chain=max_chain, mode=mode, iterations=iterations,
        seed=seed, backend=backend, engine=engine,
    )
    return child.dumps(), mm


def tune_models(
    models: list[str] | tuple[str, ...],
    gpus: list[GpuSpec] | tuple[GpuSpec, ...],
    dtype: DType = DType.FP32,
    *,
    db: TuningDB | None = None,
    convention: str = "paper",
    max_chain: int = 2,
    mode: str = "guided",
    iterations: int = 20,
    seed: int = 0,
    backend: str = "counters",
    engine: str | None = None,
    workers: int = 1,
    tracer=None,
    metrics=None,
) -> tuple[TuningDB, list[ModelMeasurement]]:
    """Measure every (model, GPU) combination into one DB (CLI ``tune run``).

    ``workers > 1`` fans the (model, GPU) tasks over a process pool.  Each
    task is already deterministic in isolation (seeded search, analytic
    counters), and the parent merges child DBs *in submission order* with
    the best-record-per-key / ties-keep-incumbent rule — so the resulting
    DB is byte-identical for every worker count.  ``records_added`` in the
    returned summaries is recomputed as the records each task contributed
    to the merged DB, matching the serial accounting.

    ``tracer``/``metrics`` observe the *serial* path only: pooled tasks run
    in worker processes whose spans cannot land in this process's tracer,
    and the DB bytes are identical either way.
    """
    if workers < 1:
        raise TuneError(f"workers must be >= 1, got {workers}")
    db = db if db is not None else TuningDB()
    jobs = [
        (model, gpu, dtype, convention, max_chain, mode, iterations, seed, backend, engine)
        for gpu in gpus
        for model in models
    ]
    out: list[ModelMeasurement] = []
    if workers == 1 or len(jobs) <= 1:
        for job in jobs:
            out.append(measure_model(job[0], job[1], dtype, db=db, convention=convention,
                                     max_chain=max_chain, mode=mode, iterations=iterations,
                                     seed=seed, backend=backend, engine=engine,
                                     tracer=tracer, metrics=metrics))
        return db, out

    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor
    from dataclasses import replace as _replace

    # fork shares the warmed geometry memo / pow2 caches with the children
    # for free; spawn-only platforms still work, just with cold caches.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs)), mp_context=ctx) as pool:
        results = list(pool.map(_measure_one_job, jobs))
    for dumped, mm in results:  # submission order == the serial sweep order
        adopted = db.merge(TuningDB.loads(dumped))
        out.append(_replace(mm, records_added=adopted))
    return db, out
