"""Fit measurement-feedback correction factors and price plans with them.

The planner's candidate ranking is driven by an *analytic* cost proxy —
estimated GMA bytes over peak bandwidth plus launch overhead
(:func:`analytic_cost_s`).  The measurement harness observes what those
kernels actually cost on the simulated substrate (L2 absorption, MAC
boundedness, utilization/bandwidth efficiencies, convention gaps — none of
which the proxy sees).  Calibration closes the gap the cheapest defensible
way: one multiplicative factor per ``(GPU, dtype, kernel family)``, the
geometric mean of measured/estimated ratios over the family's records.

A single per-family multiplier cannot reorder tilings *within* a family
(monotone transform), but it absolutely reorders decisions *across*
families — fuse-vs-stay-unfused, DWPW vs PWDW_R arbitration, chain length
selection — which is exactly where the analytic model and the measurements
disagree.  :class:`Calibration` is duck-typed into
:class:`~repro.planner.planner.FusePlanner` via its :meth:`Calibration.cost_s`
hook (the planner never imports this package, keeping the dependency arrow
tune → planner one-way).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..gpu.specs import GpuSpec
from .records import TuningDB

__all__ = ["analytic_cost_s", "Calibration", "fit_calibration"]


def analytic_cost_s(gma_bytes: float, launches: int, gpu: GpuSpec) -> float:
    """The uncalibrated latency proxy: bytes at peak bandwidth + launches.

    Deliberately naive — it prices the planner's estimated GMA as if every
    byte hit DRAM at peak speed.  Every systematic way reality deviates
    (bandwidth efficiency, L2 re-read absorption, compute boundedness) is
    what the fitted per-family factor absorbs.
    """
    return gma_bytes / gpu.peak_bytes_per_s + launches * gpu.kernel_launch_us * 1e-6


@dataclass(frozen=True)
class Calibration:
    """Per-(GPU, dtype, family) multiplicative corrections.

    ``factors`` maps ``(gpu_name, dtype_value, family)`` to the multiplier
    applied on top of :func:`analytic_cost_s`.  A family that was never
    measured inside a *measured* (GPU, dtype) group falls back to that
    group's geometric-mean factor (``group_default``) — pricing it at 1.0
    would systematically advantage exactly the candidates with no evidence,
    since the naive proxy usually errs in one direction per group.  Fully
    unmeasured groups fall back to 1.0, and the planner additionally gates
    on :meth:`covers` so they never switch ranking currency at all.
    ``support`` carries the record count each factor was fitted from, for
    reporting.
    """

    factors: dict[tuple[str, str, str], float] = field(default_factory=dict)
    support: dict[tuple[str, str, str], int] = field(default_factory=dict)
    group_default: dict[tuple[str, str], float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.factors)

    def factor(self, family: str, gpu_name: str, dtype_value: str) -> float:
        key = (gpu_name, dtype_value, family)
        if key in self.factors:
            return self.factors[key]
        return self.group_default.get((gpu_name, dtype_value), 1.0)

    def covers(self, gpu_name: str, dtype_value: str) -> bool:
        """Was anything at all measured for this (GPU, dtype) group?

        The planner stays on its uncalibrated byte ranking for groups with
        no measurements: switching currencies (bytes -> seconds) is itself a
        reordering, and an unmeasured group has no evidence backing it.
        """
        return any(
            gpu == gpu_name and dtype == dtype_value
            for gpu, dtype, _family in self.factors
        )

    def cost_s(
        self,
        family: str,
        gma_bytes: float,
        launches: int,
        gpu: GpuSpec,
        dtype_value: str,
    ) -> float:
        """Calibrated latency of one step — FusePlanner's DP currency."""
        return self.factor(family, gpu.name, dtype_value) * analytic_cost_s(
            gma_bytes, launches, gpu
        )

    def describe_rows(self) -> list[list[str]]:
        """Table rows (gpu, dtype, family, factor, records) in sorted order."""
        return [
            [gpu, dtype, family, f"{self.factors[k]:.3f}", str(self.support.get(k, 0))]
            for k in sorted(self.factors)
            for gpu, dtype, family in [k]
        ]


def fit_calibration(db: TuningDB, *, min_records: int = 1) -> Calibration:
    """Fit per-(GPU, dtype, family) factors from a tuning DB.

    The factor is the geometric mean of ``measured / estimated`` over the
    family's records (the right mean for a multiplicative correction: one
    2x-over and one 2x-under estimate cancel).  Model-level records are
    excluded — they aggregate every family and would double-count.  Groups
    with fewer than ``min_records`` records are left uncalibrated.
    Fitting is deterministic: records iterate in canonical DB order.
    """
    logs: dict[tuple[str, str, str], list[float]] = {}
    for rec in db:
        if rec.key.family == "model":
            continue
        if rec.est_cost_s <= 0 or rec.measured_cost_s <= 0:
            continue
        group = (rec.key.gpu, rec.key.dtype, rec.key.family)
        logs.setdefault(group, []).append(math.log(rec.ratio))
    factors: dict[tuple[str, str, str], float] = {}
    support: dict[tuple[str, str, str], int] = {}
    group_logs: dict[tuple[str, str], list[float]] = {}
    for group in sorted(logs):
        samples = logs[group]
        if len(samples) < min_records:
            continue
        factors[group] = math.exp(sum(samples) / len(samples))
        support[group] = len(samples)
        group_logs.setdefault(group[:2], []).extend(samples)
    group_default = {
        g: math.exp(sum(s) / len(s)) for g, s in sorted(group_logs.items())
    }
    return Calibration(
        factors=factors, support=support, group_default=group_default
    )
