"""Persistent tuning records: the on-disk memory of the measure→plan loop.

A :class:`TuningRecord` remembers, for one exactly-identified piece of work
(full layer/chain geometry + GPU + dtype + cost convention), what the
analytic cost model *predicted* and what the measurement harness *observed*
— plus the best tiling the measurement search found and how many candidates
that search evaluated.  :class:`TuningDB` is the keyed collection of best
records with a versioned JSON-lines serialization.

Design rules (all regression-tested):

* **Determinism** — ``save`` emits a canonical byte stream: header first,
  records sorted by their serialized form, keys sorted inside every object.
  ``load`` → ``save`` round-trips byte-identically, so a committed DB never
  produces diff noise.
* **Schema guards** — the header and every record carry the schema version.
  Corrupt lines, missing headers and future versions raise
  :class:`~repro.errors.TuneError` instead of silently degrading: a tuning
  DB feeds planner decisions, so a half-read DB is worse than none.
* **Full-geometry keys** — like the planner's own memo keys, records are
  keyed by everything the measurement depends on and nothing it doesn't
  (layer *names* are deliberately excluded; identical blocks share records).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import TuneError
from ..ir.layers import ConvSpec

__all__ = [
    "SCHEMA_VERSION",
    "TuningKey",
    "TuningRecord",
    "TuningDB",
    "spec_geometry",
    "chain_geometry",
]

#: Bump when the record layout changes; loaders reject anything newer.
SCHEMA_VERSION = 1

#: Magic string identifying a tuning DB header line.
_DB_KIND = "repro-tunedb"


def spec_geometry(spec: ConvSpec) -> tuple:
    """Geometry tuple of one conv layer — everything its cost depends on.

    Mirrors the planner's LBL memo key (kind, channels, spatial extent,
    kernel, stride, padding) minus the dtype, which lives on the
    :class:`TuningKey` itself.
    """
    return (
        spec.kind.short,
        spec.in_channels,
        spec.out_channels,
        spec.in_h,
        spec.in_w,
        spec.kernel,
        spec.stride,
        spec.padding,
    )


def chain_geometry(specs: Iterable[ConvSpec]) -> tuple:
    """Geometry tuple of a fused chain: one entry per stage."""
    return tuple(spec_geometry(s) for s in specs)


def _tuplify(obj):
    """Recursively turn JSON lists back into the tuples keys hash by."""
    if isinstance(obj, list):
        return tuple(_tuplify(x) for x in obj)
    return obj


@dataclass(frozen=True)
class TuningKey:
    """Identity of one tuning record.

    ``family`` names the kernel family the calibration pass groups by:
    ``lbl-dw`` / ``lbl-pw`` for direct kernels, ``fcm-<type>`` for pairwise
    fused modules, ``chain-<N>`` for longer chains, ``std`` / ``glue`` for
    the shared non-DW/PW steps, and ``model`` for whole-plan records (whose
    geometry is ``(model_name, max_chain)``).
    """

    family: str
    geometry: tuple
    gpu: str
    dtype: str
    convention: str

    def to_json(self) -> dict:
        return {
            "family": self.family,
            "geometry": list(self.geometry),
            "gpu": self.gpu,
            "dtype": self.dtype,
            "convention": self.convention,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TuningKey":
        try:
            return cls(
                family=str(obj["family"]),
                geometry=_tuplify(obj["geometry"]),
                gpu=str(obj["gpu"]),
                dtype=str(obj["dtype"]),
                convention=str(obj["convention"]),
            )
        except (KeyError, TypeError) as exc:
            raise TuneError(f"malformed tuning key {obj!r}: {exc}") from None


@dataclass(frozen=True)
class TuningRecord:
    """One measured data point plus the analytic prediction it calibrates.

    ``est_cost_s`` / ``measured_cost_s`` describe the *planner's chosen*
    tiling — the apples-to-apples pair calibration ratios are fitted from.
    ``tiling`` / ``tuned_cost_s`` describe the best tiling the measurement
    search found (identical to the planner's when the analytic model already
    ranked candidates correctly), and ``evaluated`` is the search budget
    actually spent.  ``engine`` records the measurement's provenance: the
    analytic counter backend (``"analytic"``, the default — also assumed for
    records written before the field existed) or, for kernel-in-the-loop
    measurements, which execution engine ran the simulated grid (``"fast"``
    / ``"reference"``).
    """

    key: TuningKey
    tiling: dict[str, int]
    est_cost_s: float
    measured_cost_s: float
    tuned_cost_s: float
    gma_bytes: int
    evaluated: int
    seed: int = 0
    engine: str = "analytic"

    @property
    def ratio(self) -> float:
        """Measured-over-estimated cost: the calibration signal."""
        return self.measured_cost_s / self.est_cost_s if self.est_cost_s else 1.0

    def to_json(self) -> dict:
        return {
            "v": SCHEMA_VERSION,
            "key": self.key.to_json(),
            "tiling": {k: int(v) for k, v in sorted(self.tiling.items())},
            "est_cost_s": float(self.est_cost_s),
            "measured_cost_s": float(self.measured_cost_s),
            "tuned_cost_s": float(self.tuned_cost_s),
            "gma_bytes": int(self.gma_bytes),
            "evaluated": int(self.evaluated),
            "seed": int(self.seed),
            "engine": str(self.engine),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TuningRecord":
        if not isinstance(obj, dict) or "v" not in obj:
            raise TuneError(f"tuning record without a schema version: {obj!r}")
        if obj["v"] != SCHEMA_VERSION:
            raise TuneError(
                f"tuning record schema v{obj['v']} is not v{SCHEMA_VERSION}; "
                "re-tune with this build (future records are never guessed at)"
            )
        try:
            return cls(
                key=TuningKey.from_json(obj["key"]),
                tiling={str(k): int(v) for k, v in obj["tiling"].items()},
                est_cost_s=float(obj["est_cost_s"]),
                measured_cost_s=float(obj["measured_cost_s"]),
                tuned_cost_s=float(obj["tuned_cost_s"]),
                gma_bytes=int(obj["gma_bytes"]),
                evaluated=int(obj["evaluated"]),
                seed=int(obj["seed"]),
                # Provenance field added after v1 records shipped: absent
                # means the analytic counter backend, so old DBs stay
                # readable without a schema bump.
                engine=str(obj.get("engine", "analytic")),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise TuneError(f"malformed tuning record: {exc}") from None


def _canonical(obj: dict) -> str:
    """One canonical JSON line: sorted keys, no gratuitous whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TuningDB:
    """Best-record-per-key store with deterministic JSONL (de)serialization."""

    def __init__(self) -> None:
        self._records: dict[TuningKey, TuningRecord] = {}
        #: canonical key strings, computed once per key at insert time —
        #: iteration order must not cost a full re-serialization per pass.
        self._key_str: dict[TuningKey, str] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: TuningKey) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[TuningRecord]:
        """Records in canonical (key-serialized) order — keys are unique, so
        this is the total order save/show/export all share."""
        return iter(
            self._records[k]
            for k in sorted(self._records, key=self._key_str.__getitem__)
        )

    def get(self, key: TuningKey) -> TuningRecord | None:
        return self._records.get(key)

    def add(self, record: TuningRecord) -> bool:
        """Insert ``record``, keeping the best (lowest tuned cost) per key.

        Returns True when the record was adopted as the key's best; ties
        keep the incumbent (and return False) so replayed merges are
        idempotent.
        """
        cur = self._records.get(record.key)
        if cur is None or record.tuned_cost_s < cur.tuned_cost_s:
            self._records[record.key] = record
            if record.key not in self._key_str:
                self._key_str[record.key] = _canonical(record.key.to_json())
            return True
        return False

    def merge(self, other: "TuningDB") -> int:
        """Fold another DB in (best record wins); returns records adopted."""
        return sum(self.add(r) for r in other)

    # ---- persistence --------------------------------------------------------
    def dumps(self) -> str:
        """Canonical serialization: header line + one sorted record per line."""
        lines = [_canonical({"kind": _DB_KIND, "schema": SCHEMA_VERSION})]
        lines.extend(_canonical(r.to_json()) for r in self)
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> Path:
        """Write the canonical form; byte-identical for equal contents."""
        path = Path(path)
        path.write_text(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str) -> "TuningDB":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise TuneError("empty tuning DB (missing header line)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TuneError(f"corrupt tuning DB header: {exc}") from None
        if not isinstance(header, dict) or header.get("kind") != _DB_KIND:
            raise TuneError(f"not a tuning DB (header {lines[0]!r})")
        if header.get("schema") != SCHEMA_VERSION:
            raise TuneError(
                f"tuning DB schema v{header.get('schema')!r} is not "
                f"v{SCHEMA_VERSION}; refusing to guess at a future layout"
            )
        db = cls()
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TuneError(f"corrupt tuning record on line {lineno}: {exc}") from None
            db.add(TuningRecord.from_json(obj))
        return db

    @classmethod
    def load(cls, path: str | Path) -> "TuningDB":
        path = Path(path)
        if not path.exists():
            raise TuneError(f"tuning DB {path} does not exist")
        return cls.loads(path.read_text())
