"""Batched multi-model serving: plan caching, micro-batching, load replay.

The serving subsystem turns the one-shot reproduction pipeline (plan ->
session -> report) into a request-serving layer:

* :mod:`repro.serve.cache` — LRU :class:`PlanCache` memoizing FusePlanner
  plans + materialized weights per (model, dtype, GPU, convention), with
  :meth:`PlanCache.warm_start` preloading plans from a
  :class:`repro.tune.records.TuningDB` at boot;
* :mod:`repro.serve.server` — :class:`ModelServer` with synchronous batched
  submits and a micro-batching request queue (flush on ``max_batch`` or
  deadline);
* :mod:`repro.serve.fleet` — multi-GPU :class:`Fleet` of per-GPU workers
  behind a :class:`FleetScheduler` (plan-affinity or round-robin routing);
* :mod:`repro.serve.loadgen` — deterministic arrival streams and the
  discrete-event :func:`replay` / :func:`fleet_replay` harnesses reporting
  img/s and nearest-rank p50/p99 latency.
"""

from .cache import CachedPlan, CacheStats, PlanCache, PlanKey
from .fleet import (
    Fleet,
    FleetScheduler,
    FleetStats,
    FleetWorker,
    RouteDecision,
    WorkerStats,
)
from .loadgen import (
    FakeClock,
    FleetStreamReport,
    StreamReport,
    arrival_times,
    fleet_replay,
    percentile,
    replay,
)
from .server import InferenceRequest, InferenceResult, ModelServer, ServerStats

__all__ = [
    "CachedPlan",
    "CacheStats",
    "PlanCache",
    "PlanKey",
    "Fleet",
    "FleetScheduler",
    "FleetStats",
    "FleetWorker",
    "RouteDecision",
    "WorkerStats",
    "FakeClock",
    "FleetStreamReport",
    "StreamReport",
    "arrival_times",
    "fleet_replay",
    "percentile",
    "replay",
    "InferenceRequest",
    "InferenceResult",
    "ModelServer",
    "ServerStats",
]
