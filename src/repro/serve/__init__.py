"""Batched multi-model serving: plan caching, micro-batching, load replay.

The serving subsystem turns the one-shot reproduction pipeline (plan ->
session -> report) into a request-serving layer:

* :mod:`repro.serve.cache` — LRU :class:`PlanCache` memoizing FusePlanner
  plans + materialized weights per (model, dtype, GPU, convention), with
  :meth:`PlanCache.warm_start` preloading plans from a
  :class:`repro.tune.records.TuningDB` at boot;
* :mod:`repro.serve.server` — :class:`ModelServer` with synchronous batched
  submits and a micro-batching request queue (flush on ``max_batch``,
  formation deadline, or a queued request's SLO slack running out);
* :mod:`repro.serve.admission` — SLO-aware :class:`AdmissionController`
  that sheds or degrades (to the INT8 plan variant) requests whose projected
  latency would bust their deadline;
* :mod:`repro.serve.fleet` — multi-GPU :class:`Fleet` of per-GPU workers
  behind a :class:`FleetScheduler` (plan-affinity or round-robin routing),
  elastic via :meth:`Fleet.add_worker` / :meth:`Fleet.remove_worker`;
* :mod:`repro.serve.autoscale` — reactive :class:`Autoscaler` resizing the
  fleet from its backlog signal (and from lost serving capacity under
  faults), with a replayable decision trace;
* :mod:`repro.serve.faults` — deterministic chaos: JSONL-replayable
  :class:`FaultPlan` (crash / slowdown / transient / recover), per-worker
  health state machine and :class:`CircuitBreaker`, :class:`RetryPolicy`
  with budgeted backoff and p99-based hedging, all driven on the shared
  clock by a :class:`FaultInjector`;
* :mod:`repro.serve.loadgen` — deterministic arrival streams (uniform,
  Poisson, heavy-tailed lognormal/Pareto, diurnal), JSONL trace files, and
  the discrete-event :func:`replay` / :func:`fleet_replay` harnesses
  reporting img/s, nearest-rank p50/p99 latency, and SLO attainment
  (:func:`attainment_curve` sweeps it against offered load).
"""

from .admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
    admission_controller,
)
from .autoscale import Autoscaler, AutoscalePolicy, ScaleEvent
from .cache import CachedPlan, CacheStats, PlanCache, PlanKey
from .faults import (
    FAULT_KINDS,
    WORKER_HEALTH,
    CircuitBreaker,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultStats,
    RetryPolicy,
)
from .fleet import (
    Fleet,
    FleetScheduler,
    FleetStats,
    FleetWorker,
    RouteDecision,
    WorkerStats,
)
from .loadgen import (
    ARRIVAL_KINDS,
    AttainmentPoint,
    FakeClock,
    FleetStreamReport,
    StreamReport,
    TraceRequest,
    WorkerSloStats,
    arrival_times,
    attainment_curve,
    capacity_rps,
    diurnal_arrival_times,
    fleet_replay,
    generate_arrivals,
    hedge_delay,
    lognormal_arrival_times,
    pareto_arrival_times,
    percentile,
    read_trace,
    replay,
    write_trace,
)
from .server import InferenceRequest, InferenceResult, ModelServer, ServerStats

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "admission_controller",
    "Autoscaler",
    "AutoscalePolicy",
    "ScaleEvent",
    "CachedPlan",
    "CacheStats",
    "PlanCache",
    "PlanKey",
    "FAULT_KINDS",
    "WORKER_HEALTH",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "RetryPolicy",
    "Fleet",
    "FleetScheduler",
    "FleetStats",
    "FleetWorker",
    "RouteDecision",
    "WorkerStats",
    "ARRIVAL_KINDS",
    "AttainmentPoint",
    "FakeClock",
    "FleetStreamReport",
    "StreamReport",
    "TraceRequest",
    "WorkerSloStats",
    "arrival_times",
    "attainment_curve",
    "capacity_rps",
    "diurnal_arrival_times",
    "fleet_replay",
    "generate_arrivals",
    "hedge_delay",
    "lognormal_arrival_times",
    "pareto_arrival_times",
    "percentile",
    "read_trace",
    "replay",
    "write_trace",
    "InferenceRequest",
    "InferenceResult",
    "ModelServer",
    "ServerStats",
]
