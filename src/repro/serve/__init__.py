"""Batched multi-model serving: plan caching, micro-batching, load replay.

The serving subsystem turns the one-shot reproduction pipeline (plan ->
session -> report) into a request-serving layer:

* :mod:`repro.serve.cache` — LRU :class:`PlanCache` memoizing FusePlanner
  plans + materialized weights per (model, dtype, GPU, convention);
* :mod:`repro.serve.server` — :class:`ModelServer` with synchronous batched
  submits and a micro-batching request queue (flush on ``max_batch`` or
  deadline);
* :mod:`repro.serve.loadgen` — deterministic arrival streams and the
  discrete-event :func:`replay` harness reporting img/s and p50/p99 latency.
"""

from .cache import CachedPlan, CacheStats, PlanCache, PlanKey
from .loadgen import FakeClock, StreamReport, arrival_times, replay
from .server import InferenceRequest, InferenceResult, ModelServer, ServerStats

__all__ = [
    "CachedPlan",
    "CacheStats",
    "PlanCache",
    "PlanKey",
    "FakeClock",
    "StreamReport",
    "arrival_times",
    "replay",
    "InferenceRequest",
    "InferenceResult",
    "ModelServer",
    "ServerStats",
]
