"""Synthetic request streams and a discrete-event replay harness.

The serving benchmarks need latency *distributions*, not just batch
throughput: a request's latency is its queue wait (micro-batch formation +
device busy time) plus its batch's simulated execution.  :func:`replay`
drives a :class:`~repro.serve.server.ModelServer` with a deterministic
arrival stream on a :class:`FakeClock`, advancing simulated time by each
flushed batch's execution latency so device occupancy back-pressures later
arrivals — a small discrete-event simulation in the spirit of serving-system
load generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dtypes import DType
from ..errors import PlanError
from ..gpu.specs import GpuSpec
from .server import InferenceResult, ModelServer

__all__ = ["FakeClock", "StreamReport", "arrival_times", "replay"]


class FakeClock:
    """Manually-advanced monotonic clock (the server's clock/sleep pair)."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise PlanError(f"cannot advance a clock by {dt}")
        self.t += dt

    def sleep(self, dt: float) -> None:
        self.advance(dt)


@dataclass
class StreamReport:
    """Result of replaying one request stream against a server."""

    model: str
    gpu: str
    dtype: str
    n_requests: int
    max_batch: int
    rate_rps: float
    duration_s: float
    throughput_img_s: float
    latency_p50_s: float
    latency_p99_s: float
    mean_batch: float
    energy_per_image_j: float
    planner_invocations: int
    latencies_s: list[float] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"{self.model} on {self.gpu} ({self.dtype}): {self.n_requests} reqs "
            f"@ {self.rate_rps:g} rps, max_batch={self.max_batch} -> "
            f"{self.throughput_img_s:.0f} img/s, "
            f"p50 {self.latency_p50_s * 1e3:.3f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.3f} ms, "
            f"mean batch {self.mean_batch:.1f}, "
            f"{self.energy_per_image_j * 1e3:.3f} mJ/img, "
            f"{self.planner_invocations} planning pass(es)"
        )


def arrival_times(n: int, rate_rps: float, *, poisson: bool = False, seed: int = 0) -> list[float]:
    """Arrival instants for ``n`` requests at ``rate_rps``.

    Uniform spacing by default (deterministic benches); ``poisson=True``
    draws exponential inter-arrival gaps from a seeded generator.
    """
    if n < 1 or rate_rps <= 0:
        raise PlanError(f"need n >= 1 and rate > 0, got n={n}, rate={rate_rps}")
    if not poisson:
        return [i / rate_rps for i in range(n)]
    gaps = np.random.default_rng(seed).exponential(1.0 / rate_rps, size=n)
    return list(np.cumsum(gaps) - gaps[0])


def replay(
    gpu: GpuSpec,
    model: str,
    n_requests: int,
    rate_rps: float,
    dtype: DType = DType.FP32,
    *,
    max_batch: int = 8,
    max_delay_s: float = 2e-3,
    poisson: bool = False,
    max_chain: int = 2,
    seed: int = 0,
    server: ModelServer | None = None,
) -> StreamReport:
    """Replay a synthetic stream and report throughput + latency percentiles.

    Builds a fresh :class:`ModelServer` on a :class:`FakeClock` (pass
    ``server`` to reuse one — it must have been constructed with a FakeClock
    as both ``clock`` and ``sleep``).  Requests are analytic (counters-only),
    so full-size models replay in milliseconds.
    """
    clock = FakeClock()
    if server is None:
        server = ModelServer(
            gpu,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            max_chain=max_chain,
            clock=clock,
            sleep=clock.sleep,
        )
    elif isinstance(server.clock, FakeClock):
        clock = server.clock
    else:
        raise PlanError("replay needs a server driven by a FakeClock")

    arrivals = arrival_times(n_requests, rate_rps, poisson=poisson, seed=seed)
    results: list[InferenceResult] = []
    #: device-busy delay between a request's *arrival* and its enqueue (the
    #: clock may already sit past the arrival instant after executing earlier
    #: batches); the server's wait_s starts at enqueue, so this is added back
    #: when reporting latency.
    backlog_wait: dict[int, float] = {}

    def flush_due() -> None:
        flushed = server.step()
        if flushed:
            results.extend(flushed)
            # Device occupancy: simulated execution takes simulated time.
            for seq in sorted({r.batch_seq for r in flushed}):
                clock.advance(next(r.exec_s for r in flushed if r.batch_seq == seq))

    for t in arrivals:
        # Any partial batch whose deadline expires before this arrival
        # flushes at its deadline, not lazily at the next enqueue.
        while True:
            due = server.next_deadline()
            if due is None or due > t:
                break
            clock.t = max(clock.t, due)
            before = len(results)
            flush_due()
            if len(results) == before:
                break
        clock.t = max(clock.t, t)
        rid = server.enqueue(model, dtype=dtype)
        backlog_wait[rid] = clock.t - t
        flush_due()

    while server.pending():
        due = server.next_deadline()
        if due is not None:
            clock.t = max(clock.t, due)
        flush_due()

    latencies = sorted(r.latency_s + backlog_wait[r.request_id] for r in results)
    duration = max(clock.t - arrivals[0], 1e-12)
    return StreamReport(
        model=model,
        gpu=gpu.name,
        dtype=dtype.value,
        n_requests=n_requests,
        max_batch=server.max_batch,
        rate_rps=rate_rps,
        duration_s=duration,
        throughput_img_s=n_requests / duration,
        latency_p50_s=float(np.percentile(latencies, 50)),
        latency_p99_s=float(np.percentile(latencies, 99)),
        mean_batch=server.stats.mean_batch,
        energy_per_image_j=float(np.mean([r.energy_per_image_j for r in results])),
        planner_invocations=server.cache.stats.planner_invocations,
        latencies_s=latencies,
    )
