"""Synthetic request streams, trace files, and a discrete-event replay harness.

The serving benchmarks need latency *distributions*, not just batch
throughput: a request's latency is its queue wait (micro-batch formation +
device busy time) plus its batch's simulated execution.  :func:`replay`
drives a :class:`~repro.serve.server.ModelServer` with a deterministic
arrival stream on a :class:`FakeClock`, advancing simulated time by each
flushed batch's execution latency so device occupancy back-pressures later
arrivals — a small discrete-event simulation in the spirit of serving-system
load generators.

Beyond the classic uniform/Poisson streams, the SLO layer adds:

* **heavy-tailed arrivals** — :func:`lognormal_arrival_times` /
  :func:`pareto_arrival_times` draw inter-arrival gaps whose mean is
  ``1/rate`` but whose tail produces the bursts that actually stress
  admission control;
* **diurnal arrivals** — :func:`diurnal_arrival_times` inverts the
  cumulative intensity of a sinusoidally-modulated Poisson process, so the
  offered rate swings around its mean like day/night traffic;
* **trace files** — :class:`TraceRequest` + :func:`write_trace` /
  :func:`read_trace`: a sorted JSONL format (one request per line, sorted
  keys) whose read→write round trip is byte-identical;
* **SLO accounting** — per-request deadlines (``slo_s``), admission control
  (:mod:`repro.serve.admission`), reactive autoscaling
  (:mod:`repro.serve.autoscale`), and attainment/shed/degraded/late counts
  in :class:`StreamReport` / :class:`FleetStreamReport`, swept over offered
  load by :func:`attainment_curve`.
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.dtypes import DType
from ..errors import PlanError
from ..gpu.specs import GpuSpec
from ..obs import resolve_metrics, resolve_tracer
from .admission import AdmissionController, admission_controller
from .autoscale import AutoscalePolicy, ScaleEvent
from .cache import PlanCache
from .faults import FaultInjector, FaultPlan, FaultStats, RetryPolicy
from .fleet import Fleet, FleetWorker, RouteDecision, WorkerStats
from .server import InferenceResult, ModelServer

__all__ = [
    "ARRIVAL_KINDS",
    "FakeClock",
    "StreamReport",
    "FleetStreamReport",
    "WorkerSloStats",
    "TraceRequest",
    "AttainmentPoint",
    "arrival_times",
    "lognormal_arrival_times",
    "pareto_arrival_times",
    "diurnal_arrival_times",
    "generate_arrivals",
    "write_trace",
    "read_trace",
    "percentile",
    "hedge_delay",
    "capacity_rps",
    "attainment_curve",
    "replay",
    "fleet_replay",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank-above percentile (numpy ``method="higher"``).

    The serving convention for every reported p50/p99: the returned value is
    always an *observed* latency at or above the requested rank.  Linear
    interpolation (numpy's default) under-reports the tail on small result
    sets — with 10 samples it places p99 between the 9th and 10th order
    statistics, below the worst latency any request actually saw.

    An empty sample set has no observable rank: raises :class:`ValueError`
    (a shed-everything overload run serves zero requests — the replay
    harnesses report NaN percentiles for that case rather than calling this).
    """
    if len(samples) == 0:
        raise ValueError(
            "percentile of an empty sample set is undefined (no requests "
            "were served; report NaN instead)"
        )
    return float(np.percentile(samples, q, method="higher"))


def _percentile_or_nan(samples: Sequence[float], q: float) -> float:
    return percentile(samples, q) if len(samples) else float("nan")


def hedge_delay(
    samples: Sequence[float], q: float = 99.0, *, multiplier: float = 1.0
) -> float:
    """Hedge-launch delay from observed latencies: ``multiplier`` times the
    nearest-rank-above ``q``-th percentile (the classic p99-based hedging
    rule — duplicate only the slowest ~1% of requests).

    Reuses :func:`percentile`, the tree's one nearest-rank implementation,
    so a hedge tuned from a report's ``latencies_s`` agrees bit-for-bit
    with that report's own p99.  Feed the result to
    ``RetryPolicy(hedge_delay_s=...)`` or ``fleet --hedge-ms``.
    """
    if multiplier <= 0:
        raise PlanError(f"hedge multiplier must be > 0, got {multiplier}")
    return multiplier * percentile(samples, q)


class FakeClock:
    """Manually-advanced monotonic clock (the server's clock/sleep pair)."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise PlanError(f"cannot advance a clock by {dt}")
        self.t += dt

    def sleep(self, dt: float) -> None:
        self.advance(dt)


# ---- arrival generators -------------------------------------------------------

ARRIVAL_KINDS = ("uniform", "poisson", "lognormal", "pareto", "diurnal")


def _validate_stream(n: int, rate_rps: float) -> None:
    if n < 1 or rate_rps <= 0:
        raise PlanError(f"need n >= 1 and rate > 0, got n={n}, rate={rate_rps}")


def arrival_times(n: int, rate_rps: float, *, poisson: bool = False, seed: int = 0) -> list[float]:
    """Arrival instants for ``n`` requests at ``rate_rps``.

    Uniform spacing by default (deterministic benches); ``poisson=True``
    draws exponential inter-arrival gaps from a seeded generator.
    """
    _validate_stream(n, rate_rps)
    if not poisson:
        return [i / rate_rps for i in range(n)]
    gaps = np.random.default_rng(seed).exponential(1.0 / rate_rps, size=n)
    return list(np.cumsum(gaps) - gaps[0])


def lognormal_arrival_times(
    n: int, rate_rps: float, *, sigma: float = 1.0, seed: int = 0
) -> list[float]:
    """Heavy-tailed arrivals: lognormal inter-arrival gaps with mean
    ``1/rate_rps`` and shape ``sigma`` (larger -> burstier; 0 reduces to
    uniform spacing)."""
    _validate_stream(n, rate_rps)
    if sigma < 0:
        raise PlanError(f"sigma must be >= 0, got {sigma}")
    mu = math.log(1.0 / rate_rps) - sigma * sigma / 2.0
    gaps = np.random.default_rng(seed).lognormal(mu, sigma, size=n)
    return list(np.cumsum(gaps) - gaps[0])


def pareto_arrival_times(
    n: int, rate_rps: float, *, alpha: float = 2.5, seed: int = 0
) -> list[float]:
    """Heavy-tailed arrivals: Pareto inter-arrival gaps with tail index
    ``alpha`` (> 1 so the mean exists) scaled so the mean gap is
    ``1/rate_rps``.  Small ``alpha`` -> rare huge gaps between dense bursts."""
    _validate_stream(n, rate_rps)
    if alpha <= 1:
        raise PlanError(f"pareto tail index must be > 1, got {alpha}")
    x_m = (alpha - 1.0) / (alpha * rate_rps)  # mean = alpha*x_m/(alpha-1)
    gaps = x_m * (1.0 + np.random.default_rng(seed).pareto(alpha, size=n))
    return list(np.cumsum(gaps) - gaps[0])


def diurnal_arrival_times(
    n: int,
    rate_rps: float,
    *,
    period_s: float = 1.0,
    amplitude: float = 0.5,
    seed: int = 0,
) -> list[float]:
    """Diurnal arrivals: a non-homogeneous Poisson process whose intensity
    swings sinusoidally around ``rate_rps``::

        lambda(t) = rate_rps * (1 + amplitude * sin(2*pi*t / period_s))

    The mean of the modulation over a full period is 1, so the long-run mean
    rate is ``rate_rps`` (the property test pins this within tolerance).
    Arrivals are produced by time-rescaling: unit-exponential marks are
    mapped through the inverse cumulative intensity by bisection, which keeps
    the stream exactly reproducible per seed.
    """
    _validate_stream(n, rate_rps)
    if not 0 <= amplitude < 1:
        raise PlanError(f"amplitude must be in [0, 1), got {amplitude}")
    if period_s <= 0:
        raise PlanError(f"period_s must be > 0, got {period_s}")
    marks = np.cumsum(np.random.default_rng(seed).exponential(1.0, size=n))

    two_pi = 2.0 * math.pi

    def cumulative(t: float) -> float:
        # integral of lambda from 0 to t
        return rate_rps * (
            t + amplitude * period_s / two_pi * (1.0 - math.cos(two_pi * t / period_s))
        )

    times: list[float] = []
    lo = 0.0
    for mark in marks:
        # lambda(t) >= rate*(1 - amplitude) > 0, so this bracket always holds.
        hi = mark / (rate_rps * (1.0 - amplitude)) + period_s
        lo_i = lo
        for _ in range(80):  # ~1e-24 relative: bisection converges fully
            mid = 0.5 * (lo_i + hi)
            if cumulative(mid) < mark:
                lo_i = mid
            else:
                hi = mid
        lo = 0.5 * (lo_i + hi)
        times.append(lo)
    return times


def generate_arrivals(
    kind: str,
    n: int,
    rate_rps: float,
    *,
    seed: int = 0,
    sigma: float = 1.0,
    alpha: float = 2.5,
    period_s: float = 1.0,
    amplitude: float = 0.5,
) -> list[float]:
    """Dispatch an arrival stream by kind (one of :data:`ARRIVAL_KINDS`)."""
    if kind == "uniform":
        return arrival_times(n, rate_rps, poisson=False, seed=seed)
    if kind == "poisson":
        return arrival_times(n, rate_rps, poisson=True, seed=seed)
    if kind == "lognormal":
        return lognormal_arrival_times(n, rate_rps, sigma=sigma, seed=seed)
    if kind == "pareto":
        return pareto_arrival_times(n, rate_rps, alpha=alpha, seed=seed)
    if kind == "diurnal":
        return diurnal_arrival_times(
            n, rate_rps, period_s=period_s, amplitude=amplitude, seed=seed
        )
    raise PlanError(f"unknown arrival kind {kind!r}; choose from {ARRIVAL_KINDS}")


# ---- trace files --------------------------------------------------------------


@dataclass(frozen=True)
class TraceRequest:
    """One request of a replayable trace: arrival instant, target model,
    precision, optional SLO and priority."""

    t: float
    model: str
    dtype: str = "fp32"
    slo_s: float | None = None
    priority: int = 0


def _validate_trace(requests: Sequence[TraceRequest]) -> None:
    if not requests:
        raise PlanError("a trace needs at least one request")
    last = 0.0
    for i, req in enumerate(requests):
        if req.t < 0:
            raise PlanError(f"trace entry {i}: negative arrival time {req.t}")
        if req.t < last:
            raise PlanError(
                f"trace entry {i}: arrival times must be non-decreasing "
                f"({req.t} after {last})"
            )
        if req.slo_s is not None and req.slo_s <= 0:
            raise PlanError(f"trace entry {i}: slo_s must be > 0, got {req.slo_s}")
        last = req.t


def write_trace(path: "str | Path", requests: Sequence[TraceRequest]) -> Path:
    """Write a trace as sorted-key JSONL (one request per line).

    The format is canonical — fixed key set, sorted keys, compact separators,
    shortest-round-trip floats — so ``write_trace(read_trace(p))`` reproduces
    the file byte for byte.
    """
    _validate_trace(requests)
    path = Path(path)
    lines = [
        json.dumps(
            {
                "t": r.t,
                "model": r.model,
                "dtype": r.dtype,
                "slo_s": r.slo_s,
                "priority": r.priority,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        for r in requests
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace(path: "str | Path") -> list[TraceRequest]:
    """Read a JSONL trace written by :func:`write_trace` (validated: sorted,
    non-negative arrivals, positive SLOs)."""
    requests: list[TraceRequest] = []
    for i, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            requests.append(
                TraceRequest(
                    t=float(obj["t"]),
                    model=str(obj["model"]),
                    dtype=str(obj.get("dtype", "fp32")),
                    slo_s=None if obj.get("slo_s") is None else float(obj["slo_s"]),
                    priority=int(obj.get("priority", 0)),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise PlanError(f"{path}:{i + 1}: malformed trace line: {exc}") from exc
    _validate_trace(requests)
    return requests


# ---- reports ------------------------------------------------------------------


@dataclass
class StreamReport:
    """Result of replaying one request stream against a server.

    ``latency_p50_s``/``latency_p99_s`` follow the nearest-rank-above
    convention (see :func:`percentile`) over *served* requests; both are NaN
    when everything was shed.  ``n_requests`` counts *offered* requests;
    ``shed`` of them were rejected by admission, the rest were served
    (``degraded`` of those at the fallback precision, ``late`` past their
    SLO, ``attained`` within it).
    """

    model: str
    gpu: str
    dtype: str
    n_requests: int
    max_batch: int
    rate_rps: float
    duration_s: float
    throughput_img_s: float
    latency_p50_s: float
    latency_p99_s: float
    mean_batch: float
    energy_per_image_j: float
    planner_invocations: int
    latencies_s: list[float] = field(default_factory=list)
    slo_s: float | None = None
    admission: str | None = None
    shed: int = 0
    degraded: int = 0
    late: int = 0
    attained: int = 0

    @property
    def served(self) -> int:
        return self.n_requests - self.shed

    @property
    def attainment(self) -> float | None:
        """Fraction of *offered* requests served within their SLO (shed
        requests count against attainment); None when no SLO was in play."""
        if self.slo_s is None:
            return None
        return self.attained / self.n_requests if self.n_requests else 0.0

    def describe(self) -> str:
        line = (
            f"{self.model} on {self.gpu} ({self.dtype}): {self.n_requests} reqs "
            f"@ {self.rate_rps:g} rps, max_batch={self.max_batch} -> "
            f"{self.throughput_img_s:.0f} img/s, "
            f"p50 {self.latency_p50_s * 1e3:.3f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.3f} ms, "
            f"mean batch {self.mean_batch:.1f}, "
            f"{self.energy_per_image_j * 1e3:.3f} mJ/img, "
            f"{self.planner_invocations} planning pass(es)"
        )
        if self.slo_s is not None:
            line += (
                f"\n  SLO {self.slo_s * 1e3:g} ms"
                + (f" [admission={self.admission}]" if self.admission else "")
                + f": attainment {self.attainment:.1%} "
                f"({self.attained} attained, {self.late} late, "
                f"{self.shed} shed, {self.degraded} degraded)"
            )
        return line


# ---- single-server replay -----------------------------------------------------


def _stream_entries(
    trace: Sequence[TraceRequest] | None,
    model: str | None,
    n_requests: int | None,
    rate_rps: float | None,
    dtype: DType,
    slo_s: float | None,
    arrival: str | None,
    poisson: bool,
    seed: int,
) -> tuple[list[TraceRequest], str, float]:
    """Normalize a replay's inputs into (entries, model label, offered rate)."""
    if trace is not None:
        entries = list(trace)
        _validate_trace(entries)
        label = ",".join(dict.fromkeys(e.model for e in entries))
        span = entries[-1].t - entries[0].t
        rate = (len(entries) - 1) / span if span > 0 else float(len(entries))
        return entries, label, rate
    if model is None or n_requests is None or rate_rps is None:
        raise PlanError("replay needs either a trace or (model, n_requests, rate_rps)")
    kind = arrival if arrival is not None else ("poisson" if poisson else "uniform")
    times = generate_arrivals(kind, n_requests, rate_rps, seed=seed)
    entries = [
        TraceRequest(t=t, model=model, dtype=dtype.value, slo_s=slo_s)
        for t in times
    ]
    return entries, model, rate_rps


def replay(
    gpu: GpuSpec,
    model: str | None = None,
    n_requests: int | None = None,
    rate_rps: float | None = None,
    dtype: DType = DType.FP32,
    *,
    max_batch: int = 8,
    max_delay_s: float = 2e-3,
    poisson: bool = False,
    arrival: str | None = None,
    trace: Sequence[TraceRequest] | None = None,
    slo_s: float | None = None,
    admission: "str | AdmissionController | None" = None,
    max_chain: int = 2,
    seed: int = 0,
    server: ModelServer | None = None,
    db=None,
    calibration=None,
    engine: str | None = None,
    tracer=None,
    metrics=None,
) -> StreamReport:
    """Replay a synthetic stream and report throughput + latency percentiles.

    Builds a fresh :class:`ModelServer` on a :class:`FakeClock` (pass
    ``server`` to reuse one — it must have been constructed with a FakeClock
    as both ``clock`` and ``sleep``).  Requests are analytic (counters-only),
    so full-size models replay in milliseconds; ``engine`` is threaded to the
    server for streams that carry real tensors.

    ``arrival`` picks a generator from :data:`ARRIVAL_KINDS` (overriding the
    legacy ``poisson`` flag); ``trace`` replays explicit
    :class:`TraceRequest` entries instead (``model``/``n_requests``/
    ``rate_rps`` are then ignored).  ``slo_s`` stamps a deadline on every
    generated request (a trace entry's own ``slo_s`` wins), which arms the
    server's deadline-aware flushing; ``admission`` (a policy name or an
    :class:`~repro.serve.admission.AdmissionController`) sheds or degrades
    requests whose projected latency would bust their SLO.

    ``tracer``/``metrics`` (a :class:`repro.obs.Tracer` /
    :class:`repro.obs.MetricsRegistry`) capture the replay as a
    deterministic timeline: the tracer is bound to the replay's FakeClock,
    so two identical invocations export byte-identical traces.  When
    reusing a ``server``, pass the sinks at its construction instead — the
    server's own sinks always win.
    """
    clock = FakeClock()
    if server is None:
        server = ModelServer(
            gpu,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            max_chain=max_chain,
            clock=clock,
            sleep=clock.sleep,
            db=db,
            calibration=calibration,
            engine=engine,
            tracer=tracer,
            metrics=metrics,
        )
    elif isinstance(server.clock, FakeClock):
        clock = server.clock
    else:
        raise PlanError("replay needs a server driven by a FakeClock")
    tracer = server.tracer
    metrics = server.metrics
    if tracer.enabled:
        # Span/instant timestamps come from the replay's simulated clock,
        # which is what makes the exported trace byte-identical across runs.
        tracer.clock = clock

    entries, model_label, offered_rate = _stream_entries(
        trace, model, n_requests, rate_rps, dtype, slo_s, arrival, poisson, seed
    )
    controller = admission_controller(admission)
    results: list[InferenceResult] = []
    #: device-busy delay between a request's *arrival* and its enqueue (the
    #: clock may already sit past the arrival instant after executing earlier
    #: batches); the server's wait_s starts at enqueue, so this is added back
    #: when reporting latency.
    backlog_wait: dict[int, float] = {}
    slo_of: dict[int, float | None] = {}
    shed = degraded = 0

    def flush_due() -> None:
        flushed = server.step()
        if flushed:
            results.extend(flushed)
            # Device occupancy: simulated execution takes simulated time.
            for seq in sorted({r.batch_seq for r in flushed}):
                clock.advance(next(r.exec_s for r in flushed if r.batch_seq == seq))

    for entry in entries:
        t = entry.t
        # Any partial batch whose deadline expires before this arrival
        # flushes at its deadline, not lazily at the next enqueue.
        while True:
            due = server.next_deadline()
            if due is None or due > t:
                break
            clock.t = max(clock.t, due)
            before = len(results)
            flush_due()
            if len(results) == before:
                break
        clock.t = max(clock.t, t)
        req_dtype = DType(entry.dtype)
        req_slo = entry.slo_s if entry.slo_s is not None else slo_s
        if controller is not None and req_slo is not None:
            # The clock running ahead of this arrival is device busy time the
            # request has *already* waited out — SLO budget spent before the
            # admission decision is even made.
            decision = controller.decide(
                server,
                entry.model,
                req_dtype,
                req_slo,
                occupancy_s=max(0.0, clock.t - t),
            )
            if decision.action in ("shed", "degrade") and (
                tracer.enabled or metrics.enabled
            ):
                tracer.instant(
                    f"admission.{decision.action}",
                    t_s=clock.t,
                    pid=server.lane,
                    model=entry.model,
                    slo_s=req_slo,
                )
                metrics.counter(
                    "repro_admission_total", help="Admission verdicts by action"
                ).inc(action=decision.action, worker=server.lane)
            if decision.action == "shed":
                shed += 1
                continue
            if decision.action == "degrade":
                req_dtype = controller.degrade_dtype
                degraded += 1
        rid = server.enqueue(
            entry.model, dtype=req_dtype, slo_s=req_slo, priority=entry.priority
        )
        backlog_wait[rid] = clock.t - t
        slo_of[rid] = req_slo
        flush_due()

    while server.pending():
        due = server.next_deadline()
        if due is not None:
            clock.t = max(clock.t, due)
        flush_due()

    latencies = sorted(r.latency_s + backlog_wait[r.request_id] for r in results)
    attained = late = 0
    slo_in_play = slo_s is not None or any(e.slo_s is not None for e in entries)
    if slo_in_play:
        for r in results:
            want = slo_of[r.request_id]
            if want is None:
                # best-effort requests in a mixed trace have no deadline to
                # miss: served counts as attained.
                attained += 1
            elif r.latency_s + backlog_wait[r.request_id] <= want:
                attained += 1
            else:
                late += 1
    duration = max(clock.t - entries[0].t, 1e-12)
    first_slo = next((e.slo_s for e in entries if e.slo_s is not None), None)
    return StreamReport(
        model=model_label,
        gpu=gpu.name,
        dtype=dtype.value,
        n_requests=len(entries),
        max_batch=server.max_batch,
        rate_rps=offered_rate,
        duration_s=duration,
        throughput_img_s=len(results) / duration,
        latency_p50_s=_percentile_or_nan(latencies, 50),
        latency_p99_s=_percentile_or_nan(latencies, 99),
        mean_batch=server.stats.mean_batch,
        energy_per_image_j=(
            float(np.mean([r.energy_per_image_j for r in results]))
            if results
            else float("nan")
        ),
        planner_invocations=server.cache.stats.planner_invocations,
        latencies_s=latencies,
        slo_s=slo_s if slo_s is not None else first_slo,
        admission=controller.policy if controller is not None else None,
        shed=shed,
        degraded=degraded,
        late=late,
        attained=attained,
    )


# ---- capacity + attainment sweeps ---------------------------------------------


def capacity_rps(
    gpu: GpuSpec,
    model: str,
    dtype: DType = DType.FP32,
    *,
    max_batch: int = 8,
    max_chain: int = 2,
    convention: str = "paper",
    calibration=None,
) -> float:
    """The server's analytic saturation throughput (img/s at full batches):
    the natural ``1x`` anchor for offered-load sweeps."""
    entry = PlanCache(calibration=calibration).get(
        model, dtype, gpu, convention, max_chain
    )
    report = entry.analytic_report(max_batch)
    return max_batch / report.latency_s


@dataclass(frozen=True)
class AttainmentPoint:
    """One offered-load point of an SLO attainment curve."""

    overload: float  # offered load as a multiple of capacity_rps
    rate_rps: float
    offered: int
    served: int
    attained: int
    shed: int
    degraded: int
    late: int
    p99_s: float  # NaN when everything was shed

    @property
    def attainment(self) -> float:
        return self.attained / self.offered if self.offered else 0.0


def attainment_curve(
    gpu: GpuSpec,
    model: str,
    *,
    slo_s: float,
    overloads: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    n_requests: int = 64,
    dtype: DType = DType.FP32,
    admission: str | None = "degrade",
    arrival: str = "lognormal",
    max_batch: int = 8,
    max_delay_s: float = 2e-3,
    max_chain: int = 2,
    seed: int = 0,
) -> list[AttainmentPoint]:
    """SLO attainment vs offered load: replay the same seeded stream shape at
    each multiple of the server's analytic capacity and report the
    attained/shed/degraded/late split per point.  Fully deterministic — the
    acceptance test replays the whole curve twice and asserts equality."""
    base = capacity_rps(
        gpu, model, dtype, max_batch=max_batch, max_chain=max_chain
    )
    points: list[AttainmentPoint] = []
    for overload in overloads:
        report = replay(
            gpu,
            model,
            n_requests,
            base * overload,
            dtype,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            arrival=arrival,
            slo_s=slo_s,
            admission=admission_controller(admission),
            max_chain=max_chain,
            seed=seed,
        )
        points.append(
            AttainmentPoint(
                overload=overload,
                rate_rps=base * overload,
                offered=report.n_requests,
                served=report.served,
                attained=report.attained,
                shed=report.shed,
                degraded=report.degraded,
                late=report.late,
                p99_s=report.latency_p99_s,
            )
        )
    return points


# ---- fleet replay -------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSloStats:
    """Per-worker SLO outcome split (sheds attributed to the routed worker)."""

    worker: str
    served: int
    attained: int
    late: int
    shed: int
    degraded: int


@dataclass
class FleetStreamReport:
    """Result of replaying one request stream against a whole fleet.

    Percentiles follow the same nearest-rank-above convention as
    :class:`StreamReport` (see :func:`percentile`).  ``plan_hit_rate`` is the
    fleet-wide plan-cache hit rate — the number the affinity-vs-round-robin
    comparison pivots on.
    """

    models: tuple[str, ...]
    gpus: tuple[str, ...]
    policy: str
    dtype: str
    n_requests: int
    max_batch: int
    rate_rps: float
    duration_s: float
    throughput_img_s: float
    latency_p50_s: float
    latency_p99_s: float
    mean_batch: float
    plan_hit_rate: float
    planner_invocations: int
    #: the fleet's per-worker accounting snapshot at end of replay
    #: (``busy_s`` is the worker's cumulative simulated execution time).
    per_worker: tuple[WorkerStats, ...]
    latencies_s: list[float] = field(default_factory=list)
    #: populated when the replay ran with ``trace=True`` (``fleet --explain``).
    routing_trace: tuple[RouteDecision, ...] = ()
    #: planning passes that happened while requests were in flight — a
    #: TuningDB-warm-started fleet replays its tuned models at 0.
    critical_path_planner_invocations: int = 0
    #: plans preloaded at boot from a tuning DB (0 for cold starts).
    warm_starts: int = 0
    slo_s: float | None = None
    admission: str | None = None
    shed: int = 0
    degraded: int = 0
    late: int = 0
    attained: int = 0
    #: per-worker SLO split, parallel to ``per_worker`` (empty without SLOs).
    slo_per_worker: tuple[WorkerSloStats, ...] = ()
    #: the autoscaler's decision trace (empty without autoscaling).
    scale_events: tuple[ScaleEvent, ...] = ()
    #: high-water mark of fleet size during the replay.
    peak_workers: int = 0
    #: chaos accounting (None unless a FaultPlan / RetryPolicy was armed).
    fault_stats: "FaultStats | None" = None

    @property
    def availability(self) -> float:
        """Fleet availability over the replay window (1.0 without faults)."""
        return self.fault_stats.availability if self.fault_stats is not None else 1.0

    @property
    def attainment(self) -> float | None:
        """Fraction of offered requests served within their SLO."""
        if self.slo_s is None:
            return None
        return self.attained / self.n_requests if self.n_requests else 0.0

    def describe(self) -> str:
        warm = (
            f", {self.warm_starts} warm-started plan(s), "
            f"{self.critical_path_planner_invocations} on the critical path"
            if self.warm_starts
            else ""
        )
        lines = [
            f"fleet[{'+'.join(self.gpus)}] policy={self.policy} "
            f"({self.dtype}): {self.n_requests} reqs of "
            f"{','.join(self.models)} @ {self.rate_rps:g} rps, "
            f"max_batch={self.max_batch} -> "
            f"{self.throughput_img_s:.0f} img/s, "
            f"p50 {self.latency_p50_s * 1e3:.3f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.3f} ms, "
            f"mean batch {self.mean_batch:.1f}, "
            f"plan hit rate {self.plan_hit_rate:.0%} "
            f"({self.planner_invocations} planning pass(es){warm})"
        ]
        if self.slo_s is not None:
            lines.append(
                f"  SLO {self.slo_s * 1e3:g} ms"
                + (f" [admission={self.admission}]" if self.admission else "")
                + f": attainment {self.attainment:.1%} "
                f"({self.attained} attained, {self.late} late, "
                f"{self.shed} shed, {self.degraded} degraded)"
            )
        if self.scale_events:
            lines.append(
                f"  autoscale: {len(self.scale_events)} action(s), "
                f"peak {self.peak_workers} worker(s)"
            )
            for event in self.scale_events:
                lines.append(f"    {event.describe()}")
        if self.fault_stats is not None:
            lines.extend(f"  {line}" for line in self.fault_stats.describe().splitlines())
        slo_by_worker = {s.worker: s for s in self.slo_per_worker}
        for w in self.per_worker:
            line = (
                f"  {w.worker}: {w.requests} reqs in {w.batches} batches "
                f"(mean {w.mean_batch:.1f}), busy {w.busy_s * 1e3:.3f} ms, "
                f"cache {w.plan_hits}h/{w.plan_misses}m, "
                f"{w.planner_invocations} plan(s)"
            )
            s = slo_by_worker.get(w.worker)
            if s is not None:
                line += (
                    f", slo {s.attained}/{s.served} attained "
                    f"({s.late} late, {s.shed} shed, {s.degraded} degraded)"
                )
            lines.append(line)
        return "\n".join(lines)


def fleet_replay(
    gpus: Sequence[GpuSpec],
    models: "str | Sequence[str] | None" = None,
    n_requests: int | None = None,
    rate_rps: float | None = None,
    dtype: DType = DType.FP32,
    *,
    policy: str = "affinity",
    spill_factor: float = 2.0,
    max_batch: int = 8,
    max_delay_s: float = 2e-3,
    poisson: bool = False,
    arrival: str | None = None,
    request_trace: Sequence[TraceRequest] | None = None,
    slo_s: float | None = None,
    admission: "str | AdmissionController | None" = None,
    autoscale: AutoscalePolicy | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    probe_s: float = 1e-4,
    breaker_threshold: int = 3,
    breaker_reset_s: float = 1e-3,
    max_chain: int = 2,
    seed: int = 0,
    trace: bool = False,
    fleet: Fleet | None = None,
    db=None,
    calibration=None,
    engine: str | None = None,
    workers: int = 1,
    tracer=None,
    metrics=None,
) -> FleetStreamReport:
    """Replay one stream over a multi-GPU fleet on a shared :class:`FakeClock`.

    Request ``i`` targets ``models[i % len(models)]`` — a deterministic
    multi-model trace (or pass ``request_trace`` to replay explicit
    :class:`TraceRequest` entries).  Unlike the single-server :func:`replay`,
    the shared clock never advances by execution time: workers run in
    parallel, so each :class:`FleetWorker` keeps its own occupancy timeline
    (``busy_until``).  A flushed batch starts when its device frees up; a
    request's latency is queue wait + device wait + batched execution.
    Everything (arrivals, routing, occupancy, admission, scaling) is
    deterministic, so replaying the same stream over a fresh
    identically-configured fleet reproduces the report exactly.

    ``slo_s``/``admission`` mirror :func:`replay` (admission judges the
    request against the worker routing picked for it, occupancy included;
    a degraded request stays on that worker at the fallback precision).
    ``autoscale`` binds a reactive :class:`~repro.serve.autoscale.
    Autoscaler` to the fleet; it observes the backlog at every arrival and
    during the drain, and its decisions land in ``scale_events``.

    ``workers > 1`` preplans every (GPU, model, dtype) the stream will
    touch over a process pool (:meth:`Fleet.preplan`) before the replay
    clock starts: per-worker planning scales across cores and never lands
    on the serving critical path.  The plans — and therefore the replayed
    stream — are identical for every worker count; only boot wall-clock
    changes.

    ``tracer``/``metrics`` mirror :func:`replay`: the tracer binds to the
    shared FakeClock and every worker, the scheduler, and the autoscaler
    emit into the same sinks, so an autoscaled fleet replay exports
    byte-identical traces across identical invocations.  When reusing a
    ``fleet``, pass the sinks at its construction instead.

    ``faults``/``retry`` arm the chaos path (:mod:`repro.serve.faults`):
    a :class:`FaultInjector` replays the :class:`FaultPlan` on the shared
    clock — crashes void in-flight batches and requeue queued work to
    survivors, slowdowns stretch execution by the throttle factor, and
    recoveries re-warm the worker's plan cache from peers before a probe
    returns it to service.  The :class:`RetryPolicy` governs re-submission
    (bounded backoff, retry budget, optional hedging); accounting lands in
    ``FleetStreamReport.fault_stats``.  With neither armed, no injector is
    constructed and the replay is bit-identical to the fault-free path.
    """
    clock = FakeClock()
    if fleet is None:
        fleet = Fleet(
            gpus,
            policy=policy,
            spill_factor=spill_factor,
            trace=trace,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            max_chain=max_chain,
            seed=seed,
            clock=clock,
            sleep=clock.sleep,
            db=db,
            calibration=calibration,
            engine=engine,
            tracer=tracer,
            metrics=metrics,
        )
    elif isinstance(fleet.clock, FakeClock):
        clock = fleet.clock
    else:
        raise PlanError("fleet_replay needs a fleet driven by a FakeClock")
    tracer = fleet.tracer
    metrics = fleet.metrics
    if tracer.enabled:
        # Simulated time stamps every span/instant (byte-stable exports).
        tracer.clock = clock
    if request_trace is not None:
        entries = list(request_trace)
        _validate_trace(entries)
        model_list = tuple(dict.fromkeys(e.model for e in entries))
        span = entries[-1].t - entries[0].t
        offered_rate = (len(entries) - 1) / span if span > 0 else float(len(entries))
    else:
        if models is None or n_requests is None or rate_rps is None:
            raise PlanError(
                "fleet_replay needs either a request_trace or "
                "(models, n_requests, rate_rps)"
            )
        model_list = (models,) if isinstance(models, str) else tuple(models)
        if not model_list:
            raise PlanError("fleet_replay needs at least one model")
        kind = arrival if arrival is not None else ("poisson" if poisson else "uniform")
        times = generate_arrivals(kind, n_requests, rate_rps, seed=seed)
        entries = [
            TraceRequest(
                t=t,
                model=model_list[i % len(model_list)],
                dtype=dtype.value,
                slo_s=slo_s,
            )
            for i, t in enumerate(times)
        ]
        offered_rate = rate_rps

    if workers < 1:
        raise PlanError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        dtypes = tuple(dict.fromkeys(DType(e.dtype) for e in entries))
        fleet.preplan(model_list, dtypes, workers=workers)
    # Anything planned so far (warm start, preplan, or a pre-used fleet)
    # happened at boot: replay-time planning is what the critical-path
    # accounting tracks.
    boot_invocations = fleet.stats().planner_invocations

    controller = admission_controller(admission)
    scaler = autoscale.bind(fleet) if autoscale is not None else None
    slo_in_play = slo_s is not None or any(e.slo_s is not None for e in entries)
    latencies: list[float] = []
    #: (worker_id, worker-local request id) -> (arrival instant, slo)
    meta: dict[tuple[int, int], tuple[float, float | None]] = {}
    attained = late = 0
    slo_counts: dict[str, dict[str, int]] = {}

    def worker_counts(name: str) -> dict[str, int]:
        return slo_counts.setdefault(
            name, {"served": 0, "attained": 0, "late": 0, "shed": 0, "degraded": 0}
        )

    def handle(flushed: list[tuple[FleetWorker, InferenceResult]], now: float) -> None:
        nonlocal attained, late
        # Batches start in flush order on their own device; occupancy is
        # per worker, so concurrently flushed workers overlap in time.
        seen: list[tuple[int, int]] = []
        groups: dict[tuple[int, int], tuple[FleetWorker, list[InferenceResult]]] = {}
        for worker, result in flushed:
            key = (worker.worker_id, result.batch_seq)
            if key not in groups:
                groups[key] = (worker, [])
                seen.append(key)
            groups[key][1].append(result)
        for key in seen:
            worker, batch = groups[key]
            start = max(now, worker.busy_until)
            exec_s = batch[0].exec_s
            if worker.throttle != 1.0:
                # thermal throttle (serve.faults): never taken fault-free.
                exec_s *= worker.throttle
            worker.busy_until = start + exec_s
            worker.busy_s += exec_s
            if tracer.enabled:
                # The device-occupancy lane (tid 1): the batch's *true*
                # interval on its device, which the flush-time batch.execute
                # span (tid 0) doesn't know — the device may still be busy.
                tracer.add_span(
                    "worker.busy",
                    start,
                    start + exec_s,
                    pid=worker.name,
                    tid=1,
                    batch_seq=key[1],
                    model=batch[0].model,
                    batch_size=len(batch),
                )
            if injector is not None:
                # Chaos path: the commit is deferred until the batch
                # settles at start + exec_s, so a crash in between can
                # void it (the injector calls chaos_commit on success).
                injector.on_flush(worker, batch, start, exec_s, now)
                continue
            for r in batch:
                latency = r.wait_s + (start - now) + exec_s
                latencies.append(latency)
                if not slo_in_play:
                    continue
                arrival_t, want = meta.get(
                    (worker.worker_id, r.request_id), (None, None)
                )
                counts = worker_counts(worker.name)
                counts["served"] += 1
                if want is None:
                    # best-effort requests in a mixed trace have no deadline
                    # to miss: served counts as attained.
                    attained += 1
                    counts["attained"] += 1
                    continue
                # The SLO clock starts at *arrival*: wait_s starts at enqueue
                # (= now - wait_s), so add back any arrival->enqueue gap.
                gap = max(0.0, (now - r.wait_s) - arrival_t)
                if latency + gap <= want:
                    attained += 1
                    counts["attained"] += 1
                else:
                    late += 1
                    counts["late"] += 1

    def pump(now: float) -> int:
        """Flush due micro-batches once; returns how many results flushed."""
        flushed = fleet.step()
        handle(flushed, now)
        return len(flushed)

    def chaos_submit(logical, now, exclude=frozenset(), is_hedge=False) -> bool:
        """(Re)route one logical request into the fleet; False if nothing
        is routable.  Retries carry their *remaining* SLO budget so
        deadline-aware flushing stays honest about the time already lost."""
        target = fleet.scheduler.route(logical.model, logical.dtype, now, exclude=exclude)
        if target is None:
            return False
        remaining = None
        if logical.slo_s is not None:
            slack = logical.arrival_t + logical.slo_s - now
            remaining = slack if slack > 0 else None
        rid = target.server.enqueue(
            logical.model,
            dtype=logical.dtype,
            slo_s=remaining,
            priority=logical.priority,
        )
        injector.register(target, rid, logical, is_hedge=is_hedge)
        return True

    def chaos_commit(worker, r, start, exec_s, flush_now, logical) -> None:
        """Latency/SLO accounting for one settled result — the same
        arithmetic as the fault-free path, keyed by the logical request's
        original arrival instant and SLO."""
        nonlocal attained, late
        latency = r.wait_s + (start - flush_now) + exec_s
        latencies.append(latency)
        if not slo_in_play:
            return
        counts = worker_counts(worker.name)
        counts["served"] += 1
        if logical.slo_s is None:
            attained += 1
            counts["attained"] += 1
            return
        gap = max(0.0, (flush_now - r.wait_s) - logical.arrival_t)
        if latency + gap <= logical.slo_s:
            attained += 1
            counts["attained"] += 1
        else:
            late += 1
            counts["late"] += 1

    injector: FaultInjector | None = None
    if faults is not None or retry is not None:
        injector = FaultInjector(
            fleet,
            faults if faults is not None else FaultPlan(()),
            retry=retry,
            offered=len(entries),
            probe_s=probe_s,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            submit=chaos_submit,
            commit=chaos_commit,
            tracer=tracer,
            metrics=metrics,
        )

    for entry in entries:
        t = entry.t
        # Partial batches whose deadline expires before this arrival flush at
        # their deadline, not lazily at the next enqueue.  With an injector
        # armed, its events (faults, settles, retries, hedges, probes) that
        # fall before this arrival interleave in time order, injector-first
        # on ties; with none armed this is exactly the fault-free loop.
        while True:
            due = fleet.next_deadline()
            ev = injector.next_t() if injector is not None else None
            if ev is not None and ev <= t and (due is None or ev <= due):
                clock.t = max(clock.t, ev)
                injector.process(clock.t)
                pump(clock.t)
                continue
            if due is None or due > t:
                break
            clock.t = max(clock.t, due)
            progressed = pump(clock.t)
            if injector is not None:
                injector.process(clock.t)
            if progressed == 0:
                break
        clock.t = max(clock.t, t)
        if scaler is not None:
            scaler.observe(clock.t)
        req_dtype = DType(entry.dtype)
        req_slo = entry.slo_s if entry.slo_s is not None else slo_s
        worker = fleet.scheduler.route(entry.model, req_dtype, clock.t)
        if worker is None:
            # Every worker is down (only reachable with faults armed): the
            # arrival is accepted but parked until capacity recovers.
            injector.park(
                arrival_t=t,
                model=entry.model,
                dtype=req_dtype,
                slo_s=req_slo,
                priority=entry.priority,
            )
            continue
        if controller is not None and req_slo is not None:
            # Device occupancy plus any deadline-flush clock drift past the
            # arrival instant: SLO budget already spent at decision time.
            decision = controller.decide(
                worker.server,
                entry.model,
                req_dtype,
                req_slo,
                occupancy_s=worker.occupancy_s(clock.t) + max(0.0, clock.t - t),
                throttle=worker.throttle,
            )
            if decision.action in ("shed", "degrade") and (
                tracer.enabled or metrics.enabled
            ):
                tracer.instant(
                    f"admission.{decision.action}",
                    t_s=clock.t,
                    pid=worker.name,
                    model=entry.model,
                    slo_s=req_slo,
                )
                metrics.counter(
                    "repro_admission_total", help="Admission verdicts by action"
                ).inc(action=decision.action, worker=worker.name)
            if decision.action == "shed":
                worker_counts(worker.name)["shed"] += 1
                continue
            if decision.action == "degrade":
                req_dtype = controller.degrade_dtype
                worker_counts(worker.name)["degraded"] += 1
        rid = worker.server.enqueue(
            entry.model, dtype=req_dtype, slo_s=req_slo, priority=entry.priority
        )
        meta[(worker.worker_id, rid)] = (t, req_slo)
        if injector is not None:
            injector.track(
                worker,
                rid,
                arrival_t=t,
                model=entry.model,
                dtype=req_dtype,
                slo_s=req_slo,
                priority=entry.priority,
                now=clock.t,
            )
        pump(clock.t)

    while fleet.pending() or (injector is not None and injector.pending()):
        due = fleet.next_deadline()
        ev = injector.next_t() if injector is not None else None
        if ev is not None and (due is None or ev <= due):
            clock.t = max(clock.t, ev)
            if scaler is not None:
                scaler.observe(clock.t)
            injector.process(clock.t)
            pump(clock.t)
            continue
        if due is not None:
            clock.t = max(clock.t, due)
        if scaler is not None:
            scaler.observe(clock.t)
        pump(clock.t)

    if scaler is not None:
        # Post-drain settling: once every device has gone quiet the backlog
        # signal is 0, so surplus workers retire back toward min_workers
        # (bounded by cooldown — one action per observation instant).
        clock.t = max([clock.t] + [w.busy_until for w in fleet.workers])
        while True:
            event = scaler.observe(clock.t)
            if event is None:
                break

    stats = fleet.stats()
    finish = max([clock.t] + [w.busy_until for w in fleet.workers])
    duration = max(finish - entries[0].t, 1e-12)
    fault_stats = (
        injector.finalize(finish, duration) if injector is not None else None
    )
    latencies.sort()
    first_slo = next((e.slo_s for e in entries if e.slo_s is not None), None)
    return FleetStreamReport(
        models=model_list,
        gpus=tuple(w.gpu.name for w in fleet.workers),
        policy=fleet.policy,
        dtype=dtype.value,
        n_requests=len(entries),
        max_batch=fleet.workers[0].server.max_batch,
        rate_rps=offered_rate,
        duration_s=duration,
        throughput_img_s=len(latencies) / duration,
        latency_p50_s=_percentile_or_nan(latencies, 50),
        latency_p99_s=_percentile_or_nan(latencies, 99),
        mean_batch=stats.mean_batch,
        plan_hit_rate=stats.plan_hit_rate,
        planner_invocations=stats.planner_invocations,
        per_worker=stats.per_worker,
        latencies_s=latencies,
        routing_trace=tuple(fleet.trace or ()),
        critical_path_planner_invocations=(
            stats.planner_invocations - boot_invocations
        ),
        warm_starts=stats.warm_starts,
        slo_s=slo_s if slo_s is not None else first_slo,
        admission=controller.policy if controller is not None else None,
        shed=sum(c["shed"] for c in slo_counts.values()),
        degraded=sum(c["degraded"] for c in slo_counts.values()),
        late=late,
        attained=attained,
        slo_per_worker=tuple(
            WorkerSloStats(worker=name, **counts)
            for name, counts in sorted(slo_counts.items())
        ),
        scale_events=tuple(scaler.events) if scaler is not None else (),
        peak_workers=scaler.peak_workers if scaler is not None else len(fleet.workers),
        fault_stats=fault_stats,
    )
