"""Synthetic request streams and a discrete-event replay harness.

The serving benchmarks need latency *distributions*, not just batch
throughput: a request's latency is its queue wait (micro-batch formation +
device busy time) plus its batch's simulated execution.  :func:`replay`
drives a :class:`~repro.serve.server.ModelServer` with a deterministic
arrival stream on a :class:`FakeClock`, advancing simulated time by each
flushed batch's execution latency so device occupancy back-pressures later
arrivals — a small discrete-event simulation in the spirit of serving-system
load generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from collections.abc import Sequence

from ..core.dtypes import DType
from ..errors import PlanError
from ..gpu.specs import GpuSpec
from .fleet import Fleet, FleetWorker, RouteDecision, WorkerStats
from .server import InferenceResult, ModelServer

__all__ = [
    "FakeClock",
    "StreamReport",
    "FleetStreamReport",
    "arrival_times",
    "percentile",
    "replay",
    "fleet_replay",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank-above percentile (numpy ``method="higher"``).

    The serving convention for every reported p50/p99: the returned value is
    always an *observed* latency at or above the requested rank.  Linear
    interpolation (numpy's default) under-reports the tail on small result
    sets — with 10 samples it places p99 between the 9th and 10th order
    statistics, below the worst latency any request actually saw.
    """
    return float(np.percentile(samples, q, method="higher"))


class FakeClock:
    """Manually-advanced monotonic clock (the server's clock/sleep pair)."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise PlanError(f"cannot advance a clock by {dt}")
        self.t += dt

    def sleep(self, dt: float) -> None:
        self.advance(dt)


@dataclass
class StreamReport:
    """Result of replaying one request stream against a server.

    ``latency_p50_s``/``latency_p99_s`` follow the nearest-rank-above
    convention (see :func:`percentile`): each is an observed latency.
    """

    model: str
    gpu: str
    dtype: str
    n_requests: int
    max_batch: int
    rate_rps: float
    duration_s: float
    throughput_img_s: float
    latency_p50_s: float
    latency_p99_s: float
    mean_batch: float
    energy_per_image_j: float
    planner_invocations: int
    latencies_s: list[float] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"{self.model} on {self.gpu} ({self.dtype}): {self.n_requests} reqs "
            f"@ {self.rate_rps:g} rps, max_batch={self.max_batch} -> "
            f"{self.throughput_img_s:.0f} img/s, "
            f"p50 {self.latency_p50_s * 1e3:.3f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.3f} ms, "
            f"mean batch {self.mean_batch:.1f}, "
            f"{self.energy_per_image_j * 1e3:.3f} mJ/img, "
            f"{self.planner_invocations} planning pass(es)"
        )


def arrival_times(n: int, rate_rps: float, *, poisson: bool = False, seed: int = 0) -> list[float]:
    """Arrival instants for ``n`` requests at ``rate_rps``.

    Uniform spacing by default (deterministic benches); ``poisson=True``
    draws exponential inter-arrival gaps from a seeded generator.
    """
    if n < 1 or rate_rps <= 0:
        raise PlanError(f"need n >= 1 and rate > 0, got n={n}, rate={rate_rps}")
    if not poisson:
        return [i / rate_rps for i in range(n)]
    gaps = np.random.default_rng(seed).exponential(1.0 / rate_rps, size=n)
    return list(np.cumsum(gaps) - gaps[0])


def replay(
    gpu: GpuSpec,
    model: str,
    n_requests: int,
    rate_rps: float,
    dtype: DType = DType.FP32,
    *,
    max_batch: int = 8,
    max_delay_s: float = 2e-3,
    poisson: bool = False,
    max_chain: int = 2,
    seed: int = 0,
    server: ModelServer | None = None,
    db=None,
    calibration=None,
    engine: str | None = None,
) -> StreamReport:
    """Replay a synthetic stream and report throughput + latency percentiles.

    Builds a fresh :class:`ModelServer` on a :class:`FakeClock` (pass
    ``server`` to reuse one — it must have been constructed with a FakeClock
    as both ``clock`` and ``sleep``).  Requests are analytic (counters-only),
    so full-size models replay in milliseconds; ``engine`` is threaded to the
    server for streams that carry real tensors.
    """
    clock = FakeClock()
    if server is None:
        server = ModelServer(
            gpu,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            max_chain=max_chain,
            clock=clock,
            sleep=clock.sleep,
            db=db,
            calibration=calibration,
            engine=engine,
        )
    elif isinstance(server.clock, FakeClock):
        clock = server.clock
    else:
        raise PlanError("replay needs a server driven by a FakeClock")

    arrivals = arrival_times(n_requests, rate_rps, poisson=poisson, seed=seed)
    results: list[InferenceResult] = []
    #: device-busy delay between a request's *arrival* and its enqueue (the
    #: clock may already sit past the arrival instant after executing earlier
    #: batches); the server's wait_s starts at enqueue, so this is added back
    #: when reporting latency.
    backlog_wait: dict[int, float] = {}

    def flush_due() -> None:
        flushed = server.step()
        if flushed:
            results.extend(flushed)
            # Device occupancy: simulated execution takes simulated time.
            for seq in sorted({r.batch_seq for r in flushed}):
                clock.advance(next(r.exec_s for r in flushed if r.batch_seq == seq))

    for t in arrivals:
        # Any partial batch whose deadline expires before this arrival
        # flushes at its deadline, not lazily at the next enqueue.
        while True:
            due = server.next_deadline()
            if due is None or due > t:
                break
            clock.t = max(clock.t, due)
            before = len(results)
            flush_due()
            if len(results) == before:
                break
        clock.t = max(clock.t, t)
        rid = server.enqueue(model, dtype=dtype)
        backlog_wait[rid] = clock.t - t
        flush_due()

    while server.pending():
        due = server.next_deadline()
        if due is not None:
            clock.t = max(clock.t, due)
        flush_due()

    latencies = sorted(r.latency_s + backlog_wait[r.request_id] for r in results)
    duration = max(clock.t - arrivals[0], 1e-12)
    return StreamReport(
        model=model,
        gpu=gpu.name,
        dtype=dtype.value,
        n_requests=n_requests,
        max_batch=server.max_batch,
        rate_rps=rate_rps,
        duration_s=duration,
        throughput_img_s=n_requests / duration,
        latency_p50_s=percentile(latencies, 50),
        latency_p99_s=percentile(latencies, 99),
        mean_batch=server.stats.mean_batch,
        energy_per_image_j=float(np.mean([r.energy_per_image_j for r in results])),
        planner_invocations=server.cache.stats.planner_invocations,
        latencies_s=latencies,
    )


@dataclass
class FleetStreamReport:
    """Result of replaying one request stream against a whole fleet.

    Percentiles follow the same nearest-rank-above convention as
    :class:`StreamReport` (see :func:`percentile`).  ``plan_hit_rate`` is the
    fleet-wide plan-cache hit rate — the number the affinity-vs-round-robin
    comparison pivots on.
    """

    models: tuple[str, ...]
    gpus: tuple[str, ...]
    policy: str
    dtype: str
    n_requests: int
    max_batch: int
    rate_rps: float
    duration_s: float
    throughput_img_s: float
    latency_p50_s: float
    latency_p99_s: float
    mean_batch: float
    plan_hit_rate: float
    planner_invocations: int
    #: the fleet's per-worker accounting snapshot at end of replay
    #: (``busy_s`` is the worker's cumulative simulated execution time).
    per_worker: tuple[WorkerStats, ...]
    latencies_s: list[float] = field(default_factory=list)
    #: populated when the replay ran with ``trace=True`` (``fleet --explain``).
    routing_trace: tuple[RouteDecision, ...] = ()
    #: planning passes that happened while requests were in flight — a
    #: TuningDB-warm-started fleet replays its tuned models at 0.
    critical_path_planner_invocations: int = 0
    #: plans preloaded at boot from a tuning DB (0 for cold starts).
    warm_starts: int = 0

    def describe(self) -> str:
        warm = (
            f", {self.warm_starts} warm-started plan(s), "
            f"{self.critical_path_planner_invocations} on the critical path"
            if self.warm_starts
            else ""
        )
        lines = [
            f"fleet[{'+'.join(self.gpus)}] policy={self.policy} "
            f"({self.dtype}): {self.n_requests} reqs of "
            f"{','.join(self.models)} @ {self.rate_rps:g} rps, "
            f"max_batch={self.max_batch} -> "
            f"{self.throughput_img_s:.0f} img/s, "
            f"p50 {self.latency_p50_s * 1e3:.3f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.3f} ms, "
            f"mean batch {self.mean_batch:.1f}, "
            f"plan hit rate {self.plan_hit_rate:.0%} "
            f"({self.planner_invocations} planning pass(es){warm})"
        ]
        for w in self.per_worker:
            lines.append(
                f"  {w.worker}: {w.requests} reqs in {w.batches} batches "
                f"(mean {w.mean_batch:.1f}), busy {w.busy_s * 1e3:.3f} ms, "
                f"cache {w.plan_hits}h/{w.plan_misses}m, "
                f"{w.planner_invocations} plan(s)"
            )
        return "\n".join(lines)


def fleet_replay(
    gpus: Sequence[GpuSpec],
    models: str | Sequence[str],
    n_requests: int,
    rate_rps: float,
    dtype: DType = DType.FP32,
    *,
    policy: str = "affinity",
    spill_factor: float = 2.0,
    max_batch: int = 8,
    max_delay_s: float = 2e-3,
    poisson: bool = False,
    max_chain: int = 2,
    seed: int = 0,
    trace: bool = False,
    fleet: Fleet | None = None,
    db=None,
    calibration=None,
    engine: str | None = None,
) -> FleetStreamReport:
    """Replay one stream over a multi-GPU fleet on a shared :class:`FakeClock`.

    Request ``i`` targets ``models[i % len(models)]`` — a deterministic
    multi-model trace.  Unlike the single-server :func:`replay`, the shared
    clock never advances by execution time: workers run in parallel, so each
    :class:`FleetWorker` keeps its own occupancy timeline (``busy_until``).
    A flushed batch starts when its device frees up; a request's latency is
    queue wait + device wait + batched execution.  Everything (arrivals,
    routing, occupancy) is deterministic, so replaying the same stream over
    a fresh identically-configured fleet reproduces the report exactly.
    """
    clock = FakeClock()
    if fleet is None:
        fleet = Fleet(
            gpus,
            policy=policy,
            spill_factor=spill_factor,
            trace=trace,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            max_chain=max_chain,
            seed=seed,
            clock=clock,
            sleep=clock.sleep,
            db=db,
            calibration=calibration,
            engine=engine,
        )
    elif isinstance(fleet.clock, FakeClock):
        clock = fleet.clock
    else:
        raise PlanError("fleet_replay needs a fleet driven by a FakeClock")
    # Anything planned so far (warm start, or a pre-used fleet) happened at
    # boot: replay-time planning is what the critical-path accounting tracks.
    boot_invocations = fleet.stats().planner_invocations
    model_list = (models,) if isinstance(models, str) else tuple(models)
    if not model_list:
        raise PlanError("fleet_replay needs at least one model")

    arrivals = arrival_times(n_requests, rate_rps, poisson=poisson, seed=seed)
    latencies: list[float] = []

    def handle(flushed: list[tuple[FleetWorker, InferenceResult]], now: float) -> None:
        # Batches start in flush order on their own device; occupancy is
        # per worker, so concurrently flushed workers overlap in time.
        seen: list[tuple[int, int]] = []
        groups: dict[tuple[int, int], tuple[FleetWorker, list[InferenceResult]]] = {}
        for worker, result in flushed:
            key = (worker.worker_id, result.batch_seq)
            if key not in groups:
                groups[key] = (worker, [])
                seen.append(key)
            groups[key][1].append(result)
        for key in seen:
            worker, batch = groups[key]
            start = max(now, worker.busy_until)
            exec_s = batch[0].exec_s
            worker.busy_until = start + exec_s
            worker.busy_s += exec_s
            latencies.extend(r.wait_s + (start - now) + exec_s for r in batch)

    for i, t in enumerate(arrivals):
        # Partial batches whose deadline expires before this arrival flush at
        # their deadline, not lazily at the next enqueue.
        while True:
            due = fleet.next_deadline()
            if due is None or due > t:
                break
            clock.t = max(clock.t, due)
            before = len(latencies)
            handle(fleet.step(), clock.t)
            if len(latencies) == before:
                break
        clock.t = max(clock.t, t)
        fleet.enqueue(model_list[i % len(model_list)], dtype=dtype)
        handle(fleet.step(), clock.t)

    while fleet.pending():
        due = fleet.next_deadline()
        if due is not None:
            clock.t = max(clock.t, due)
        handle(fleet.step(), clock.t)

    stats = fleet.stats()
    finish = max([clock.t] + [w.busy_until for w in fleet.workers])
    duration = max(finish - arrivals[0], 1e-12)
    latencies.sort()
    return FleetStreamReport(
        models=model_list,
        gpus=tuple(w.gpu.name for w in fleet.workers),
        policy=fleet.policy,
        dtype=dtype.value,
        n_requests=n_requests,
        max_batch=fleet.workers[0].server.max_batch,
        rate_rps=rate_rps,
        duration_s=duration,
        throughput_img_s=n_requests / duration,
        latency_p50_s=percentile(latencies, 50),
        latency_p99_s=percentile(latencies, 99),
        mean_batch=stats.mean_batch,
        plan_hit_rate=stats.plan_hit_rate,
        planner_invocations=stats.planner_invocations,
        per_worker=stats.per_worker,
        latencies_s=latencies,
        routing_trace=tuple(fleet.trace or ()),
        critical_path_planner_invocations=(
            stats.planner_invocations - boot_invocations
        ),
        warm_starts=stats.warm_starts,
    )
