"""Admission control: shed or degrade requests that cannot meet their SLO.

An overloaded server that accepts everything serves *nobody* on time: the
backlog grows without bound and every request's latency busts its deadline.
The :class:`AdmissionController` makes the tradeoff explicit at enqueue time.
For each offered request it projects the completion latency from the target
server's backlog (priced by :meth:`~repro.serve.server.ModelServer.
estimated_drain_s` — the backlog executed as full micro-batches, with the
offered request riding in the remainder batch; the analytic costs reflect
tuning calibration when the plans were built with one) and compares it to
the request's SLO:

* **accept** — the projection fits: enqueue as requested.
* **degrade** — the full-precision projection busts the SLO but the INT8
  plan variant's does not: reroute the request to the degraded precision.
  Through the existing :class:`~repro.serve.cache.PlanKey` identity this is
  simply enqueueing at ``dtype=int8`` — a separate resident plan that moves
  half the bytes, in the spirit of Daghero et al.'s degraded-precision
  fallback for DW-separable networks (PAPERS.md).
* **shed** — no variant can meet the deadline: reject the request outright
  (counted, never enqueued) so the requests already queued stay servable.

Every projection reads only *resident* plans (peeked), so admission never
perturbs the plan-cache accounting and stays deterministic on a
:class:`~repro.serve.loadgen.FakeClock`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from ..errors import PlanError
from .server import ModelServer

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionDecision",
    "AdmissionStats",
    "AdmissionController",
    "admission_controller",
]

ADMISSION_POLICIES = ("shed", "degrade")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of offering one request to the controller."""

    action: str  # "accept" | "degrade" | "shed"
    #: projected completion latency at the *admitted* precision (the
    #: requested one for accept/shed, the degraded one for degrade).
    projected_s: float
    slo_s: float

    @property
    def admitted(self) -> bool:
        return self.action != "shed"


@dataclass
class AdmissionStats:
    """Offered-request tally: every decision lands in exactly one bucket."""

    accepted: int = 0
    degraded: int = 0
    shed: int = 0

    @property
    def offered(self) -> int:
        return self.accepted + self.degraded + self.shed

    def count(self, decision: AdmissionDecision) -> None:
        if decision.action == "accept":
            self.accepted += 1
        elif decision.action == "degrade":
            self.degraded += 1
        else:
            self.shed += 1


class AdmissionController:
    """SLO-aware admission: accept, degrade to INT8, or shed (see module
    docstring).  ``policy="shed"`` disables the degraded-precision fallback;
    ``margin`` scales the projection (>1 sheds earlier, a safety factor)."""

    def __init__(
        self,
        policy: str = "degrade",
        *,
        degrade_dtype: DType = DType.INT8,
        margin: float = 1.0,
    ) -> None:
        if policy not in ADMISSION_POLICIES:
            raise PlanError(
                f"unknown admission policy {policy!r}; choose from {ADMISSION_POLICIES}"
            )
        if margin <= 0:
            raise PlanError(f"admission margin must be > 0, got {margin}")
        self.policy = policy
        self.degrade_dtype = degrade_dtype
        self.margin = margin
        self.stats = AdmissionStats()

    def projected_s(
        self,
        server: ModelServer,
        model: str,
        dtype: DType,
        *,
        occupancy_s: float = 0.0,
        throttle: float = 1.0,
    ) -> float:
        """Projected completion latency of one new ``(model, dtype)`` request
        on ``server``: device occupancy plus the *batched* drain of the
        backlog with this request appended to its queue
        (:meth:`ModelServer.estimated_drain_s` — the request's own execution
        rides in the remainder micro-batch; 0 while its plan is not yet
        resident).  ``throttle`` stretches the drain term for a thermally
        degraded worker (see serve.faults); 1.0 leaves the arithmetic
        untouched bit-for-bit."""
        drain = server.estimated_drain_s(extra=(model, dtype.value))
        if throttle != 1.0:
            drain *= throttle
        return occupancy_s + drain

    def decide(
        self,
        server: ModelServer,
        model: str,
        dtype: DType,
        slo_s: float,
        *,
        occupancy_s: float = 0.0,
        throttle: float = 1.0,
    ) -> AdmissionDecision:
        """Judge one offered request against ``slo_s`` and tally the outcome.

        ``occupancy_s`` is the target device's remaining busy time (the fleet
        path passes :meth:`FleetWorker.occupancy_s`; the single-server replay
        models occupancy by advancing its clock, so it passes 0).
        ``throttle`` is the target worker's slowdown factor under faults, so
        admission sheds earlier on a thermally degraded worker.
        """
        if slo_s <= 0:
            raise PlanError(f"slo_s must be > 0, got {slo_s}")
        projected = self.projected_s(
            server, model, dtype, occupancy_s=occupancy_s, throttle=throttle
        )
        if projected * self.margin <= slo_s:
            decision = AdmissionDecision("accept", projected, slo_s)
        elif self.policy == "degrade" and dtype is not self.degrade_dtype:
            degraded = self.projected_s(
                server, model, self.degrade_dtype,
                occupancy_s=occupancy_s, throttle=throttle,
            )
            if degraded * self.margin <= slo_s:
                decision = AdmissionDecision("degrade", degraded, slo_s)
            else:
                decision = AdmissionDecision("shed", degraded, slo_s)
        else:
            decision = AdmissionDecision("shed", projected, slo_s)
        self.stats.count(decision)
        return decision


def admission_controller(
    spec: "str | AdmissionController | None",
) -> AdmissionController | None:
    """Resolve a CLI/replay admission spec: None or ``"none"`` disable
    admission, a policy name builds a fresh controller, and an existing
    controller passes through (so callers can share one across replays)."""
    if spec is None or spec == "" or spec == "none":
        return None
    if isinstance(spec, AdmissionController):
        return spec
    return AdmissionController(spec)
