"""LRU plan cache: plan once, serve many times.

FusePlanner's whole-model pass (tiling search over every layer and fusion
candidate) costs orders of magnitude more than pricing one inference, yet its
output depends only on (model, precision, GPU, cost convention).  The serving
layer therefore memoizes the :class:`~repro.planner.plan.ExecutionPlan`
*together with* the materialized :class:`~repro.runtime.network_params.
NetworkParams` and a ready :class:`~repro.runtime.session.InferenceSession`,
keyed by exactly those four inputs.  Cross-layer reuse work (Wang et al.)
makes the same point for fused kernels: fusion pays off most when one plan is
amortized over many invocations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..core.dtypes import DType
from ..errors import PlanError
from ..gpu.specs import GpuSpec
from ..ir.graph import ModelGraph
from ..models.zoo import build_model
from ..obs import resolve_metrics, resolve_tracer
from ..planner.plan import ExecutionPlan
from ..planner.planner import FusePlanner
from ..runtime.network_params import NetworkParams, materialize_network
from ..runtime.session import InferenceSession, SessionReport

__all__ = ["PlanKey", "CachedPlan", "CacheStats", "PlanCache"]


@dataclass(frozen=True)
class PlanKey:
    """Identity of one memoized plan: everything FusePlanner's output
    depends on (and nothing it doesn't — request batch size is *not* part
    of the key; one plan serves every batch size).  ``max_chain`` is part
    of the identity because the DP emits different plans per chain cap."""

    model: str
    dtype: str
    gpu: str
    convention: str
    max_chain: int = 2

    @classmethod
    def of(
        cls,
        model: str,
        dtype: DType,
        gpu: GpuSpec,
        convention: str,
        max_chain: int = 2,
    ) -> "PlanKey":
        return cls(
            model=model,
            dtype=dtype.value,
            gpu=gpu.name,
            convention=convention,
            max_chain=max_chain,
        )

    def variant(self, dtype: DType) -> "PlanKey":
        """The same plan identity at another precision — the degraded-
        precision reroute (:mod:`repro.serve.admission`) is a cache lookup
        under this key, not a new serving path."""
        return PlanKey(
            model=self.model,
            dtype=dtype.value,
            gpu=self.gpu,
            convention=self.convention,
            max_chain=self.max_chain,
        )


@dataclass
class CachedPlan:
    """One cache entry: the planned model, ready to execute at any batch size."""

    key: PlanKey
    graph: ModelGraph
    plan: ExecutionPlan
    params: NetworkParams
    session: InferenceSession
    #: memoized analytic reports, keyed by batch size (pricing a micro-batch
    #: of a size already seen is then a dict lookup).
    _analytic: dict[int, SessionReport] = field(default_factory=dict)

    def analytic_report(self, batch_size: int) -> SessionReport:
        """Counters-only batched report for this plan (memoized per size)."""
        if batch_size not in self._analytic:
            self._analytic[batch_size] = self.session.run_analytic_batch(batch_size)
        return self._analytic[batch_size]


@dataclass
class CacheStats:
    """Hit/miss/eviction tally plus the planner-invocation count the
    serving acceptance test pins down (N requests, 1 planning pass).

    ``warm_starts`` counts plans built at boot by :meth:`PlanCache.
    warm_start` — those planner invocations happen *off* the serving
    critical path, which is what the warm-started fleet replay asserts."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    planner_invocations: int = 0
    warm_starts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU cache of :class:`CachedPlan` entries.

    ``capacity`` bounds the number of resident plans (a materialized network
    holds every weight tensor, so unbounded growth would be a memory leak in
    a long-running server).  Least-recently-*used* eviction: every hit
    refreshes the entry's recency.
    """

    def __init__(
        self,
        capacity: int = 8,
        seed: int = 0,
        calibration=None,
        *,
        tracer=None,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise PlanError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        #: optional measurement-feedback corrections (duck-typed
        #: :class:`repro.tune.calibrate.Calibration`) handed to every
        #: FusePlanner this cache builds.
        self.calibration = calibration
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        self.stats = CacheStats()
        self._entries: OrderedDict[PlanKey, CachedPlan] = OrderedDict()

    def _count(self, event: str, amount: int = 1) -> None:
        self.metrics.counter(
            "repro_plan_cache_total", help="Plan-cache events by kind"
        ).inc(amount, event=event)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    def keys(self) -> list[PlanKey]:
        """Resident keys, least recently used first."""
        return list(self._entries)

    def peek(self, key: PlanKey) -> CachedPlan | None:
        """Return the resident entry for ``key`` without touching hit/miss
        stats or LRU recency — the fleet scheduler's routing probe must not
        perturb the accounting it is making decisions from."""
        return self._entries.get(key)

    def get(
        self,
        model: str,
        dtype: DType,
        gpu: GpuSpec,
        convention: str = "paper",
        max_chain: int = 2,
    ) -> CachedPlan:
        """Return the memoized plan, building (and possibly evicting) on miss."""
        key = PlanKey.of(model, dtype, gpu, convention, max_chain)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._count("hit")
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        self._count("miss")
        entry = self._build(key, model, dtype, gpu, convention, max_chain)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._count("eviction")
        return entry

    def install(
        self,
        model: str,
        dtype: DType,
        gpu: GpuSpec,
        convention: str = "paper",
        max_chain: int = 2,
        *,
        plan: ExecutionPlan,
    ) -> CachedPlan:
        """Adopt a plan produced elsewhere (e.g. by a preplanning worker
        process) as a resident entry.

        The planner already ran — possibly in another process — so this
        counts as a ``warm_start``, not a miss or a planner invocation: the
        plan-once/serve-many accounting the replay asserts must not depend
        on *where* boot-time planning happened.  The graph, weights and
        session are materialized here (they are cheap relative to planning
        and not worth shipping across a process boundary).  An already
        resident entry wins: installing under a live key is a no-op so a
        preplan pass can never clobber serving state.
        """
        key = PlanKey.of(model, dtype, gpu, convention, max_chain)
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        graph = build_model(model, dtype)
        params = materialize_network(graph, dtype, self.seed)
        session = InferenceSession(graph, plan, params)
        entry = CachedPlan(key=key, graph=graph, plan=plan, params=params, session=session)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._count("eviction")
        self.stats.warm_starts += 1
        self._count("warm_start")
        return entry

    def clear(self) -> int:
        """Drop every resident entry, keeping cumulative stats (crash path).

        A crashed GPU loses its on-device state: the plans are gone but the
        hit/miss/planner history still happened.  Returns the number of
        entries dropped; they are losses, not LRU evictions, so the
        eviction counter is untouched.
        """
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def adopt(self, entry: CachedPlan) -> CachedPlan:
        """Share a peer's resident entry (recovery re-warm path).

        The plan, weights and session were already materialized on a
        same-GPU peer, so adopting the object is free and counts as a
        ``warm_start`` exactly like :meth:`install`.  An already resident
        entry wins (no-op), and adoption respects capacity via LRU
        eviction like any other insertion.
        """
        resident = self._entries.get(entry.key)
        if resident is not None:
            return resident
        self._entries[entry.key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._count("eviction")
        self.stats.warm_starts += 1
        self._count("warm_start")
        return entry

    def warm_start(
        self,
        db,
        gpu: GpuSpec,
        *,
        convention: str = "paper",
        max_chain: int = 2,
    ) -> list[PlanKey]:
        """Preload plans from a tuning DB's model-level records at boot.

        Every ``family == "model"`` record matching this GPU, convention and
        chain cap is planned *now*, so the first request for a tuned model
        finds its plan resident — cold-start planning leaves the serving
        critical path entirely.  Records this build cannot replay — models
        absent from the zoo, unknown dtypes, plans that no longer have a
        feasible tiling (all possible with a DB tuned against another
        build) — are skipped, not fatal: a stale record must never stop a
        server from booting.  Returns the keys preloaded, in the DB's
        canonical order; LRU capacity still applies, so a DB larger than
        the cache keeps only the last ``capacity`` plans.
        """
        from ..errors import UnsupportedError
        from ..models.zoo import MODELS

        loaded: list[PlanKey] = []
        for rec in db:
            k = rec.key
            if k.family != "model" or k.gpu != gpu.name or k.convention != convention:
                continue
            if not (isinstance(k.geometry, tuple) and len(k.geometry) == 2):
                continue  # foreign tooling's model record: skip, not fatal
            model, rec_chain = k.geometry
            if rec_chain != max_chain or model not in MODELS:
                continue
            try:
                dtype = DType(k.dtype)
            except ValueError:
                continue  # a dtype this build doesn't know: skip, not fatal
            try:
                self.get(model, dtype, gpu, convention, max_chain)
            except (UnsupportedError, PlanError):
                continue
            self.stats.warm_starts += 1
            self._count("warm_start")
            loaded.append(PlanKey.of(model, DType(k.dtype), gpu, convention, max_chain))
        return loaded

    def _build(
        self,
        key: PlanKey,
        model: str,
        dtype: DType,
        gpu: GpuSpec,
        convention: str,
        max_chain: int,
    ) -> CachedPlan:
        graph = build_model(model, dtype)
        self.stats.planner_invocations += 1
        self._count("planner_invocation")
        plan = FusePlanner(
            gpu, convention, max_chain=max_chain, calibration=self.calibration,
            tracer=self.tracer, metrics=self.metrics,
        ).plan(graph)
        params = materialize_network(graph, dtype, self.seed)
        session = InferenceSession(graph, plan, params)
        return CachedPlan(key=key, graph=graph, plan=plan, params=params, session=session)
