"""Reactive fleet autoscaling from backlog/occupancy signals.

The :class:`Autoscaler` watches the same per-worker backlog estimate the
fleet scheduler routes by (:meth:`FleetWorker.estimated_backlog_s`: device
occupancy plus the analytic cost of every queued request) and resizes the
:class:`~repro.serve.fleet.Fleet` between ``min_workers`` and
``max_workers``:

* **grow** — mean backlog per worker exceeds ``grow_backlog_s``: add one
  worker on the policy's GPU preset (configured identically to the boot
  workers, warm-started from the same tuning DB).
* **grow (lost capacity)** — faults (see :mod:`repro.serve.faults`) took
  the number of *serving* workers below ``min_workers``: replace the lost
  capacity immediately, even with no backlog signal — requests parked
  behind a dead fleet generate no queue to react to.  These events carry
  ``reason="lost_capacity"`` in the decision trace.
* **shrink** — mean backlog falls below ``shrink_backlog_s`` *and* some
  healthy worker is idle (empty queue, device free): retire the
  highest-numbered idle worker.  Its accounting stays in
  :meth:`Fleet.stats`.

``cooldown_s`` rate-limits actions: after any resize the controller holds
its size until the cooldown elapses, which damps grow/shrink oscillation on
bursty streams.  Everything is driven by explicit :meth:`Autoscaler.observe`
calls on the shared :class:`~repro.serve.loadgen.FakeClock`, so scaling
decisions — like everything else in the serving layer — are deterministic
and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanError
from ..gpu.specs import GpuSpec
from .fleet import Fleet, FleetWorker

__all__ = ["ScaleEvent", "AutoscalePolicy", "Autoscaler"]


@dataclass(frozen=True)
class ScaleEvent:
    """One resize action (the autoscaler's replayable decision trace)."""

    t: float
    action: str  # "grow" | "shrink"
    worker: str  # name of the worker added / retired
    backlog_s: float  # mean backlog per worker that triggered the action
    workers: int  # fleet size after the action
    reason: str = "backlog"  # "backlog" | "lost_capacity" | "idle"

    def describe(self) -> str:
        why = f", {self.reason}" if self.reason != "backlog" else ""
        return (
            f"t={self.t * 1e3:.3f}ms {self.action} {self.worker} "
            f"(mean backlog {self.backlog_s * 1e6:.1f}us{why}) "
            f"-> {self.workers} worker(s)"
        )


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bindable autoscaler configuration (no fleet reference yet), so replay
    harnesses and the CLI can describe scaling before the fleet exists."""

    gpu: GpuSpec | None = None  # None -> the fleet's first worker's GPU
    min_workers: int = 1
    max_workers: int = 8
    grow_backlog_s: float = 2e-3
    shrink_backlog_s: float = 2e-4
    cooldown_s: float = 0.0

    def bind(self, fleet: Fleet) -> "Autoscaler":
        return Autoscaler(
            fleet,
            gpu=self.gpu or fleet.workers[0].gpu,
            min_workers=self.min_workers,
            max_workers=self.max_workers,
            grow_backlog_s=self.grow_backlog_s,
            shrink_backlog_s=self.shrink_backlog_s,
            cooldown_s=self.cooldown_s,
        )


class Autoscaler:
    """Reactive resize controller around one fleet (see module docstring)."""

    def __init__(
        self,
        fleet: Fleet,
        gpu: GpuSpec,
        *,
        min_workers: int = 1,
        max_workers: int = 8,
        grow_backlog_s: float = 2e-3,
        shrink_backlog_s: float = 2e-4,
        cooldown_s: float = 0.0,
    ) -> None:
        if min_workers < 1:
            raise PlanError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers < min_workers:
            raise PlanError(
                f"max_workers ({max_workers}) must be >= min_workers ({min_workers})"
            )
        if shrink_backlog_s < 0 or grow_backlog_s <= shrink_backlog_s:
            raise PlanError(
                "need grow_backlog_s > shrink_backlog_s >= 0, got "
                f"grow={grow_backlog_s}, shrink={shrink_backlog_s}"
            )
        if cooldown_s < 0:
            raise PlanError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.fleet = fleet
        self.gpu = gpu
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.grow_backlog_s = grow_backlog_s
        self.shrink_backlog_s = shrink_backlog_s
        self.cooldown_s = cooldown_s
        self.events: list[ScaleEvent] = []
        self._last_action_t: float | None = None
        #: high-water mark of fleet size (reported by fleet_replay).
        self.peak_workers = len(fleet.workers)
        #: observability rides on the fleet's sinks (no-ops by default).
        self.tracer = fleet.tracer
        self.metrics = fleet.metrics

    def mean_backlog_s(self, now: float) -> float:
        """The scaling signal: mean estimated backlog per *serving* worker.

        Down / recovering workers contribute neither backlog nor capacity
        (a fault injector drains them on crash), so losing a worker
        concentrates the signal on the survivors instead of diluting it.
        With every worker healthy this is exactly the all-workers mean.
        """
        workers = [w for w in self.fleet.workers if w.health in ("healthy", "degraded")]
        if not workers:
            return 0.0
        return sum(w.estimated_backlog_s(now) for w in workers) / len(workers)

    def in_cooldown(self, now: float) -> bool:
        return (
            self._last_action_t is not None
            and now - self._last_action_t < self.cooldown_s
        )

    def _idle_worker(self, now: float) -> FleetWorker | None:
        """Highest-numbered *healthy* worker that is drained and not
        executing.  Faulted workers are never the shrink target: retiring
        a down worker would erase the capacity the injector is about to
        recover."""
        idle = [
            w
            for w in self.fleet.workers
            if w.health == "healthy" and not w.server.pending() and w.busy_until <= now
        ]
        return max(idle, key=lambda w: w.worker_id) if idle else None

    def serving_workers(self) -> int:
        """Workers currently able to take traffic (healthy or degraded)."""
        return sum(
            1 for w in self.fleet.workers if w.health in ("healthy", "degraded")
        )

    def observe(self, now: float) -> ScaleEvent | None:
        """Evaluate the signal at instant ``now`` and resize by at most one
        worker.  Returns the event, or None when holding steady (signal in
        band, bounds reached, cooldown active, or nobody idle to retire)."""
        if self.in_cooldown(now):
            return None
        backlog = self.mean_backlog_s(now)
        event: ScaleEvent | None = None
        serving = self.serving_workers()
        if (
            serving < len(self.fleet.workers)  # somebody is actually down
            and serving < self.min_workers
            and len(self.fleet.workers) < self.max_workers
        ):
            # Faults took serving capacity below the floor: replace the
            # lost worker(s) even with no backlog signal yet — requests
            # parked behind a dead fleet generate no queue to react to.
            worker = self.fleet.add_worker(self.gpu)
            event = ScaleEvent(
                now, "grow", worker.name, backlog, len(self.fleet.workers),
                reason="lost_capacity",
            )
        elif backlog > self.grow_backlog_s and len(self.fleet.workers) < self.max_workers:
            worker = self.fleet.add_worker(self.gpu)
            event = ScaleEvent(
                now, "grow", worker.name, backlog, len(self.fleet.workers)
            )
        elif (
            backlog < self.shrink_backlog_s
            and len(self.fleet.workers) > self.min_workers
        ):
            worker = self._idle_worker(now)
            if worker is not None:
                self.fleet.remove_worker(worker)
                event = ScaleEvent(
                    now, "shrink", worker.name, backlog, len(self.fleet.workers)
                )
        if event is not None:
            self.events.append(event)
            self._last_action_t = now
            self.peak_workers = max(self.peak_workers, event.workers)
            if self.tracer.enabled or self.metrics.enabled:
                self.tracer.instant(
                    f"autoscale.{event.action}",
                    t_s=now,
                    pid=event.worker,
                    backlog_s=event.backlog_s,
                    workers=event.workers,
                )
                self.metrics.counter(
                    "repro_scale_events_total", help="Autoscaler resize actions"
                ).inc(action=event.action)
                self.metrics.gauge(
                    "repro_fleet_workers", help="Active fleet size after scaling"
                ).set(event.workers)
        return event
