"""Multi-GPU serving fleet: per-GPU workers, plan-affinity routing.

The paper's central observation is that the best fusion/tiling choice is
*per-GPU*: the same DW+PW pair wants different FCM variants and tile shapes
on each evaluated device (PAPER.md §V).  A fleet therefore keeps one
:class:`~repro.serve.server.ModelServer` per GPU — its own
:class:`~repro.serve.cache.PlanCache`, its own micro-batch queues, its own
:class:`~repro.gpu.specs.GpuSpec` — so heterogeneous mixes (one desktop +
two embedded boards) are first-class: every worker plans for *its* silicon.

Routing is where plans meet load.  :class:`FleetScheduler` implements two
policies:

* ``"affinity"`` (default) — prefer workers whose plan cache already holds
  the routed ``(model, dtype, gpu, convention, max_chain)`` plan, breaking
  ties by least estimated backlog (device occupancy plus the analytic cost
  of every queued request).  When the best plan-holder is overloaded — its
  backlog exceeds the best non-holder's by more than ``spill_factor`` full
  micro-batches of the routed model — the request *spills* to the non-holder,
  which plans the model and joins the holder set.  Affinity maximizes plan
  reuse; spilling keeps a hot model from pinning the whole stream to one GPU.
* ``"round_robin"`` — the classic baseline: workers in rotation, no cache or
  load awareness.  Kept as the comparison point the affinity tests beat.

Backlog estimation only *peeks* at plan caches (:meth:`PlanCache.peek`), so
routing never perturbs the hit/miss accounting it is driven by.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.dtypes import DType
from ..errors import PlanError
from ..gpu.specs import GpuSpec
from ..obs import resolve_metrics, resolve_tracer
from ..runtime.session import SessionReport
from .cache import PlanKey
from .server import InferenceRequest, InferenceResult, ModelServer

__all__ = [
    "RouteDecision",
    "FleetWorker",
    "FleetScheduler",
    "WorkerStats",
    "FleetStats",
    "Fleet",
]

POLICIES = ("affinity", "round_robin")


def _preplan_job(job: tuple) -> "object":
    """Plan one (GPU, model, dtype) in a worker process; returns the plan.

    Module-level so it pickles under spawn-based pools too.  Only the
    :class:`~repro.planner.plan.ExecutionPlan` crosses back — weights and
    sessions are rebuilt cheaply on the parent side by
    :meth:`repro.serve.cache.PlanCache.install`.
    """
    gpu, model, dtype, convention, max_chain, calibration = job
    from ..models.zoo import build_model
    from ..planner.planner import FusePlanner

    graph = build_model(model, dtype)
    planner = FusePlanner(gpu, convention, max_chain=max_chain, calibration=calibration)
    return planner.plan(graph)


@dataclass(frozen=True)
class RouteDecision:
    """One routing trace entry (``fleet --explain`` renders these)."""

    seq: int
    model: str
    dtype: str
    worker: str
    policy: str
    affinity_hit: bool  # a plan-holding worker was chosen
    spilled: bool  # affinity overruled: best holder was overloaded
    backlog_s: dict[str, float]  # per-worker estimate at decision time

    def describe(self) -> str:
        reason = (
            "round-robin" if self.policy == "round_robin"
            else "spill (holder overloaded)" if self.spilled
            else "plan affinity" if self.affinity_hit
            else "no holder; least backlog"
        )
        backlogs = ", ".join(
            f"{name}={est * 1e6:.1f}us" for name, est in self.backlog_s.items()
        )
        return (
            f"#{self.seq} {self.model} -> {self.worker} [{reason}]"
            + (f"  backlog: {backlogs}" if backlogs else "")
        )


class FleetWorker:
    """One fleet member: a per-GPU :class:`ModelServer` plus the device
    occupancy timeline the discrete-event replay advances."""

    def __init__(self, worker_id: int, gpu: GpuSpec, server: ModelServer) -> None:
        self.worker_id = worker_id
        self.gpu = gpu
        self.server = server
        #: worker names stay unique in homogeneous fleets ("RTX#0", "RTX#1").
        self.name = f"{gpu.name}#{worker_id}"
        #: simulated instant until which the device is executing already
        #: flushed batches (maintained by loadgen.fleet_replay).
        self.busy_until = 0.0
        #: cumulative simulated execution time (utilization reporting).
        self.busy_s = 0.0
        #: health state machine (see serve.faults.WORKER_HEALTH); only a
        #: FaultInjector ever moves a worker off "healthy".
        self.health = "healthy"
        #: thermal-throttle multiplier on batch execution time (1.0 = none).
        self.throttle = 1.0
        #: armed transient batch failures (next flush on this worker fails).
        self.pending_transient = 0
        #: instant the current outage started, and cumulative downtime.
        self.down_since: float | None = None
        self.downtime_s = 0.0
        #: per-worker circuit breaker, created lazily by the injector.
        self.breaker = None

    def plan_key(self, model: str, dtype: DType) -> PlanKey:
        return PlanKey.of(
            model, dtype, self.gpu, self.server.convention, self.server.max_chain
        )

    def holds_plan(self, model: str, dtype: DType) -> bool:
        """Does this worker's cache already hold the routed plan?"""
        return self.server.cache.peek(self.plan_key(model, dtype)) is not None

    def per_request_cost_s(self, model: str, dtype: DType) -> float | None:
        """Single-image analytic latency of the resident plan, or None."""
        entry = self.server.cache.peek(self.plan_key(model, dtype))
        return None if entry is None else entry.analytic_report(1).latency_s

    def occupancy_s(self, now: float) -> float:
        """Remaining device-busy time at instant ``now``."""
        return max(0.0, self.busy_until - now)

    def estimated_backlog_s(self, now: float) -> float:
        """Occupancy plus the analytic cost of every queued request."""
        return self.occupancy_s(now) + self.server.estimated_queue_cost_s()

    def routable(self, now: float) -> bool:
        """May routing send traffic here at ``now``?  Down and recovering
        workers are skipped; a degraded (throttled) worker still serves.
        An open circuit breaker also vetoes (half-open lets one probe by).
        """
        if self.health not in ("healthy", "degraded"):
            return False
        return self.breaker is None or self.breaker.allows(now)


class FleetScheduler:
    """Routes requests to workers; records a trace when asked to."""

    def __init__(
        self,
        workers: Sequence[FleetWorker],
        policy: str = "affinity",
        *,
        spill_factor: float = 2.0,
        trace: bool = False,
        tracer=None,
        metrics=None,
    ) -> None:
        if policy not in POLICIES:
            raise PlanError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if not workers:
            raise PlanError("a fleet needs at least one worker")
        if spill_factor < 0:
            raise PlanError(f"spill_factor must be >= 0, got {spill_factor}")
        self.workers = list(workers)
        self.policy = policy
        self.spill_factor = spill_factor
        self.trace: list[RouteDecision] | None = [] if trace else None
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        self._rr = 0
        self._seq = 0

    def route(
        self,
        model: str,
        dtype: DType,
        now: float,
        *,
        exclude: frozenset[int] = frozenset(),
    ) -> FleetWorker | None:
        """Pick the worker for one request (see module docstring).

        Down / recovering / breaker-open workers are skipped, as is any
        ``worker_id`` in ``exclude`` (hedges avoid workers already holding
        a copy).  Returns None when nothing is routable — only possible
        while a fault injector has taken workers out.
        """
        pool = [
            w for w in self.workers
            if w.worker_id not in exclude and w.routable(now)
        ]
        if not pool:
            return None
        affinity_hit = spilled = False
        backlogs: dict[str, float] = {}
        if self.policy == "round_robin":
            n = len(self.workers)
            for k in range(n):
                worker = self.workers[(self._rr + k) % n]
                if worker.worker_id not in exclude and worker.routable(now):
                    self._rr += k + 1
                    break
        else:
            backlogs = {w.name: w.estimated_backlog_s(now) for w in pool}

            def load(w: FleetWorker) -> tuple[float, int]:
                return (backlogs[w.name], w.worker_id)  # deterministic ties

            holders = [w for w in pool if w.holds_plan(model, dtype)]
            others = [w for w in pool if not w.holds_plan(model, dtype)]
            if not holders:
                worker = min(others, key=load)
            else:
                worker = min(holders, key=load)
                affinity_hit = True
                if others:
                    best_other = min(others, key=load)
                    # Tolerate spill_factor full micro-batches of imbalance
                    # before replicating the plan onto a fresh worker.
                    per = worker.per_request_cost_s(model, dtype) or 0.0
                    threshold = self.spill_factor * worker.server.max_batch * per
                    gap = backlogs[worker.name] - backlogs[best_other.name]
                    if gap > threshold:
                        worker = best_other
                        affinity_hit, spilled = False, True
        if self.trace is not None:
            self.trace.append(
                RouteDecision(
                    seq=self._seq,
                    model=model,
                    dtype=dtype.value,
                    worker=worker.name,
                    policy=self.policy,
                    affinity_hit=affinity_hit,
                    spilled=spilled,
                    backlog_s=backlogs,
                )
            )
        if self.tracer.enabled or self.metrics.enabled:
            self.tracer.instant(
                "fleet.route",
                t_s=now,
                pid=worker.name,
                seq=self._seq,
                model=model,
                dtype=dtype.value,
                policy=self.policy,
                affinity_hit=affinity_hit,
                spilled=spilled,
            )
            self.metrics.counter(
                "repro_routes_total", help="Routing decisions by outcome"
            ).inc(
                outcome=(
                    "spill" if spilled
                    else "affinity" if affinity_hit
                    else "least_backlog"
                ),
                policy=self.policy,
            )
        self._seq += 1
        return worker


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker slice of a fleet's aggregate accounting."""

    worker: str
    gpu: str
    requests: int
    images_served: int
    batches: int
    mean_batch: float
    busy_s: float
    plan_hits: int
    plan_misses: int
    evictions: int
    planner_invocations: int
    warm_starts: int = 0


@dataclass(frozen=True)
class FleetStats:
    """Fleet-wide accounting with the per-worker breakdown riding along."""

    requests: int
    images_served: int
    batches: int
    plan_hits: int
    plan_misses: int
    evictions: int
    planner_invocations: int
    warm_starts: int = 0
    per_worker: tuple[WorkerStats, ...] = field(default_factory=tuple)

    @property
    def mean_batch(self) -> float:
        return self.images_served / self.batches if self.batches else 0.0

    @property
    def plan_hit_rate(self) -> float:
        lookups = self.plan_hits + self.plan_misses
        return self.plan_hits / lookups if lookups else 0.0


class Fleet:
    """A set of per-GPU workers behind one scheduler.

    ``gpus`` may repeat (homogeneous scale-out) or mix presets
    (heterogeneous, e.g. ``[RTX_A4000, ORIN, ORIN]``); every worker gets its
    own :class:`ModelServer` sharing the fleet's clock.  The queued path
    mirrors the single-server API (``enqueue`` / ``step`` / ``pending`` /
    ``next_deadline``) so :func:`repro.serve.loadgen.fleet_replay` can drive
    it with the same discrete-event loop, and ``submit_analytic`` gives the
    synchronous routed path the CLI batch sweeps use.
    """

    def __init__(
        self,
        gpus: Sequence[GpuSpec],
        *,
        policy: str = "affinity",
        spill_factor: float = 2.0,
        trace: bool = False,
        max_batch: int = 8,
        max_delay_s: float = 2e-3,
        cache_capacity: int = 8,
        convention: str = "paper",
        max_chain: int = 2,
        seed: int = 0,
        # repro: allow[RPR001] injectable-clock default for interactive use;
        # fleet_replay drives every worker off one shared FakeClock instead
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        db=None,
        calibration=None,
        engine: str | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if not gpus:
            raise PlanError("a fleet needs at least one GPU")
        self.clock = clock
        #: observability sinks shared by the scheduler, the autoscaler, and
        #: every worker — autoscaled workers included, via _server_kwargs.
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        #: every dynamically added worker (autoscaling) boots with the same
        #: server configuration the fleet was constructed with.
        self._server_kwargs = dict(
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            cache_capacity=cache_capacity,
            convention=convention,
            max_chain=max_chain,
            seed=seed,
            clock=clock,
            sleep=sleep,
            db=db,
            calibration=calibration,
            engine=engine,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self._next_worker_id = 0
        #: one shared tuning DB warm-starts every worker: each preloads only
        #: the model-level records matching *its own* GPU, so heterogeneous
        #: fleets boot with per-silicon plans and serve their first request
        #: with zero planner invocations on the critical path.
        self.workers: list[FleetWorker] = []
        #: workers removed by the autoscaler; their accounting still rolls up
        #: into :meth:`stats` so a shrink never loses served-request history.
        self.retired: list[FleetWorker] = []
        for gpu in gpus:
            self._build_worker(gpu)
        self.scheduler = FleetScheduler(
            self.workers, policy, spill_factor=spill_factor, trace=trace,
            tracer=self.tracer, metrics=self.metrics,
        )
        # The scheduler routes over the fleet's *live* worker list, so
        # add_worker/remove_worker are visible to routing immediately.
        self.scheduler.workers = self.workers

    def _build_worker(self, gpu: GpuSpec) -> FleetWorker:
        worker = FleetWorker(
            self._next_worker_id, gpu, ModelServer(gpu, **self._server_kwargs)
        )
        # The worker's events land on its own process lane in trace exports
        # ("RTX#0", "RTX#1"), not the shared GPU-name lane.
        worker.server.lane = worker.name
        self._next_worker_id += 1
        self.workers.append(worker)
        return worker

    # ---- boot-time preplanning ---------------------------------------------------
    def preplan(
        self,
        models: Sequence[str],
        dtypes: Sequence[DType] = (DType.FP32,),
        *,
        workers: int = 1,
    ) -> int:
        """Plan every (worker GPU, model, dtype) combination before serving.

        Planning is the expensive boot-time step, and distinct plan
        identities are independent — so ``workers > 1`` fans them over a
        process pool (one planner pass per *distinct* ``(gpu, model,
        dtype)``; homogeneous fleets plan each identity once and install it
        on every worker sharing that GPU).  Plans land via
        :meth:`PlanCache.install`, counted as ``warm_starts``: the replay's
        plan-once accounting is identical for every worker count, and the
        plans themselves are bit-identical because the planner is
        deterministic per task.  Returns the number of cache installs.
        """
        if workers < 1:
            raise PlanError(f"workers must be >= 1, got {workers}")
        convention = self._server_kwargs["convention"]
        max_chain = self._server_kwargs["max_chain"]
        calibration = self._server_kwargs["calibration"]
        jobs: list[tuple] = []
        seen: set[tuple[str, str, str]] = set()
        for w in self.workers:
            for model in models:
                for dtype in dtypes:
                    ident = (w.gpu.name, model, dtype.value)
                    if ident not in seen:
                        seen.add(ident)
                        jobs.append((w.gpu, model, dtype, convention, max_chain, calibration))
        if workers == 1 or len(jobs) <= 1:
            plans = [_preplan_job(job) for job in jobs]
        else:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs)), mp_context=ctx
            ) as pool:
                plans = list(pool.map(_preplan_job, jobs))
        by_ident = {
            (job[0].name, job[1], job[2].value): plan for job, plan in zip(jobs, plans)
        }
        installed = 0
        for w in self.workers:
            for model in models:
                for dtype in dtypes:
                    plan = by_ident[(w.gpu.name, model, dtype.value)]
                    before = w.server.cache.stats.warm_starts
                    w.server.cache.install(
                        model, dtype, w.gpu, convention, max_chain, plan=plan
                    )
                    installed += w.server.cache.stats.warm_starts - before
        return installed

    # ---- elasticity (driven by repro.serve.autoscale) ---------------------------
    def add_worker(self, gpu: GpuSpec) -> FleetWorker:
        """Grow the fleet by one worker on ``gpu``, configured identically to
        the boot-time workers (shared clock, tuning DB, engine).  The new
        worker starts idle and cold — backlog-aware routing makes it
        attractive immediately."""
        return self._build_worker(gpu)

    def remove_worker(
        self, worker: FleetWorker, *, force: bool = False
    ) -> list[InferenceRequest]:
        """Retire one *idle* worker (empty queue, device not executing).

        The worker moves to :attr:`retired` so its serving history stays in
        :meth:`stats`; removing the last worker or a busy one is an error —
        the autoscaler only ever shrinks idle capacity.

        With ``force=True`` (fault-driven removal) a busy worker is retired
        anyway: its queued requests are drained and *returned* so the caller
        can requeue them on survivors, and any un-elapsed device occupancy
        is refunded so retired-worker utilization in :meth:`stats` stays
        consistent.  Returns the drained requests (empty when not forced).
        """
        if worker not in self.workers:
            raise PlanError(f"{worker.name} is not an active worker of this fleet")
        if len(self.workers) == 1:
            raise PlanError("cannot remove the last worker of a fleet")
        drained: list[InferenceRequest] = []
        now = self.clock()
        if worker.server.pending() or worker.busy_until > now:
            if not force:
                raise PlanError(f"cannot remove busy worker {worker.name}")
            drained = worker.server.drain()
            if worker.busy_until > now:
                worker.busy_s -= worker.busy_until - now
                worker.busy_until = now
        self.workers.remove(worker)
        self.retired.append(worker)
        return drained

    def rewarm(self, worker: FleetWorker) -> int:
        """Re-warm a recovering worker's plan cache from same-GPU peers.

        A crash wiped the worker's on-device plans (``PlanCache.clear``);
        before it takes traffic again, adopt every plan still resident on
        a peer with the same GPU — adoption shares the peer's materialized
        entry and counts as a warm start, never a planner invocation.
        Returns the number of plans adopted.
        """
        adopted = 0
        for peer in self.workers:
            if peer is worker or peer.gpu.name != worker.gpu.name:
                continue
            for key in peer.server.cache.keys():
                entry = peer.server.cache.peek(key)
                if entry is None or key in worker.server.cache:
                    continue
                worker.server.cache.adopt(entry)
                adopted += 1
        return adopted

    @property
    def policy(self) -> str:
        return self.scheduler.policy

    @property
    def trace(self) -> list[RouteDecision] | None:
        return self.scheduler.trace

    # ---- synchronous routed path ----------------------------------------------
    def _occupy(self, worker: FleetWorker, now: float, report: SessionReport) -> None:
        """Charge a synchronous batch to the worker's occupancy timeline, so
        later routing decisions see the device as busy (without this every
        backlog estimate stays 0 and affinity pins all traffic to worker 0)."""
        worker.busy_until = max(now, worker.busy_until) + report.latency_s
        worker.busy_s += report.latency_s

    def submit_analytic(
        self, model: str, batch_size: int = 1, dtype: DType = DType.FP32
    ) -> tuple[FleetWorker, SessionReport]:
        """Route one analytic batch and run it on the chosen worker."""
        now = self.clock()
        worker = self.scheduler.route(model, dtype, now)
        if worker is None:
            raise PlanError(f"no routable worker for {model} (fleet is down)")
        report = worker.server.submit_analytic(model, batch_size, dtype)
        self._occupy(worker, now, report)
        return worker, report

    def submit(
        self, model: str, inputs: np.ndarray, dtype: DType = DType.FP32
    ) -> tuple[FleetWorker, SessionReport]:
        """Route one functional batch and run it on the chosen worker."""
        now = self.clock()
        worker = self.scheduler.route(model, dtype, now)
        if worker is None:
            raise PlanError(f"no routable worker for {model} (fleet is down)")
        report = worker.server.submit(model, inputs, dtype)
        self._occupy(worker, now, report)
        return worker, report

    # ---- queued routed path ----------------------------------------------------
    def enqueue(
        self,
        model: str,
        inputs: np.ndarray | None = None,
        dtype: DType = DType.FP32,
        *,
        slo_s: float | None = None,
        priority: int = 0,
    ) -> tuple[FleetWorker, int]:
        """Route one request onto a worker's queue; returns (worker, its
        worker-local request id).  ``slo_s``/``priority`` thread through to
        :meth:`ModelServer.enqueue` (deadline-aware flushing per worker)."""
        worker = self.scheduler.route(model, dtype, self.clock())
        if worker is None:
            raise PlanError(f"no routable worker for {model} (fleet is down)")
        return worker, worker.server.enqueue(
            model, inputs, dtype, slo_s=slo_s, priority=priority
        )

    def pending(self) -> int:
        return sum(w.server.pending() for w in self.workers)

    def next_deadline(self) -> float | None:
        deadlines = [d for w in self.workers if (d := w.server.next_deadline()) is not None]
        return min(deadlines) if deadlines else None

    def step(self, *, force: bool = False) -> list[tuple[FleetWorker, InferenceResult]]:
        """Flush every worker's due micro-batches; results keep their worker
        so callers can advance per-device occupancy."""
        flushed: list[tuple[FleetWorker, InferenceResult]] = []
        for worker in self.workers:
            flushed.extend((worker, r) for r in worker.server.step(force=force))
        return flushed

    # ---- accounting -------------------------------------------------------------
    def stats(self) -> FleetStats:
        """Aggregate serving + plan-cache counters across the fleet (retired
        workers included: shrinking never loses history)."""
        members = sorted(self.workers + self.retired, key=lambda w: w.worker_id)
        per_worker = tuple(
            WorkerStats(
                worker=w.name,
                gpu=w.gpu.name,
                requests=w.server.stats.requests,
                images_served=w.server.stats.images_served,
                batches=w.server.stats.batches,
                mean_batch=w.server.stats.mean_batch,
                busy_s=w.busy_s,
                plan_hits=w.server.cache.stats.hits,
                plan_misses=w.server.cache.stats.misses,
                evictions=w.server.cache.stats.evictions,
                planner_invocations=w.server.cache.stats.planner_invocations,
                warm_starts=w.server.cache.stats.warm_starts,
            )
            for w in members
        )
        return FleetStats(
            requests=sum(s.requests for s in per_worker),
            images_served=sum(s.images_served for s in per_worker),
            batches=sum(s.batches for s in per_worker),
            plan_hits=sum(s.plan_hits for s in per_worker),
            plan_misses=sum(s.plan_misses for s in per_worker),
            evictions=sum(s.evictions for s in per_worker),
            planner_invocations=sum(s.planner_invocations for s in per_worker),
            warm_starts=sum(s.warm_starts for s in per_worker),
            per_worker=per_worker,
        )
