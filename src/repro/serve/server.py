"""Batched multi-model inference server over the simulated runtime.

:class:`ModelServer` is the serving front end the ROADMAP's throughput story
needs: requests for any registered model are planned **once** (via the LRU
:class:`~repro.serve.cache.PlanCache`), then executed through the batch-aware
session paths so per-launch overheads and weight traffic amortize across a
micro-batch.  Two entry points:

* :meth:`ModelServer.submit` / :meth:`ModelServer.submit_analytic` — the
  synchronous path: one call, one batched pass.
* :meth:`ModelServer.enqueue` + :meth:`ModelServer.step` /
  :meth:`ModelServer.serve_forever` — the queued path: requests accumulate
  per (model, precision) key and flush as one fused pass when a micro-batch
  fills (``max_batch``) or the oldest request's deadline (``max_delay_s``)
  expires.

Requests may carry a per-request SLO (``enqueue(..., slo_s=)``) and a
``priority``.  A queue holding deadline'd requests flushes *early* — at the
instant the tightest deadline's slack is about to run out, estimated via the
resident plan's analytic batch cost (which reflects tuning calibration when
the server was built with one) — so a partial batch never idles past the
point where its oldest request could still be served in time.  Priorities
order requests within their (model, precision) queue: higher priority flushes
first when a queue exceeds ``max_batch``.  With neither feature used, flush
instants reduce bit-exactly to the classic ``enqueued_at + max_delay_s``
arithmetic.

The clock is injectable so schedulers and tests can drive deadline flushing
deterministically (see :class:`~repro.serve.loadgen.FakeClock`).
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.dtypes import DType
from ..errors import PlanError, ShapeError
from ..gpu.fastpath import resolve_engine
from ..gpu.specs import GpuSpec
from ..obs import (
    BATCH_SIZE_BUCKETS,
    QUEUE_WAIT_BUCKETS_S,
    record_session_report,
    resolve_metrics,
    resolve_tracer,
)
from ..runtime.session import SessionReport
from .cache import CacheStats, PlanCache, PlanKey

__all__ = ["InferenceRequest", "InferenceResult", "ServerStats", "ModelServer"]


@dataclass
class InferenceRequest:
    """One queued request: a single image (or an analytic placeholder)."""

    id: int
    model: str
    dtype: DType
    input: np.ndarray | None  # None -> counters-only (analytic) execution
    enqueued_at: float
    #: absolute completion deadline (``enqueued_at + slo_s``), or None for
    #: the classic best-effort request.
    deadline_s: float | None = None
    #: higher flushes first within the (model, precision) queue.
    priority: int = 0


@dataclass(frozen=True)
class InferenceResult:
    """Completion record for one request, with its micro-batch context."""

    request_id: int
    model: str
    batch_seq: int  # which flushed micro-batch served this request
    batch_size: int
    wait_s: float  # time spent queued before the batch flushed
    exec_s: float  # simulated latency of the batched pass
    energy_per_image_j: float
    output: np.ndarray | None

    @property
    def latency_s(self) -> float:
        """Request latency: queue wait plus the batched execution."""
        return self.wait_s + self.exec_s


@dataclass
class ServerStats:
    """Aggregate serving counters (plan-cache stats ride along)."""

    requests: int = 0
    images_served: int = 0
    batches: int = 0
    sim_time_s: float = 0.0
    energy_j: float = 0.0
    plan_cache: CacheStats = field(default_factory=CacheStats)

    @property
    def mean_batch(self) -> float:
        return self.images_served / self.batches if self.batches else 0.0


class ModelServer:
    """Micro-batching inference server with memoized FusePlanner plans."""

    def __init__(
        self,
        gpu: GpuSpec,
        *,
        max_batch: int = 8,
        max_delay_s: float = 2e-3,
        cache_capacity: int = 8,
        convention: str = "paper",
        max_chain: int = 2,
        seed: int = 0,
        # repro: allow[RPR001] injectable-clock default for interactive use;
        # every deterministic replay passes a shared FakeClock instead
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        db=None,
        calibration=None,
        engine: str | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if max_batch < 1:
            raise PlanError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise PlanError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.gpu = gpu
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.convention = convention
        #: execution engine every functional batch runs on (None -> "fast";
        #: "reference" keeps the per-block interpreted launches).
        self.engine = resolve_engine(engine)
        if max_chain < 1:
            raise PlanError(f"max_chain must be >= 1, got {max_chain}")
        self.max_chain = max_chain
        #: observability sinks (default: shared no-ops, zero overhead) and
        #: the process lane this server's events land on in trace exports —
        #: Fleet overrides ``lane`` to the worker name.
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        self.lane = gpu.name
        #: ``calibration`` threads measurement-feedback factors into every
        #: plan this server builds; ``db`` (a :class:`repro.tune.records.
        #: TuningDB`) warm-starts the cache at construction time so tuned
        #: models never plan on the serving critical path.
        self.cache = PlanCache(
            capacity=cache_capacity, seed=seed, calibration=calibration,
            tracer=self.tracer, metrics=self.metrics,
        )
        if db is not None:
            self.cache.warm_start(
                db, gpu, convention=convention, max_chain=max_chain
            )
        self.clock = clock
        self.sleep = sleep
        self.stats = ServerStats(plan_cache=self.cache.stats)
        self._queues: OrderedDict[tuple[str, str], deque[InferenceRequest]] = OrderedDict()
        self._next_id = 0
        self._next_batch = 0

    # ---- synchronous path -----------------------------------------------------
    def submit(
        self, model: str, inputs: np.ndarray, dtype: DType = DType.FP32
    ) -> SessionReport:
        """Run one functional batched pass over ``inputs`` ((N, C, H, W) or a
        single (C, H, W) image) and return its report."""
        if inputs.ndim == 3:
            inputs = inputs[None]
        if inputs.ndim != 4:
            raise ShapeError(f"submit expects (N, C, H, W), got {inputs.shape}")
        cached = self.cache.get(
            model, dtype, self.gpu, self.convention, self.max_chain
        )
        report = cached.session.run_batch(inputs, engine=self.engine)
        self._account(report)
        self.stats.requests += inputs.shape[0]
        return report

    def submit_analytic(
        self, model: str, batch_size: int = 1, dtype: DType = DType.FP32
    ) -> SessionReport:
        """Price one batched pass (counters only, memoized per batch size)."""
        cached = self.cache.get(
            model, dtype, self.gpu, self.convention, self.max_chain
        )
        report = cached.analytic_report(batch_size)
        self._account(report)
        self.stats.requests += batch_size
        return report

    # ---- queued path -----------------------------------------------------------
    def enqueue(
        self,
        model: str,
        inputs: np.ndarray | None = None,
        dtype: DType = DType.FP32,
        *,
        slo_s: float | None = None,
        priority: int = 0,
    ) -> int:
        """Queue one request (one image, or analytic when ``inputs`` is None);
        returns its request id.  Nothing executes until :meth:`step` flushes.

        ``slo_s`` stamps an absolute deadline ``now + slo_s`` on the request,
        which arms deadline-aware early flushing for its queue (and plans the
        model eagerly if its plan is not yet resident, so slack estimates are
        accurate from the first batch — the planner runs in zero simulated
        time either way).  ``priority`` inserts the request ahead of any
        queued strictly-lower-priority requests (stable among equals).
        """
        if slo_s is not None and slo_s <= 0:
            raise PlanError(f"slo_s must be > 0, got {slo_s}")
        now = self.clock()
        req = InferenceRequest(
            id=self._next_id,
            model=model,
            dtype=dtype,
            input=inputs,
            enqueued_at=now,
            deadline_s=None if slo_s is None else now + slo_s,
            priority=priority,
        )
        self._next_id += 1
        if slo_s is not None and self.cache.peek(
            PlanKey.of(model, dtype, self.gpu, self.convention, self.max_chain)
        ) is None:
            self.cache.get(model, dtype, self.gpu, self.convention, self.max_chain)
        queue = self._queues.setdefault((model, dtype.value), deque())
        if priority and any(r.priority < priority for r in queue):
            idx = next(i for i, r in enumerate(queue) if r.priority < priority)
            queue.insert(idx, req)
        else:
            queue.append(req)
        self.stats.requests += 1
        if self.tracer.enabled or self.metrics.enabled:
            self.tracer.instant(
                "server.enqueue",
                t_s=now,
                pid=self.lane,
                request_id=req.id,
                model=model,
                dtype=dtype.value,
                priority=priority,
                slo_s=slo_s,
            )
            self.metrics.counter(
                "repro_requests_total", help="Requests enqueued"
            ).inc(worker=self.lane, model=model)
        return req.id

    def pending(self) -> int:
        """Requests currently queued across all (model, precision) keys."""
        return sum(len(q) for q in self._queues.values())

    def cancel(self, request_id: int) -> bool:
        """Remove one still-queued request (hedge first-wins cancellation).

        Returns False when the request is not queued here — already
        flushed, already served, or never enqueued on this server.
        """
        for key, queue in self._queues.items():
            for i, req in enumerate(queue):
                if req.id == request_id:
                    del queue[i]
                    if not queue:
                        del self._queues[key]
                    return True
        return False

    def drain(self) -> list[InferenceRequest]:
        """Pull every queued request off this server (crash failover path).

        Returns the drained requests in queue order so the caller can
        requeue them on surviving workers; batching state is reset.
        """
        drained: list[InferenceRequest] = []
        for queue in self._queues.values():
            drained.extend(queue)
        self._queues.clear()
        return drained

    def estimated_flush_cost_s(self, key: tuple[str, str], batch: int) -> float:
        """Analytic cost of flushing ``batch`` requests of queue ``key`` now,
        from the resident plan (peeked — never perturbs cache accounting);
        0.0 while the model is unplanned."""
        model, dtype_value = key
        entry = self.cache.peek(
            PlanKey(
                model=model,
                dtype=dtype_value,
                gpu=self.gpu.name,
                convention=self.convention,
                max_chain=self.max_chain,
            )
        )
        return 0.0 if entry is None else entry.analytic_report(batch).latency_s

    def _queue_due(self, key: tuple[str, str], queue: deque[InferenceRequest]) -> float:
        """Instant at which this (non-empty) queue's partial batch must flush:
        the classic formation deadline (oldest arrival + ``max_delay_s``), or
        earlier when a queued request's SLO slack — its deadline minus the
        estimated batch execution cost — runs out first."""
        due = min(r.enqueued_at for r in queue) + self.max_delay_s
        deadlines = [r.deadline_s for r in queue if r.deadline_s is not None]
        if deadlines:
            est = self.estimated_flush_cost_s(key, len(queue))
            due = min(due, min(deadlines) - est)
        return due

    def next_deadline(self) -> float | None:
        """Earliest instant at which a queued micro-batch must flush."""
        dues = [self._queue_due(k, q) for k, q in self._queues.items() if q]
        return min(dues) if dues else None

    def step(
        self, *, force: bool = False, max_flushes: int | None = None
    ) -> list[InferenceResult]:
        """Flush every due micro-batch: full batches always, partial ones
        once their oldest request has waited ``max_delay_s`` (or ``force``).

        ``max_flushes`` caps the number of micro-batches *executed* by this
        call (surplus due requests stay queued), which is how
        :meth:`serve_forever` enforces ``max_batches`` exactly.
        """
        now = self.clock()
        start = self._next_batch
        results: list[InferenceResult] = []

        def budget() -> int | None:
            if max_flushes is None:
                return None
            return max_flushes - (self._next_batch - start)

        for key in list(self._queues):
            queue = self._queues[key]
            while len(queue) >= self.max_batch and budget() != 0:
                results.extend(self._flush(queue, self.max_batch, now, budget()))
            # Same arithmetic as next_deadline(), so stepping a clock pinned
            # to the deadline always flushes (a - b >= d can round false when
            # a == b + d in floats).
            if (
                queue
                and budget() != 0
                and (force or now >= self._queue_due(key, queue))
            ):
                results.extend(self._flush(queue, len(queue), now, budget()))
            if not queue:
                del self._queues[key]
            if budget() == 0:
                break
        return results

    def serve_forever(
        self,
        *,
        max_batches: int | None = None,
        poll_s: float = 1e-4,
    ) -> list[InferenceResult]:
        """Serve until the queue drains (or ``max_batches`` flushes happen).

        The toy stand-in for a serving loop: repeatedly flush due batches,
        sleeping ``poll_s`` between polls so partial batches age past their
        deadline.  With a :class:`~repro.serve.loadgen.FakeClock` as the
        server's clock/sleep pair this is fully deterministic.
        """
        if max_batches is not None and max_batches < 1:
            raise PlanError(f"max_batches must be >= 1, got {max_batches}")
        results: list[InferenceResult] = []
        start = self._next_batch
        while self.pending():
            remaining = (
                None if max_batches is None
                else max_batches - (self._next_batch - start)
            )
            if remaining == 0:
                break
            flushed = self.step(max_flushes=remaining)
            if flushed:
                results.extend(flushed)
            else:
                self.sleep(poll_s)
        return results

    # ---- worker core (reused by repro.serve.fleet) ----------------------------
    def estimated_queue_cost_s(self) -> float:
        """Analytic cost of draining the current queues, for fleet routing.

        Prices each queued request at its plan's single-image analytic
        latency, using only plans already resident in the cache (peeked, so
        a routing probe never perturbs hit/miss stats or LRU recency).
        Requests for not-yet-planned models are priced at the mean known
        per-request cost (0 when nothing is planned yet, which makes a cold
        worker attractive — exactly when spilling to it is cheapest)."""
        total = 0.0
        unknown = 0
        known: list[float] = []
        for (model, dtype_value), queue in self._queues.items():
            if not queue:
                continue
            key = PlanKey(
                model=model,
                dtype=dtype_value,
                gpu=self.gpu.name,
                convention=self.convention,
                max_chain=self.max_chain,
            )
            entry = self.cache.peek(key)
            if entry is None:
                unknown += len(queue)
                continue
            per_request = entry.analytic_report(1).latency_s
            known.append(per_request)
            total += len(queue) * per_request
        if unknown and known:
            total += unknown * sum(known) / len(known)
        return total

    def estimated_drain_s(self, extra: tuple[str, str] | None = None) -> float:
        """Analytic cost of draining the current queues in ``max_batch``
        micro-batches, optionally with one hypothetical request appended to
        queue ``extra`` — the admission controller's completion projection.

        Unlike :meth:`estimated_queue_cost_s` (a per-request pessimistic
        *routing* signal), this prices the backlog the way it will actually
        execute: full batches at the batched analytic latency plus one
        remainder batch.  Only resident plans are consulted (peeked);
        unplanned queues price at 0.
        """
        total = 0.0
        # Insertion order, not a set: float summation order must not depend
        # on hash randomization or replay determinism breaks across runs.
        keys = list(self._queues)
        if extra is not None and extra not in self._queues:
            keys.append(extra)
        for key in keys:
            n = len(self._queues.get(key, ()))
            if extra == key:
                n += 1
            if not n:
                continue
            full, rest = divmod(n, self.max_batch)
            if full:
                total += full * self.estimated_flush_cost_s(key, self.max_batch)
            if rest:
                total += self.estimated_flush_cost_s(key, rest)
        return total

    def _flush(
        self,
        queue: deque[InferenceRequest],
        count: int,
        now: float,
        budget: int | None = None,
    ) -> list[InferenceResult]:
        """Pop up to ``count`` requests and execute them as *homogeneous*
        micro-batches: one batch per contiguous real/analytic run, arrival
        order preserved, each with its own ``batch_seq``.  A mixed span thus
        splits into sub-batches so requests that supplied real tensors always
        come back with outputs (analytic placeholders never demote them).

        ``budget`` caps the number of sub-batches executed; surplus requests
        stay queued for the next flush.
        """
        results: list[InferenceResult] = []
        popped = 0
        while popped < count and budget != 0:
            is_real = queue[0].input is not None
            batch = [queue.popleft()]
            popped += 1
            while popped < count and (queue[0].input is not None) == is_real:
                batch.append(queue.popleft())
                popped += 1
            results.extend(self._execute_batch(batch, now))
            if budget is not None:
                budget -= 1
        return results

    def _execute_batch(
        self, batch: list[InferenceRequest], now: float
    ) -> list[InferenceResult]:
        """Run one homogeneous micro-batch (all-real or all-analytic) and
        stamp its results — the execution/accounting core every flush path
        (and the fleet worker) funnels through."""
        first = batch[0]
        cached = self.cache.get(
            first.model, first.dtype, self.gpu, self.convention, self.max_chain
        )
        if first.input is not None:
            report = cached.session.run_batch(
                np.stack([r.input for r in batch]), engine=self.engine
            )
        else:
            report = cached.analytic_report(len(batch))
        self._account(report)
        seq = self._next_batch
        self._next_batch += 1
        if self.tracer.enabled or self.metrics.enabled:
            self._observe_batch(batch, report, seq, now)
        out = report.output
        return [
            InferenceResult(
                request_id=r.id,
                model=r.model,
                batch_seq=seq,
                batch_size=len(batch),
                wait_s=max(0.0, now - r.enqueued_at),
                exec_s=report.latency_s,
                energy_per_image_j=report.energy_per_image_j,
                output=out[i] if out is not None else None,
            )
            for i, r in enumerate(batch)
        ]

    def _observe_batch(
        self,
        batch: list[InferenceRequest],
        report: SessionReport,
        seq: int,
        now: float,
    ) -> None:
        """Emit one flushed micro-batch onto the obs layer: the batch and
        per-step kernel intervals on the execution lane (tid 0), one
        ``request.wait`` interval per request on its own lane (tid 2+id),
        and the queue-wait / batch-size histograms.  Only called when a
        tracer or registry is live, so the default hot path never pays."""
        record_session_report(
            self.tracer, self.metrics, report,
            start_s=now, pid=self.lane, batch_seq=seq,
        )
        wait_hist = self.metrics.histogram(
            "repro_queue_wait_seconds", QUEUE_WAIT_BUCKETS_S,
            help="Request queue wait before its batch flushed",
        )
        for r in batch:
            self.tracer.add_span(
                "request.wait",
                min(r.enqueued_at, now),
                now,
                pid=self.lane,
                tid=2 + r.id,
                request_id=r.id,
                model=r.model,
                batch_seq=seq,
            )
            wait_hist.observe(max(0.0, now - r.enqueued_at), worker=self.lane)
        self.metrics.histogram(
            "repro_batch_size", BATCH_SIZE_BUCKETS,
            help="Requests per flushed micro-batch",
        ).observe(len(batch), worker=self.lane)

    def _account(self, report: SessionReport) -> None:
        self.stats.images_served += report.batch_size
        self.stats.batches += 1
        self.stats.sim_time_s += report.latency_s
        self.stats.energy_j += report.energy_j
