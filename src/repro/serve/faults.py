"""Deterministic fault injection, retries, and failover for the fleet.

Production inference fleets treat worker failure as an input, not an
exception: GPUs crash (MTBF), thermally throttle, drop individual batches,
and come back (MTTR).  This module makes all of that a *replayable
artifact* on the shared simulated clock:

- :class:`FaultEvent` / :class:`FaultPlan` — a declarative, validated
  schedule of ``crash`` / ``slowdown`` / ``transient`` / ``recover``
  events, serialized as canonical JSONL exactly like request traces
  (byte-identical ``save`` -> ``load`` round trip), plus a seeded
  :meth:`FaultPlan.chaos` generator drawing exponential crash/recover
  times from MTBF/MTTR.
- :class:`RetryPolicy` — bounded attempts, exponential backoff with
  *deterministic* jitter (an integer hash of ``(request, attempt)``, so
  no RNG draw-order sensitivity), a retry budget as a fraction of
  offered load, and an optional hedged duplicate after a p99-based
  delay with first-wins cancellation.
- :class:`CircuitBreaker` — per-worker consecutive-failure breaker with
  a half-open probe, consulted by routing via ``FleetWorker.routable``.
- :class:`FaultInjector` — the chaos runtime: an event heap on the
  replay clock that kills in-flight batches on crash, drains and
  requeues queued work to survivors, arms transient batch failures,
  applies thermal-throttle factors, schedules recovery probes, and
  re-warms a recovering worker's ``PlanCache`` from same-GPU peers
  before it takes traffic.  ``fleet_replay`` drives it; the injector
  reports a frozen :class:`FaultStats` (retries, hedges, requeues,
  losses, per-worker downtime, availability).

Everything is scheduled on the injected clock — never ``time.sleep`` —
so a chaos replay is replay-twice byte-identical, and a replay with no
plan armed never constructs an injector at all (zero-cost path).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..errors import PlanError
from ..obs import resolve_metrics, resolve_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .fleet import Fleet, FleetWorker
    from .server import InferenceResult

__all__ = [
    "FAULT_KINDS",
    "WORKER_HEALTH",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "RetryPolicy",
]

#: worker health state machine: healthy -> degraded (throttled) and
#: healthy -> down -> recovering -> healthy; routing accepts the first two.
WORKER_HEALTH = ("healthy", "degraded", "down", "recovering")

#: event vocabulary a FaultPlan may schedule against a worker.
FAULT_KINDS = ("crash", "slowdown", "transient", "recover")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: at ``t``, do ``kind`` to worker ``worker``.

    ``factor`` only matters for ``slowdown``: batch execution on the
    degraded worker is stretched by that multiple until it recovers.
    """

    t: float
    worker: int
    kind: str
    factor: float = 1.0

    def describe(self) -> str:
        extra = f" x{self.factor:g}" if self.kind == "slowdown" else ""
        return f"t={self.t * 1e3:.3f}ms worker#{self.worker} {self.kind}{extra}"


def _validate_events(events: Sequence[FaultEvent]) -> None:
    last = 0.0
    for i, ev in enumerate(events):
        if ev.kind not in FAULT_KINDS:
            raise PlanError(
                f"fault event {i}: unknown kind {ev.kind!r} (choose from {FAULT_KINDS})"
            )
        if ev.t < 0:
            raise PlanError(f"fault event {i}: negative timestamp {ev.t}")
        if ev.t < last:
            raise PlanError(
                f"fault event {i}: timestamps must be non-decreasing ({ev.t} < {last})"
            )
        if ev.worker < 0:
            raise PlanError(f"fault event {i}: negative worker id {ev.worker}")
        if ev.kind == "slowdown" and ev.factor < 1.0:
            raise PlanError(
                f"fault event {i}: slowdown factor must be >= 1.0, got {ev.factor}"
            )
        last = ev.t


@dataclass(frozen=True)
class FaultPlan:
    """A validated, time-ordered schedule of fault events.

    Plans serialize to one-record-per-line canonical JSON (sorted keys,
    no spaces) so a chaos scenario is a diffable, replayable artifact
    exactly like a request trace: ``load(save(plan)) == plan`` and the
    re-written file is byte-identical.
    """

    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        _validate_events(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def save(self, path: "str | Path") -> Path:
        """Write the plan as canonical JSONL; returns the path."""
        out = Path(path)
        lines = []
        for ev in self.events:
            rec = {"t": ev.t, "worker": ev.worker, "kind": ev.kind}
            if ev.kind == "slowdown":
                rec["factor"] = ev.factor
            lines.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
        out.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        return out

    @classmethod
    def load(cls, path: "str | Path") -> "FaultPlan":
        """Read a plan back from :meth:`save` output (or hand-written JSONL)."""
        src = Path(path)
        if not src.exists():
            raise PlanError(f"fault plan not found: {src}")
        events = []
        for lineno, line in enumerate(src.read_text(encoding="utf-8").splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise PlanError(f"{src}:{lineno}: invalid JSON: {exc}") from exc
            if not isinstance(rec, dict):
                raise PlanError(f"{src}:{lineno}: expected an object per line")
            try:
                events.append(
                    FaultEvent(
                        t=float(rec["t"]),
                        worker=int(rec["worker"]),
                        kind=str(rec["kind"]),
                        factor=float(rec.get("factor", 1.0)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise PlanError(f"{src}:{lineno}: bad fault record: {exc}") from exc
        return cls(tuple(events))

    @classmethod
    def chaos(
        cls,
        n_workers: int,
        duration_s: float,
        *,
        mtbf_s: float,
        mttr_s: float,
        seed: int = 0,
        slowdown_factor: float = 1.0,
    ) -> "FaultPlan":
        """Synthesize a seeded crash/recover schedule from MTBF / MTTR.

        Each worker alternates exponential up-times (mean ``mtbf_s``) and
        down-times (mean ``mttr_s``) inside ``[0, duration_s)``.  When
        ``slowdown_factor > 1`` the fault becomes a thermal throttle
        instead of a crash (still paired with a ``recover``).
        """
        if n_workers < 1:
            raise PlanError(f"chaos plan needs >= 1 worker, got {n_workers}")
        if duration_s <= 0 or mtbf_s <= 0 or mttr_s <= 0:
            raise PlanError("chaos plan needs positive duration, mtbf and mttr")
        rng = np.random.default_rng(seed)
        kind = "slowdown" if slowdown_factor > 1.0 else "crash"
        events: list[FaultEvent] = []
        for wid in range(n_workers):
            t = float(rng.exponential(mtbf_s))
            while t < duration_s:
                events.append(FaultEvent(t=t, worker=wid, kind=kind, factor=slowdown_factor))
                t += float(rng.exponential(mttr_s))
                events.append(FaultEvent(t=t, worker=wid, kind="recover"))
                t += float(rng.exponential(mtbf_s))
        events.sort(key=lambda ev: (ev.t, ev.worker))
        return cls(tuple(events))

    def describe(self) -> str:
        head = f"FaultPlan: {len(self.events)} event(s)"
        return "\n".join([head] + [f"  {ev.describe()}" for ev in self.events])


def _jitter_unit(request_seq: int, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` from an integer hash.

    A splitmix-style mix of ``(request_seq, attempt)`` — no RNG object, so
    jitter is insensitive to the order retries are scheduled in.
    """
    x = (request_seq * 0x9E3779B97F4A7C15 + attempt * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, budgeted re-submission of failed requests.

    ``max_attempts`` counts the first submission: 3 means the original
    plus at most two retries.  Backoff for retry *k* (1-based) is
    ``backoff_s * backoff_factor**(k-1)``, stretched by up to ``jitter``
    fraction via a deterministic hash of the request — no shared RNG.
    ``budget`` caps total retries fleet-wide at that fraction of offered
    load; ``hedge_delay_s`` (if set) launches one duplicate of a request
    still unserved after that long, first copy to finish wins.
    """

    max_attempts: int = 3
    backoff_s: float = 2e-4
    backoff_factor: float = 2.0
    jitter: float = 0.5
    budget: float = 0.2
    hedge_delay_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PlanError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise PlanError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise PlanError(f"backoff_factor must be >= 1.0, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise PlanError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.budget < 0:
            raise PlanError(f"budget must be >= 0, got {self.budget}")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise PlanError(f"hedge_delay_s must be positive, got {self.hedge_delay_s}")

    def backoff(self, request_seq: int, retry_index: int) -> float:
        """Delay before retry ``retry_index`` (1-based) of request ``request_seq``."""
        if retry_index < 1:
            raise PlanError(f"retry_index is 1-based, got {retry_index}")
        base = self.backoff_s * self.backoff_factor ** (retry_index - 1)
        return base * (1.0 + self.jitter * _jitter_unit(request_seq, retry_index))

    def describe(self) -> str:
        hedge = (
            f"hedge after {self.hedge_delay_s * 1e3:.3f}ms"
            if self.hedge_delay_s is not None
            else "no hedging"
        )
        return (
            f"RetryPolicy: {self.max_attempts} attempt(s), backoff "
            f"{self.backoff_s * 1e3:.3f}ms x{self.backoff_factor:g} "
            f"(jitter {self.jitter:g}), budget {self.budget:g} of offered load, {hedge}"
        )


class CircuitBreaker:
    """Per-worker breaker: closed -> open on consecutive failures,
    open -> half-open after ``reset_s`` (one probe request), half-open ->
    closed on success or straight back to open on failure.
    """

    __slots__ = ("failures", "reset_s", "state", "threshold", "trips", "until")

    def __init__(self, threshold: int = 3, reset_s: float = 1e-3) -> None:
        if threshold < 1:
            raise PlanError(f"breaker threshold must be >= 1, got {threshold}")
        if reset_s <= 0:
            raise PlanError(f"breaker reset_s must be positive, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self.state = "closed"
        self.failures = 0
        self.trips = 0
        self.until = 0.0

    def allows(self, now: float) -> bool:
        """May this worker take traffic at ``now``?  Open -> half-open lazily."""
        if self.state == "open":
            if now < self.until:
                return False
            self.state = "half_open"
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when the breaker (re)opens."""
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            self.state = "open"
            self.until = now + self.reset_s
            self.failures = 0
            self.trips += 1
            return True
        return False

    def describe(self) -> str:
        return (
            f"CircuitBreaker[{self.state}]: threshold {self.threshold}, "
            f"reset {self.reset_s * 1e3:.3f}ms, trips {self.trips}"
        )


@dataclass(frozen=True)
class FaultStats:
    """Chaos accounting for one fleet replay (frozen, report-ready)."""

    crashes: int
    slowdowns: int
    transients: int
    recoveries: int
    retries: int
    budget_denied: int
    requeues: int
    hedges: int
    hedges_won: int
    hedges_wasted: int
    hedges_cancelled: int
    breaker_trips: int
    lost: int
    downtime_s: tuple[tuple[str, float], ...]
    availability: float

    def describe(self) -> str:
        down = ", ".join(f"{name} {s * 1e3:.3f}ms" for name, s in self.downtime_s if s > 0)
        lines = [
            (
                f"faults: {self.crashes} crash / {self.slowdowns} slow / "
                f"{self.transients} transient / {self.recoveries} recover"
            ),
            (
                f"retries: {self.retries} ({self.budget_denied} budget-denied), "
                f"requeues: {self.requeues}, breaker trips: {self.breaker_trips}"
            ),
            (
                f"hedges: {self.hedges} launched, {self.hedges_won} won, "
                f"{self.hedges_cancelled} cancelled, {self.hedges_wasted} wasted"
            ),
            f"lost requests: {self.lost}",
            f"availability: {self.availability * 100:.3f}%"
            + (f" (downtime {down})" if down else ""),
        ]
        return "\n".join(lines)


class _Logical:
    """One accepted request across all its physical copies (retries, hedges)."""

    __slots__ = (
        "arrival_t",
        "attempts",
        "done",
        "dtype",
        "model",
        "outstanding",
        "priority",
        "seq",
        "slo_s",
    )

    def __init__(self, seq, arrival_t, model, dtype, slo_s, priority):
        self.seq = seq
        self.arrival_t = arrival_t
        self.model = model
        self.dtype = dtype
        self.slo_s = slo_s
        self.priority = priority
        self.attempts = 1
        self.done = False
        #: live physical copies as (worker_id, request_id) pairs
        self.outstanding: set[tuple[int, int]] = set()


class _Flight:
    """One flushed batch between flush and settle (deferred commit).

    With an injector armed, batch results are not committed at flush time:
    they settle at ``start + exec_s`` so a crash in between can void them.
    """

    __slots__ = ("dead", "exec_s", "failed", "flush_now", "results", "start", "worker")

    def __init__(self, worker, results, start, exec_s, flush_now):
        self.worker = worker
        self.results = results
        self.start = start
        self.exec_s = exec_s
        self.flush_now = flush_now
        self.failed = False
        self.dead = False


@dataclass
class FaultInjector:
    """The chaos runtime: replays a :class:`FaultPlan` against a fleet.

    ``fleet_replay`` owns the clock and calls in:

    - :meth:`track` for each accepted arrival (after admission),
    - :meth:`on_flush` for each flushed batch (deferring its commit),
    - :meth:`next_t` / :meth:`process` to interleave fault, settle,
      retry, hedge and probe events with arrivals and deadline flushes,
    - :meth:`finalize` once drained, for the :class:`FaultStats`.

    Submission and latency/SLO accounting stay in the replay via the
    ``submit`` / ``commit`` callbacks bound at construction, so the
    injector never duplicates the no-fault path's arithmetic.
    """

    fleet: "Fleet"
    plan: FaultPlan
    retry: "RetryPolicy | None" = None
    offered: int = 0
    probe_s: float = 1e-4
    breaker_threshold: int = 3
    breaker_reset_s: float = 1e-3
    submit: "Callable[..., bool] | None" = None
    commit: "Callable[..., None] | None" = None
    tracer: object = None
    metrics: object = None

    # accounting (finalized into FaultStats)
    crashes: int = 0
    slowdowns: int = 0
    transients: int = 0
    recoveries: int = 0
    retries: int = 0
    budget_denied: int = 0
    requeues: int = 0
    hedges: int = 0
    hedges_won: int = 0
    hedges_wasted: int = 0
    hedges_cancelled: int = 0
    lost: int = 0

    _heap: list = field(default_factory=list)
    _seq: int = 0
    _copies: dict = field(default_factory=dict)
    _flights: dict = field(default_factory=dict)
    _parked: list = field(default_factory=list)
    _pending_retries: int = 0

    def __post_init__(self) -> None:
        self.tracer = resolve_tracer(self.tracer)
        self.metrics = resolve_metrics(self.metrics)
        if self.probe_s <= 0:
            raise PlanError(f"probe_s must be positive, got {self.probe_s}")
        self._retry_budget = (
            int(self.retry.budget * self.offered) if self.retry is not None else 0
        )
        for ev in self.plan.events:
            self._push(ev.t, "plan", ev)

    # -- event heap -------------------------------------------------------

    def _push(self, t: float, kind: str, payload) -> None:
        heapq.heappush(self._heap, (t, self._seq, kind, payload))
        self._seq += 1

    def next_t(self) -> "float | None":
        """Simulated instant of the earliest pending injector event."""
        return self._heap[0][0] if self._heap else None

    def pending(self) -> bool:
        """Is there outstanding chaos work the drain loop must still run?

        True while any physical copy is queued or in flight, any request
        is parked awaiting capacity, or any retry release is scheduled.
        Trailing plan events with no work attached do not hold the replay
        open.
        """
        if not self._heap:
            return False
        return bool(self._copies) or bool(self._parked) or self._pending_retries > 0

    def process(self, now: float) -> None:
        """Apply every scheduled event with ``t <= now`` in heap order."""
        while self._heap and self._heap[0][0] <= now:
            t, _, kind, payload = heapq.heappop(self._heap)
            if kind == "plan":
                self._apply_plan_event(payload, t)
            elif kind == "settle":
                self._settle(payload, t)
            elif kind == "retry":
                self._pending_retries -= 1
                self._release_retry(payload, t)
            elif kind == "hedge":
                self._launch_hedge(payload, t)
            else:  # probe
                self._probe(payload, t)

    # -- request tracking -------------------------------------------------

    def track(self, worker, rid, *, arrival_t, model, dtype, slo_s, priority, now):
        """Register an accepted arrival's first physical copy."""
        logical = _Logical(self._seq, arrival_t, model, dtype, slo_s, priority)
        self._seq += 1
        self.register(worker, rid, logical, is_hedge=False)
        if self.retry is not None and self.retry.hedge_delay_s is not None:
            self._push(now + self.retry.hedge_delay_s, "hedge", logical)
        return logical

    def park(self, *, arrival_t, model, dtype, slo_s, priority) -> None:
        """Hold an accepted arrival that found no routable worker."""
        logical = _Logical(self._seq, arrival_t, model, dtype, slo_s, priority)
        self._seq += 1
        self._parked.append(logical)
        self._obs_instant("fault.parked", arrival_t, "fleet", model=model)

    def register(self, worker, rid, logical, *, is_hedge) -> None:
        key = (worker.worker_id, rid)
        self._copies[key] = (worker, logical, is_hedge)
        logical.outstanding.add(key)

    def _resubmit(self, logical, now: float) -> None:
        """Route a logical back into the fleet, or park it if nothing is up."""
        assert self.submit is not None
        if not self.submit(logical, now):
            self._parked.append(logical)

    def _release_parked(self, now: float) -> None:
        if not self._parked:
            return
        still = []
        for logical in self._parked:
            if not self.submit(logical, now):
                still.append(logical)
        self._parked = still

    # -- fault application ------------------------------------------------

    def _worker_by_id(self, wid: int):
        for worker in self.fleet.workers:
            if worker.worker_id == wid:
                return worker
        return None

    def _apply_plan_event(self, ev: FaultEvent, now: float) -> None:
        worker = self._worker_by_id(ev.worker)
        if worker is None:
            return
        if ev.kind == "crash":
            self._crash(worker, now)
        elif ev.kind == "slowdown":
            self._slowdown(worker, ev.factor, now)
        elif ev.kind == "transient":
            self._transient(worker, now)
        else:
            self._recover(worker, now)

    def _crash(self, worker, now: float) -> None:
        if worker.health == "down":
            return
        self.crashes += 1
        self._obs_fault("crash", worker, now)
        worker.health = "down"
        worker.down_since = now
        worker.throttle = 1.0
        worker.pending_transient = 0
        # Void in-flight batches: refund the un-elapsed device time per
        # flight (intervals may have idle gaps, so busy_until - now would
        # over-refund) and requeue their requests to survivors.
        for flight in self._flights.pop(worker.worker_id, []):
            flight.dead = True
            end = flight.start + flight.exec_s
            if end > now:
                worker.busy_s -= end - max(flight.start, now)
            for result in flight.results:
                self._drop_copy(worker.worker_id, result.request_id, now)
        if worker.busy_until > now:
            worker.busy_until = now
        # Drain the queue to survivors and lose the on-device plan cache:
        # a reset GPU re-warms from peers at recovery.
        for req in worker.server.drain():
            self._drop_copy(worker.worker_id, req.id, now)
        worker.server.cache.clear()

    def _slowdown(self, worker, factor: float, now: float) -> None:
        if worker.health == "down":
            return
        self.slowdowns += 1
        worker.health = "degraded"
        worker.throttle = factor
        self._obs_fault("slowdown", worker, now, factor=factor)

    def _transient(self, worker, now: float) -> None:
        if worker.health == "down":
            return
        self.transients += 1
        worker.pending_transient += 1
        self._obs_fault("transient", worker, now)

    def _recover(self, worker, now: float) -> None:
        if worker.health == "down":
            self.recoveries += 1
            worker.health = "recovering"
            adopted = self.fleet.rewarm(worker)
            self._obs_fault("recover", worker, now, adopted=adopted)
            self._push(now + self.probe_s, "probe", worker)
        elif worker.health == "degraded":
            self.recoveries += 1
            worker.health = "healthy"
            worker.throttle = 1.0
            self._obs_fault("recover", worker, now)

    def _probe(self, worker, now: float) -> None:
        """Health-check probe: a recovering worker passes and takes traffic."""
        if worker.health != "recovering":
            return  # crashed again before the probe fired
        worker.health = "healthy"
        if worker.down_since is not None:
            worker.downtime_s += now - worker.down_since
            worker.down_since = None
        self._obs_instant("fault.probe", now, worker.name, outcome="pass")
        self._release_parked(now)

    # -- flight lifecycle -------------------------------------------------

    def on_flush(self, worker, results: "Iterable[InferenceResult]", start, exec_s, now):
        """Defer a flushed batch's commit until it settles at ``start + exec_s``."""
        flight = _Flight(worker, list(results), start, exec_s, now)
        if worker.pending_transient > 0:
            worker.pending_transient -= 1
            flight.failed = True
            self._obs_instant(
                "fault.transient_failure", now, worker.name, batch=len(flight.results)
            )
        self._flights.setdefault(worker.worker_id, []).append(flight)
        self._push(start + exec_s, "settle", flight)

    def _settle(self, flight: _Flight, now: float) -> None:
        if flight.dead:
            return
        flight.dead = True
        worker = flight.worker
        flights = self._flights.get(worker.worker_id)
        if flights is not None:
            flights.remove(flight)
            if not flights:
                del self._flights[worker.worker_id]
        if flight.failed:
            self._settle_failure(flight, worker, now)
        else:
            self._settle_success(flight, worker, now)

    def _settle_failure(self, flight: _Flight, worker, now: float) -> None:
        breaker = self._breaker(worker)
        if breaker.record_failure(now):
            self._obs_instant("breaker.open", now, worker.name, trips=breaker.trips)
            self._count("repro_breaker_transitions_total", state="open")
        for result in flight.results:
            entry = self._copies.pop((worker.worker_id, result.request_id), None)
            if entry is None:
                continue
            _, logical, _ = entry
            logical.outstanding.discard((worker.worker_id, result.request_id))
            if logical.done or logical.outstanding:
                continue
            self._schedule_retry(logical, now)

    def _settle_success(self, flight: _Flight, worker, now: float) -> None:
        if worker.breaker is not None:
            was_open = worker.breaker.state != "closed"
            worker.breaker.record_success()
            if was_open:
                self._obs_instant("breaker.close", now, worker.name)
                self._count("repro_breaker_transitions_total", state="closed")
        for result in flight.results:
            key = (worker.worker_id, result.request_id)
            entry = self._copies.pop(key, None)
            if entry is None:
                continue
            _, logical, is_hedge = entry
            logical.outstanding.discard(key)
            if logical.done:
                # a sibling copy already won; this execution was wasted
                self.hedges_wasted += 1
                self._count("repro_hedges_total", outcome="wasted")
                continue
            logical.done = True
            if is_hedge:
                self.hedges_won += 1
                self._count("repro_hedges_total", outcome="won")
            assert self.commit is not None
            self.commit(worker, result, flight.start, flight.exec_s, flight.flush_now, logical)
            self._cancel_siblings(logical, now)

    def _cancel_siblings(self, logical, now: float) -> None:
        """First copy wins: pull the still-queued duplicates back out."""
        for wid, rid in list(logical.outstanding):
            entry = self._copies.get((wid, rid))
            if entry is None:
                continue
            other = entry[0]
            if other.server.cancel(rid):
                self._copies.pop((wid, rid), None)
                logical.outstanding.discard((wid, rid))
                self.hedges_cancelled += 1
                self._obs_instant("hedge.cancel", now, other.name, request=rid)
                self._count("repro_hedges_total", outcome="cancelled")
            # else: already flushed — its settle will count it as wasted

    def _drop_copy(self, wid: int, rid: int, now: float) -> None:
        """A copy died with its worker; requeue the logical if it was the last."""
        entry = self._copies.pop((wid, rid), None)
        if entry is None:
            return
        _, logical, _ = entry
        logical.outstanding.discard((wid, rid))
        if logical.done or logical.outstanding:
            return
        self.requeues += 1
        self._count("repro_requeues_total")
        self._resubmit(logical, now)

    # -- retries & hedges -------------------------------------------------

    def _schedule_retry(self, logical, now: float) -> None:
        if self.retry is None or logical.attempts >= self.retry.max_attempts:
            self._lose(logical, now, reason="attempts")
            return
        if self.retries >= self._retry_budget:
            self.budget_denied += 1
            self._count("repro_retries_total", outcome="budget_denied")
            self._lose(logical, now, reason="budget")
            return
        delay = self.retry.backoff(logical.seq, logical.attempts)
        logical.attempts += 1
        self.retries += 1
        self._pending_retries += 1
        self._count("repro_retries_total", outcome="scheduled")
        self._obs_instant(
            "retry.scheduled", now, "fleet",
            request=logical.seq, attempt=logical.attempts, delay_s=delay,
        )
        self._push(now + delay, "retry", logical)

    def _release_retry(self, logical, now: float) -> None:
        if logical.done or logical.outstanding:
            return
        self._resubmit(logical, now)

    def _launch_hedge(self, logical, now: float) -> None:
        if logical.done or not logical.outstanding:
            # served already, or failed and in the retry path — don't hedge
            return
        exclude = frozenset(wid for wid, _ in logical.outstanding)
        assert self.submit is not None
        if self.submit(logical, now, exclude=exclude, is_hedge=True):
            self.hedges += 1
            self._obs_instant("hedge.launch", now, "fleet", request=logical.seq)
            self._count("repro_hedges_total", outcome="launched")

    def _lose(self, logical, now: float, *, reason: str) -> None:
        self.lost += 1
        self._obs_instant("request.lost", now, "fleet", request=logical.seq, reason=reason)
        self._count("repro_lost_requests_total", reason=reason)

    # -- breaker ----------------------------------------------------------

    def _breaker(self, worker) -> CircuitBreaker:
        if worker.breaker is None:
            worker.breaker = CircuitBreaker(self.breaker_threshold, self.breaker_reset_s)
        return worker.breaker

    # -- obs --------------------------------------------------------------

    def _obs_instant(self, name: str, t: float, pid: str, **attrs) -> None:
        if self.tracer.enabled:
            self.tracer.instant(name, t_s=t, pid=pid, **attrs)

    def _count(self, name: str, **labels) -> None:
        if self.metrics.enabled:
            self.metrics.counter(name, help="Fault-injection accounting").inc(**labels)

    def _obs_fault(self, kind: str, worker, now: float, **attrs) -> None:
        self._obs_instant(f"fault.{kind}", now, worker.name, **attrs)
        self._count("repro_faults_total", kind=kind)

    # -- finalization -----------------------------------------------------

    def finalize(self, finish_t: float, duration_s: float) -> FaultStats:
        """Close the books: park losses, trailing downtime, availability."""
        for logical in self._parked:
            self._lose(logical, finish_t, reason="no_capacity")
        self._parked = []
        members = sorted(
            list(self.fleet.workers) + list(self.fleet.retired),
            key=lambda w: w.worker_id,
        )
        downtime = []
        for worker in members:
            total = worker.downtime_s
            if worker.down_since is not None:
                total += max(0.0, finish_t - worker.down_since)
            downtime.append((worker.name, total))
        window = max(duration_s, 1e-12) * max(len(members), 1)
        availability = max(0.0, 1.0 - sum(s for _, s in downtime) / window)
        trips = sum(w.breaker.trips for w in members if w.breaker is not None)
        return FaultStats(
            crashes=self.crashes,
            slowdowns=self.slowdowns,
            transients=self.transients,
            recoveries=self.recoveries,
            retries=self.retries,
            budget_denied=self.budget_denied,
            requeues=self.requeues,
            hedges=self.hedges,
            hedges_won=self.hedges_won,
            hedges_wasted=self.hedges_wasted,
            hedges_cancelled=self.hedges_cancelled,
            breaker_trips=trips,
            lost=self.lost,
            downtime_s=tuple(downtime),
            availability=availability,
        )
