"""repro — reproduction of "Fusing Depthwise and Pointwise Convolutions for
Efficient Inference on GPUs" (Qararyah et al., ICPP 2024).

Public API tour:

* :mod:`repro.core` — dtypes, reference convolutions, tiling math, INT8
  quantization, FCM taxonomy.
* :mod:`repro.ir` — layer specs, model DAGs, block builders.
* :mod:`repro.gpu` — simulated GPU substrate (Table I presets, memory
  hierarchy with access metering, roofline timing, energy model).
* :mod:`repro.kernels` — simulated LBL and fused (FCM) kernels.
* :mod:`repro.planner` — FusePlanner cost models (paper Eq. 1-4) and search.
* :mod:`repro.baselines` — cuDNN-like and TVM-like comparators.
* :mod:`repro.models` — MobileNetV1/V2, Xception, ProxylessNAS, CeiT, CMT.
* :mod:`repro.runtime` — end-to-end inference sessions (single and batched).
* :mod:`repro.serve` — plan-caching, micro-batching model server + load replay.
* :mod:`repro.tune` — measurement-feedback autotuning (tuning records,
  calibration fitting, serving warm-start).
* :mod:`repro.experiments` — harnesses regenerating every paper table/figure.
"""

from .core import DType, FcmType
from .gpu import ALL_GPUS, GTX1660, ORIN, RTX_A4000, GpuSpec, gpu_by_name
from .ir import ConvKind, ConvSpec, ModelGraph

__version__ = "1.0.0"

__all__ = [
    "DType",
    "FcmType",
    "ALL_GPUS",
    "GTX1660",
    "ORIN",
    "RTX_A4000",
    "GpuSpec",
    "gpu_by_name",
    "ConvKind",
    "ConvSpec",
    "ModelGraph",
    "__version__",
]
