"""Command-line interface: regenerate paper artifacts and plan models.

Usage:
    python -m repro.cli table2 --dtype int8
    python -m repro.cli fig6 --dtype fp32
    python -m repro.cli fig10 --dtype fp32
    python -m repro.cli plan mobilenet_v2 --gpu RTX --dtype int8
    python -m repro.cli gpus
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.dtypes import DType
from .gpu.specs import ALL_GPUS, gpu_by_name

__all__ = ["main"]


def _dtype(name: str) -> DType:
    return DType.INT8 if name.lower() == "int8" else DType.FP32


def _cmd_gpus(_args: argparse.Namespace) -> int:
    from .experiments.reporting import format_table

    rows = [
        [g.name, g.compute_capability, g.sm_count, g.cuda_cores, g.l1_kb,
         g.shared_kb, f"{g.l2_mb:g}", g.dram, f"{g.dram_bw_gbps:g}"]
        for g in ALL_GPUS
    ]
    print(format_table(
        ["gpu", "cc", "SMs", "cores", "L1 KiB", "shared KiB", "L2 MB",
         "DRAM", "GB/s"],
        rows,
    ))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments.fusion_cases import table2_rows
    from .experiments.reporting import format_table

    rows = table2_rows(_dtype(args.dtype))
    print(format_table(list(rows[0]), [list(r.values()) for r in rows]))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .experiments.fig6_fig7 import figure6_7
    from .experiments.reporting import format_table

    points = figure6_7(_dtype(args.dtype))
    print(format_table(
        ["case", "gpu", "module", "speedup", "GMA saving"],
        [[p.case_id, p.gpu, p.fcm_type, f"{p.speedup:.2f}x",
          f"{p.gma_saving:.0%}"] for p in points],
    ))
    sp = [p.speedup for p in points]
    print(f"wins {sum(s > 1 for s in sp)}/{len(sp)}, avg {np.mean(sp):.2f}x, "
          f"max {max(sp):.2f}x")
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from .experiments.fig10_fig11 import figure10_11
    from .experiments.reporting import format_table

    points = figure10_11(_dtype(args.dtype))
    print(format_table(
        ["model", "gpu", "speedup", "energy vs TVM", "fused"],
        [[p.model, p.gpu, f"{p.speedup_vs_tvm:.2f}x", f"{p.energy_vs_tvm:.2f}",
          f"{p.fused_fraction:.0%}"] for p in points],
    ))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .models.zoo import build_model
    from .planner.planner import FusePlanner

    graph = build_model(args.model, _dtype(args.dtype))
    plan = FusePlanner(gpu_by_name(args.gpu)).plan(graph)
    print(plan.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FCM / FusePlanner reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("gpus", help="list the paper's GPU presets").set_defaults(
        fn=_cmd_gpus
    )
    for name, fn, help_ in (
        ("table2", _cmd_table2, "regenerate Table II fusion cases"),
        ("fig6", _cmd_fig6, "FCM-vs-LBL speedups (Fig. 6/7)"),
        ("fig10", _cmd_fig10, "end-to-end vs TVM (Fig. 10/11)"),
    ):
        p = sub.add_parser(name, help=help_)
        p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
        p.set_defaults(fn=fn)

    p = sub.add_parser("plan", help="print FusePlanner's plan for a model")
    p.add_argument("model")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.set_defaults(fn=_cmd_plan)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
