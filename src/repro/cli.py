"""Command-line interface: regenerate paper artifacts, plan models, serve.

Every subcommand maps onto one public subsystem: the artifact commands
(``table2``/``fig6``/``fig10``) drive :mod:`repro.experiments`, ``plan``
drives :mod:`repro.planner`, ``gpus`` prints :mod:`repro.gpu` presets, the
serving commands (``serve``/``bench-serve``/``fleet``) drive
:mod:`repro.serve`, the ``tune`` group (``run``/``show``/``export``)
drives :mod:`repro.tune`, and ``lint`` drives the :mod:`repro.analysis`
invariant linter.

Usage:
    python -m repro.cli table2 --dtype int8
    python -m repro.cli fig6 --dtype fp32
    python -m repro.cli fig10 --dtype fp32
    python -m repro.cli plan mobilenet_v2 --gpu RTX --dtype int8
    python -m repro.cli run mobilenet_v2 --gpu RTX --engine fast
    python -m repro.cli serve mobilenet_v2 --requests 64 --rate 5000
    python -m repro.cli bench-serve --models mobilenet_v2,xception
    python -m repro.cli fleet --gpus GTX,RTX,Orin --models mobilenet_v2,xception
    python -m repro.cli tune run --models mobilenet_v1 --gpus RTX --db TUNE_zoo.json
    python -m repro.cli lint src --format json
    python -m repro.cli gpus
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.dtypes import DType
from .gpu.specs import ALL_GPUS, gpu_by_name

__all__ = ["main"]


def _dtype(name: str) -> DType:
    return DType.INT8 if name.lower() == "int8" else DType.FP32


def _cmd_gpus(_args: argparse.Namespace) -> int:
    from .experiments.reporting import format_table

    rows = [
        [g.name, g.compute_capability, g.sm_count, g.cuda_cores, g.l1_kb,
         g.shared_kb, f"{g.l2_mb:g}", g.dram, f"{g.dram_bw_gbps:g}"]
        for g in ALL_GPUS
    ]
    print(format_table(
        ["gpu", "cc", "SMs", "cores", "L1 KiB", "shared KiB", "L2 MB",
         "DRAM", "GB/s"],
        rows,
    ))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments.fusion_cases import table2_rows
    from .experiments.reporting import format_table

    rows = table2_rows(_dtype(args.dtype))
    print(format_table(list(rows[0]), [list(r.values()) for r in rows]))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .experiments.fig6_fig7 import figure6_7
    from .experiments.reporting import format_table

    points = figure6_7(_dtype(args.dtype))
    print(format_table(
        ["case", "gpu", "module", "speedup", "GMA saving"],
        [[p.case_id, p.gpu, p.fcm_type, f"{p.speedup:.2f}x",
          f"{p.gma_saving:.0%}"] for p in points],
    ))
    sp = [p.speedup for p in points]
    print(f"wins {sum(s > 1 for s in sp)}/{len(sp)}, avg {np.mean(sp):.2f}x, "
          f"max {max(sp):.2f}x")
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from .experiments.fig10_fig11 import figure10_11
    from .experiments.reporting import format_table

    points = figure10_11(_dtype(args.dtype))
    print(format_table(
        ["model", "gpu", "speedup", "energy vs TVM", "fused"],
        [[p.model, p.gpu, f"{p.speedup_vs_tvm:.2f}x", f"{p.energy_vs_tvm:.2f}",
          f"{p.fused_fraction:.0%}"] for p in points],
    ))
    return 0


def _load_tuning(path: str):
    """Load a tuning DB and fit its calibration (shared by --db flags)."""
    from .tune.calibrate import fit_calibration
    from .tune.records import TuningDB

    db = TuningDB.load(path)
    return db, fit_calibration(db)


def _cmd_plan(args: argparse.Namespace) -> int:
    from .models.zoo import build_model
    from .planner.planner import FusePlanner

    calibration = None
    if args.db:
        db, calibration = _load_tuning(args.db)
        print(f"calibrated planning: {len(db)} tuning records, "
              f"{len(calibration)} family factors ({args.db})")
    graph = build_model(args.model, _dtype(args.dtype))
    planner = FusePlanner(
        gpu_by_name(args.gpu), max_chain=args.max_chain, calibration=calibration,
        search_engine=args.search_engine,
    )
    plan = planner.plan(graph)
    print(plan.describe())
    if calibration is not None:
        from .tune.measure import plan_cost_estimate

        print(f"est latency: {plan_cost_estimate(plan) * 1e3:.3f} ms analytic, "
              f"{plan_cost_estimate(plan, calibration) * 1e3:.3f} ms calibrated")
    if args.explain:
        from .experiments.reporting import format_table

        print("\ncandidates (every fusion the planner evaluated):")
        headers = ["layers", "module", "feasible", "fused GMA B", "LBL GMA B",
                   "savings B", "chosen"]
        rows = [
            [
                "+".join(c.layers), c.label,
                "yes" if c.feasible else "no",
                c.gma_bytes, c.lbl_gma_bytes, c.savings_bytes,
                "*" if c.chosen else "",
            ]
            for c in planner.last_candidates
        ]
        if calibration is not None and calibration.covers(
            planner.gpu.name, _dtype(args.dtype).value
        ):
            # The DP decided on calibrated seconds; show what it weighed.
            headers.insert(-1, "savings us (cal)")
            for row, c in zip(rows, planner.last_candidates):
                row.insert(-1, f"{c.cost_savings * 1e6:.3f}")
        print(format_table(headers, rows))
    return 0


def _obs_sinks(args: argparse.Namespace):
    """Build (tracer, metrics) for --trace-out/--metrics-out, or Nones.

    Sinks are only instantiated when the matching flag was given, so the
    default CLI path keeps the zero-overhead NullTracer/NullMetrics."""
    from .obs import MetricsRegistry, Tracer

    tracer = Tracer() if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    return tracer, metrics


def _export_obs(args: argparse.Namespace, tracer, metrics) -> None:
    """Write the requested exporter files and tell the operator where."""
    from .obs import write_chrome_trace, write_prometheus

    if tracer is not None:
        path = write_chrome_trace(tracer, args.trace_out)
        print(f"trace: {len(tracer.spans)} spans, {len(tracer.instants)} "
              f"instant events -> {path}")
    if metrics is not None:
        path = write_prometheus(metrics, args.metrics_out)
        print(f"metrics: {len(metrics.families())} families -> {path}")


def _cmd_run(args: argparse.Namespace) -> int:
    import time

    from .runtime.session import build_session, seeded_input

    dtype = _dtype(args.dtype)
    session = build_session(
        args.model, gpu_by_name(args.gpu), dtype,
        max_chain=args.max_chain, engine=args.engine,
    )
    x = seeded_input(session.graph, dtype, seed=args.seed, batch=args.batch)
    # repro: allow[RPR001] operator-facing host wall-clock display only;
    # never feeds the simulated clock, reports or any serialized artifact
    t0 = time.perf_counter()
    report = session.run_batch(x) if args.batch > 1 else session.run(x)
    wall_s = time.perf_counter() - t0  # repro: allow[RPR001] same display-only wall clock
    print(report.describe())
    print(f"engine: {session.engine}; host wall clock {wall_s * 1e3:.1f} ms")
    tracer, metrics = _obs_sinks(args)
    if tracer is not None or metrics is not None:
        # One-shot runs have no replay clock: lay the batch at t=0 on the
        # GPU's lane, timed by the report's simulated latency.
        from .obs import record_session_report, resolve_metrics, resolve_tracer

        record_session_report(
            resolve_tracer(tracer), resolve_metrics(metrics), report,
            start_s=0.0, pid=session.gpu.name, engine=session.engine,
        )
        _export_obs(args, tracer, metrics)
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    from .experiments.chains import chain_comparison
    from .experiments.reporting import format_table

    points = chain_comparison(
        _dtype(args.dtype),
        gpu=gpu_by_name(args.gpu),
        models=tuple(args.models.split(",")),
        max_chain=args.max_chain,
    )
    print(format_table(
        ["model", "gpu", "pairwise GMA", f"chain GMA (K={args.max_chain})",
         "saving", "chains>=3", "longest", "speedup"],
        [[p.model, p.gpu, p.pairwise_gma_bytes, p.chain_gma_bytes,
          f"{p.gma_saving:.1%}", p.chain_count, p.longest_chain,
          f"{p.speedup_vs_pairwise:.2f}x"] for p in points],
    ))
    return 0


def _fleet_gpus(spec: str) -> list:
    """Parse a ``--gpus`` comma list into GpuSpec presets (repeats allowed)."""
    return [gpu_by_name(name) for name in spec.split(",") if name]


def _slo_kwargs(args: argparse.Namespace) -> dict:
    """Shared --slo-ms/--admission/--arrival/--trace handling (serve/fleet)."""
    from .serve.loadgen import read_trace

    kwargs: dict = {
        "slo_s": args.slo_ms * 1e-3 if args.slo_ms else None,
        "admission": None if args.admission == "none" else args.admission,
        "arrival": args.arrival or None,
    }
    if args.trace:
        kwargs["trace"] = read_trace(args.trace)
    return kwargs


def _autoscale_policy(spec: str, cooldown_ms: float):
    """Parse ``--autoscale MIN:MAX`` into an AutoscalePolicy (or None)."""
    from .serve.autoscale import AutoscalePolicy

    if not spec:
        return None
    lo, _, hi = spec.partition(":")
    return AutoscalePolicy(
        min_workers=int(lo),
        max_workers=int(hi or lo),
        cooldown_s=cooldown_ms * 1e-3,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.loadgen import fleet_replay, replay

    db = calibration = None
    if args.db:
        db, calibration = _load_tuning(args.db)
    slo = _slo_kwargs(args)
    tracer, metrics = _obs_sinks(args)
    if args.gpus:
        trace = slo.pop("trace", None)
        report = fleet_replay(
            _fleet_gpus(args.gpus),
            args.model,
            n_requests=args.requests,
            rate_rps=args.rate,
            dtype=_dtype(args.dtype),
            policy=args.policy,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms * 1e-3,
            poisson=args.poisson,
            request_trace=trace,
            autoscale=_autoscale_policy(args.autoscale, args.cooldown_ms),
            max_chain=args.max_chain,
            db=db,
            calibration=calibration,
            engine=args.engine,
            tracer=tracer,
            metrics=metrics,
            **slo,
        )
    else:
        if args.autoscale:
            print("error: --autoscale needs a fleet (--gpus)", file=sys.stderr)
            return 2
        report = replay(
            gpu_by_name(args.gpu),
            args.model,
            n_requests=args.requests,
            rate_rps=args.rate,
            dtype=_dtype(args.dtype),
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms * 1e-3,
            poisson=args.poisson,
            max_chain=args.max_chain,
            db=db,
            calibration=calibration,
            engine=args.engine,
            tracer=tracer,
            metrics=metrics,
            **slo,
        )
    print(report.describe())
    _export_obs(args, tracer, metrics)
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from .experiments.reporting import format_table
    from .serve.fleet import Fleet
    from .serve.loadgen import FakeClock
    from .serve.server import ModelServer

    dtype = _dtype(args.dtype)
    batches = [int(b) for b in args.batches.split(",")]
    if args.slo_ms:
        # SLO mode: sweep offered load instead of batch size and report the
        # attainment curve per model.
        from .serve.loadgen import attainment_curve

        gpu = gpu_by_name(args.gpu)
        overloads = [float(x) for x in args.overloads.split(",")]
        admission = None if args.admission == "none" else args.admission
        rows = []
        for model in args.models.split(","):
            for p in attainment_curve(
                gpu, model, slo_s=args.slo_ms * 1e-3, overloads=overloads,
                dtype=dtype, admission=admission, max_batch=max(batches),
                max_chain=args.max_chain,
            ):
                rows.append([
                    model, f"{p.overload:g}x", f"{p.rate_rps:.0f}", p.offered,
                    f"{p.attainment:.1%}", p.shed, p.degraded, p.late,
                    f"{p.p99_s * 1e3:.4f}",
                ])
        print(format_table(
            ["model", "load", "rps", "offered", "attainment", "shed",
             "degraded", "late", "p99 ms"],
            rows,
        ))
        return 0
    if args.gpus:
        # A FakeClock keeps the sweep deterministic: simulated occupancy
        # accumulates across submits instead of decaying in real time, so
        # routing sees which worker is actually loaded.
        clock = FakeClock()
        fleet = Fleet(
            _fleet_gpus(args.gpus), max_chain=args.max_chain,
            clock=clock, sleep=clock.sleep,
        )
    else:
        fleet = None
    server = None if fleet else ModelServer(gpu_by_name(args.gpu), max_chain=args.max_chain)
    rows = []
    for model in args.models.split(","):
        # Baseline per worker: in a heterogeneous fleet a later batch size
        # may spill to a different GPU, and the speedup column must measure
        # batching amortization, not device speed.
        base: dict[str, float] = {}
        for b in batches:
            if fleet is not None:
                worker, rep = fleet.submit_analytic(model, b, dtype)
                where = worker.name
            else:
                rep = server.submit_analytic(model, b, dtype)
                where = server.gpu.name
            base.setdefault(where, rep.throughput_img_s)
            rows.append([
                model, where, b, f"{rep.throughput_img_s:.0f}",
                f"{rep.latency_per_image_s * 1e3:.4f}",
                f"{rep.energy_per_image_j * 1e3:.3f}",
                f"{rep.throughput_img_s / base[where]:.2f}x",
            ])
    print(format_table(
        ["model", "worker", "batch", "img/s", "ms/img", "mJ/img",
         f"vs b={batches[0]}"],
        rows,
    ))
    if fleet is not None:
        stats = fleet.stats()
        print(f"planner invocations: {stats.planner_invocations} "
              f"(fleet hit rate {stats.plan_hit_rate:.0%}, "
              f"hits {stats.plan_hits}, misses {stats.plan_misses})")
    else:
        stats = server.cache.stats
        print(f"planner invocations: {stats.planner_invocations} "
              f"(cache hits {stats.hits}, misses {stats.misses})")
    return 0


def _fault_plan(args: argparse.Namespace):
    """Resolve --faults / --chaos into a FaultPlan (None when unarmed)."""
    from .errors import PlanError
    from .serve.faults import FaultPlan

    if args.faults and args.chaos:
        raise PlanError("--faults and --chaos are mutually exclusive")
    if args.faults:
        return FaultPlan.load(args.faults)
    if args.chaos:
        try:
            mtbf_ms, mttr_ms = (float(x) for x in args.chaos.split(":"))
        except ValueError as exc:
            raise PlanError(
                f"--chaos wants MTBF_MS:MTTR_MS, got {args.chaos!r}"
            ) from exc
        # Cover the arrival window with slack for the post-stream drain.
        duration_s = args.requests / args.rate * 4.0
        return FaultPlan.chaos(
            len(args.gpus.split(",")),
            duration_s,
            mtbf_s=mtbf_ms * 1e-3,
            mttr_s=mttr_ms * 1e-3,
            seed=args.chaos_seed,
        )
    return None


def _retry_policy(args: argparse.Namespace):
    """Resolve --retries / --hedge-ms into a RetryPolicy (None when unarmed)."""
    from .serve.faults import RetryPolicy

    if args.retries <= 0 and args.hedge_ms <= 0:
        return None
    return RetryPolicy(
        max_attempts=1 + max(0, args.retries),
        budget=args.retry_budget,
        hedge_delay_s=args.hedge_ms * 1e-3 if args.hedge_ms > 0 else None,
    )


def _write_chaos_out(path: str, report) -> None:
    """Canonical chaos-accounting JSON (sorted keys, compact, newline)."""
    import json
    from pathlib import Path

    fs = report.fault_stats
    payload = {
        "availability": report.availability,
        "attainment": report.attainment,
        "n_requests": report.n_requests,
        "served": len(report.latencies_s),
        "throughput_img_s": report.throughput_img_s,
        "crashes": fs.crashes if fs else 0,
        "transients": fs.transients if fs else 0,
        "recoveries": fs.recoveries if fs else 0,
        "retries": fs.retries if fs else 0,
        "requeues": fs.requeues if fs else 0,
        "hedges": fs.hedges if fs else 0,
        "breaker_trips": fs.breaker_trips if fs else 0,
        "lost": fs.lost if fs else 0,
        "downtime_s": dict(fs.downtime_s) if fs else {},
    }
    Path(path).write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    print(f"chaos accounting -> {path}")


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .serve.loadgen import fleet_replay

    db = calibration = None
    if args.db:
        db, calibration = _load_tuning(args.db)
    slo = _slo_kwargs(args)
    tracer, metrics = _obs_sinks(args)
    report = fleet_replay(
        _fleet_gpus(args.gpus),
        args.models.split(","),
        n_requests=args.requests,
        rate_rps=args.rate,
        dtype=_dtype(args.dtype),
        policy=args.policy,
        spill_factor=args.spill_factor,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms * 1e-3,
        poisson=args.poisson,
        request_trace=slo.pop("trace", None),
        autoscale=_autoscale_policy(args.autoscale, args.cooldown_ms),
        faults=_fault_plan(args),
        retry=_retry_policy(args),
        max_chain=args.max_chain,
        trace=args.explain,
        db=db,
        calibration=calibration,
        workers=args.workers,
        tracer=tracer,
        metrics=metrics,
        **slo,
    )
    print(report.describe())
    if args.chaos_out:
        _write_chaos_out(args.chaos_out, report)
    _export_obs(args, tracer, metrics)
    if args.explain and report.routing_trace:
        print("\nrouting trace (one line per request):")
        for decision in report.routing_trace:
            print(f"  {decision.describe()}")
    return 0


def _cmd_tune_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .tune.calibrate import fit_calibration
    from .tune.measure import tune_models
    from .tune.records import TuningDB

    # An existing DB accumulates: new measurements merge with (and only
    # improve on) what previous runs recorded.
    db = TuningDB.load(args.db) if Path(args.db).exists() else TuningDB()
    db, results = tune_models(
        args.models.split(","),
        _fleet_gpus(args.gpus),
        _dtype(args.dtype),
        db=db,
        max_chain=args.max_chain,
        mode=args.mode,
        iterations=args.iterations,
        seed=args.seed,
        backend=args.backend,
        engine=args.engine,
        workers=args.workers,
    )
    path = db.save(args.db)
    for mm in results:
        print(mm.describe())
    calib = fit_calibration(db)
    if len(calib):
        from .experiments.reporting import format_table

        print("\nfitted calibration factors (measured / estimated):")
        print(format_table(["gpu", "dtype", "family", "factor", "records"],
                           calib.describe_rows()))
    # Adoption count, not a length delta: a re-run that *improves* existing
    # records (better tilings at a higher budget) still reports its work.
    adopted = sum(mm.records_added for mm in results)
    print(f"{len(db)} records ({adopted} new or improved) -> {path}")
    return 0


def _cmd_tune_show(args: argparse.Namespace) -> int:
    from .experiments.reporting import format_table
    from .tune.calibrate import fit_calibration
    from .tune.records import TuningDB

    db = TuningDB.load(args.db)
    calib = fit_calibration(db)
    models = [
        r for r in db
        if r.key.family == "model"
        and isinstance(r.key.geometry, tuple) and len(r.key.geometry) == 2
    ]
    steps = sum(1 for r in db if r.key.family != "model")
    print(f"{args.db}: {len(db)} records ({len(models)} models, {steps} steps)")
    if models:
        print("\nmodel-level records (warm-start set):")
        print(format_table(
            ["model", "K", "gpu", "dtype", "est ms", "measured ms", "ratio",
             "candidates"],
            [[r.key.geometry[0], r.key.geometry[1], r.key.gpu, r.key.dtype,
              f"{r.est_cost_s * 1e3:.3f}", f"{r.measured_cost_s * 1e3:.3f}",
              f"{r.ratio:.2f}", r.evaluated] for r in models],
        ))
    if len(calib):
        print("\ncalibration factors (measured / estimated):")
        print(format_table(["gpu", "dtype", "family", "factor", "records"],
                           calib.describe_rows()))
    if args.records:
        print("\nall records (canonical order):")
        for r in db:
            print(f"  {r.key.family:12s} {r.key.gpu:5s} {r.key.dtype:5s} "
                  f"est {r.est_cost_s * 1e6:9.2f}us  "
                  f"measured {r.measured_cost_s * 1e6:9.2f}us  "
                  f"tuned {r.tuned_cost_s * 1e6:9.2f}us  tiling {r.tiling}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import main as analysis_main

    argv = list(args.paths) or ["src"]
    argv += ["--format", args.format]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.output:
        argv += ["--output", args.output]
    return analysis_main(argv)


def _cmd_tune_export(args: argparse.Namespace) -> int:
    from .tune.records import TuningDB

    db = TuningDB.load(args.db)
    out = db.save(args.out)
    print(f"exported {len(db)} records in canonical order -> {out}")
    return 0


#: (name, builder-visible help, --help epilog) per subcommand; asserted by
#: tests/test_cli.py so every command documents at least one worked example.
_EPILOGS: dict[str, str] = {
    "gpus": "examples:\n  python -m repro.cli gpus",
    "table2": (
        "examples:\n"
        "  python -m repro.cli table2 --dtype fp32\n"
        "  python -m repro.cli table2 --dtype int8   # Table II at INT8"
    ),
    "fig6": (
        "examples:\n"
        "  python -m repro.cli fig6 --dtype fp32     # Fig. 6 FCM-vs-LBL speedups\n"
        "  python -m repro.cli fig6 --dtype int8     # Fig. 7 (INT8 variant)"
    ),
    "fig10": (
        "examples:\n"
        "  python -m repro.cli fig10 --dtype fp32    # Fig. 10 end-to-end vs TVM\n"
        "  python -m repro.cli fig10 --dtype int8"
    ),
    "plan": (
        "examples:\n"
        "  python -m repro.cli plan mobilenet_v2 --gpu RTX\n"
        "  python -m repro.cli plan xception --gpu Orin --dtype int8\n"
        "  python -m repro.cli plan mobilenet_v2 --max-chain 3 --explain\n"
        "  python -m repro.cli plan mobilenet_v2 --search-engine reference "
        "# scalar oracle"
    ),
    "run": (
        "examples:\n"
        "  python -m repro.cli run mobilenet_v2 --gpu RTX\n"
        "  python -m repro.cli run mobilenet_v1 --engine reference  # per-block launches\n"
        "  python -m repro.cli run xception --dtype int8 --batch 4\n"
        "  python -m repro.cli run mobilenet_v2 --trace-out TRACE_run.json "
        "--metrics-out METRICS_run.txt"
    ),
    "chains": (
        "examples:\n"
        "  python -m repro.cli chains --dtype int8\n"
        "  python -m repro.cli chains --models mobilenet_v2 --max-chain 4"
    ),
    "serve": (
        "examples:\n"
        "  python -m repro.cli serve mobilenet_v2 --requests 64 --rate 5000\n"
        "  python -m repro.cli serve xception --max-batch 16 --poisson\n"
        "  python -m repro.cli serve mobilenet_v2 --gpus RTX,RTX,Orin  # fleet replay\n"
        "  python -m repro.cli serve mobilenet_v2 --slo-ms 5 --admission degrade "
        "--arrival lognormal\n"
        "  python -m repro.cli serve mobilenet_v2 --trace requests.jsonl --slo-ms 5\n"
        "  python -m repro.cli serve mobilenet_v2 --engine reference  # interpreted path\n"
        "  python -m repro.cli serve mobilenet_v2 --trace-out TRACE_serve.json "
        "--metrics-out METRICS_serve.txt"
    ),
    "bench-serve": (
        "examples:\n"
        "  python -m repro.cli bench-serve\n"
        "  python -m repro.cli bench-serve --models mobilenet_v2 --batches 1,4,16\n"
        "  python -m repro.cli bench-serve --gpus GTX,RTX  # routed through a fleet\n"
        "  python -m repro.cli bench-serve --models mobilenet_v2 --slo-ms 5 "
        "--overloads 0.5,1,4,16  # SLO attainment curve"
    ),
    "fleet": (
        "examples:\n"
        "  python -m repro.cli fleet --gpus RTX,RTX,RTX,RTX --models mobilenet_v2\n"
        "  python -m repro.cli fleet --gpus GTX,RTX,Orin "
        "--models mobilenet_v2,xception --explain\n"
        "  python -m repro.cli fleet --gpus RTX,RTX --policy round_robin --poisson\n"
        "  python -m repro.cli fleet --gpus RTX --slo-ms 5 --admission degrade "
        "--autoscale 1:4 --cooldown-ms 2\n"
        "  python -m repro.cli fleet --gpus GTX,RTX --db TUNE_zoo.json  # warm start\n"
        "  python -m repro.cli fleet --gpus RTX,RTX,Orin --workers 4  "
        "# parallel boot-time preplanning\n"
        "  python -m repro.cli fleet --gpus RTX,RTX --autoscale 1:4 "
        "--trace-out TRACE_fleet.json --metrics-out METRICS_fleet.txt\n"
        "  python -m repro.cli fleet --gpus RTX,RTX,RTX,RTX --slo-ms 5 "
        "--chaos 1:0.5 --retries 2  # seeded crash/recover chaos + retries\n"
        "  python -m repro.cli fleet --gpus RTX,RTX --faults PLAN.jsonl "
        "--retries 2 --hedge-ms 2 --chaos-out CHAOS_run.json"
    ),
    "tune": (
        "examples:\n"
        "  python -m repro.cli tune run --models mobilenet_v1 --gpus RTX "
        "--db TUNE_zoo.json\n"
        "  python -m repro.cli tune show --db TUNE_zoo.json\n"
        "  python -m repro.cli tune export --db TUNE_zoo.json --out TUNE_canonical.json"
    ),
    "tune run": (
        "examples:\n"
        "  python -m repro.cli tune run --models mobilenet_v1 --gpus RTX "
        "--db TUNE_zoo.json\n"
        "  python -m repro.cli tune run --models mobilenet_v2,xception "
        "--gpus GTX,RTX,Orin --dtype int8 --db TUNE_zoo.json\n"
        "  python -m repro.cli tune run --models mobilenet_v1 --gpus GTX "
        "--mode exhaustive --db TUNE_zoo.json\n"
        "  python -m repro.cli tune run --models mobilenet_v1 --gpus GTX "
        "--backend kernel --engine fast --db TUNE_zoo.json\n"
        "  python -m repro.cli tune run --models mobilenet_v1,mobilenet_v2 "
        "--gpus GTX,RTX --workers 4 --db TUNE_zoo.json  # parallel sweep"
    ),
    "tune show": (
        "examples:\n"
        "  python -m repro.cli tune show --db TUNE_zoo.json\n"
        "  python -m repro.cli tune show --db TUNE_zoo.json --records"
    ),
    "tune export": (
        "examples:\n"
        "  python -m repro.cli tune export --db TUNE_zoo.json --out TUNE_canonical.json"
    ),
    "lint": (
        "examples:\n"
        "  python -m repro.cli lint\n"
        "  python -m repro.cli lint src --format json --output ANALYSIS_report.json\n"
        "  python -m repro.cli lint src/repro/serve --rules RPR001,RPR006"
    ),
}


def _add_slo_args(p: argparse.ArgumentParser) -> None:
    """The SLO traffic-layer flags shared by serve and fleet."""
    p.add_argument("--slo-ms", type=float, default=0.0,
                   help="per-request completion SLO in ms (0 = best effort); "
                        "arms deadline-aware micro-batch flushing")
    p.add_argument("--admission", choices=["none", "shed", "degrade"],
                   default="none",
                   help="admission control when the projected latency busts "
                        "the SLO: shed rejects, degrade retries the INT8 "
                        "plan variant first (default none)")
    p.add_argument("--arrival",
                   choices=["", "uniform", "poisson", "lognormal", "pareto",
                            "diurnal"],
                   default="",
                   help="arrival process (overrides --poisson); lognormal/"
                        "pareto are heavy-tailed, diurnal is rate-modulated")
    p.add_argument("--trace", default="",
                   help="JSONL trace file to replay instead of a synthetic "
                        "stream (see repro.serve.loadgen.write_trace)")
    p.add_argument("--autoscale", default="",
                   help="reactive fleet autoscaling bounds as MIN:MAX "
                        "workers (fleet replays only)")
    p.add_argument("--cooldown-ms", type=float, default=0.0,
                   help="autoscaler cooldown between resize actions in ms "
                        "(default 0)")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """The observability exporter flags shared by run, serve and fleet."""
    p.add_argument("--trace-out", default="",
                   help="write a Chrome-trace/Perfetto JSON of the run to "
                        "this file (open in ui.perfetto.dev or "
                        "chrome://tracing)")
    p.add_argument("--metrics-out", default="",
                   help="write Prometheus text-exposition metrics of the "
                        "run to this file")


def _add_cmd(sub, name: str, fn, help_: str) -> argparse.ArgumentParser:
    p = sub.add_parser(
        name,
        help=help_,
        epilog=_EPILOGS[name],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.set_defaults(fn=fn)
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FCM / FusePlanner reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _add_cmd(sub, "gpus", _cmd_gpus, "list the paper's GPU presets")
    for name, fn, help_ in (
        ("table2", _cmd_table2, "regenerate Table II fusion cases"),
        ("fig6", _cmd_fig6, "FCM-vs-LBL speedups (Fig. 6/7)"),
        ("fig10", _cmd_fig10, "end-to-end vs TVM (Fig. 10/11)"),
    ):
        p = _add_cmd(sub, name, fn, help_)
        p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")

    p = _add_cmd(sub, "plan", _cmd_plan, "print FusePlanner's plan for a model")
    p.add_argument("model")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--max-chain", type=int, default=2,
                   help="longest fused chain the planner may pick (default 2, "
                        "the paper's pairwise FCMs)")
    p.add_argument("--explain", action="store_true",
                   help="dump every evaluated fusion candidate with its "
                        "estimated GMA and savings")
    p.add_argument("--db", default="",
                   help="tuning DB path (see `tune run`); when given, fusion "
                        "decisions rank candidates by calibrated cost")
    p.add_argument("--search-engine", choices=["vectorized", "reference"],
                   default="vectorized",
                   help="tiling search engine: whole-grid NumPy evaluation "
                        "(default) or the scalar reference loop — both "
                        "return bit-identical plans")

    p = _add_cmd(sub, "run", _cmd_run,
                 "run one functional inference end to end (fast or reference)")
    p.add_argument("model")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--engine", choices=["fast", "reference"], default="fast",
                   help="execution engine: vectorized whole-grid fast path "
                        "(default) or the per-block reference interpreter")
    p.add_argument("--batch", type=int, default=1,
                   help="run a batched pass over this many random images "
                        "(default 1)")
    p.add_argument("--max-chain", type=int, default=2,
                   help="planner chain cap (default 2)")
    p.add_argument("--seed", type=int, default=0,
                   help="input RNG seed (default 0)")
    _add_obs_args(p)

    p = _add_cmd(sub, "chains", _cmd_chains,
                 "compare pairwise (max-chain 2) vs chain fusion per model")
    p.add_argument("--models", default=",".join(
        ("mobilenet_v1", "mobilenet_v2", "xception", "proxylessnas")))
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--max-chain", type=int, default=3,
                   help="chain cap for the chain-planner column (default 3)")

    p = _add_cmd(sub, "serve", _cmd_serve,
                 "replay a request stream through the micro-batching server")
    p.add_argument("model")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--requests", type=int, default=64,
                   help="number of requests to replay (default 64)")
    p.add_argument("--rate", type=float, default=5000.0,
                   help="arrival rate in requests/s (default 5000)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="micro-batch size cap (default 8)")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="micro-batch deadline in ms (default 2.0)")
    p.add_argument("--poisson", action="store_true",
                   help="Poisson arrivals instead of uniform spacing")
    _add_slo_args(p)
    p.add_argument("--max-chain", type=int, default=2,
                   help="planner chain cap for served models (default 2)")
    p.add_argument("--gpus", default="",
                   help="comma-separated GPU presets (repeats allowed); when "
                        "given, replay through a multi-GPU fleet instead of "
                        "one server")
    p.add_argument("--policy", choices=["affinity", "round_robin"],
                   default="affinity",
                   help="fleet routing policy (with --gpus; default affinity)")
    p.add_argument("--db", default="",
                   help="tuning DB path: warm-start the server/fleet from its "
                        "model records and plan new models calibrated")
    p.add_argument("--engine", choices=["fast", "reference"], default="fast",
                   help="execution engine for functional batches "
                        "(default fast)")
    _add_obs_args(p)

    p = _add_cmd(sub, "bench-serve", _cmd_bench_serve,
                 "sweep batch size x model and report serving throughput")
    p.add_argument("--models", default="mobilenet_v2,xception",
                   help="comma-separated model names (see repro.models.zoo)")
    p.add_argument("--batches", default="1,2,4,8",
                   help="comma-separated batch sizes (default 1,2,4,8)")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--gpus", default="",
                   help="comma-separated GPU presets; when given, each "
                        "submit routes through a plan-affinity fleet")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--max-chain", type=int, default=2,
                   help="planner chain cap for served models (default 2)")
    p.add_argument("--slo-ms", type=float, default=0.0,
                   help="switch to SLO mode: sweep offered load and print "
                        "the attainment curve at this per-request SLO")
    p.add_argument("--admission", choices=["none", "shed", "degrade"],
                   default="degrade",
                   help="admission policy for the SLO-mode sweep "
                        "(default degrade)")
    p.add_argument("--overloads", default="0.5,1,4,16",
                   help="offered-load multiples of analytic capacity for the "
                        "SLO-mode sweep (default 0.5,1,4,16)")

    p = _add_cmd(sub, "fleet", _cmd_fleet,
                 "replay a multi-model stream over a multi-GPU fleet")
    p.add_argument("--gpus", default="RTX,RTX,Orin",
                   help="comma-separated GPU presets, one worker each "
                        "(repeats allowed; default RTX,RTX,Orin)")
    p.add_argument("--models", default="mobilenet_v2,xception",
                   help="comma-separated models; request i targets model "
                        "i mod len(models)")
    p.add_argument("--requests", type=int, default=64,
                   help="number of requests to replay (default 64)")
    p.add_argument("--rate", type=float, default=5000.0,
                   help="arrival rate in requests/s (default 5000)")
    p.add_argument("--policy", choices=["affinity", "round_robin"],
                   default="affinity",
                   help="routing policy (default affinity)")
    p.add_argument("--spill-factor", type=float, default=2.0,
                   help="full micro-batches of backlog imbalance tolerated "
                        "before affinity replicates a plan (default 2.0)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="per-worker micro-batch size cap (default 8)")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="micro-batch deadline in ms (default 2.0)")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--poisson", action="store_true",
                   help="Poisson arrivals instead of uniform spacing")
    _add_slo_args(p)
    p.add_argument("--max-chain", type=int, default=2,
                   help="planner chain cap for served models (default 2)")
    p.add_argument("--explain", action="store_true",
                   help="print the scheduler's per-request routing trace "
                        "(chosen worker, reason, backlog estimates)")
    p.add_argument("--db", default="",
                   help="tuning DB path: every worker warm-starts its own "
                        "GPU's model records at boot")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for boot-time preplanning; >1 "
                        "plans every (GPU, model, dtype) before the stream "
                        "starts, off the serving critical path (default 1, "
                        "plan on first request)")
    p.add_argument("--faults", default="",
                   help="JSONL fault plan to replay (crash / slowdown / "
                        "transient / recover events; see "
                        "repro.serve.faults.FaultPlan)")
    p.add_argument("--chaos", default="",
                   help="synthesize a seeded crash/recover plan as "
                        "MTBF_MS:MTTR_MS (exponential up/down times per "
                        "worker; alternative to --faults)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="seed for the --chaos plan generator (default 0)")
    p.add_argument("--retries", type=int, default=0,
                   help="max retries per failed request (default 0: a "
                        "failed request is lost)")
    p.add_argument("--retry-budget", type=float, default=0.2,
                   help="fleet-wide retry cap as a fraction of offered "
                        "load (default 0.2)")
    p.add_argument("--hedge-ms", type=float, default=0.0,
                   help="launch a hedged duplicate after this many ms "
                        "unserved, first copy wins (default 0: off; tune "
                        "from a report's p99 via repro.serve.hedge_delay)")
    p.add_argument("--chaos-out", default="",
                   help="write canonical chaos-accounting JSON "
                        "(availability, attainment, retries, losses) to "
                        "this file")
    _add_obs_args(p)

    p = _add_cmd(sub, "lint", _cmd_lint,
                 "run the AST invariant linter (repro.analysis) over the tree")
    p.add_argument("paths", nargs="*",
                   help="files or directories to analyze (default: src)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default text)")
    p.add_argument("--rules", default="",
                   help="comma-separated RPR rule ids (default: all)")
    p.add_argument("--output", default="",
                   help="also write the report to this file")

    p = sub.add_parser(
        "tune",
        help="measurement-feedback autotuning (run / show / export)",
        epilog=_EPILOGS["tune"],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    tsub = p.add_subparsers(dest="tune_command", required=True)

    def _add_tune(name: str, fn, help_: str) -> argparse.ArgumentParser:
        tp = tsub.add_parser(
            name,
            help=help_,
            epilog=_EPILOGS[f"tune {name}"],
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )
        tp.set_defaults(fn=fn)
        tp.add_argument("--db", required=True,
                        help="tuning DB path (JSON-lines; created on demand)")
        return tp

    tp = _add_tune("run", _cmd_tune_run,
                   "measure models, tune tilings, persist records")
    tp.add_argument("--models", default="mobilenet_v1,mobilenet_v2",
                    help="comma-separated model names (see repro.models.zoo)")
    tp.add_argument("--gpus", default="RTX",
                    help="comma-separated GPU presets to tune for")
    tp.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    tp.add_argument("--max-chain", type=int, default=2,
                    help="planner chain cap the measured plans use (default 2)")
    tp.add_argument("--mode", choices=["guided", "random", "exhaustive"],
                    default="guided",
                    help="tiling search mode: guided always re-measures the "
                         "planner's analytic pick (default), random is the "
                         "paper's 20-iteration protocol, exhaustive sweeps "
                         "every feasible tiling")
    tp.add_argument("--iterations", type=int, default=20,
                    help="measurement budget per step for guided/random "
                         "modes (default 20, the paper's setting)")
    tp.add_argument("--seed", type=int, default=0,
                    help="search/measurement seed (default 0)")
    tp.add_argument("--backend", choices=["counters", "kernel"],
                    default="counters",
                    help="measurement backend: analytic counters (default) "
                         "or the kernel-in-the-loop simulated grid")
    tp.add_argument("--engine", choices=["fast", "reference"], default="fast",
                    help="execution engine for --backend kernel (default "
                         "fast; counters are bit-identical either way)")
    tp.add_argument("--workers", type=int, default=1,
                    help="process-pool size for the (model, GPU) sweep; the "
                         "merged DB is byte-identical for every worker count "
                         "(default 1, serial)")

    tp = _add_tune("show", _cmd_tune_show,
                   "summarize a tuning DB and its fitted calibration")
    tp.add_argument("--records", action="store_true",
                    help="also list every record in canonical order")

    tp = _add_tune("export", _cmd_tune_export,
                   "rewrite a DB in canonical (sorted, deduplicated) form")
    tp.add_argument("--out", required=True, help="destination path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
