"""Command-line interface: regenerate paper artifacts, plan models, serve.

Every subcommand maps onto one public subsystem: the artifact commands
(``table2``/``fig6``/``fig10``) drive :mod:`repro.experiments`, ``plan``
drives :mod:`repro.planner`, ``gpus`` prints :mod:`repro.gpu` presets, and
the serving commands (``serve``/``bench-serve``/``fleet``) drive
:mod:`repro.serve`.

Usage:
    python -m repro.cli table2 --dtype int8
    python -m repro.cli fig6 --dtype fp32
    python -m repro.cli fig10 --dtype fp32
    python -m repro.cli plan mobilenet_v2 --gpu RTX --dtype int8
    python -m repro.cli serve mobilenet_v2 --requests 64 --rate 5000
    python -m repro.cli bench-serve --models mobilenet_v2,xception
    python -m repro.cli fleet --gpus GTX,RTX,Orin --models mobilenet_v2,xception
    python -m repro.cli gpus
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.dtypes import DType
from .gpu.specs import ALL_GPUS, gpu_by_name

__all__ = ["main"]


def _dtype(name: str) -> DType:
    return DType.INT8 if name.lower() == "int8" else DType.FP32


def _cmd_gpus(_args: argparse.Namespace) -> int:
    from .experiments.reporting import format_table

    rows = [
        [g.name, g.compute_capability, g.sm_count, g.cuda_cores, g.l1_kb,
         g.shared_kb, f"{g.l2_mb:g}", g.dram, f"{g.dram_bw_gbps:g}"]
        for g in ALL_GPUS
    ]
    print(format_table(
        ["gpu", "cc", "SMs", "cores", "L1 KiB", "shared KiB", "L2 MB",
         "DRAM", "GB/s"],
        rows,
    ))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments.fusion_cases import table2_rows
    from .experiments.reporting import format_table

    rows = table2_rows(_dtype(args.dtype))
    print(format_table(list(rows[0]), [list(r.values()) for r in rows]))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .experiments.fig6_fig7 import figure6_7
    from .experiments.reporting import format_table

    points = figure6_7(_dtype(args.dtype))
    print(format_table(
        ["case", "gpu", "module", "speedup", "GMA saving"],
        [[p.case_id, p.gpu, p.fcm_type, f"{p.speedup:.2f}x",
          f"{p.gma_saving:.0%}"] for p in points],
    ))
    sp = [p.speedup for p in points]
    print(f"wins {sum(s > 1 for s in sp)}/{len(sp)}, avg {np.mean(sp):.2f}x, "
          f"max {max(sp):.2f}x")
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from .experiments.fig10_fig11 import figure10_11
    from .experiments.reporting import format_table

    points = figure10_11(_dtype(args.dtype))
    print(format_table(
        ["model", "gpu", "speedup", "energy vs TVM", "fused"],
        [[p.model, p.gpu, f"{p.speedup_vs_tvm:.2f}x", f"{p.energy_vs_tvm:.2f}",
          f"{p.fused_fraction:.0%}"] for p in points],
    ))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .models.zoo import build_model
    from .planner.planner import FusePlanner

    graph = build_model(args.model, _dtype(args.dtype))
    planner = FusePlanner(gpu_by_name(args.gpu), max_chain=args.max_chain)
    plan = planner.plan(graph)
    print(plan.describe())
    if args.explain:
        from .experiments.reporting import format_table

        print("\ncandidates (every fusion the planner evaluated):")
        rows = [
            [
                "+".join(c.layers), c.label,
                "yes" if c.feasible else "no",
                c.gma_bytes, c.lbl_gma_bytes, c.savings_bytes,
                "*" if c.chosen else "",
            ]
            for c in planner.last_candidates
        ]
        print(format_table(
            ["layers", "module", "feasible", "fused GMA B", "LBL GMA B",
             "savings B", "chosen"],
            rows,
        ))
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    from .experiments.chains import chain_comparison
    from .experiments.reporting import format_table

    points = chain_comparison(
        _dtype(args.dtype),
        gpu=gpu_by_name(args.gpu),
        models=tuple(args.models.split(",")),
        max_chain=args.max_chain,
    )
    print(format_table(
        ["model", "gpu", "pairwise GMA", f"chain GMA (K={args.max_chain})",
         "saving", "chains>=3", "longest", "speedup"],
        [[p.model, p.gpu, p.pairwise_gma_bytes, p.chain_gma_bytes,
          f"{p.gma_saving:.1%}", p.chain_count, p.longest_chain,
          f"{p.speedup_vs_pairwise:.2f}x"] for p in points],
    ))
    return 0


def _fleet_gpus(spec: str) -> list:
    """Parse a ``--gpus`` comma list into GpuSpec presets (repeats allowed)."""
    return [gpu_by_name(name) for name in spec.split(",") if name]


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.loadgen import fleet_replay, replay

    if args.gpus:
        report = fleet_replay(
            _fleet_gpus(args.gpus),
            args.model,
            n_requests=args.requests,
            rate_rps=args.rate,
            dtype=_dtype(args.dtype),
            policy=args.policy,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms * 1e-3,
            poisson=args.poisson,
            max_chain=args.max_chain,
        )
    else:
        report = replay(
            gpu_by_name(args.gpu),
            args.model,
            n_requests=args.requests,
            rate_rps=args.rate,
            dtype=_dtype(args.dtype),
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms * 1e-3,
            poisson=args.poisson,
            max_chain=args.max_chain,
        )
    print(report.describe())
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from .experiments.reporting import format_table
    from .serve.fleet import Fleet
    from .serve.loadgen import FakeClock
    from .serve.server import ModelServer

    dtype = _dtype(args.dtype)
    batches = [int(b) for b in args.batches.split(",")]
    if args.gpus:
        # A FakeClock keeps the sweep deterministic: simulated occupancy
        # accumulates across submits instead of decaying in real time, so
        # routing sees which worker is actually loaded.
        clock = FakeClock()
        fleet = Fleet(
            _fleet_gpus(args.gpus), max_chain=args.max_chain,
            clock=clock, sleep=clock.sleep,
        )
    else:
        fleet = None
    server = None if fleet else ModelServer(gpu_by_name(args.gpu), max_chain=args.max_chain)
    rows = []
    for model in args.models.split(","):
        # Baseline per worker: in a heterogeneous fleet a later batch size
        # may spill to a different GPU, and the speedup column must measure
        # batching amortization, not device speed.
        base: dict[str, float] = {}
        for b in batches:
            if fleet is not None:
                worker, rep = fleet.submit_analytic(model, b, dtype)
                where = worker.name
            else:
                rep = server.submit_analytic(model, b, dtype)
                where = server.gpu.name
            base.setdefault(where, rep.throughput_img_s)
            rows.append([
                model, where, b, f"{rep.throughput_img_s:.0f}",
                f"{rep.latency_per_image_s * 1e3:.4f}",
                f"{rep.energy_per_image_j * 1e3:.3f}",
                f"{rep.throughput_img_s / base[where]:.2f}x",
            ])
    print(format_table(
        ["model", "worker", "batch", "img/s", "ms/img", "mJ/img",
         f"vs b={batches[0]}"],
        rows,
    ))
    if fleet is not None:
        stats = fleet.stats()
        print(f"planner invocations: {stats.planner_invocations} "
              f"(fleet hit rate {stats.plan_hit_rate:.0%}, "
              f"hits {stats.plan_hits}, misses {stats.plan_misses})")
    else:
        stats = server.cache.stats
        print(f"planner invocations: {stats.planner_invocations} "
              f"(cache hits {stats.hits}, misses {stats.misses})")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .serve.loadgen import fleet_replay

    report = fleet_replay(
        _fleet_gpus(args.gpus),
        args.models.split(","),
        n_requests=args.requests,
        rate_rps=args.rate,
        dtype=_dtype(args.dtype),
        policy=args.policy,
        spill_factor=args.spill_factor,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms * 1e-3,
        poisson=args.poisson,
        max_chain=args.max_chain,
        trace=args.explain,
    )
    print(report.describe())
    if args.explain and report.routing_trace:
        print("\nrouting trace (one line per request):")
        for decision in report.routing_trace:
            print(f"  {decision.describe()}")
    return 0


#: (name, builder-visible help, --help epilog) per subcommand; asserted by
#: tests/test_cli.py so every command documents at least one worked example.
_EPILOGS: dict[str, str] = {
    "gpus": "examples:\n  python -m repro.cli gpus",
    "table2": (
        "examples:\n"
        "  python -m repro.cli table2 --dtype fp32\n"
        "  python -m repro.cli table2 --dtype int8   # Table II at INT8"
    ),
    "fig6": (
        "examples:\n"
        "  python -m repro.cli fig6 --dtype fp32     # Fig. 6 FCM-vs-LBL speedups\n"
        "  python -m repro.cli fig6 --dtype int8     # Fig. 7 (INT8 variant)"
    ),
    "fig10": (
        "examples:\n"
        "  python -m repro.cli fig10 --dtype fp32    # Fig. 10 end-to-end vs TVM\n"
        "  python -m repro.cli fig10 --dtype int8"
    ),
    "plan": (
        "examples:\n"
        "  python -m repro.cli plan mobilenet_v2 --gpu RTX\n"
        "  python -m repro.cli plan xception --gpu Orin --dtype int8\n"
        "  python -m repro.cli plan mobilenet_v2 --max-chain 3 --explain"
    ),
    "chains": (
        "examples:\n"
        "  python -m repro.cli chains --dtype int8\n"
        "  python -m repro.cli chains --models mobilenet_v2 --max-chain 4"
    ),
    "serve": (
        "examples:\n"
        "  python -m repro.cli serve mobilenet_v2 --requests 64 --rate 5000\n"
        "  python -m repro.cli serve xception --max-batch 16 --poisson\n"
        "  python -m repro.cli serve mobilenet_v2 --gpus RTX,RTX,Orin  # fleet replay"
    ),
    "bench-serve": (
        "examples:\n"
        "  python -m repro.cli bench-serve\n"
        "  python -m repro.cli bench-serve --models mobilenet_v2 --batches 1,4,16\n"
        "  python -m repro.cli bench-serve --gpus GTX,RTX  # routed through a fleet"
    ),
    "fleet": (
        "examples:\n"
        "  python -m repro.cli fleet --gpus RTX,RTX,RTX,RTX --models mobilenet_v2\n"
        "  python -m repro.cli fleet --gpus GTX,RTX,Orin "
        "--models mobilenet_v2,xception --explain\n"
        "  python -m repro.cli fleet --gpus RTX,RTX --policy round_robin --poisson"
    ),
}


def _add_cmd(sub, name: str, fn, help_: str) -> argparse.ArgumentParser:
    p = sub.add_parser(
        name,
        help=help_,
        epilog=_EPILOGS[name],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.set_defaults(fn=fn)
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FCM / FusePlanner reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _add_cmd(sub, "gpus", _cmd_gpus, "list the paper's GPU presets")
    for name, fn, help_ in (
        ("table2", _cmd_table2, "regenerate Table II fusion cases"),
        ("fig6", _cmd_fig6, "FCM-vs-LBL speedups (Fig. 6/7)"),
        ("fig10", _cmd_fig10, "end-to-end vs TVM (Fig. 10/11)"),
    ):
        p = _add_cmd(sub, name, fn, help_)
        p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")

    p = _add_cmd(sub, "plan", _cmd_plan, "print FusePlanner's plan for a model")
    p.add_argument("model")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--max-chain", type=int, default=2,
                   help="longest fused chain the planner may pick (default 2, "
                        "the paper's pairwise FCMs)")
    p.add_argument("--explain", action="store_true",
                   help="dump every evaluated fusion candidate with its "
                        "estimated GMA and savings")

    p = _add_cmd(sub, "chains", _cmd_chains,
                 "compare pairwise (max-chain 2) vs chain fusion per model")
    p.add_argument("--models", default=",".join(
        ("mobilenet_v1", "mobilenet_v2", "xception", "proxylessnas")))
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--max-chain", type=int, default=3,
                   help="chain cap for the chain-planner column (default 3)")

    p = _add_cmd(sub, "serve", _cmd_serve,
                 "replay a request stream through the micro-batching server")
    p.add_argument("model")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--requests", type=int, default=64,
                   help="number of requests to replay (default 64)")
    p.add_argument("--rate", type=float, default=5000.0,
                   help="arrival rate in requests/s (default 5000)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="micro-batch size cap (default 8)")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="micro-batch deadline in ms (default 2.0)")
    p.add_argument("--poisson", action="store_true",
                   help="Poisson arrivals instead of uniform spacing")
    p.add_argument("--max-chain", type=int, default=2,
                   help="planner chain cap for served models (default 2)")
    p.add_argument("--gpus", default="",
                   help="comma-separated GPU presets (repeats allowed); when "
                        "given, replay through a multi-GPU fleet instead of "
                        "one server")
    p.add_argument("--policy", choices=["affinity", "round_robin"],
                   default="affinity",
                   help="fleet routing policy (with --gpus; default affinity)")

    p = _add_cmd(sub, "bench-serve", _cmd_bench_serve,
                 "sweep batch size x model and report serving throughput")
    p.add_argument("--models", default="mobilenet_v2,xception",
                   help="comma-separated model names (see repro.models.zoo)")
    p.add_argument("--batches", default="1,2,4,8",
                   help="comma-separated batch sizes (default 1,2,4,8)")
    p.add_argument("--gpu", default="RTX")
    p.add_argument("--gpus", default="",
                   help="comma-separated GPU presets; when given, each "
                        "submit routes through a plan-affinity fleet")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--max-chain", type=int, default=2,
                   help="planner chain cap for served models (default 2)")

    p = _add_cmd(sub, "fleet", _cmd_fleet,
                 "replay a multi-model stream over a multi-GPU fleet")
    p.add_argument("--gpus", default="RTX,RTX,Orin",
                   help="comma-separated GPU presets, one worker each "
                        "(repeats allowed; default RTX,RTX,Orin)")
    p.add_argument("--models", default="mobilenet_v2,xception",
                   help="comma-separated models; request i targets model "
                        "i mod len(models)")
    p.add_argument("--requests", type=int, default=64,
                   help="number of requests to replay (default 64)")
    p.add_argument("--rate", type=float, default=5000.0,
                   help="arrival rate in requests/s (default 5000)")
    p.add_argument("--policy", choices=["affinity", "round_robin"],
                   default="affinity",
                   help="routing policy (default affinity)")
    p.add_argument("--spill-factor", type=float, default=2.0,
                   help="full micro-batches of backlog imbalance tolerated "
                        "before affinity replicates a plan (default 2.0)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="per-worker micro-batch size cap (default 8)")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="micro-batch deadline in ms (default 2.0)")
    p.add_argument("--dtype", choices=["fp32", "int8"], default="fp32")
    p.add_argument("--poisson", action="store_true",
                   help="Poisson arrivals instead of uniform spacing")
    p.add_argument("--max-chain", type=int, default=2,
                   help="planner chain cap for served models (default 2)")
    p.add_argument("--explain", action="store_true",
                   help="print the scheduler's per-request routing trace "
                        "(chosen worker, reason, backlog estimates)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
