"""End-to-end inference sessions: ours (FCM + LBL plan) and the TVM baseline.

Both sessions execute the *same* materialized network
(:mod:`repro.runtime.network_params`), so outputs are comparable numerically;
they differ exactly where the paper's systems differ:

* ours runs FusePlanner's plan — fused FCM kernels where suggested, tuned
  LBL kernels elsewhere, shared cuDNN-modelled kernels for standard convs,
  and pays for residual-add glue;
* the TVM session runs every conv through its tuned cuDNN-backend algorithm
  and gets residual adds for free (injective fusion).

Each session offers a functional ``run`` (real tensors through the simulated
kernels) and an ``run_analytic`` (counters-only, byte-identical totals via the
measured-convention estimators) for the large end-to-end sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.cudnn import CudnnAlgo, cudnn_counters, run_cudnn
from ..baselines.tvm import TvmConvStep, TvmPlan
from ..core.dtypes import DType
from ..errors import PlanError, ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.energy import energy_of
from ..gpu.fastpath import DEFAULT_ENGINE, resolve_engine
from ..gpu.roofline import KernelTiming, time_kernel
from ..gpu.specs import GpuSpec
from ..ir.graph import ModelGraph
from ..kernels.registry import build_chain_kernel, build_lbl_kernel
from ..planner.analytic import chain_counters, lbl_counters
from ..planner.plan import ExecutionPlan, FcmStep, GlueStep, LblStep, StdStep
from .glue import apply_glue, glue_counters
from .network_params import NetworkParams, materialize_network

__all__ = [
    "StepRecord",
    "SessionReport",
    "InferenceSession",
    "TvmSession",
    "build_session",
    "seeded_input",
]

#: cuDNN efficiency knobs applied to standard-conv steps in *both* runtimes.
_STD_ALGO = CudnnAlgo.IMPLICIT_PRECOMP_GEMM


@dataclass(frozen=True)
class StepRecord:
    """Per-step accounting: traffic, time, energy, boundedness."""

    name: str
    kind: str  # 'fcm' | 'lbl' | 'std' | 'glue' | 'tvm-conv'
    counters: AccessCounters
    time_s: float
    energy_j: float
    bound: str


@dataclass
class SessionReport:
    """Aggregated result of one end-to-end inference (optionally batched).

    ``batch_size > 1`` means every record describes a *batched* launch — one
    kernel covering the whole batch — and ``output`` carries a leading batch
    dimension.  ``latency_s`` is then the batch's wall time; the per-image
    views (:attr:`throughput_img_s`, :attr:`energy_per_image_j`) are what the
    serving layer reports.
    """

    model_name: str
    gpu: GpuSpec
    dtype: DType
    records: list[StepRecord] = field(default_factory=list)
    output: np.ndarray | None = None
    batch_size: int = 1

    @property
    def latency_s(self) -> float:
        return sum(r.time_s for r in self.records)

    @property
    def latency_per_image_s(self) -> float:
        return self.latency_s / self.batch_size

    @property
    def throughput_img_s(self) -> float:
        """Images per second at this batch size (batch wall time amortized)."""
        return self.batch_size / self.latency_s

    @property
    def energy_per_image_j(self) -> float:
        return self.energy_j / self.batch_size

    @property
    def energy_j(self) -> float:
        return sum(r.energy_j for r in self.records)

    @property
    def total_gma_bytes(self) -> int:
        return sum(r.counters.total_bytes for r in self.records)

    @property
    def kernel_launches(self) -> int:
        return sum(r.counters.kernel_launches for r in self.records)

    def describe(self) -> str:
        batch = f" batch={self.batch_size}" if self.batch_size > 1 else ""
        return (
            f"{self.model_name} on {self.gpu.name} ({self.dtype}{batch}): "
            f"{self.latency_s * 1e3:.3f} ms, {self.energy_j * 1e3:.3f} mJ, "
            f"{self.total_gma_bytes / 1e6:.2f} MB GMA, "
            f"{self.kernel_launches} kernel launches"
        )


def _record(
    name: str,
    kind: str,
    counters: AccessCounters,
    gpu: GpuSpec,
    dtype: DType,
    timing: KernelTiming | None = None,
) -> StepRecord:
    t = timing if timing is not None else time_kernel(counters, gpu, dtype)
    e = energy_of(counters, t, gpu, dtype)
    return StepRecord(
        name=name, kind=kind, counters=counters, time_s=t.t_total_s,
        energy_j=e.total_j, bound=t.bound,
    )


class InferenceSession:
    """Execute a FusePlanner :class:`ExecutionPlan` end to end.

    ``engine`` selects how DW/PW simulated kernels execute: ``"fast"``
    (default) runs each grid as one vectorized pass with bulk counter
    accounting, ``"reference"`` interprets block by block.  Reports are
    identical down to the counters; only wall-clock differs.  Per-call
    ``engine=`` arguments override the session default.
    """

    def __init__(
        self,
        graph: ModelGraph,
        plan: ExecutionPlan,
        params: NetworkParams | None = None,
        seed: int = 0,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.gpu = plan.gpu
        self.dtype = plan.dtype
        self.engine = resolve_engine(engine)
        self.params = params if params is not None else materialize_network(
            graph, plan.dtype, seed
        )
        if self.params.dtype is not plan.dtype:
            raise PlanError("network params precision differs from the plan's")

    # ---- functional execution -------------------------------------------------
    def run(self, input_array: np.ndarray, engine: str | None = None) -> SessionReport:
        """Run real tensors through the simulated kernels per the plan."""
        engine = self.engine if engine is None else resolve_engine(engine)
        report = SessionReport(self.plan.model_name, self.gpu, self.dtype)
        values: dict[str, np.ndarray] = {}

        def input_of(layer_name: str) -> np.ndarray:
            preds = self.graph.predecessors(layer_name)
            if not preds:
                return input_array
            return values[preds[0]]

        for step in self.plan.steps:
            if isinstance(step, FcmStep):
                kernel = build_chain_kernel(
                    [self.params[sp.name] for sp in step.specs],
                    step.tiling,
                    step.fcm_type,
                )
                res = kernel.simulate(input_of(step.specs[0].name), self.gpu, engine)
                values[step.specs[-1].name] = res.output
                report.records.append(
                    _record(
                        "+".join(step.layer_names), "fcm", res.counters, self.gpu,
                        self.dtype, res.timing(),
                    )
                )
            elif isinstance(step, LblStep):
                kernel = build_lbl_kernel(self.params[step.spec.name], step.tiling)
                res = kernel.simulate(input_of(step.spec.name), self.gpu, engine)
                values[step.spec.name] = res.output
                report.records.append(
                    _record(step.spec.name, "lbl", res.counters, self.gpu,
                            self.dtype, res.timing())
                )
            elif isinstance(step, StdStep):
                out, counters, timing = run_cudnn(
                    self.params[step.spec.name], input_of(step.spec.name),
                    _STD_ALGO, self.gpu,
                )
                values[step.spec.name] = out
                report.records.append(
                    _record(step.spec.name, "std", counters, self.gpu, self.dtype, timing)
                )
            elif isinstance(step, GlueStep):
                spec = step.spec
                preds = self.graph.predecessors(spec.name)
                inputs = [values[p] if p in values else input_array for p in preds]
                scales = [self.params.out_scales.get(p) for p in preds]
                out, _scale = apply_glue(spec, inputs, scales, self.dtype)
                values[spec.name] = out
                counters = glue_counters(spec, self.dtype)
                report.records.append(
                    _record(spec.name, "glue", counters, self.gpu, self.dtype)
                )
            else:  # pragma: no cover - exhaustive
                raise PlanError(f"unknown plan step {step!r}")
        report.output = values.get(self._output_name())
        return report

    def _output_name(self) -> str:
        names = [s.name for s in self.graph.topological()]
        return names[-1]

    # ---- batched execution ------------------------------------------------------
    def run_batch(
        self, batch_input: np.ndarray, engine: str | None = None
    ) -> SessionReport:
        """Run a stack of inputs (leading batch dim) through batched launches.

        Per step the whole batch goes through one kernel launch: per-image
        traffic and compute scale with the batch while launch overhead is paid
        once and cross-image weight re-streams are served from L2 (see
        :meth:`~repro.gpu.counters.AccessCounters.batched`).  Outputs are
        numerically identical to running each image through :meth:`run`.
        """
        engine = self.engine if engine is None else resolve_engine(engine)
        if batch_input.ndim != 4:
            raise ShapeError(
                f"run_batch expects (batch, C, H, W), got shape {batch_input.shape}"
            )
        n = batch_input.shape[0]
        report = SessionReport(
            self.plan.model_name, self.gpu, self.dtype, batch_size=n
        )
        values: dict[str, np.ndarray] = {}

        def input_of(layer_name: str) -> np.ndarray:
            preds = self.graph.predecessors(layer_name)
            if not preds:
                return batch_input
            return values[preds[0]]

        for step in self.plan.steps:
            if isinstance(step, FcmStep):
                kernel = build_chain_kernel(
                    [self.params[sp.name] for sp in step.specs],
                    step.tiling,
                    step.fcm_type,
                )
                res = kernel.simulate_batch(
                    input_of(step.specs[0].name), self.gpu, engine
                )
                values[step.specs[-1].name] = res.output
                report.records.append(
                    _record(
                        "+".join(step.layer_names), "fcm", res.counters, self.gpu,
                        self.dtype, res.timing(),
                    )
                )
            elif isinstance(step, LblStep):
                kernel = build_lbl_kernel(self.params[step.spec.name], step.tiling)
                res = kernel.simulate_batch(input_of(step.spec.name), self.gpu, engine)
                values[step.spec.name] = res.output
                report.records.append(
                    _record(step.spec.name, "lbl", res.counters, self.gpu,
                            self.dtype, res.timing())
                )
            elif isinstance(step, StdStep):
                from ..baselines.cudnn import cudnn_batched

                ifms = input_of(step.spec.name)
                outs = [
                    run_cudnn(self.params[step.spec.name], ifm, _STD_ALGO, self.gpu)[0]
                    for ifm in ifms
                ]
                values[step.spec.name] = np.stack(outs)
                counters, timing = cudnn_batched(step.spec, _STD_ALGO, self.gpu, n)
                report.records.append(
                    _record(step.spec.name, "std", counters, self.gpu, self.dtype, timing)
                )
            elif isinstance(step, GlueStep):
                spec = step.spec
                preds = self.graph.predecessors(spec.name)
                scales = [self.params.out_scales.get(p) for p in preds]
                outs = []
                for i in range(n):
                    inputs = [
                        values[p][i] if p in values else batch_input[i] for p in preds
                    ]
                    out, _scale = apply_glue(spec, inputs, scales, self.dtype)
                    outs.append(out)
                values[spec.name] = np.stack(outs)
                counters = glue_counters(spec, self.dtype).batched(n)
                report.records.append(
                    _record(spec.name, "glue", counters, self.gpu, self.dtype)
                )
            else:  # pragma: no cover - exhaustive
                raise PlanError(f"unknown plan step {step!r}")
        report.output = values.get(self._output_name())
        return report

    def run_analytic_batch(self, batch_size: int) -> SessionReport:
        """Counters-only batched execution (the serving fast path).

        Byte/MAC totals equal :meth:`run_batch` exactly, with no tensors
        materialized — one call per (plan, batch size) prices a whole
        micro-batch in microseconds.
        """
        if batch_size < 1:
            raise PlanError(f"batch_size must be >= 1, got {batch_size}")
        from ..baselines.cudnn import cudnn_batched

        report = SessionReport(
            self.plan.model_name, self.gpu, self.dtype, batch_size=batch_size
        )
        for step in self.plan.steps:
            if isinstance(step, FcmStep):
                counters = chain_counters(
                    step.specs, step.tiling, step.fcm_type
                ).batched(
                    batch_size,
                    sum(sp.weights_bytes for sp in step.specs),
                )
                report.records.append(
                    _record("+".join(step.layer_names), "fcm", counters,
                            self.gpu, self.dtype)
                )
            elif isinstance(step, LblStep):
                counters = lbl_counters(step.spec, step.tiling).batched(
                    batch_size, step.spec.weights_bytes
                )
                report.records.append(
                    _record(step.spec.name, "lbl", counters, self.gpu, self.dtype)
                )
            elif isinstance(step, StdStep):
                counters, timing = cudnn_batched(
                    step.spec, _STD_ALGO, self.gpu, batch_size
                )
                report.records.append(
                    _record(step.spec.name, "std", counters, self.gpu, self.dtype, timing)
                )
            elif isinstance(step, GlueStep):
                counters = glue_counters(step.spec, self.dtype).batched(batch_size)
                report.records.append(
                    _record(step.spec.name, "glue", counters, self.gpu, self.dtype)
                )
        return report

    # ---- analytic execution -----------------------------------------------------
    def run_analytic(self) -> SessionReport:
        """Counters-only execution via the measured-convention estimators.

        Byte counts and MACs equal the functional run exactly (verified by
        integration tests); no tensors are materialized, so full-size models
        sweep in milliseconds.
        """
        report = SessionReport(self.plan.model_name, self.gpu, self.dtype)
        for step in self.plan.steps:
            if isinstance(step, FcmStep):
                counters = chain_counters(step.specs, step.tiling, step.fcm_type)
                report.records.append(
                    _record("+".join(step.layer_names), "fcm", counters,
                            self.gpu, self.dtype)
                )
            elif isinstance(step, LblStep):
                counters = lbl_counters(step.spec, step.tiling)
                report.records.append(
                    _record(step.spec.name, "lbl", counters, self.gpu, self.dtype)
                )
            elif isinstance(step, StdStep):
                counters = cudnn_counters(step.spec, _STD_ALGO)
                from ..baselines.cudnn import cudnn_timing

                timing = cudnn_timing(step.spec, _STD_ALGO, self.gpu)
                report.records.append(
                    _record(step.spec.name, "std", counters, self.gpu, self.dtype, timing)
                )
            elif isinstance(step, GlueStep):
                counters = glue_counters(step.spec, self.dtype)
                report.records.append(
                    _record(step.spec.name, "glue", counters, self.gpu, self.dtype)
                )
        return report


def build_session(
    model: str,
    gpu: GpuSpec,
    dtype: DType = DType.FP32,
    *,
    max_chain: int = 2,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
) -> InferenceSession:
    """Plan ``model`` on ``gpu`` and materialize a ready session.

    The build-graph -> plan -> materialize -> session scaffold every
    functional entry point needs (CLI ``run``, ``make profile``, the engine
    benches); keep them on this one helper so the setup can't drift apart.
    """
    from ..models.zoo import build_model
    from ..planner.planner import FusePlanner

    graph = build_model(model, dtype)
    plan = FusePlanner(gpu, max_chain=max_chain).plan(graph)
    params = materialize_network(graph, dtype, seed)
    return InferenceSession(graph, plan, params, engine=engine)


def seeded_input(graph: ModelGraph, dtype: DType, seed: int = 0, batch: int = 1) -> np.ndarray:
    """Deterministic random input matching the graph's first layer.

    ``batch > 1`` prepends a batch dimension (for :meth:`InferenceSession.
    run_batch`); INT8 graphs get full-range int8 samples, FP32 standard
    normals.
    """
    shape = next(iter(graph.topological())).ifm.shape
    if batch > 1:
        shape = (batch,) + shape
    rng = np.random.default_rng(seed)
    if dtype is DType.INT8:
        return rng.integers(-128, 128, shape).astype(np.int8)
    return rng.standard_normal(shape).astype(np.float32)


class TvmSession:
    """Execute a :class:`TvmPlan` (cuDNN-backend per-layer, fused adds)."""

    def __init__(
        self,
        graph: ModelGraph,
        plan: TvmPlan,
        params: NetworkParams | None = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.gpu = plan.gpu
        self.dtype = plan.dtype
        self.params = params if params is not None else materialize_network(
            graph, plan.dtype, seed
        )

    def run(self, input_array: np.ndarray) -> SessionReport:
        """Functional execution (reference ops + cuDNN accounting)."""
        report = SessionReport(self.plan.model_name, self.gpu, self.dtype)
        values: dict[str, np.ndarray] = {}
        for step in self.plan.steps:
            if isinstance(step, TvmConvStep):
                preds = self.graph.predecessors(step.spec.name)
                ifm = values[preds[0]] if preds else input_array
                out, counters, timing = run_cudnn(
                    self.params[step.spec.name], ifm, step.algo, self.gpu,
                    gemm_tile=step.gemm_tile,
                )
                values[step.spec.name] = out
                report.records.append(
                    _record(step.spec.name, "tvm-conv", counters, self.gpu,
                            self.dtype, timing)
                )
            else:
                spec = step.spec
                preds = self.graph.predecessors(spec.name)
                inputs = [values[p] if p in values else input_array for p in preds]
                scales = [self.params.out_scales.get(p) for p in preds]
                out, _scale = apply_glue(spec, inputs, scales, self.dtype)
                values[spec.name] = out
                counters = glue_counters(spec, self.dtype, fused=step.fused)
                report.records.append(
                    _record(spec.name, "glue", counters, self.gpu, self.dtype)
                )
        names = [s.name for s in self.graph.topological()]
        report.output = values.get(names[-1])
        return report

    def run_analytic(self) -> SessionReport:
        """Counters-only execution of the TVM plan."""
        from ..baselines.cudnn import cudnn_timing

        report = SessionReport(self.plan.model_name, self.gpu, self.dtype)
        for step in self.plan.steps:
            if isinstance(step, TvmConvStep):
                counters = cudnn_counters(step.spec, step.algo, gemm_tile=step.gemm_tile)
                timing = cudnn_timing(step.spec, step.algo, self.gpu, gemm_tile=step.gemm_tile)
                report.records.append(
                    _record(step.spec.name, "tvm-conv", counters, self.gpu,
                            self.dtype, timing)
                )
            else:
                counters = glue_counters(step.spec, self.dtype, fused=step.fused)
                report.records.append(
                    _record(step.spec.name, "glue", counters, self.gpu, self.dtype)
                )
        return report
