"""Functional + accounting semantics of non-convolutional glue nodes.

Glue ops (residual adds, pooling, attention, classifier) execute identically
in our runtime and the TVM baseline — with one deliberate exception: TVM's
injective fusion folds residual adds into the producing kernel (no extra
traffic), whereas our conv-conv-fused runtime pays for them.  That asymmetry
is the paper's explanation for TVM being closest on complex-DAG models.
"""

from __future__ import annotations

import numpy as np

from ..core.dtypes import DType
from ..core.quantize import QuantParams
from ..errors import ShapeError, UnsupportedError
from ..gpu.counters import AccessCounters
from ..ir.graph import GlueSpec

__all__ = ["apply_glue", "glue_counters"]


def _maxpool2(x: np.ndarray) -> np.ndarray:
    """3x3 stride-2 max pooling with padding 1 (the CNN downsampling pool).

    Nine shifted :func:`np.maximum` passes instead of a windowed reduction —
    the strided-view ``max`` walks a 5-D view tap by tap and is an order of
    magnitude slower at feature-map scale.
    """
    pad_val = np.iinfo(x.dtype).min if np.issubdtype(x.dtype, np.integer) else -np.inf
    xp = np.pad(x, ((0, 0), (1, 1), (1, 1)), constant_values=pad_val)
    out_h = (xp.shape[1] - 3) // 2 + 1
    out_w = (xp.shape[2] - 3) // 2 + 1
    h_span = (out_h - 1) * 2 + 1
    w_span = (out_w - 1) * 2 + 1
    out = None
    for dk in range(3):
        for dl in range(3):
            tap = xp[:, dk : dk + h_span : 2, dl : dl + w_span : 2]
            out = tap.copy() if out is None else np.maximum(out, tap, out=out)
    return out.astype(x.dtype, copy=False)


def apply_glue(
    spec: GlueSpec,
    inputs: list[np.ndarray],
    scales: list[QuantParams | None],
    dtype: DType,
) -> tuple[np.ndarray, QuantParams | None]:
    """Execute one glue node; returns (output, output quant scale).

    INT8 residual adds dequantize both operands, add in fp32, and requantize
    onto the first operand's grid — the standard static-quantization add.
    """
    if not inputs:
        raise ShapeError(f"glue {spec.name!r} has no inputs")
    if spec.op == "add":
        if len(inputs) != 2:
            raise ShapeError(f"add glue {spec.name!r} needs exactly 2 inputs")
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(f"add glue {spec.name!r}: shapes {a.shape} vs {b.shape}")
        if dtype is DType.INT8:
            sa = scales[0] or QuantParams(1.0)
            sb = scales[1] or QuantParams(1.0)
            real = a.astype(np.float32) * sa.scale + b.astype(np.float32) * sb.scale
            q = np.clip(np.rint(real / sa.scale), -128, 127).astype(np.int8)
            return q, sa
        return (a + b).astype(a.dtype), scales[0]
    if spec.op == "maxpool2":
        return _maxpool2(inputs[0]), scales[0]
    if spec.op == "gap":
        x = inputs[0]
        if dtype is DType.INT8 and scales[0] is not None:
            x = x.astype(np.float32) * scales[0].scale
        return x.mean(axis=(1, 2), dtype=np.float64).astype(np.float32), None
    if spec.op in ("attention", "dense", "noop"):
        # Carried for accounting; numerically a passthrough in this substrate.
        return inputs[0], scales[0]
    raise UnsupportedError(f"unknown glue op {spec.op!r} ({spec.name})")


def glue_counters(spec: GlueSpec, dtype: DType, fused: bool = False) -> AccessCounters:
    """Traffic/compute tally of one glue node.

    ``fused=True`` (TVM's injective fusion of adds) charges nothing — the add
    happens in the producer kernel's epilogue.
    """
    counters = AccessCounters()
    if fused:
        return counters
    counters.kernel_launches = 1
    nbytes = spec.out_elements * dtype.nbytes
    if spec.op == "add":
        counters.read("glue", 2 * nbytes)
    elif spec.op == "maxpool2":
        counters.read("glue", 4 * nbytes)  # ~2x2 input pixels per output
    else:
        counters.read("glue", nbytes)
    counters.write("glue", nbytes)
    counters.compute(spec.flops // 2)  # MAC-equivalents of the node's FLOPs
    return counters
