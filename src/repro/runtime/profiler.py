"""Report formatting and cross-session comparison helpers.

The paper's end-to-end figures compare our sessions against TVM's on latency
(Fig. 10) and energy-per-inference (Fig. 11); this module computes those
ratios and renders per-layer profiles like a miniature Nsight summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from .session import SessionReport

__all__ = ["Comparison", "compare", "profile_table"]


@dataclass(frozen=True)
class Comparison:
    """Ours-vs-baseline end-to-end ratios (paper Figs. 10/11 datapoints)."""

    model_name: str
    gpu_name: str
    dtype: str
    speedup: float           # baseline latency / ours
    energy_ratio: float      # ours energy / baseline (paper normalizes to TVM)
    gma_ratio: float         # ours GMA bytes / baseline

    def describe(self) -> str:
        return (
            f"{self.model_name:14s} {self.gpu_name:5s} {self.dtype:5s} "
            f"speedup={self.speedup:5.2f}x energy={self.energy_ratio:5.2f} "
            f"gma={self.gma_ratio:5.2f}"
        )


def compare(ours: SessionReport, baseline: SessionReport) -> Comparison:
    """Ratio summary of two end-to-end reports over the same network."""
    return Comparison(
        model_name=ours.model_name,
        gpu_name=ours.gpu.name,
        dtype=str(ours.dtype),
        speedup=baseline.latency_s / ours.latency_s,
        energy_ratio=ours.energy_j / baseline.energy_j,
        gma_ratio=ours.total_gma_bytes / baseline.total_gma_bytes,
    )


def profile_table(report: SessionReport, top: int | None = None) -> str:
    """Render a per-step latency/traffic table, heaviest steps first."""
    rows = sorted(report.records, key=lambda r: r.time_s, reverse=True)
    if top is not None:
        rows = rows[:top]
    lines = [
        f"profile of {report.model_name} on {report.gpu.name} ({report.dtype}) — "
        f"total {report.latency_s * 1e3:.3f} ms",
        f"{'step':34s} {'kind':8s} {'time(us)':>10s} {'GMA(KB)':>10s} "
        f"{'MACs(M)':>9s} {'bound':>5s}",
    ]
    for r in rows:
        lines.append(
            f"{r.name[:34]:34s} {r.kind:8s} {r.time_s * 1e6:10.1f} "
            f"{r.counters.total_bytes / 1024:10.1f} "
            f"{r.counters.total_macs / 1e6:9.2f} {r.bound:>5s}"
        )
    return "\n".join(lines)
