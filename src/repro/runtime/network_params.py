"""Network-wide parameter materialization with chained INT8 scales.

Static-quantized inference fixes every tensor's scale offline; a layer's
input scale is its producer's output scale, propagated through
scale-preserving glue (adds requantize onto their first operand's grid,
pooling is scale-invariant).  Materializing parameters once per *network*
— rather than per kernel — guarantees our runtime, the LBL runtime and the
TVM baseline execute numerically identical networks, so end-to-end outputs
can be compared bit-for-bit (INT8) or to fp32 tolerance.
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..core.quantize import QuantParams
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvSpec
from ..kernels.params import LayerParams, make_layer_params

__all__ = ["NetworkParams", "materialize_network"]

#: Scale of the quantized network input (symmetric [-1, 1] image range).
INPUT_SCALE = QuantParams(scale=1.0 / 127.0)


class NetworkParams:
    """Per-layer parameters plus the propagated activation scales."""

    def __init__(self, graph: ModelGraph, dtype: DType, seed: int = 0) -> None:
        self.graph = graph
        self.dtype = dtype
        self.seed = seed
        self.layers: dict[str, LayerParams] = {}
        #: activation quant scale at each node's *output* (None for FP32).
        self.out_scales: dict[str, QuantParams | None] = {}
        self._materialize()

    def _in_scale(self, name: str) -> QuantParams | None:
        preds = self.graph.predecessors(name)
        if not preds:
            return INPUT_SCALE if self.dtype is DType.INT8 else None
        return self.out_scales[preds[0]]

    def _materialize(self) -> None:
        for spec in self.graph.topological():
            if isinstance(spec, GlueSpec):
                # Scale-preserving ops propagate the first producer's scale;
                # gap/dense leave the quantized domain (fp32 head).
                if spec.op in ("gap", "dense"):
                    self.out_scales[spec.name] = None
                else:
                    self.out_scales[spec.name] = self._in_scale(spec.name)
                continue
            assert isinstance(spec, ConvSpec)
            spec = spec.with_dtype(self.dtype)
            params = make_layer_params(
                spec, seed=self.seed, in_scale=self._in_scale(spec.name)
            )
            self.layers[spec.name] = params
            self.out_scales[spec.name] = params.out_scale

    def __getitem__(self, name: str) -> LayerParams:
        return self.layers[name]


def materialize_network(graph: ModelGraph, dtype: DType, seed: int = 0) -> NetworkParams:
    """Materialize deterministic weights/scales for a whole model."""
    return NetworkParams(graph, dtype, seed)
