"""End-to-end runtime: network parameters, glue ops, inference sessions."""

from .glue import apply_glue, glue_counters
from .network_params import NetworkParams, materialize_network
from .profiler import Comparison, compare, profile_table
from .session import (
    InferenceSession,
    SessionReport,
    StepRecord,
    TvmSession,
    build_session,
    seeded_input,
)

__all__ = [
    "apply_glue",
    "glue_counters",
    "NetworkParams",
    "materialize_network",
    "Comparison",
    "compare",
    "profile_table",
    "InferenceSession",
    "SessionReport",
    "StepRecord",
    "TvmSession",
    "build_session",
    "seeded_input",
]
