"""Figures 6 & 7 — FCM speedup over layer-by-layer execution.

For every Table II fusion case on every GPU: time the two-kernel LBL
execution (FusePlanner-minimal tilings, two launches) against the single
fused kernel, both through the roofline over exact analytic counters.
Paper findings to reproduce in shape: FCMs win in the large majority of the
72 experiments; FP32 max ~1.6x / avg ~1.3x, INT8 max ~1.8x / avg ~1.4x; a
few slowdown cases exist, concentrated on the GPU with the smallest
L1/shared per-SM budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from ..gpu.roofline import time_kernel
from ..gpu.specs import ALL_GPUS, GpuSpec
from ..planner.planner import FusePlanner
from .analytic import fcm_counters, pair_lbl_counters
from .fusion_cases import FusionCase, select_fusion_cases

__all__ = ["SpeedupPoint", "fcm_vs_lbl_case", "figure6_7"]


@dataclass(frozen=True)
class SpeedupPoint:
    """One bar of Fig. 6/7: a fusion case on one GPU."""

    case_id: str
    gpu: str
    fcm_type: str
    lbl_time_s: float
    fcm_time_s: float
    lbl_gma_bytes: int
    fcm_gma_bytes: int
    redundancy_ratio: float

    @property
    def speedup(self) -> float:
        return self.lbl_time_s / self.fcm_time_s

    @property
    def gma_saving(self) -> float:
        return 1.0 - self.fcm_gma_bytes / self.lbl_gma_bytes


def fcm_vs_lbl_case(case: FusionCase, gpu: GpuSpec) -> SpeedupPoint | None:
    """Evaluate one fusion case on one GPU; None if no module is feasible."""
    planner = FusePlanner(gpu)
    lbl_first = planner.lbl_plan(case.first)
    lbl_second = planner.lbl_plan(case.second)
    decision = planner.evaluate_pair(case.first, case.second)
    if decision is None:
        return None
    c_lbl = pair_lbl_counters(
        case.first, case.second, lbl_first.tiling, lbl_second.tiling
    )
    c_fcm = fcm_counters(
        decision.fcm_type, case.first, case.second, decision.fcm.tiling
    )
    dtype = case.dtype
    t_lbl = time_kernel(c_lbl, gpu, dtype)
    t_fcm = time_kernel(c_fcm, gpu, dtype)
    return SpeedupPoint(
        case_id=case.case_id,
        gpu=gpu.name,
        fcm_type=decision.fcm_type.name,
        lbl_time_s=t_lbl.t_total_s,
        fcm_time_s=t_fcm.t_total_s,
        lbl_gma_bytes=c_lbl.total_bytes,
        fcm_gma_bytes=c_fcm.total_bytes,
        redundancy_ratio=c_fcm.redundancy_ratio,
    )


def figure6_7(
    dtype: DType, gpus: tuple[GpuSpec, ...] = ALL_GPUS
) -> list[SpeedupPoint]:
    """All speedup points of Fig. 6 (FP32) or Fig. 7 (INT8)."""
    points: list[SpeedupPoint] = []
    for case in select_fusion_cases(dtype, gpus):
        for gpu in gpus:
            p = fcm_vs_lbl_case(case, gpu)
            if p is not None:
                points.append(p)
    return points
