"""Table III — roofline classification of LBL and FCM kernels (GTX, RTX).

For each FP32 fusion case the paper marks, per GPU, whether each constituent
LBL kernel and the fused kernel are compute- ('C') or memory-bound ('M').
Patterns to reproduce: most LBL DW/PW kernels are memory-bound; fusion turns
several memory-bound pairs compute-bound on the smaller GPU (GTX) — the
paper's explanation for GTX's lower speedups — while more cases stay
memory-bound on RTX.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from ..gpu.roofline import time_kernel
from ..gpu.specs import GTX1660, RTX_A4000, GpuSpec
from ..planner.planner import FusePlanner
from .analytic import fcm_counters, lbl_counters
from .fusion_cases import select_fusion_cases

__all__ = ["BoundRow", "table3"]


@dataclass(frozen=True)
class BoundRow:
    """One Table III cell group: LBL pair bounds + FCM bound."""

    case_id: str
    gpu: str
    lbl_first_bound: str
    lbl_second_bound: str
    fcm_bound: str

    @property
    def lbl_label(self) -> str:
        return f"{self.lbl_first_bound}, {self.lbl_second_bound}"


def table3(
    gpus: tuple[GpuSpec, ...] = (GTX1660, RTX_A4000), dtype: DType = DType.FP32
) -> list[BoundRow]:
    """Classify every fusion case's kernels on the requested GPUs."""
    rows: list[BoundRow] = []
    for case in select_fusion_cases(dtype):
        for gpu in gpus:
            planner = FusePlanner(gpu)
            decision = planner.evaluate_pair(case.first, case.second)
            if decision is None:
                continue
            b1 = time_kernel(
                lbl_counters(case.first, planner.lbl_plan(case.first).tiling),
                gpu, dtype,
            ).bound
            b2 = time_kernel(
                lbl_counters(case.second, planner.lbl_plan(case.second).tiling),
                gpu, dtype,
            ).bound
            bf = time_kernel(
                fcm_counters(
                    decision.fcm_type, case.first, case.second, decision.fcm.tiling
                ),
                gpu, dtype,
            ).bound
            rows.append(BoundRow(case.case_id, gpu.name, b1, b2, bf))
    return rows
