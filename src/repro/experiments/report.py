"""One-shot reproduction report: every paper artifact into one markdown file.

``python -m repro.experiments.report [out.md]`` regenerates Table II/III and
Figures 1/6/7/8/9/10/11 and writes a self-contained markdown report with the
paper's reference numbers alongside — the automated companion to
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from ..core.dtypes import DType
from .fig1 import figure1
from .fig10_fig11 import figure10_11
from .fig6_fig7 import figure6_7
from .fig8 import figure8
from .fig9 import figure9
from .fusion_cases import table2_rows
from .reporting import format_table
from .table3 import table3

__all__ = ["generate_report", "main"]


def _block(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report() -> str:
    """Run every harness and render the markdown report."""
    parts = ["# Reproduction report (auto-generated)\n"]

    rows = figure1()
    parts.append(_block(
        "Figure 1 — motivation (normalized to the standard conv)",
        format_table(
            ["variant", "ops", "weights", "FMs", "memory"],
            [[r.variant, f"{r.operations:.1%}", f"{r.weights:.1%}",
              f"{r.feature_maps:.1%}", f"{r.memory_accesses:.1%}"] for r in rows],
        ),
    ))

    for dtype, tag in ((DType.FP32, "FP32"), (DType.INT8, "INT8")):
        t2 = table2_rows(dtype)
        parts.append(_block(
            f"Table II ({tag}) — fusion cases",
            format_table(list(t2[0]), [list(r.values()) for r in t2]),
        ))

    t3 = table3()
    parts.append(_block(
        "Table III — boundedness (C/M)",
        format_table(
            ["case", "gpu", "LBL", "FCM"],
            [[r.case_id, r.gpu, r.lbl_label, r.fcm_bound] for r in t3],
        ),
    ))

    for dtype, fig in ((DType.FP32, "Figure 6"), (DType.INT8, "Figure 7")):
        pts = figure6_7(dtype)
        sp = [p.speedup for p in pts]
        body = format_table(
            ["case", "gpu", "module", "speedup", "GMA saving"],
            [[p.case_id, p.gpu, p.fcm_type, f"{p.speedup:.2f}x",
              f"{p.gma_saving:.0%}"] for p in pts],
        )
        body += (f"\nwins {sum(s > 1 for s in sp)}/{len(sp)}  "
                 f"avg {np.mean(sp):.2f}x  max {max(sp):.2f}x")
        parts.append(_block(f"{fig} — FCM vs LBL ({dtype})", body))

    bars = figure8()
    parts.append(_block(
        "Figure 8 — GM access time split (normalized to LBL)",
        format_table(
            ["case", "gpu", "variant", "read", "write"],
            [[b.case_id, b.gpu, b.variant, f"{b.read_share:.2f}",
              f"{b.write_share:.2f}"] for b in bars],
        ),
    ))

    f9 = figure9()
    parts.append(_block(
        "Figure 9 — vs cuDNN (normalized to IMPL_PRECOMP_GEMM)",
        format_table(
            ["case", "gpu", "GEMM", "IMP_GEMM", "LBL", "FCM", "FCM GMA sav"],
            [[p.case_id, p.gpu, f"{p.gemm_speedup:.2f}",
              f"{p.implicit_gemm_speedup:.2f}", f"{p.lbl_speedup:.2f}",
              f"{p.fcm_speedup:.2f}", f"{p.fcm_gma_saving:.0%}"] for p in f9],
        ),
    ))

    for dtype in (DType.FP32, DType.INT8):
        pts = figure10_11(dtype)
        parts.append(_block(
            f"Figures 10/11 ({dtype}) — end-to-end vs TVM",
            format_table(
                ["model", "gpu", "speedup", "energy", "fused"],
                [[p.model, p.gpu, f"{p.speedup_vs_tvm:.2f}x",
                  f"{p.energy_vs_tvm:.2f}", f"{p.fused_fraction:.0%}"]
                 for p in pts],
            ),
        ))
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    out = Path(args[0]) if args else Path("reproduction_report.md")
    out.write_text(generate_report(), encoding="utf-8")
    print(f"wrote {out} ({out.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
