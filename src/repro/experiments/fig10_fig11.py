"""Figures 10 & 11 — end-to-end CNN comparison against TVM.

Four CNNs x three GPUs x two precisions.  Ours: FusePlanner plan (FCMs +
tuned LBL kernels, shared library kernels for standard convs, paid residual
glue).  TVM: per-layer auto-tuned cuDNN-backend kernels with fused
elementwise glue.  Fig. 10 reports the speedup, Fig. 11 energy-per-inference
normalized to TVM.  Shape to reproduce: we win everywhere (paper: max 1.6x
FP32 / 1.8x INT8, avg 1.4x / 1.5x); energy ~0.54-0.59 of TVM's on average
with savings exceeding latency savings; MobileNetV1 (simple linear DAG)
benefits most.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.tvm import TvmCompiler
from ..core.dtypes import DType
from ..gpu.specs import ALL_GPUS, GpuSpec
from ..models.zoo import CNN_MODELS, PAPER_LABELS, build_model
from ..planner.planner import FusePlanner
from ..runtime.session import InferenceSession, TvmSession

__all__ = ["EndToEndPoint", "figure10_11", "end_to_end_point"]


@dataclass(frozen=True)
class EndToEndPoint:
    """One model/GPU/precision datapoint of Figs. 10 and 11."""

    model: str
    gpu: str
    dtype: str
    speedup_vs_tvm: float
    energy_vs_tvm: float
    gma_vs_tvm: float
    fused_fraction: float
    ours_latency_ms: float
    tvm_latency_ms: float


def end_to_end_point(model_name: str, gpu: GpuSpec, dtype: DType) -> EndToEndPoint:
    """Plan, compile and analytically execute one model both ways."""
    graph = build_model(model_name, dtype)
    plan = FusePlanner(gpu).plan(graph)
    ours = InferenceSession(graph, plan, params=None).run_analytic()
    tvm_plan = TvmCompiler(gpu).compile(graph, dtype)
    tvm = TvmSession(graph, tvm_plan, params=None).run_analytic()
    return EndToEndPoint(
        model=PAPER_LABELS[model_name],
        gpu=gpu.name,
        dtype=str(dtype),
        speedup_vs_tvm=tvm.latency_s / ours.latency_s,
        energy_vs_tvm=ours.energy_j / tvm.energy_j,
        gma_vs_tvm=ours.total_gma_bytes / tvm.total_gma_bytes,
        fused_fraction=plan.fused_layer_fraction,
        ours_latency_ms=ours.latency_s * 1e3,
        tvm_latency_ms=tvm.latency_s * 1e3,
    )


def figure10_11(
    dtype: DType,
    gpus: tuple[GpuSpec, ...] = ALL_GPUS,
    models: tuple[str, ...] = CNN_MODELS,
) -> list[EndToEndPoint]:
    """All datapoints of Fig. 10a/11a (FP32) or Fig. 10b/11b (INT8)."""
    return [end_to_end_point(m, gpu, dtype) for gpu in gpus for m in models]
