"""Minimal monospaced table rendering for experiment harnesses."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table (the benches' stdout artifact)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
