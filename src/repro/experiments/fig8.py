"""Figure 8 — global-memory access time, loads/stores split, FCM vs LBL.

The paper normalizes every bar to the LBL execution's total global-memory
time and splits each into read (load) and write (store) shares, on GTX and
RTX with FP32.  Fusion's signature is visible in both components: stores
drop because the intermediate is never written back; loads drop because it
is never re-read (minus the halo-recompute overhead of PWDW_R cases).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from ..gpu.roofline import time_kernel
from ..gpu.specs import GTX1660, RTX_A4000, GpuSpec
from ..planner.planner import FusePlanner
from .analytic import fcm_counters, pair_lbl_counters
from .fusion_cases import select_fusion_cases

__all__ = ["GmaTimeBar", "figure8"]


@dataclass(frozen=True)
class GmaTimeBar:
    """One stacked bar: read/write GM time normalized to the LBL total."""

    case_id: str
    gpu: str
    variant: str  # 'LBL' | 'FCM'
    read_share: float
    write_share: float

    @property
    def total(self) -> float:
        return self.read_share + self.write_share


def figure8(
    gpus: tuple[GpuSpec, ...] = (GTX1660, RTX_A4000), dtype: DType = DType.FP32
) -> list[GmaTimeBar]:
    """Compute all Fig. 8 bars (paper uses GTX and RTX at FP32)."""
    bars: list[GmaTimeBar] = []
    for case in select_fusion_cases(dtype):
        for gpu in gpus:
            planner = FusePlanner(gpu)
            decision = planner.evaluate_pair(case.first, case.second)
            if decision is None:
                continue
            c_lbl = pair_lbl_counters(
                case.first,
                case.second,
                planner.lbl_plan(case.first).tiling,
                planner.lbl_plan(case.second).tiling,
            )
            c_fcm = fcm_counters(
                decision.fcm_type, case.first, case.second, decision.fcm.tiling
            )
            t_lbl = time_kernel(c_lbl, gpu, dtype)
            t_fcm = time_kernel(c_fcm, gpu, dtype)
            base = t_lbl.t_memory_s
            bars.append(
                GmaTimeBar(
                    case.case_id, gpu.name, "LBL",
                    t_lbl.t_mem_read_s / base, t_lbl.t_mem_write_s / base,
                )
            )
            bars.append(
                GmaTimeBar(
                    case.case_id, gpu.name, "FCM",
                    t_fcm.t_mem_read_s / base, t_fcm.t_mem_write_s / base,
                )
            )
    return bars
