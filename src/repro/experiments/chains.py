"""Pairwise-vs-chain planner comparison — the chain-fusion headline table.

Beyond the paper: the pairwise FCM planner leaves one layer of every
inverted-residual block unfused (a PW->DW->PW run has three layers but each
conv joins at most one pair).  The chain planner's interval DP can fuse the
whole run when the chained cost model says it pays.  This experiment plans
every CNN workload twice — ``max_chain=2`` (the paper's pairwise plans,
reproduced bit-for-bit) and ``max_chain=K`` — and reports the estimated and
analytically executed GMA, latency and energy deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from ..gpu.specs import GpuSpec, RTX_A4000
from ..models.zoo import CNN_MODELS, PAPER_LABELS, build_model
from ..planner.planner import FusePlanner
from ..runtime.session import InferenceSession

__all__ = ["ChainComparison", "chain_comparison", "compare_chain_planning"]


@dataclass(frozen=True)
class ChainComparison:
    """One model's pairwise-vs-chain planning outcome."""

    model: str
    gpu: str
    dtype: str
    max_chain: int
    pairwise_gma_bytes: int
    chain_gma_bytes: int
    chain_count: int  # fused steps of length >= 3
    longest_chain: int
    pairwise_fused_fraction: float
    chain_fused_fraction: float
    speedup_vs_pairwise: float
    energy_vs_pairwise: float

    @property
    def gma_saving(self) -> float:
        """Fractional GMA reduction of chain plans over pairwise plans."""
        if self.pairwise_gma_bytes == 0:
            return 0.0
        return 1.0 - self.chain_gma_bytes / self.pairwise_gma_bytes


def compare_chain_planning(
    model_name: str, gpu: GpuSpec, dtype: DType, max_chain: int = 3
) -> ChainComparison:
    """Plan one model pairwise and chained; execute both analytically."""
    graph = build_model(model_name, dtype)
    pair_plan = FusePlanner(gpu, max_chain=2).plan(graph)
    chain_plan = FusePlanner(gpu, max_chain=max_chain).plan(graph)
    pair = InferenceSession(graph, pair_plan, params=None).run_analytic()
    chain = InferenceSession(graph, chain_plan, params=None).run_analytic()
    return ChainComparison(
        model=PAPER_LABELS.get(model_name, model_name),
        gpu=gpu.name,
        dtype=str(dtype),
        max_chain=max_chain,
        pairwise_gma_bytes=pair_plan.est_total_gma_bytes,
        chain_gma_bytes=chain_plan.est_total_gma_bytes,
        chain_count=sum(1 for s in chain_plan.fcm_steps if s.length >= 3),
        longest_chain=chain_plan.max_chain_length,
        pairwise_fused_fraction=pair_plan.fused_layer_fraction,
        chain_fused_fraction=chain_plan.fused_layer_fraction,
        speedup_vs_pairwise=pair.latency_s / chain.latency_s,
        energy_vs_pairwise=chain.energy_j / pair.energy_j,
    )


def chain_comparison(
    dtype: DType,
    gpu: GpuSpec = RTX_A4000,
    models: tuple[str, ...] = CNN_MODELS,
    max_chain: int = 3,
) -> list[ChainComparison]:
    """The comparison table: every CNN workload, pairwise vs chains."""
    return [compare_chain_planning(m, gpu, dtype, max_chain) for m in models]
