"""Fusion-case selection — regenerating the paper's Table II.

Paper §V-B: "We do a fine-grained evaluation using pairs of layers, or fusion
cases, from these DNNs that FusePlanner suggested.  These cases represent the
scenarios where FusePlanner suggests the same fusion type across the three
GPUs" — two cases per DNN, 12 per precision (F1-F12 for FP32, F1_8-F12_8 for
INT8).  A case may stand for several identical pairs (replicated blocks); the
``multiplicity`` field records that.

This module reruns that exact selection procedure against our planner.  The
chosen layer pairs need not be literally the paper's (the paper does not name
them beyond examples), but the *distribution of module types* must reproduce
the paper's headline: FP32 dominated by PWDW_R (redundant recomputation),
INT8 dominated by redundancy-free modules (DWPW/PWDW/PWPW) because halved
elements double the feasible tile extents (§VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from ..core.fcm import FcmType
from ..gpu.specs import ALL_GPUS, GpuSpec
from ..ir.layers import ConvSpec
from ..models.zoo import MODELS, PAPER_LABELS, build_model
from ..planner.plan import FcmStep
from ..planner.planner import FusePlanner

__all__ = ["FusionCase", "select_fusion_cases", "table2_rows"]

#: Model order of the paper's Table II columns (two cases per model).
_CASE_MODEL_ORDER = (
    "mobilenet_v1",
    "mobilenet_v2",
    "xception",
    "proxylessnas",
    "ceit",
    "cmt",
)


@dataclass(frozen=True)
class FusionCase:
    """One Table II column: a DW/PW pair with an all-GPU-agreed FCM type."""

    case_id: str
    model: str
    first: ConvSpec
    second: ConvSpec
    fcm_type: FcmType
    redundancy_ratio: float
    multiplicity: int

    @property
    def dtype(self) -> DType:
        return self.first.dtype

    def describe(self) -> str:
        red = f"{self.redundancy_ratio:.0%}" if self.redundancy_ratio > 0 else "-"
        return (
            f"{self.case_id:6s} {PAPER_LABELS[self.model]:7s} {self.fcm_type.name:7s} "
            f"{self.first.describe()} + {self.second.describe()} "
            f"redundancy={red} x{self.multiplicity}"
        )


def _geometry_key(first: ConvSpec, second: ConvSpec) -> tuple:
    """Two pairs with this key are replicated blocks (identical hyperparams)."""
    return (
        first.kind,
        first.in_channels,
        first.out_channels,
        first.in_h,
        first.kernel,
        first.stride,
        second.kind,
        second.in_channels,
        second.out_channels,
        second.kernel,
        second.stride,
    )


def select_fusion_cases(
    dtype: DType, gpus: tuple[GpuSpec, ...] = ALL_GPUS, per_model: int = 2
) -> list[FusionCase]:
    """Run FusePlanner per model x GPU and pick all-GPU-agreeing pairs.

    Deterministic: pairs are keyed by the first layer's name; agreement
    requires the same FCM type on every GPU; within a model, distinct
    geometries are preferred and ranked by estimated savings on the first GPU.
    """
    cases: list[FusionCase] = []
    counter = 1
    suffix = "_8" if dtype is DType.INT8 else ""
    for model_name in _CASE_MODEL_ORDER:
        if model_name not in MODELS:
            continue
        graph = build_model(model_name, dtype)
        per_gpu: list[dict[str, FcmStep]] = []
        for gpu in gpus:
            plan = FusePlanner(gpu).plan(graph)
            per_gpu.append({s.first.name: s for s in plan.fcm_steps})
        # Tier 1: pairs fused on every GPU with one agreed module type.
        # Tier 2: fused on every GPU, types differ (majority type reported).
        # Tier 3: fused on at least two GPUs.  The paper's strict criterion is
        # tier 1; lower tiers only fill a model's quota of two cases so the
        # fine-grained figures keep the paper's 12-case layout.
        common = set(per_gpu[0])
        for d in per_gpu[1:]:
            common &= set(d)
        tier1 = [
            n for n in sorted(common) if len({d[n].fcm_type for d in per_gpu}) == 1
        ]
        tier2 = [n for n in sorted(common) if n not in tier1]
        seen_2plus: dict[str, int] = {}
        for d in per_gpu:
            for n in d:
                seen_2plus[n] = seen_2plus.get(n, 0) + 1
        tier3 = [
            n
            for n in sorted(seen_2plus)
            if seen_2plus[n] >= 2 and n not in common
        ]
        # Count replicated geometries, keep one representative each, tiered.
        by_geom: dict[tuple, tuple[int, list[str]]] = {}
        for tier, names in enumerate((tier1, tier2, tier3)):
            for name in names:
                step = next(d[name] for d in per_gpu if name in d)
                key = _geometry_key(step.first, step.second)
                if key not in by_geom:
                    by_geom[key] = (tier, [])
                if by_geom[key][0] == tier:
                    by_geom[key][1].append(name)
        ranked = sorted(
            by_geom.values(),
            key=lambda tn: (
                tn[0],
                -next(d[tn[1][0]] for d in per_gpu if tn[1][0] in d).est_savings_bytes,
            ),
        )
        for _tier, names in ranked[:per_model]:
            step = next(d[names[0]] for d in per_gpu if names[0] in d)
            cases.append(
                FusionCase(
                    case_id=f"F{counter}{suffix}",
                    model=model_name,
                    first=step.first,
                    second=step.second,
                    fcm_type=step.fcm_type,
                    redundancy_ratio=step.redundancy_ratio,
                    multiplicity=len(names),
                )
            )
            counter += 1
    return cases


def table2_rows(dtype: DType) -> list[dict[str, str]]:
    """Table II: case id, model, FCM type, redundancy ratio."""
    rows = []
    for case in select_fusion_cases(dtype):
        rows.append(
            {
                "case": case.case_id,
                "model": PAPER_LABELS[case.model],
                "fcm": case.fcm_type.name,
                "redundancy": (
                    f"{case.redundancy_ratio:.0%}" if case.redundancy_ratio > 0 else "-"
                ),
                "pairs": str(case.multiplicity),
            }
        )
    return rows
