"""Analytic counter builders — exact, tensor-free launch accounting.

Thin re-export of :mod:`repro.planner.analytic` (kept there so the runtime
can use the same builders without an import cycle).  The measured-convention
estimators equal the simulated kernels' byte/MAC counters exactly (verified
by integration tests), so experiment harnesses can sweep all fusion cases x
GPUs without materializing tensors.
"""

from ..planner.analytic import (
    chain_counters,
    fcm_counters,
    lbl_counters,
    pair_lbl_counters,
)

__all__ = ["lbl_counters", "fcm_counters", "chain_counters", "pair_lbl_counters"]
