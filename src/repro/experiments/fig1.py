"""Figure 1 — motivation: standard vs DSC (DW+PW) vs fused convolution.

The paper's opening figure takes a MobileNet convolution and compares three
implementations of the same logical layer: a standard KxK convolution, its
depthwise-separable factorization, and the fused DSC.  It reports operation
count, weight traffic, feature-map traffic and total memory accesses, all
normalized to the standard convolution.  DSC slashes operations (~12%) but
*raises* memory accesses (the intermediate FM round-trip); fusion removes
that round-trip again.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Fig1Row", "figure1", "DEFAULT_LAYER"]

#: MobileNetV1 block 2's geometry: 64 -> 128 channels at 112x112, k=3.
DEFAULT_LAYER = {"c_in": 64, "c_out": 128, "h": 112, "w": 112, "kernel": 3}


@dataclass(frozen=True)
class Fig1Row:
    """One bar group of Figure 1 (values normalized to the standard conv)."""

    variant: str
    operations: float
    weights: float
    feature_maps: float

    @property
    def memory_accesses(self) -> float:
        return self.weights + self.feature_maps


def figure1(
    c_in: int = DEFAULT_LAYER["c_in"],
    c_out: int = DEFAULT_LAYER["c_out"],
    h: int = DEFAULT_LAYER["h"],
    w: int = DEFAULT_LAYER["w"],
    kernel: int = 3,
) -> list[Fig1Row]:
    """Compute the Figure 1 ratios for one layer geometry.

    Memory accesses follow the figure's layer-granularity accounting: each
    tensor is moved once per layer executing it (weights + IFMs read, OFMs
    written; the DSC's intermediate FM is written by the DW and read back by
    the PW; fusion eliminates exactly that round trip).
    """
    hw = h * w
    k2 = kernel * kernel
    # Standard convolution.
    std_ops = c_out * c_in * k2 * hw
    std_weights = c_out * c_in * k2
    std_fms = c_in * hw + c_out * hw
    std_mem = std_weights + std_fms
    # DSC: DW(k x k) then PW.
    dsc_ops = c_in * k2 * hw + c_out * c_in * hw
    dsc_weights = c_in * k2 + c_out * c_in
    dsc_fms = (c_in * hw + c_in * hw) + (c_in * hw + c_out * hw)
    # Fused: intermediate never leaves the chip.
    fused_ops = dsc_ops
    fused_weights = dsc_weights
    fused_fms = c_in * hw + c_out * hw

    def norm(ops: int, weights: int, fms: int, name: str) -> Fig1Row:
        return Fig1Row(
            variant=name,
            operations=ops / std_ops,
            weights=weights / std_mem,
            feature_maps=fms / std_mem,
        )

    return [
        norm(std_ops, std_weights, std_fms, "Standard"),
        norm(dsc_ops, dsc_weights, dsc_fms, "DSC (DW+PW)"),
        norm(fused_ops, fused_weights, fused_fms, "Fused"),
    ]
