"""Experiment harnesses regenerating every table and figure of the paper."""

from .analytic import chain_counters, fcm_counters, lbl_counters, pair_lbl_counters
from .chains import ChainComparison, chain_comparison, compare_chain_planning
from .fig1 import Fig1Row, figure1
from .fig10_fig11 import EndToEndPoint, end_to_end_point, figure10_11
from .fig6_fig7 import SpeedupPoint, fcm_vs_lbl_case, figure6_7
from .fig8 import GmaTimeBar, figure8
from .fig9 import CudnnPoint, cudnn_pair_time_s, figure9
from .fusion_cases import FusionCase, select_fusion_cases, table2_rows
from .reporting import format_table
from .table3 import BoundRow, table3

__all__ = [
    "chain_counters",
    "fcm_counters",
    "lbl_counters",
    "ChainComparison",
    "chain_comparison",
    "compare_chain_planning",
    "pair_lbl_counters",
    "Fig1Row",
    "figure1",
    "SpeedupPoint",
    "fcm_vs_lbl_case",
    "figure6_7",
    "GmaTimeBar",
    "figure8",
    "CudnnPoint",
    "cudnn_pair_time_s",
    "figure9",
    "EndToEndPoint",
    "end_to_end_point",
    "figure10_11",
    "FusionCase",
    "select_fusion_cases",
    "table2_rows",
    "format_table",
    "BoundRow",
    "table3",
]
