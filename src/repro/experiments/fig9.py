"""Figure 9 — FCM and cuDNN algorithms, normalized to IMPLICIT_PRECOMP_GEMM.

For every FP32 fusion case on every GPU, the paper stacks the speedups of
explicit GEMM, implicit GEMM and the FCM over the best library algorithm
(IMPL_PRECOMP_GEMM), the pair executed as two library kernels.  Shape to
reproduce: implicit beats explicit GEMM, our LBL beats all three library
algorithms (max ~3x, avg ~1.5x), FCMs reach ~3.7x max / ~2x avg, and GMA
savings reach ~63% (LBL) / ~83% (FCM) versus the best cuDNN algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.cudnn import CudnnAlgo, cudnn_counters, cudnn_timing
from ..core.dtypes import DType
from ..gpu.roofline import time_kernel
from ..gpu.specs import ALL_GPUS, GpuSpec
from ..planner.planner import FusePlanner
from .analytic import fcm_counters, pair_lbl_counters
from .fusion_cases import FusionCase, select_fusion_cases

__all__ = ["CudnnPoint", "figure9", "cudnn_pair_time_s"]


def cudnn_pair_time_s(case: FusionCase, algo: CudnnAlgo, gpu: GpuSpec) -> float:
    """Library execution of the pair: two kernels of the given algorithm."""
    return (
        cudnn_timing(case.first, algo, gpu).t_total_s
        + cudnn_timing(case.second, algo, gpu).t_total_s
    )


def cudnn_pair_gma_bytes(case: FusionCase, algo: CudnnAlgo) -> int:
    """Library global traffic of the pair."""
    return (
        cudnn_counters(case.first, algo).total_bytes
        + cudnn_counters(case.second, algo).total_bytes
    )


@dataclass(frozen=True)
class CudnnPoint:
    """One case/GPU group of Fig. 9 (all values relative to IMPL_PRECOMP)."""

    case_id: str
    gpu: str
    gemm_speedup: float
    implicit_gemm_speedup: float
    lbl_speedup: float
    fcm_speedup: float
    lbl_gma_saving: float  # vs best cuDNN (IMPL_PRECOMP)
    fcm_gma_saving: float


def figure9(
    dtype: DType = DType.FP32, gpus: tuple[GpuSpec, ...] = ALL_GPUS
) -> list[CudnnPoint]:
    """All Fig. 9 points (paper shows FP32; INT8 is implicit via Fig. 10b)."""
    points: list[CudnnPoint] = []
    for case in select_fusion_cases(dtype, gpus):
        for gpu in gpus:
            planner = FusePlanner(gpu)
            decision = planner.evaluate_pair(case.first, case.second)
            if decision is None:
                continue
            t_ref = cudnn_pair_time_s(case, CudnnAlgo.IMPLICIT_PRECOMP_GEMM, gpu)
            gma_ref = cudnn_pair_gma_bytes(case, CudnnAlgo.IMPLICIT_PRECOMP_GEMM)
            c_lbl = pair_lbl_counters(
                case.first,
                case.second,
                planner.lbl_plan(case.first).tiling,
                planner.lbl_plan(case.second).tiling,
            )
            c_fcm = fcm_counters(
                decision.fcm_type, case.first, case.second, decision.fcm.tiling
            )
            t_lbl = time_kernel(c_lbl, gpu, dtype).t_total_s
            t_fcm = time_kernel(c_fcm, gpu, dtype).t_total_s
            points.append(
                CudnnPoint(
                    case_id=case.case_id,
                    gpu=gpu.name,
                    gemm_speedup=t_ref / cudnn_pair_time_s(case, CudnnAlgo.GEMM, gpu),
                    implicit_gemm_speedup=t_ref
                    / cudnn_pair_time_s(case, CudnnAlgo.IMPLICIT_GEMM, gpu),
                    lbl_speedup=t_ref / t_lbl,
                    fcm_speedup=t_ref / t_fcm,
                    lbl_gma_saving=1.0 - c_lbl.total_bytes / gma_ref,
                    fcm_gma_saving=1.0 - c_fcm.total_bytes / gma_ref,
                )
            )
    return points
