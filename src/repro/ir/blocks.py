"""Reusable network block builders: DSC and inverted-residual blocks.

These mirror the two module families the paper targets (Fig. 4): MobileNetV1
and Xception are stacks of depthwise-separable convolutions (DW then PW);
MobileNetV2 and ProxylessNAS stack inverted residuals (PW expand, DW, PW
project).  Each builder appends fully shape-resolved :class:`ConvSpec` nodes
to a :class:`~repro.ir.graph.ModelGraph` and returns the name of the last node
added, so blocks chain naturally.
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..core.ops import out_dim
from .graph import GlueSpec, ModelGraph
from .layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = ["dsc_block", "inverted_residual_block", "standard_conv"]


def standard_conv(
    graph: ModelGraph,
    name: str,
    in_channels: int,
    out_channels: int,
    in_h: int,
    in_w: int,
    kernel: int = 3,
    stride: int = 1,
    activation: str | None = "relu",
    dtype: DType = DType.FP32,
    after: str | None = None,
) -> str:
    """Append one standard convolution (used for stem layers)."""
    spec = ConvSpec(
        name=name,
        kind=ConvKind.STANDARD,
        in_channels=in_channels,
        out_channels=out_channels,
        in_h=in_h,
        in_w=in_w,
        kernel=kernel,
        stride=stride,
        padding=kernel // 2,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=activation),
    )
    return graph.add(spec, after=after)


def dsc_block(
    graph: ModelGraph,
    name: str,
    channels_in: int,
    channels_out: int,
    in_h: int,
    in_w: int,
    stride: int = 1,
    kernel: int = 3,
    activation: str | None = "relu",
    dtype: DType = DType.FP32,
    after: str | None = None,
) -> str:
    """Depthwise-separable convolution block: DW(kxk, stride) then PW(1x1).

    Returns the name of the PW layer (the block output).
    """
    dw = ConvSpec(
        name=f"{name}_dw",
        kind=ConvKind.DEPTHWISE,
        in_channels=channels_in,
        out_channels=channels_in,
        in_h=in_h,
        in_w=in_w,
        kernel=kernel,
        stride=stride,
        padding=kernel // 2,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=activation),
    )
    graph.add(dw, after=after)
    pw = ConvSpec(
        name=f"{name}_pw",
        kind=ConvKind.POINTWISE,
        in_channels=channels_in,
        out_channels=channels_out,
        in_h=dw.out_h,
        in_w=dw.out_w,
        kernel=1,
        stride=1,
        padding=0,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=activation),
    )
    return graph.add(pw)


def inverted_residual_block(
    graph: ModelGraph,
    name: str,
    channels_in: int,
    channels_out: int,
    in_h: int,
    in_w: int,
    expansion: int = 6,
    stride: int = 1,
    kernel: int = 3,
    activation: str | None = "relu6",
    dtype: DType = DType.FP32,
    after: str | None = None,
) -> str:
    """Inverted residual (MobileNetV2 style): PW-expand, DW, PW-project.

    The projecting PW has a linear (identity) activation — the paper's Fig. 4
    shows the trailing PW of an inverted residual without an activation layer.
    When ``stride == 1`` and ``channels_in == channels_out``, a residual add
    glue node joins the block input and output, which makes the expanding PW
    of the *next* block a multi-consumer boundary exactly as in the real nets.

    Returns the name of the block's final node (add glue or projecting PW).
    """
    hidden = channels_in * expansion
    # The block input (residual source) is the predecessor we were given.
    entry = after
    if expansion != 1:
        pw1 = ConvSpec(
            name=f"{name}_pw_exp",
            kind=ConvKind.POINTWISE,
            in_channels=channels_in,
            out_channels=hidden,
            in_h=in_h,
            in_w=in_w,
            dtype=dtype,
            epilogue=EpilogueSpec(norm=True, activation=activation),
        )
        entry_name = graph.add(pw1, after=after)
        dw_in_c, dw_h, dw_w = hidden, in_h, in_w
        dw_after: str | None = entry_name
    else:
        dw_in_c, dw_h, dw_w = channels_in, in_h, in_w
        dw_after = after
    dw = ConvSpec(
        name=f"{name}_dw",
        kind=ConvKind.DEPTHWISE,
        in_channels=dw_in_c,
        out_channels=dw_in_c,
        in_h=dw_h,
        in_w=dw_w,
        kernel=kernel,
        stride=stride,
        padding=kernel // 2,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=activation),
    )
    graph.add(dw, after=dw_after)
    pw2 = ConvSpec(
        name=f"{name}_pw_proj",
        kind=ConvKind.POINTWISE,
        in_channels=dw_in_c,
        out_channels=channels_out,
        in_h=dw.out_h,
        in_w=dw.out_w,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=None),
    )
    proj_name = graph.add(pw2)
    if stride == 1 and channels_in == channels_out and entry is not None:
        out_h = out_dim(in_h, kernel, stride, kernel // 2)
        out_w = out_dim(in_w, kernel, stride, kernel // 2)
        add = GlueSpec(
            name=f"{name}_add",
            op="add",
            out_elements=channels_out * out_h * out_w,
            flops=channels_out * out_h * out_w,
        )
        return graph.add(add, after=[entry, proj_name])
    return proj_name
