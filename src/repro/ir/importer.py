"""Model importer from a declarative (JSON-compatible) description.

The paper generates model DAGs from TensorFlow; this environment has no
TensorFlow, so the equivalent entry point is a plain nested-dict description
(loadable from JSON) listing layers with their hyperparameters.  Shapes are
propagated automatically, so descriptions stay concise:

    {"name": "tiny", "input": [32, 56, 56],
     "layers": [
        {"op": "conv", "kind": "dw", "kernel": 3, "stride": 1},
        {"op": "conv", "kind": "pw", "out_channels": 64},
        {"op": "glue", "glue": "gap"}]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.dtypes import DType
from ..errors import ShapeError
from .graph import GlueSpec, ModelGraph
from .layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = ["import_model", "import_model_json"]

_KINDS = {"standard": ConvKind.STANDARD, "std": ConvKind.STANDARD,
          "dw": ConvKind.DEPTHWISE, "pw": ConvKind.POINTWISE}


def import_model(desc: Mapping[str, Any], dtype: DType = DType.FP32) -> ModelGraph:
    """Build a :class:`ModelGraph` from a declarative description.

    Args:
        desc: mapping with ``name``, ``input`` (``[C, H, W]``) and ``layers``
            (sequence of layer mappings; see module docstring).
        dtype: precision applied to every conv layer.

    Shape propagation is linear (each layer follows the previous one); models
    with residual topology should use :mod:`repro.ir.blocks` directly.
    """
    name = str(desc.get("name", "imported"))
    try:
        c, h, w = (int(x) for x in desc["input"])
        layer_descs: Sequence[Mapping[str, Any]] = desc["layers"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ShapeError(f"malformed model description: {exc}") from exc

    graph = ModelGraph(name)
    for i, ld in enumerate(layer_descs):
        op = ld.get("op", "conv")
        lname = str(ld.get("name", f"layer{i}"))
        if op == "glue":
            graph.add(GlueSpec(name=lname, op=str(ld.get("glue", "noop")),
                               out_elements=int(ld.get("out_elements", c * h * w))))
            continue
        if op != "conv":
            raise ShapeError(f"unknown op {op!r} in layer {lname!r}")
        kind_key = str(ld.get("kind", "standard"))
        if kind_key not in _KINDS:
            raise ShapeError(f"unknown conv kind {kind_key!r} in layer {lname!r}")
        kind = _KINDS[kind_key]
        kernel = int(ld.get("kernel", 1 if kind is ConvKind.POINTWISE else 3))
        stride = int(ld.get("stride", 1))
        padding = int(ld.get("padding", kernel // 2 if kind is not ConvKind.POINTWISE else 0))
        out_channels = int(ld.get("out_channels", c))
        if kind is ConvKind.DEPTHWISE:
            out_channels = c
        spec = ConvSpec(
            name=lname,
            kind=kind,
            in_channels=c,
            out_channels=out_channels,
            in_h=h,
            in_w=w,
            kernel=kernel,
            stride=stride,
            padding=padding,
            dtype=dtype,
            epilogue=EpilogueSpec(
                norm=bool(ld.get("norm", True)),
                activation=ld.get("activation", "relu"),
            ),
        )
        graph.add(spec)
        c, h, w = spec.out_channels, spec.out_h, spec.out_w
    graph.validate()
    return graph


def import_model_json(path: str | Path, dtype: DType = DType.FP32) -> ModelGraph:
    """Load a model description from a JSON file and import it."""
    with open(path, encoding="utf-8") as fh:
        return import_model(json.load(fh), dtype=dtype)
