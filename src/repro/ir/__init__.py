"""Model IR: layer specs, DAG, block builders, declarative importer."""

from .blocks import dsc_block, inverted_residual_block, standard_conv
from .graph import FusionCandidate, GlueSpec, ModelGraph
from .importer import import_model, import_model_json
from .layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = [
    "dsc_block",
    "inverted_residual_block",
    "standard_conv",
    "FusionCandidate",
    "GlueSpec",
    "ModelGraph",
    "import_model",
    "import_model_json",
    "ConvKind",
    "ConvSpec",
    "EpilogueSpec",
]
