"""Model DAG: an ordered graph of :class:`~repro.ir.layers.ConvSpec` nodes.

The paper's FusePlanner consumes "a DAG representing a model or set of layers,
their weight and FM specifications, and the layers connectivity" (§IV).  We
build that DAG on networkx.  Non-convolutional glue (residual adds, pooling,
classifier) is carried as opaque :class:`GlueSpec` nodes so end-to-end
sessions account for them identically in ours and the baselines' executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from ..errors import ShapeError
from .layers import ConvKind, ConvSpec

__all__ = ["GlueSpec", "ModelGraph", "FusionCandidate"]


@dataclass(frozen=True)
class GlueSpec:
    """Non-convolutional node (residual add, pooling, flatten, dense...).

    These execute identically in all compared implementations; they carry just
    enough information (output bytes moved) for end-to-end accounting.
    """

    name: str
    op: str
    out_elements: int
    flops: int = 0


@dataclass(frozen=True)
class FusionCandidate:
    """A producer->consumer conv pair eligible for FCM fusion."""

    first: ConvSpec
    second: ConvSpec

    @property
    def pair_kinds(self) -> tuple[str, str]:
        return (self.first.kind.short, self.second.kind.short)


class ModelGraph:
    """A directed acyclic graph of model layers.

    Nodes are layer names; each carries a ``spec`` attribute holding either a
    :class:`ConvSpec` or a :class:`GlueSpec`.  Edges follow dataflow.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._g = nx.DiGraph()
        self._order: list[str] = []

    # ---- construction ------------------------------------------------------
    def add(self, spec: ConvSpec | GlueSpec, after: str | list[str] | None = None) -> str:
        """Add a layer, optionally wiring it after one or more existing layers.

        Returns the layer name for chaining.  By default the new node is wired
        after the most recently added node (linear model building).
        """
        if spec.name in self._g:
            raise ShapeError(f"duplicate layer name {spec.name!r} in model {self.name!r}")
        preds: list[str]
        if after is None:
            preds = [self._order[-1]] if self._order else []
        elif isinstance(after, str):
            preds = [after]
        else:
            preds = list(after)
        for p in preds:
            if p not in self._g:
                raise ShapeError(f"unknown predecessor {p!r} for layer {spec.name!r}")
        self._g.add_node(spec.name, spec=spec)
        for p in preds:
            self._g.add_edge(p, spec.name)
        self._order.append(spec.name)
        return spec.name

    # ---- access -----------------------------------------------------------
    def spec(self, name: str) -> ConvSpec | GlueSpec:
        try:
            return self._g.nodes[name]["spec"]
        except KeyError:
            raise ShapeError(f"no layer named {name!r} in model {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._g

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    @property
    def nx_graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._g

    def topological(self) -> Iterator[ConvSpec | GlueSpec]:
        """Specs in a deterministic topological order (insertion-stable)."""
        order = list(nx.lexicographical_topological_sort(self._g, key=self._order.index))
        for name in order:
            yield self._g.nodes[name]["spec"]

    def conv_layers(self) -> list[ConvSpec]:
        """All convolutional layers in topological order."""
        return [s for s in self.topological() if isinstance(s, ConvSpec)]

    def successors(self, name: str) -> list[str]:
        return sorted(self._g.successors(name), key=self._order.index)

    def predecessors(self, name: str) -> list[str]:
        return sorted(self._g.predecessors(name), key=self._order.index)

    # ---- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Check acyclicity and conv-to-conv shape compatibility along edges."""
        if not nx.is_directed_acyclic_graph(self._g):
            raise ShapeError(f"model {self.name!r} contains a cycle")
        for u, v in self._g.edges:
            su, sv = self.spec(u), self.spec(v)
            if isinstance(su, ConvSpec) and isinstance(sv, ConvSpec):
                if (su.out_channels, su.out_h, su.out_w) != (
                    sv.in_channels,
                    sv.in_h,
                    sv.in_w,
                ):
                    raise ShapeError(
                        f"shape mismatch on edge {u}->{v}: "
                        f"{su.out_channels}x{su.out_h}x{su.out_w} vs "
                        f"{sv.in_channels}x{sv.in_h}x{sv.in_w}"
                    )

    # ---- fusion candidates ---------------------------------------------------
    def fusion_candidates(self) -> list[FusionCandidate]:
        """Conv pairs eligible for FCM fusion (paper Fig. 4).

        A pair qualifies when the producer is a DW or PW conv whose *only*
        consumer is the DW/PW conv that follows it (fusing a multi-consumer
        intermediate would force recomputation for the other consumers), and
        the pair is one of DW->PW, PW->DW, PW->PW.
        """
        return [
            FusionCandidate(first=run[i], second=run[i + 1])
            for run in self.fusion_runs()
            for i in range(len(run) - 1)
        ]

    def _chainable_edge(self, name: str) -> str | None:
        """Successor of ``name`` it could fuse with, or ``None``.

        The edge qualifies when the producer is a DW/PW conv whose *only*
        consumer is a DW/PW conv with no other producer, and the pair is not
        DW->DW.
        """
        first = self.spec(name)
        if not isinstance(first, ConvSpec) or first.kind is ConvKind.STANDARD:
            return None
        succ = self.successors(name)
        if len(succ) != 1:
            return None
        second = self.spec(succ[0])
        if not isinstance(second, ConvSpec) or second.kind is ConvKind.STANDARD:
            return None
        if len(self.predecessors(succ[0])) != 1:
            return None
        if (first.kind, second.kind) == (ConvKind.DEPTHWISE, ConvKind.DEPTHWISE):
            return None
        return succ[0]

    def fusion_runs(self) -> list[list[ConvSpec]]:
        """Maximal linear runs of chainable DW/PW convs, in topological order.

        Each run is a path ``v1 -> v2 -> ... -> vn`` where every edge is a
        legal fusion adjacency (see :meth:`_chainable_edge`); consecutive
        pairs within runs are exactly :meth:`fusion_candidates`, and runs of
        length ``>= 3`` are the chain planner's search space.  Every
        chainable edge leaves its endpoints with one eligible in- and
        out-edge at most, so runs are disjoint simple paths and the
        decomposition is unique.
        """
        next_of: dict[str, str] = {}
        has_prev: set[str] = set()
        for name in self._order:
            nxt = self._chainable_edge(name)
            if nxt is not None:
                next_of[name] = nxt
                has_prev.add(nxt)
        runs: list[list[ConvSpec]] = []
        for name in self._order:
            if name in has_prev or (name not in next_of):
                continue
            run = [name]
            while run[-1] in next_of:
                run.append(next_of[run[-1]])
            runs.append([self.spec(n) for n in run])
        return runs
