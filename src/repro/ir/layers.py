"""Layer specifications — the planner-facing IR.

A :class:`ConvSpec` captures everything FusePlanner's cost models need about
one convolutional layer: kind (standard / depthwise / pointwise), geometry,
and the folded normalization/activation epilogue that rides along with the
convolution in every implementation the paper compares (cuDNN, TVM, LBL and
FCM all fuse conv+norm+act; only conv+conv fusion differentiates FCMs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..core.dtypes import DType
from ..core.ops import out_dim
from ..core.tensor import FeatureMapSpec
from ..errors import ShapeError

__all__ = ["ConvKind", "ConvSpec", "EpilogueSpec"]


class ConvKind(enum.Enum):
    """Convolution flavour; determines the cost model and kernel used."""

    STANDARD = "standard"
    DEPTHWISE = "dw"
    POINTWISE = "pw"

    @property
    def short(self) -> str:
        return {"standard": "std", "dw": "dw", "pw": "pw"}[self.value]


@dataclass(frozen=True)
class EpilogueSpec:
    """Folded elementwise tail of a convolution: norm (affine) + activation."""

    norm: bool = True
    activation: str | None = "relu"


@dataclass(frozen=True)
class ConvSpec:
    """One convolutional layer, fully shape-resolved.

    Attributes:
        name: unique layer name within a model.
        kind: standard / depthwise / pointwise.
        in_channels: IFM depth ``C``.
        out_channels: OFM depth ``M`` (must equal ``in_channels`` for DW).
        in_h, in_w: IFM spatial extent.
        kernel: square filter size (1 for PW).
        stride: spatial stride.
        padding: symmetric zero padding.
        dtype: inference precision of FMs and weights.
        epilogue: folded norm+activation following the conv.
    """

    name: str
    kind: ConvKind
    in_channels: int
    out_channels: int
    in_h: int
    in_w: int
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    dtype: DType = DType.FP32
    epilogue: EpilogueSpec = field(default_factory=EpilogueSpec)

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.in_h, self.in_w) <= 0:
            raise ShapeError(f"{self.name}: non-positive dimension")
        if self.kind is ConvKind.POINTWISE and self.kernel != 1:
            raise ShapeError(f"{self.name}: pointwise layers must have kernel=1")
        if self.kind is ConvKind.DEPTHWISE and self.in_channels != self.out_channels:
            raise ShapeError(
                f"{self.name}: depthwise layers preserve channels "
                f"({self.in_channels} != {self.out_channels})"
            )
        if self.kind is not ConvKind.POINTWISE and self.kernel <= 0:
            raise ShapeError(f"{self.name}: kernel must be positive")
        # Validate the output geometry eagerly so broken specs fail at build time.
        out_dim(self.in_h, self.kernel, self.stride, self.padding)
        out_dim(self.in_w, self.kernel, self.stride, self.padding)

    # ---- derived geometry -------------------------------------------------
    @property
    def out_h(self) -> int:
        return out_dim(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return out_dim(self.in_w, self.kernel, self.stride, self.padding)

    @property
    def ifm(self) -> FeatureMapSpec:
        return FeatureMapSpec(self.in_channels, self.in_h, self.in_w, self.dtype)

    @property
    def ofm(self) -> FeatureMapSpec:
        return FeatureMapSpec(self.out_channels, self.out_h, self.out_w, self.dtype)

    @property
    def weights_shape(self) -> tuple[int, ...]:
        if self.kind is ConvKind.POINTWISE:
            return (self.out_channels, self.in_channels)
        if self.kind is ConvKind.DEPTHWISE:
            return (self.in_channels, self.kernel, self.kernel)
        return (self.out_channels, self.in_channels, self.kernel, self.kernel)

    @property
    def weights_elements(self) -> int:
        n = 1
        for d in self.weights_shape:
            n *= d
        return n

    @property
    def weights_bytes(self) -> int:
        return self.weights_elements * self.dtype.nbytes

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the convolution (per inference, batch 1)."""
        per_output = self.kernel * self.kernel
        if self.kind is not ConvKind.DEPTHWISE:
            per_output *= self.in_channels
        return self.out_channels * self.out_h * self.out_w * per_output

    # ---- transforms -------------------------------------------------------
    def with_dtype(self, dtype: DType) -> "ConvSpec":
        """Same layer at a different precision (FP32 <-> INT8 sweeps)."""
        return replace(self, dtype=dtype)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}[{self.kind.short} {self.in_channels}->{self.out_channels} "
            f"{self.in_h}x{self.in_w} k{self.kernel}s{self.stride} {self.dtype}]"
        )
