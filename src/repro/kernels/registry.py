"""Kernel registry: build LBL or FCM kernels from specs + tiling choices.

The planner emits *what* to run (fuse or not, which FCM type, which tile
sizes); this registry turns those decisions into concrete simulated kernels.
Tile-size vocabularies differ per kernel, so the registry also defines the
canonical tiling-dict keys each kernel understands.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.fcm import FcmType
from ..core.tiling import DwTiling, PwTiling
from ..errors import UnsupportedError
from ..ir.layers import ConvKind
from .base import SimKernel
from .direct_dw import DwDirectKernel
from .direct_pw import PwDirectKernel
from .fused_chain import FusedChainKernel
from .fused_dwpw import DwPwFusedKernel
from .fused_pwdw import PwDwFusedKernel
from .fused_pwdw_r import PwDwRFusedKernel
from .fused_pwpw import PwPwFusedKernel
from .params import LayerParams

__all__ = ["build_lbl_kernel", "build_fcm_kernel", "build_chain_kernel"]


def build_lbl_kernel(params: LayerParams, tiling: Mapping[str, int]) -> SimKernel:
    """Build the layer-by-layer kernel for one DW or PW layer.

    ``tiling`` keys: PW -> ``tile_m``, ``tile_hw``; DW -> ``tile_c``,
    ``tile_h``, ``tile_w``.
    """
    kind = params.spec.kind
    if kind is ConvKind.POINTWISE:
        return PwDirectKernel(params, PwTiling(tiling["tile_m"], tiling["tile_hw"]))
    if kind is ConvKind.DEPTHWISE:
        return DwDirectKernel(
            params, DwTiling(tiling["tile_c"], tiling["tile_h"], tiling["tile_w"])
        )
    raise UnsupportedError(f"no direct LBL kernel for {kind} layers in this library")


def build_fcm_kernel(
    fcm_type: FcmType,
    first: LayerParams,
    second: LayerParams,
    tiling: Mapping[str, int],
) -> SimKernel:
    """Build a fused kernel of the given FCM type.

    ``tiling`` keys per type:

    * DWPW   -> ``tile_h``, ``tile_w``, ``tile_m``
    * PWDW   -> ``tile_f``
    * PWDW_R -> ``tile_f``, ``tile_h``, ``tile_w``
    * PWPW   -> ``tile_hw``, ``tile_m``
    """
    if fcm_type is FcmType.DWPW:
        return DwPwFusedKernel(
            first, second, tiling["tile_h"], tiling["tile_w"], tiling["tile_m"]
        )
    if fcm_type is FcmType.PWDW:
        return PwDwFusedKernel(first, second, tiling["tile_f"])
    if fcm_type is FcmType.PWDW_R:
        return PwDwRFusedKernel(
            first, second, tiling["tile_f"], tiling["tile_h"], tiling["tile_w"]
        )
    if fcm_type is FcmType.PWPW:
        return PwPwFusedKernel(first, second, tiling["tile_hw"], tiling["tile_m"])
    raise UnsupportedError(f"unknown FCM type {fcm_type}")


def build_chain_kernel(
    stages: Sequence[LayerParams],
    tiling: Mapping[str, int],
    fcm_type: FcmType | None = None,
) -> SimKernel:
    """Build the fused kernel for a chain of any length.

    Length-2 chains carrying their pairwise ``fcm_type`` route to the four
    specialized FCM kernels (whose tiling vocabularies match the pairwise
    estimators byte-for-byte); longer chains build the generic
    :class:`~repro.kernels.fused_chain.FusedChainKernel` with the chain
    vocabulary ``tile_h``/``tile_w``[/``tile_m``].
    """
    if len(stages) < 2:
        raise UnsupportedError("a fused chain kernel needs at least two stages")
    if len(stages) == 2 and fcm_type is not None:
        return build_fcm_kernel(fcm_type, stages[0], stages[1], tiling)
    return FusedChainKernel(
        stages, tiling["tile_h"], tiling["tile_w"], tiling.get("tile_m")
    )
