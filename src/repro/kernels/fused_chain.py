"""Generic fused-chain kernel: N conv stages, one launch, on-chip intermediates.

The four pairwise FCM kernels each hard-code a two-stage dataflow; this
kernel executes an arbitrary-length :class:`~repro.core.chain.FusedChain`
with the spatial-tiling discipline the chain cost models price
(:mod:`repro.planner.chain_costs`):

* one thread block owns a ``tile_h x tile_w`` tile of the *final* stage's
  output; the required window of every earlier boundary is found by walking
  the stage geometries backward (the same ``tile_input_range`` composition
  the cost model uses, so metered bytes match the measured-convention
  estimates exactly);
* each intermediate is computed over its halo-extended window into a shared
  commBuffer; a buffer is freed as soon as the consuming stage finishes, so
  at most two commBuffers are live at once (the capacity rule
  :func:`~repro.planner.chain_costs.chain_footprints` enforces);
* halo elements of any boundary feeding a later DW stage are recomputed by
  every sharing block — :meth:`finalize` reclassifies them as redundant
  MACs, generalizing the PWDW_R accounting;
* a final PW stage streams its filter matrix in ``tile_m`` groups against
  the resident last commBuffer; a final DW stage consumes it channel-wise.

At length 2 this kernel reproduces the DWPW / PWDW_R dataflows; the
registry keeps routing pairwise plans to the specialized kernels (which
also cover the channel-grouped PWDW and flat-tiled PWPW vocabularies).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.chain import FusedChain
from ..core.dtypes import DType
from ..core.tiling import ceil_div, tile_input_range
from ..errors import CapacityError, ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.fastpath import grid_depthwise, grid_matmul
from ..gpu.memory import SharedMemory
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind
from .base import SimKernel
from .direct_dw import depthwise_tile
from .params import LayerParams

__all__ = ["FusedChainKernel"]


class FusedChainKernel(SimKernel):
    """Simulated N-stage fused kernel exchanging intermediates via shared memory."""

    def __init__(
        self,
        stages: Sequence[LayerParams],
        tile_h: int,
        tile_w: int,
        tile_m: int | None = None,
    ) -> None:
        self.stages = list(stages)
        self.chain = FusedChain(tuple(p.spec for p in self.stages))
        last = self.chain.last
        self.dtype: DType = self.chain.dtype
        self.name = f"fcm_chain[{self.chain.name}]"
        self.tile_h = min(tile_h, last.out_h)
        self.tile_w = min(tile_w, last.out_w)
        if last.kind is ConvKind.POINTWISE:
            if tile_m is None:
                raise ShapeError(f"{self.name}: a final PW stage needs tile_m")
            self.tile_m: int | None = min(tile_m, last.out_channels)
        else:
            self.tile_m = None
        self._counters: AccessCounters | None = None

    def _tiling(self) -> dict[str, int]:
        t = {"tile_h": self.tile_h, "tile_w": self.tile_w}
        if self.tile_m is not None:
            t["tile_m"] = self.tile_m
        return t

    # ---- capacity -------------------------------------------------------------
    def check_capacity(self, gpu: GpuSpec) -> None:
        from ..planner.chain_costs import chain_footprints

        l1, shared, _ = chain_footprints(self.chain, self._tiling())
        if l1 > gpu.l1_bytes:
            raise CapacityError(
                f"{self.name}: working set {l1}B exceeds L1 {gpu.l1_bytes}B"
            )
        if shared > gpu.shared_bytes:
            raise CapacityError(
                f"{self.name}: commBuffers {shared}B exceed shared {gpu.shared_bytes}B"
            )

    # ---- launch ---------------------------------------------------------------
    def grid(self) -> Sequence[tuple[int, ...]]:
        def build() -> list[tuple[int, ...]]:
            last = self.chain.last
            nh = ceil_div(last.out_h, self.tile_h)
            nw = ceil_div(last.out_w, self.tile_w)
            return [(hi, wi) for hi in range(nh) for wi in range(nw)]

        return self._memo_grid(build)

    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        first = self.chain.first
        if ifm.shape != first.ifm.shape:
            raise ShapeError(
                f"{self.name}: IFM shape {ifm.shape} != {first.ifm.shape}"
            )
        if first.kind is ConvKind.POINTWISE:
            # A strided first PW touches only the subsampled pixels; bind that
            # view on the boundary-1 grid so later DW windows index it directly.
            s = first.stride
            x = np.ascontiguousarray(ifm[:, ::s, ::s])
        else:
            x = ifm
        self._ifm = self.make_buffer("ifm", x, "ifm", counters)
        self._weights = [
            self.make_buffer(f"w{i}_{p.spec.name}", p.weights, "weights", counters)
            for i, p in enumerate(self.stages)
        ]
        out = self._fresh_output(self.chain.last.ofm.shape, self.dtype.np_dtype)
        self._out = self.make_buffer("ofm", out, "ofm", counters)
        self._counters = counters

    def _block_ranges(
        self, r0: int, r1: int, q0: int, q1: int
    ) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """Per-boundary clamped ((row lo, hi), (col lo, hi)) for one block.

        Index ``b`` is the boundary (0 = chain input, N = final output);
        the same backward composition as the chain cost model.
        """
        rows, cols = (r0, r1), (q0, q1)
        per = [(rows, cols)]
        for spec in reversed(self.chain.specs):
            rows = tile_input_range(
                rows[0], rows[1] - rows[0], spec.kernel, spec.stride, spec.padding, spec.in_h
            )
            cols = tile_input_range(
                cols[0], cols[1] - cols[0], spec.kernel, spec.stride, spec.padding, spec.in_w
            )
            per.append((rows, cols))
        per.reverse()
        return per

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        hi, wi = coord
        specs = self.chain.specs
        n = len(specs)
        last = self.chain.last
        acc_t = self.dtype.acc_dtype
        r0 = hi * self.tile_h
        r1 = min(r0 + self.tile_h, last.out_h)
        q0 = wi * self.tile_w
        q1 = min(q0 + self.tile_w, last.out_w)
        ranges = self._block_ranges(r0, r1, q0, q1)

        # Boundary the block reads from global memory: a first PW stage reads
        # input pixels 1:1 with the boundary-1 window it computes.
        in_b = 1 if specs[0].kind is ConvKind.POINTWISE else 0
        (lo_r, hi_r), (lo_q, hi_q) = ranges[in_b]
        cur = self._ifm.load((slice(None), slice(lo_r, hi_r), slice(lo_q, hi_q)))
        cur_origin = (lo_r, lo_q)  # where `cur` sits on boundary (stage input) grid

        prev_slot: str | None = None
        for i, (params, spec) in enumerate(zip(self.stages, specs)):
            stage_last = i == n - 1
            (o_lo_r, o_hi_r), (o_lo_q, o_hi_q) = ranges[i + 1]
            nr, nc = o_hi_r - o_lo_r, o_hi_q - o_lo_q
            # A first PW stage reads the pre-subsampled view: its window is
            # indexed on the boundary-1 grid, pixel-per-output (stride 1).
            pw_stride = 1 if i == 0 and in_b == 1 else spec.stride
            if spec.kind is ConvKind.DEPTHWISE:
                weights = self._weights[i].load(slice(None))
                acc = depthwise_tile(
                    window=cur.astype(acc_t, copy=False),
                    weights=weights,
                    rows_out=nr,
                    cols_out=nc,
                    row_off=cur_origin[0] - (o_lo_r * spec.stride - spec.padding),
                    col_off=cur_origin[1] - (o_lo_q * spec.stride - spec.padding),
                    kernel=spec.kernel,
                    stride=spec.stride,
                    acc_dtype=acc_t,
                )
                y = params.epilogue.apply(acc, 0, spec.out_channels, self.dtype)
                self._counters.compute(
                    spec.out_channels * nr * nc * spec.kernel * spec.kernel
                )
                if stage_last:
                    self._out.store(
                        (slice(None), slice(o_lo_r, o_hi_r), slice(o_lo_q, o_hi_q)), y
                    )
            elif stage_last:
                # Final PW: stream filter groups against the resident window.
                assert self.tile_m is not None
                x = _pw_window(cur, cur_origin, o_lo_r, nr, o_lo_q, nc, pw_stride)
                xf = x.reshape(spec.in_channels, nr * nc).astype(acc_t)
                m_total = spec.out_channels
                for mi in range(ceil_div(m_total, self.tile_m)):
                    m0 = mi * self.tile_m
                    m1 = min(m0 + self.tile_m, m_total)
                    w_tile = self._weights[i].load((slice(m0, m1), slice(None)))
                    if prev_slot is not None and mi > 0:
                        # Re-reads of the resident commBuffer per filter group.
                        shared.read(prev_slot)
                    acc = w_tile.astype(acc_t) @ xf
                    y = params.epilogue.apply(acc, m0, m1, self.dtype)
                    self._out.store(
                        (slice(m0, m1), slice(o_lo_r, o_hi_r), slice(o_lo_q, o_hi_q)),
                        y.reshape(m1 - m0, nr, nc),
                    )
                    self._counters.compute((m1 - m0) * spec.in_channels * nr * nc)
            else:
                # Interior PW: full filter matrix over the required window.
                x = _pw_window(cur, cur_origin, o_lo_r, nr, o_lo_q, nc, pw_stride)
                w_full = self._weights[i].load((slice(None), slice(None)))
                acc = w_full.astype(acc_t) @ x.reshape(spec.in_channels, nr * nc).astype(acc_t)
                y = params.epilogue.apply(acc, 0, spec.out_channels, self.dtype)
                y = y.reshape(spec.out_channels, nr, nc)
                self._counters.compute(spec.out_channels * spec.in_channels * nr * nc)

            if not stage_last:
                slot = f"comm{i + 1}"
                shared.alloc(slot, (spec.out_channels, nr, nc), y.dtype, self.dtype.nbytes)
                shared.write(slot, y)
                if prev_slot is not None:
                    shared.free(prev_slot)
                cur = shared.read(slot)
                cur_origin = (o_lo_r, o_lo_q)
                prev_slot = slot

    def _axis_extents(self, vertical: bool) -> list[list[int]]:
        """Per-boundary clamped extents along one axis, one entry per tile.

        ``out[b][t]`` is the row (or column) extent of boundary ``b``'s
        window in tile ``t`` — the same backward composition
        :meth:`_block_ranges` performs, but separable per axis because
        :func:`~repro.core.tiling.tile_input_range` composes rows and
        columns independently.
        """
        last = self.chain.last
        total = last.out_h if vertical else last.out_w
        tile = self.tile_h if vertical else self.tile_w
        per_tile: list[list[tuple[int, int]]] = []
        for t0 in range(0, total, tile):
            rng = (t0, min(t0 + tile, total))
            per = [rng]
            for spec in reversed(self.chain.specs):
                in_size = spec.in_h if vertical else spec.in_w
                rng = tile_input_range(
                    rng[0], rng[1] - rng[0], spec.kernel, spec.stride,
                    spec.padding, in_size,
                )
                per.append(rng)
            per.reverse()
            per_tile.append(per)
        n_bounds = len(self.chain.specs) + 1
        return [
            [per[b][1] - per[b][0] for per in per_tile] for b in range(n_bounds)
        ]

    def run_grid(self) -> int:
        """Whole-grid fast path: the chain as N full-tensor stage passes.

        Bulk charges come from the separable per-axis window extents every
        interpreted block derives with :meth:`_block_ranges`: stage weights
        stream once per spatial tile (a final PW streams per filter group,
        summing to the same total), intermediate commBuffers see one write
        plus one read each (plus the final PW's per-group re-reads), and the
        halo-extended stage extents reproduce the redundant compute that
        :meth:`finalize` later reclassifies.
        """
        specs = self.chain.specs
        n = len(specs)
        eb = self.dtype.nbytes
        rows = self._axis_extents(vertical=True)
        cols = self._axis_extents(vertical=False)
        sum_r = [sum(r) for r in rows]
        sum_c = [sum(c) for c in cols]
        n_sp = len(rows[0]) * len(cols[0])
        in_b = 1 if specs[0].kind is ConvKind.POINTWISE else 0
        last = self.chain.last
        n_groups = (
            ceil_div(last.out_channels, self.tile_m)
            if last.kind is ConvKind.POINTWISE
            else 0
        )
        ctr = self._counters
        ctr.read_bulk("ifm", specs[0].in_channels * sum_r[in_b] * sum_c[in_b] * eb)
        for i, spec in enumerate(specs):
            if spec.kind is ConvKind.DEPTHWISE:
                per_block_w = spec.out_channels * spec.kernel * spec.kernel
                stage_macs = (
                    spec.out_channels * spec.kernel * spec.kernel
                    * sum_r[i + 1] * sum_c[i + 1]
                )
            else:
                per_block_w = spec.out_channels * spec.in_channels
                stage_macs = (
                    spec.out_channels * spec.in_channels * sum_r[i + 1] * sum_c[i + 1]
                )
            ctr.read_bulk("weights", per_block_w * eb, n_sp)
            ctr.compute(stage_macs)
        ctr.write_bulk("ofm", last.out_channels * sum_r[n] * sum_c[n] * eb)
        # commBuffer traffic: slot i (stage i's output window) is written
        # once and read once when consumed; a final PW re-reads the last
        # slot once per extra filter group.
        comm_totals = [
            specs[i].out_channels * sum_r[i + 1] * sum_c[i + 1] * eb
            for i in range(n - 1)
        ]
        for total in comm_totals:
            ctr.smem_bulk(2 * total)
        if n_groups > 1:
            ctr.smem_bulk((n_groups - 1) * comm_totals[-1])

        # Peak shared bytes: walk every block's alloc/free timeline (sizes
        # are per-axis products, so this is integer-only and tiny).
        peak = 0
        for hi in range(len(rows[0])):
            for wi in range(len(cols[0])):
                sizes = [
                    specs[i].out_channels * rows[i + 1][hi] * cols[i + 1][wi] * eb
                    for i in range(n - 1)
                ]
                block_peak = sizes[0]
                for a, b in zip(sizes, sizes[1:]):
                    block_peak = max(block_peak, a + b)
                peak = max(peak, block_peak)

        # Functional pass: every stage over its full tensor.
        acc_t = self.dtype.acc_dtype
        cur = self._ifm.array
        for i, (params, spec) in enumerate(zip(self.stages, specs)):
            if spec.kind is ConvKind.DEPTHWISE:
                acc = grid_depthwise(
                    window=cur,
                    weights=self._weights[i].array,
                    rows_out=spec.out_h,
                    cols_out=spec.out_w,
                    row_off=spec.padding,
                    col_off=spec.padding,
                    kernel=spec.kernel,
                    stride=spec.stride,
                    acc_dtype=acc_t,
                )
                cur = params.epilogue.apply(acc, 0, spec.out_channels, self.dtype)
            else:
                # A first PW reads the pre-subsampled view bound at stride 1.
                pw_stride = 1 if i == 0 and in_b == 1 else spec.stride
                x = cur if pw_stride == 1 else cur[:, ::pw_stride, ::pw_stride]
                acc = grid_matmul(
                    self._weights[i].array,
                    np.ascontiguousarray(x).reshape(spec.in_channels, -1),
                    acc_t,
                )
                cur = params.epilogue.apply(acc, 0, spec.out_channels, self.dtype)
                cur = cur.reshape(spec.out_channels, spec.out_h, spec.out_w)
        self._out.array[...] = cur
        return peak

    def output_array(self) -> np.ndarray:
        return self._out.array

    def weight_bytes(self) -> int:
        return self.chain.weights_bytes

    def finalize(self, counters: AccessCounters) -> None:
        """Reclassify recomputed halo elements and annotate re-reads.

        The analytic :func:`~repro.planner.analytic.chain_counters` uses the
        same backward range composition, so its useful/redundant split and
        re-read annotations apply to this launch byte-for-byte.
        """
        from ..planner.analytic import chain_counters

        ref = chain_counters(self.chain.specs, self._tiling())
        counters.macs -= ref.redundant_macs
        counters.redundant_macs += ref.redundant_macs
        counters.rereads.extend(ref.rereads)


def _pw_window(
    cur: np.ndarray,
    origin: tuple[int, int],
    o_lo_r: int,
    nr: int,
    o_lo_q: int,
    nc: int,
    stride: int,
) -> np.ndarray:
    """Select the input pixels a PW stage needs from the resident window."""
    ro = o_lo_r * stride - origin[0]
    co = o_lo_q * stride - origin[1]
    return cur[
        :,
        ro : ro + (nr - 1) * stride + 1 : stride,
        co : co + (nc - 1) * stride + 1 : stride,
    ]
