"""PWDW_R FCM: pointwise fused with a following depthwise, spatially tiled.

The general PW->DW fusion (paper Fig. 3b right): each thread block owns an
output tile of ``tile_f`` channels x ``tile_h x tile_w`` pixels.  The DW stage
needs a halo-extended window of the intermediate, and — unlike input halos —
those intermediate values "do not exist before the fused kernel starts": the
PW stage must **recompute** them in every block whose window covers them.
That is the redundant computation the ``_R`` suffix flags, and the reason
paper Table II reports 4-18% redundancy ratios for PWDW_R cases.

Global traffic follows paper Eq. 4: the PW input is re-read once per channel
group *and* its halo pixels once more per sharing block; PW weights are
re-read per spatial tile; DW weight slices per spatial tile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dtypes import DType
from ..core.tiling import ceil_div, input_extent, tile_input_range
from ..errors import CapacityError, ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.fastpath import axis_window_extents, grid_depthwise, grid_matmul
from ..gpu.memory import SharedMemory
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind
from .base import SimKernel
from .direct_dw import depthwise_tile
from .params import LayerParams

__all__ = ["PwDwRFusedKernel"]


class PwDwRFusedKernel(SimKernel):
    """Fused PW->DW kernel with spatial tiling and redundant halo recompute."""

    def __init__(
        self,
        pw: LayerParams,
        dw: LayerParams,
        tile_f: int,
        tile_h: int,
        tile_w: int,
    ) -> None:
        if pw.spec.kind is not ConvKind.POINTWISE or dw.spec.kind is not ConvKind.DEPTHWISE:
            raise ShapeError("PwDwRFusedKernel fuses a PW layer followed by a DW layer")
        if pw.spec.dtype is not dw.spec.dtype:
            raise ShapeError("fused layers must share one precision")
        if (pw.spec.out_channels, pw.spec.out_h, pw.spec.out_w) != (
            dw.spec.in_channels,
            dw.spec.in_h,
            dw.spec.in_w,
        ):
            raise ShapeError(
                f"PW output {pw.spec.ofm.shape} does not feed DW input {dw.spec.ifm.shape}"
            )
        self.pw = pw
        self.dw = dw
        self.dtype: DType = pw.spec.dtype
        self.name = f"fcm_pwdw_r[{pw.spec.name}+{dw.spec.name}]"
        self.tile_f = min(tile_f, pw.spec.out_channels)
        self.tile_h = min(tile_h, dw.spec.out_h)
        self.tile_w = min(tile_w, dw.spec.out_w)
        self._counters: AccessCounters | None = None
        self._executed_pw_elems = 0

    # ---- capacity (Eq. 4 constraint: five tiles + commBuffer) -----------------
    def _window_extents(self) -> tuple[int, int]:
        k, s = self.dw.spec.kernel, self.dw.spec.stride
        return input_extent(self.tile_h, k, s), input_extent(self.tile_w, k, s)

    def comm_buffer_bytes(self) -> int:
        wr, wc = self._window_extents()
        return self.tile_f * wr * wc * self.dtype.nbytes

    def tile_footprint_bytes(self) -> int:
        from ..planner.costs import STREAM_CHUNK

        spec_dw = self.dw.spec
        eb = self.dtype.nbytes
        wr, wc = self._window_extents()
        ofm_tile = self.tile_f * self.tile_h * self.tile_w * eb
        dw_w = self.tile_f * spec_dw.kernel * spec_dw.kernel * eb
        stream = STREAM_CHUNK * (self.tile_f + wr * wc) * eb
        return ofm_tile + dw_w + stream + self.comm_buffer_bytes()

    def check_capacity(self, gpu: GpuSpec) -> None:
        fp = self.tile_footprint_bytes()
        if fp > gpu.l1_bytes:
            raise CapacityError(f"{self.name}: working set {fp}B exceeds L1 {gpu.l1_bytes}B")
        if self.comm_buffer_bytes() > gpu.shared_bytes:
            raise CapacityError(
                f"{self.name}: commBuffer {self.comm_buffer_bytes()}B exceeds "
                f"shared {gpu.shared_bytes}B"
            )

    # ---- launch ---------------------------------------------------------------
    def grid(self) -> Sequence[tuple[int, ...]]:
        def build() -> list[tuple[int, ...]]:
            nf = ceil_div(self.pw.spec.out_channels, self.tile_f)
            nh = ceil_div(self.dw.spec.out_h, self.tile_h)
            nw = ceil_div(self.dw.spec.out_w, self.tile_w)
            return [
                (fi, hi, wi)
                for fi in range(nf) for hi in range(nh) for wi in range(nw)
            ]

        return self._memo_grid(build)

    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        if ifm.shape != self.pw.spec.ifm.shape:
            raise ShapeError(f"{self.name}: IFM shape {ifm.shape} != {self.pw.spec.ifm.shape}")
        s = self.pw.spec.stride
        # Subsampled view: a strided PW touches only these pixels, laid out as
        # the intermediate's (H, W) grid so DW windows index it directly.
        x = np.ascontiguousarray(ifm[:, ::s, ::s])
        self._ifm = self.make_buffer("ifm", x, "ifm", counters)
        self._pw_w = self.make_buffer("pw_weights", self.pw.weights, "weights", counters)
        self._dw_w = self.make_buffer("dw_weights", self.dw.weights, "weights", counters)
        out = self._fresh_output(self.dw.spec.ofm.shape, self.dtype.np_dtype)
        self._out = self.make_buffer("ofm", out, "ofm", counters)
        self._counters = counters
        self._executed_pw_elems = 0

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        fi, hi, wi = coord
        spec_pw, spec_dw = self.pw.spec, self.dw.spec
        c_in = spec_pw.in_channels
        k, s, pad = spec_dw.kernel, spec_dw.stride, spec_dw.padding
        f0 = fi * self.tile_f
        f1 = min(f0 + self.tile_f, spec_pw.out_channels)
        nf = f1 - f0
        r0 = hi * self.tile_h
        r1 = min(r0 + self.tile_h, spec_dw.out_h)
        q0 = wi * self.tile_w
        q1 = min(q0 + self.tile_w, spec_dw.out_w)
        acc_t = self.dtype.acc_dtype

        # Part 2: fetch weight tiles (registers / L1 residency).
        w_tile = self._pw_w.load((slice(f0, f1), slice(None)))
        dw_slice = self._dw_w.load(slice(f0, f1))

        # Part 3: PW computes the halo-extended intermediate window.  Halo
        # values are recomputed by every sharing block — the _R redundancy.
        lo_r, hi_r = tile_input_range(r0, r1 - r0, k, s, pad, spec_dw.in_h)
        lo_q, hi_q = tile_input_range(q0, q1 - q0, k, s, pad, spec_dw.in_w)
        window_in = self._ifm.load((slice(None), slice(lo_r, hi_r), slice(lo_q, hi_q)))
        wr, wc = hi_r - lo_r, hi_q - lo_q
        acc = w_tile.astype(acc_t) @ window_in.reshape(c_in, wr * wc).astype(acc_t)
        interm = self.pw.epilogue.apply(acc, f0, f1, self.dtype).reshape(nf, wr, wc)
        wr_max, wc_max = self._window_extents()
        shared.alloc("commBuffer", (self.tile_f, wr_max, wc_max), interm.dtype, self.dtype.nbytes)
        shared.write("commBuffer", _fit3(interm, (self.tile_f, wr_max, wc_max)))
        self._counters.compute(nf * c_in * wr * wc)
        self._executed_pw_elems += nf * wr * wc

        # Part 4: DW over the resident intermediate window.
        acc2 = depthwise_tile(
            window=interm.astype(acc_t),
            weights=dw_slice,
            rows_out=r1 - r0,
            cols_out=q1 - q0,
            row_off=lo_r - (r0 * s - pad),
            col_off=lo_q - (q0 * s - pad),
            kernel=k,
            stride=s,
            acc_dtype=acc_t,
        )
        y = self.dw.epilogue.apply(acc2, f0, f1, self.dtype)
        self._out.store((slice(f0, f1), slice(r0, r1), slice(q0, q1)), y)
        self._counters.compute(nf * (r1 - r0) * (q1 - q0) * k * k)

    def run_grid(self) -> int:
        """Whole-grid fast path: one PW matmul, then a full DW pass.

        Bulk charges replicate the per-block sums: the PW input's clamped
        halo windows are separable per axis and re-stream once per channel
        group; both weight tensors stream once per spatial tile; every block
        writes one fixed-size (``tile_f`` x max-window) commBuffer slot.
        ``_executed_pw_elems`` gets the same total the interpreted blocks
        accumulate, so :meth:`finalize` reclassifies identical redundancy.
        """
        spec_pw, spec_dw = self.pw.spec, self.dw.spec
        eb = self.dtype.nbytes
        c_in, c_mid = spec_pw.in_channels, spec_pw.out_channels
        k, s, pad = spec_dw.kernel, spec_dw.stride, spec_dw.padding
        oh, ow = spec_dw.out_h, spec_dw.out_w
        n_f = ceil_div(c_mid, self.tile_f)
        wr = axis_window_extents(oh, self.tile_h, k, s, pad, spec_dw.in_h)
        wc = axis_window_extents(ow, self.tile_w, k, s, pad, spec_dw.in_w)
        n_sp = len(wr) * len(wc)
        wr_max, wc_max = self._window_extents()
        ctr = self._counters
        ctr.read_bulk("ifm", c_in * sum(wr) * sum(wc) * eb, n_f)
        ctr.read_bulk("weights", c_mid * (c_in + k * k) * eb, n_sp)
        ctr.write_bulk("ofm", c_mid * oh * ow * eb)
        ctr.smem_bulk(self.tile_f * wr_max * wc_max * eb, n_f * n_sp)
        ctr.compute(c_mid * c_in * sum(wr) * sum(wc))
        ctr.compute(c_mid * oh * ow * k * k)
        self._executed_pw_elems = c_mid * sum(wr) * sum(wc)

        x = self._ifm.array  # subsampled (c_in, Hmid, Wmid) view from bind
        acc = grid_matmul(
            self._pw_w.array, x.reshape(c_in, -1), self.dtype.acc_dtype
        )
        interm = self.pw.epilogue.apply(acc, 0, c_mid, self.dtype).reshape(
            c_mid, spec_dw.in_h, spec_dw.in_w
        )
        acc2 = grid_depthwise(
            window=interm,
            weights=self._dw_w.array,
            rows_out=oh,
            cols_out=ow,
            row_off=pad,
            col_off=pad,
            kernel=k,
            stride=s,
            acc_dtype=self.dtype.acc_dtype,
        )
        self._out.array[...] = self.dw.epilogue.apply(acc2, 0, c_mid, self.dtype)
        return self.comm_buffer_bytes()  # every block allocs the max window

    def finalize(self, counters: AccessCounters) -> None:
        """Reclassify recomputed intermediate elements as redundant MACs.

        Every intermediate element is useful exactly once; any additional
        computation of it (the window halos) is redundant.  The unique
        footprint is the union of the clamped windows, which for a grid of
        rectangles is (covered rows) x (covered cols) per channel.
        """
        spec_dw = self.dw.spec
        k, s, pad = spec_dw.kernel, spec_dw.stride, spec_dw.padding
        rows_used = _covered(spec_dw.out_h, self.tile_h, k, s, pad, spec_dw.in_h)
        cols_used = _covered(spec_dw.out_w, self.tile_w, k, s, pad, spec_dw.in_w)
        unique = self.pw.spec.out_channels * rows_used * cols_used
        excess_elems = self._executed_pw_elems - unique
        if excess_elems < 0:
            raise ShapeError(f"{self.name}: executed fewer PW elements than unique footprint")
        redundant = excess_elems * self.pw.spec.in_channels
        counters.macs -= redundant
        counters.redundant_macs += redundant
        # Annotate weight/IFM re-reads for L2-aware timing.
        from ..core.fcm import FcmType
        from ..planner.analytic import fcm_counters

        ref = fcm_counters(
            FcmType.PWDW_R, self.pw.spec, self.dw.spec,
            {"tile_f": self.tile_f, "tile_h": self.tile_h, "tile_w": self.tile_w},
        )
        counters.rereads.extend(ref.rereads)

    def output_array(self) -> np.ndarray:
        return self._out.array

    def weight_bytes(self) -> int:
        return self.pw.spec.weights_bytes + self.dw.spec.weights_bytes


def _covered(out_size: int, tile: int, kernel: int, stride: int, padding: int, in_size: int) -> int:
    """Distinct input indices touched along one axis by all tile windows."""
    used = 0
    prev_hi = 0
    for t0 in range(0, out_size, tile):
        tlen = min(tile, out_size - t0)
        lo, hi = tile_input_range(t0, tlen, kernel, stride, padding, in_size)
        lo = max(lo, prev_hi)
        if hi > lo:
            used += hi - lo
            prev_hi = hi
    return used


def _fit3(tile: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    if tile.shape == shape:
        return tile
    out = np.zeros(shape, dtype=tile.dtype)
    out[: tile.shape[0], : tile.shape[1], : tile.shape[2]] = tile
    return out
