"""PWDW FCM without redundant computation (paper §III-A).

"The PWDW does not require redundant computations if there is no tiling
across the width and height of an IFM."  Each thread block owns a group of
``tile_f`` intermediate channels over the **full** spatial extent: the PW
stage computes those channels (streaming the whole PW input through the SM),
parks them in the commBuffer, and the DW stage — which is channelwise —
consumes exactly those channels with no halo and no recomputation.

Global traffic:
``GMA = ceil(Cmid / tile_f) * PwIFMsSz   (full input re-streamed per group)``
``    + PwWeightsSz + DwWeightsSz        (each weight read exactly once)``
``    + DwOFMsSz``

Feasible only when a channel-group of the intermediate fits in shared memory
(``tile_f * H * W`` elements) — which is why FusePlanner selects PWDW mostly
for late, spatially-small layers and INT8 (paper Table II).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dtypes import DType
from ..core.tiling import ceil_div
from ..errors import CapacityError, ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.fastpath import grid_depthwise, grid_matmul
from ..gpu.memory import SharedMemory
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind
from .base import SimKernel
from .direct_dw import depthwise_tile
from .params import LayerParams

__all__ = ["PwDwFusedKernel"]


class PwDwFusedKernel(SimKernel):
    """Fused PW->DW kernel without spatial tiling (no redundancy)."""

    def __init__(self, pw: LayerParams, dw: LayerParams, tile_f: int) -> None:
        if pw.spec.kind is not ConvKind.POINTWISE or dw.spec.kind is not ConvKind.DEPTHWISE:
            raise ShapeError("PwDwFusedKernel fuses a PW layer followed by a DW layer")
        if pw.spec.dtype is not dw.spec.dtype:
            raise ShapeError("fused layers must share one precision")
        if (pw.spec.out_channels, pw.spec.out_h, pw.spec.out_w) != (
            dw.spec.in_channels,
            dw.spec.in_h,
            dw.spec.in_w,
        ):
            raise ShapeError(
                f"PW output {pw.spec.ofm.shape} does not feed DW input {dw.spec.ifm.shape}"
            )
        self.pw = pw
        self.dw = dw
        self.dtype: DType = pw.spec.dtype
        self.name = f"fcm_pwdw[{pw.spec.name}+{dw.spec.name}]"
        self.tile_f = min(tile_f, pw.spec.out_channels)
        self._counters: AccessCounters | None = None

    # ---- capacity ---------------------------------------------------------------
    def comm_buffer_bytes(self) -> int:
        """Channel-group of the intermediate over the full spatial extent."""
        return self.tile_f * self.pw.spec.out_h * self.pw.spec.out_w * self.dtype.nbytes

    def tile_footprint_bytes(self) -> int:
        from ..planner.costs import STREAM_CHUNK

        spec_pw, spec_dw = self.pw.spec, self.dw.spec
        eb = self.dtype.nbytes
        dw_w = self.tile_f * spec_dw.kernel * spec_dw.kernel * eb
        # PW reduction chunk in flight + one output row held before store.
        stream = STREAM_CHUNK * (self.tile_f + spec_pw.out_w) * eb
        out_row = self.tile_f * spec_dw.out_w * eb
        return dw_w + stream + out_row + self.comm_buffer_bytes()

    def check_capacity(self, gpu: GpuSpec) -> None:
        fp = self.tile_footprint_bytes()
        if fp > gpu.l1_bytes:
            raise CapacityError(f"{self.name}: working set {fp}B exceeds L1 {gpu.l1_bytes}B")
        if self.comm_buffer_bytes() > gpu.shared_bytes:
            raise CapacityError(
                f"{self.name}: commBuffer {self.comm_buffer_bytes()}B exceeds "
                f"shared {gpu.shared_bytes}B"
            )

    # ---- launch -----------------------------------------------------------------
    def grid(self) -> Sequence[tuple[int, ...]]:
        def build() -> list[tuple[int, ...]]:
            return [
                (fi,) for fi in range(ceil_div(self.pw.spec.out_channels, self.tile_f))
            ]

        return self._memo_grid(build)

    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        if ifm.shape != self.pw.spec.ifm.shape:
            raise ShapeError(f"{self.name}: IFM shape {ifm.shape} != {self.pw.spec.ifm.shape}")
        s = self.pw.spec.stride
        x = np.ascontiguousarray(ifm[:, ::s, ::s]).reshape(self.pw.spec.in_channels, -1)
        self._ifm = self.make_buffer("ifm", x, "ifm", counters)
        self._pw_w = self.make_buffer("pw_weights", self.pw.weights, "weights", counters)
        self._dw_w = self.make_buffer("dw_weights", self.dw.weights, "weights", counters)
        out = self._fresh_output(self.dw.spec.ofm.shape, self.dtype.np_dtype)
        self._out = self.make_buffer("ofm", out, "ofm", counters)
        self._counters = counters

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        (fi,) = coord
        spec_pw, spec_dw = self.pw.spec, self.dw.spec
        cmid = spec_pw.out_channels
        c_in = spec_pw.in_channels
        h, w = spec_pw.out_h, spec_pw.out_w
        f0 = fi * self.tile_f
        f1 = min(f0 + self.tile_f, cmid)
        nf = f1 - f0
        acc_t = self.dtype.acc_dtype

        # Part 2: fetch this block's weight tiles (registers / L1 residency).
        w_tile = self._pw_w.load((slice(f0, f1), slice(None)))
        k = spec_dw.kernel
        dw_slice = self._dw_w.load(slice(f0, f1))

        # Part 3: PW conv-norm-act over the full spatial extent into commBuffer.
        x = self._ifm.load((slice(None), slice(None))).astype(acc_t)
        acc = w_tile.astype(acc_t) @ x
        interm = self.pw.epilogue.apply(acc, f0, f1, self.dtype)
        shared.alloc("commBuffer", (self.tile_f, h, w), interm.dtype, self.dtype.nbytes)
        shared.write("commBuffer", _fit3(interm.reshape(nf, h, w), (self.tile_f, h, w)))
        self._counters.compute(nf * c_in * h * w)

        # Part 4: DW conv-norm-act on the resident channel group (no halo).
        interm_full = shared.read("commBuffer")[:nf]
        acc2 = depthwise_tile(
            window=interm_full.astype(acc_t),
            weights=dw_slice,
            rows_out=spec_dw.out_h,
            cols_out=spec_dw.out_w,
            row_off=spec_dw.padding,
            col_off=spec_dw.padding,
            kernel=k,
            stride=spec_dw.stride,
            acc_dtype=acc_t,
        )
        y = self.dw.epilogue.apply(acc2, f0, f1, self.dtype)
        self._out.store((slice(f0, f1), slice(None), slice(None)), y)
        self._counters.compute(nf * spec_dw.out_h * spec_dw.out_w * k * k)

    def run_grid(self) -> int:
        """Whole-grid fast path: one PW matmul, then a full DW pass.

        Bulk charges: the whole PW input re-streams once per channel group,
        each weight tensor is read exactly once across the grid, and every
        block moves its (fixed-size, ``tile_f``-padded) commBuffer slot
        through shared memory twice — one write, one read.
        """
        spec_pw, spec_dw = self.pw.spec, self.dw.spec
        eb = self.dtype.nbytes
        c_in, c_mid = spec_pw.in_channels, spec_pw.out_channels
        h, w = spec_pw.out_h, spec_pw.out_w
        k = spec_dw.kernel
        n_f = ceil_div(c_mid, self.tile_f)
        ctr = self._counters
        ctr.read_bulk("ifm", c_in * h * w * eb, n_f)
        ctr.read_bulk("weights", c_mid * (c_in + k * k) * eb)
        ctr.write_bulk("ofm", c_mid * spec_dw.out_h * spec_dw.out_w * eb)
        ctr.smem_bulk(2 * self.tile_f * h * w * eb, n_f)
        ctr.compute(c_mid * c_in * h * w)
        ctr.compute(c_mid * spec_dw.out_h * spec_dw.out_w * k * k)

        acc = grid_matmul(self._pw_w.array, self._ifm.array, self.dtype.acc_dtype)
        interm = self.pw.epilogue.apply(acc, 0, c_mid, self.dtype).reshape(c_mid, h, w)
        acc2 = grid_depthwise(
            window=interm,
            weights=self._dw_w.array,
            rows_out=spec_dw.out_h,
            cols_out=spec_dw.out_w,
            row_off=spec_dw.padding,
            col_off=spec_dw.padding,
            kernel=k,
            stride=spec_dw.stride,
            acc_dtype=self.dtype.acc_dtype,
        )
        self._out.array[...] = self.dw.epilogue.apply(acc2, 0, c_mid, self.dtype)
        return self.comm_buffer_bytes()  # every block allocs the full slot

    def output_array(self) -> np.ndarray:
        return self._out.array

    def weight_bytes(self) -> int:
        return self.pw.spec.weights_bytes + self.dw.spec.weights_bytes

    def finalize(self, counters) -> None:
        """Annotate IFM re-stream re-reads for L2-aware timing."""
        from ..core.fcm import FcmType
        from ..planner.analytic import fcm_counters

        ref = fcm_counters(
            FcmType.PWDW, self.pw.spec, self.dw.spec, {"tile_f": self.tile_f}
        )
        counters.rereads.extend(ref.rereads)


def _fit3(tile: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    if tile.shape == shape:
        return tile
    out = np.zeros(shape, dtype=tile.dtype)
    out[: tile.shape[0], : tile.shape[1], : tile.shape[2]] = tile
    return out
