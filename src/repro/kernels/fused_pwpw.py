"""PWPW FCM: two back-to-back pointwise convolutions fused (paper Fig. 4).

Each thread block owns one spatial tile of the final output.  The second PW
needs *all* intermediate channels at a pixel, so PW1 computes its full channel
extent for the tile with its complete weight matrix resident; PW2 then
streams its filters in ``tile_m`` groups.  1x1 filters have no halo, so PWPW
never recomputes anything — but it must keep **two** weight matrices on-chip,
which is why the paper finds PWPW feasible mostly under INT8, where weights
shrink 4x (§IV-B, Table II).

Global traffic:
``GMA = Pw1IFMsSz + n_spatial_tiles * (Pw1WeightsSz + Pw2WeightsSz) + OFMsSz``
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dtypes import DType
from ..core.tiling import ceil_div
from ..errors import CapacityError, ShapeError, UnsupportedError
from ..gpu.counters import AccessCounters
from ..gpu.fastpath import grid_matmul
from ..gpu.memory import SharedMemory
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind
from .base import SimKernel
from .params import LayerParams

__all__ = ["PwPwFusedKernel"]


class PwPwFusedKernel(SimKernel):
    """Fused PW->PW kernel with a spatially tiled, fully-channelled commBuffer."""

    def __init__(
        self, pw1: LayerParams, pw2: LayerParams, tile_hw: int, tile_m: int
    ) -> None:
        if (
            pw1.spec.kind is not ConvKind.POINTWISE
            or pw2.spec.kind is not ConvKind.POINTWISE
        ):
            raise ShapeError("PwPwFusedKernel fuses two pointwise layers")
        if pw1.spec.dtype is not pw2.spec.dtype:
            raise ShapeError("fused layers must share one precision")
        if (pw1.spec.out_channels, pw1.spec.out_h, pw1.spec.out_w) != (
            pw2.spec.in_channels,
            pw2.spec.in_h,
            pw2.spec.in_w,
        ):
            raise ShapeError(
                f"PW1 output {pw1.spec.ofm.shape} does not feed PW2 input {pw2.spec.ifm.shape}"
            )
        if pw2.spec.stride != 1:
            raise UnsupportedError("PWPW fusion assumes a stride-1 second pointwise")
        self.pw1 = pw1
        self.pw2 = pw2
        self.dtype: DType = pw1.spec.dtype
        self.name = f"fcm_pwpw[{pw1.spec.name}+{pw2.spec.name}]"
        self.out_hw = pw2.spec.out_h * pw2.spec.out_w
        self.tile_hw = min(tile_hw, self.out_hw)
        self.tile_m = min(tile_m, pw2.spec.out_channels)
        self._counters: AccessCounters | None = None

    # ---- capacity ----------------------------------------------------------------
    def comm_buffer_bytes(self) -> int:
        return self.pw1.spec.out_channels * self.tile_hw * self.dtype.nbytes

    def tile_footprint_bytes(self) -> int:
        from ..planner.costs import STREAM_CHUNK, streamed_matmul_l1_bytes

        cmid = self.pw1.spec.out_channels
        eb = self.dtype.nbytes
        # PW1 streams its reduction into the commBuffer accumulator; PW2 is a
        # streamed matmul against the resident commBuffer.
        stream1 = STREAM_CHUNK * (cmid + self.tile_hw) * eb
        pw2 = streamed_matmul_l1_bytes(self.tile_m, self.tile_hw, eb)
        return self.comm_buffer_bytes() + stream1 + pw2

    def check_capacity(self, gpu: GpuSpec) -> None:
        fp = self.tile_footprint_bytes()
        if fp > gpu.l1_bytes:
            raise CapacityError(f"{self.name}: working set {fp}B exceeds L1 {gpu.l1_bytes}B")
        if self.comm_buffer_bytes() > gpu.shared_bytes:
            raise CapacityError(
                f"{self.name}: commBuffer {self.comm_buffer_bytes()}B exceeds "
                f"shared {gpu.shared_bytes}B"
            )

    # ---- launch -------------------------------------------------------------------
    def grid(self) -> Sequence[tuple[int, ...]]:
        def build() -> list[tuple[int, ...]]:
            return [(si,) for si in range(ceil_div(self.out_hw, self.tile_hw))]

        return self._memo_grid(build)

    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        if ifm.shape != self.pw1.spec.ifm.shape:
            raise ShapeError(f"{self.name}: IFM shape {ifm.shape} != {self.pw1.spec.ifm.shape}")
        s = self.pw1.spec.stride
        x = np.ascontiguousarray(ifm[:, ::s, ::s]).reshape(self.pw1.spec.in_channels, -1)
        self._ifm = self.make_buffer("ifm", x, "ifm", counters)
        self._w1 = self.make_buffer("pw1_weights", self.pw1.weights, "weights", counters)
        self._w2 = self.make_buffer("pw2_weights", self.pw2.weights, "weights", counters)
        out = self._fresh_output(
            (self.pw2.spec.out_channels, self.out_hw), self.dtype.np_dtype
        )
        self._out = self.make_buffer("ofm", out, "ofm", counters)
        self._counters = counters

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        (si,) = coord
        c_in = self.pw1.spec.in_channels
        cmid = self.pw1.spec.out_channels
        m_total = self.pw2.spec.out_channels
        p0 = si * self.tile_hw
        p1 = min(p0 + self.tile_hw, self.out_hw)
        np_pix = p1 - p0
        acc_t = self.dtype.acc_dtype

        # Part 2: fetch PW1's weights (streamed through registers / L1).
        w1 = self._w1.load((slice(None), slice(None)))

        # Part 3: PW1 conv-norm-act into the commBuffer (all Cmid channels).
        x = self._ifm.load((slice(None), slice(p0, p1))).astype(acc_t)
        interm = self.pw1.epilogue.apply(w1.astype(acc_t) @ x, 0, cmid, self.dtype)
        shared.alloc("commBuffer", (cmid, self.tile_hw), interm.dtype, self.dtype.nbytes)
        shared.write("commBuffer", _fit2(interm, (cmid, self.tile_hw)))
        self._counters.compute(cmid * c_in * np_pix)

        # Part 4: PW2 conv-norm-act streaming filter groups.
        for mi in range(ceil_div(m_total, self.tile_m)):
            m0 = mi * self.tile_m
            m1 = min(m0 + self.tile_m, m_total)
            w2_tile = self._w2.load((slice(m0, m1), slice(None)))
            xi = shared.read("commBuffer")[:, :np_pix].astype(acc_t)
            y = self.pw2.epilogue.apply(w2_tile.astype(acc_t) @ xi, m0, m1, self.dtype)
            self._out.store((slice(m0, m1), slice(p0, p1)), y)
            self._counters.compute((m1 - m0) * cmid * np_pix)

    def run_grid(self) -> int:
        """Whole-grid fast path: two back-to-back full matmuls.

        Bulk charges: PW1's full weight matrix plus PW2's grouped streams
        per spatial tile, the IFM read exactly once, one commBuffer write
        plus one read per filter group per block (fixed ``tile_hw`` slot).
        """
        spec1, spec2 = self.pw1.spec, self.pw2.spec
        eb = self.dtype.nbytes
        c_in, c_mid = spec1.in_channels, spec1.out_channels
        m_all = spec2.out_channels
        ns = ceil_div(self.out_hw, self.tile_hw)
        n_groups = ceil_div(m_all, self.tile_m)
        ctr = self._counters
        ctr.read_bulk("ifm", c_in * self.out_hw * eb)
        ctr.read_bulk("weights", (c_mid * c_in + m_all * c_mid) * eb, ns)
        ctr.write_bulk("ofm", m_all * self.out_hw * eb)
        ctr.smem_bulk((1 + n_groups) * c_mid * self.tile_hw * eb, ns)
        ctr.compute(c_mid * c_in * self.out_hw)
        ctr.compute(m_all * c_mid * self.out_hw)

        acc_t = self.dtype.acc_dtype
        interm = self.pw1.epilogue.apply(
            grid_matmul(self._w1.array, self._ifm.array, acc_t), 0, c_mid, self.dtype
        )
        y = self.pw2.epilogue.apply(
            grid_matmul(self._w2.array, interm, acc_t), 0, m_all, self.dtype
        )
        self._out.array[...] = y
        return self.comm_buffer_bytes()  # every block allocs the full slot

    def output_array(self) -> np.ndarray:
        return self._out.array.reshape(
            self.pw2.spec.out_channels, self.pw2.spec.out_h, self.pw2.spec.out_w
        )

    def weight_bytes(self) -> int:
        return self.pw1.spec.weights_bytes + self.pw2.spec.weights_bytes

    def finalize(self, counters: AccessCounters) -> None:
        """Annotate weight re-reads for L2-aware timing."""
        from ..core.fcm import FcmType
        from ..planner.analytic import fcm_counters

        ref = fcm_counters(
            FcmType.PWPW, self.pw1.spec, self.pw2.spec,
            {"tile_hw": self.tile_hw, "tile_m": self.tile_m},
        )
        counters.rereads.extend(ref.rereads)


def _fit2(tile: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    if tile.shape == shape:
        return tile
    out = np.zeros(shape, dtype=tile.dtype)
    out[: tile.shape[0], : tile.shape[1]] = tile
    return out
