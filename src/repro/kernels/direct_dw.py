"""Layer-by-layer depthwise convolution kernel (direct, OS-LWS dataflow).

Each thread block owns an OFM tile of ``tile_c`` channels x ``tile_h`` x
``tile_w`` pixels and loads the corresponding *halo-extended* input window.
Halo rows/columns shared between neighbouring spatial tiles are loaded by
each of them — exactly the overlap traffic Eq. 1/Eq. 3 charge.  Whole filter
slices stay resident per block (never split spatially, §IV-A), and are
re-loaded once per spatial tile, giving Eq. 3's
``ceil(OFMsHW / OFMsTileHW) * WeightsSz`` weight term.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..core.dtypes import DType
from ..core.tiling import DwTiling, ceil_div, input_extent, tile_input_range
from ..errors import CapacityError, ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.fastpath import axis_window_extents, grid_depthwise
from ..gpu.memory import SharedMemory
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind
from .base import SimKernel
from .params import LayerParams

__all__ = ["DwDirectKernel", "depthwise_tile"]


def depthwise_tile(
    window: np.ndarray,
    weights: np.ndarray,
    rows_out: int,
    cols_out: int,
    row_off: int,
    col_off: int,
    kernel: int,
    stride: int,
    acc_dtype: np.dtype,
) -> np.ndarray:
    """Compute one depthwise output tile from a clamped input window.

    Args:
        window: loaded input window ``(c, wr, wc)`` (borders clamped away).
        weights: filter slices ``(c, k, k)``.
        rows_out / cols_out: output tile extent.
        row_off / col_off: where the loaded window sits inside the padded
            canvas the tile's convolution sweeps (non-zero at FM borders).
        kernel / stride: DW geometry.
        acc_dtype: accumulator dtype (int32 / float32).

    Returns:
        ``(c, rows_out, cols_out)`` accumulator tile.
    """
    c = window.shape[0]
    canvas_h = input_extent(rows_out, kernel, stride)
    canvas_w = input_extent(cols_out, kernel, stride)
    canvas = np.zeros((c, canvas_h, canvas_w), dtype=acc_dtype)
    # Clip: with non-divisible stride geometry the convolution never reads the
    # last input row(s)/col(s), so the canvas may be smaller than the window.
    use_h = min(window.shape[1], canvas_h - row_off)
    use_w = min(window.shape[2], canvas_w - col_off)
    canvas[:, row_off : row_off + use_h, col_off : col_off + use_w] = window[:, :use_h, :use_w]
    win = sliding_window_view(canvas, (kernel, kernel), axis=(1, 2))[:, ::stride, ::stride]
    return np.einsum("chwkl,ckl->chw", win, weights.astype(acc_dtype, copy=False))


class DwDirectKernel(SimKernel):
    """Simulated direct DW kernel with output-stationary spatial tiling."""

    def __init__(self, params: LayerParams, tiling: DwTiling) -> None:
        spec = params.spec
        if spec.kind is not ConvKind.DEPTHWISE:
            raise ShapeError(f"{spec.name}: DwDirectKernel needs a depthwise layer")
        self.params = params
        self.spec = spec
        self.dtype: DType = spec.dtype
        self.name = f"dw_direct[{spec.name}]"
        self.tile_c = min(tiling.tile_c, spec.in_channels)
        self.tile_h = min(tiling.tile_h, spec.out_h)
        self.tile_w = min(tiling.tile_w, spec.out_w)
        self._counters: AccessCounters | None = None

    # ---- capacity (Eq. 3 constraint) -----------------------------------------
    def tile_footprint_bytes(self) -> int:
        """Halo-extended IFM tile + OFM tile + filter slices, storage bytes."""
        k, s = self.spec.kernel, self.spec.stride
        eb = self.dtype.nbytes
        in_h = input_extent(self.tile_h, k, s)
        in_w = input_extent(self.tile_w, k, s)
        ifm_tile = self.tile_c * in_h * in_w * eb
        ofm_tile = self.tile_c * self.tile_h * self.tile_w * eb
        w_tile = self.tile_c * k * k * eb
        return ifm_tile + ofm_tile + w_tile

    def check_capacity(self, gpu: GpuSpec) -> None:
        fp = self.tile_footprint_bytes()
        if fp > gpu.l1_bytes:
            raise CapacityError(
                f"{self.name}: tile working set {fp}B exceeds L1 {gpu.l1_bytes}B"
            )

    # ---- launch ---------------------------------------------------------------
    def grid(self) -> Sequence[tuple[int, ...]]:
        def build() -> list[tuple[int, ...]]:
            nc = ceil_div(self.spec.in_channels, self.tile_c)
            nh = ceil_div(self.spec.out_h, self.tile_h)
            nw = ceil_div(self.spec.out_w, self.tile_w)
            return [
                (ci, hi, wi)
                for ci in range(nc) for hi in range(nh) for wi in range(nw)
            ]

        return self._memo_grid(build)

    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        if ifm.shape != self.spec.ifm.shape:
            raise ShapeError(f"{self.name}: IFM shape {ifm.shape} != {self.spec.ifm.shape}")
        self._ifm = self.make_buffer("ifm", ifm, "ifm", counters)
        self._w = self.make_buffer("weights", self.params.weights, "weights", counters)
        out = self._fresh_output(self.spec.ofm.shape, self.dtype.np_dtype)
        self._out = self.make_buffer("ofm", out, "ofm", counters)
        self._counters = counters

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        ci, hi, wi = coord
        spec = self.spec
        k, s, pad = spec.kernel, spec.stride, spec.padding
        c0 = ci * self.tile_c
        c1 = min(c0 + self.tile_c, spec.in_channels)
        r0 = hi * self.tile_h
        r1 = min(r0 + self.tile_h, spec.out_h)
        q0 = wi * self.tile_w
        q1 = min(q0 + self.tile_w, spec.out_w)
        lo_r, hi_r = tile_input_range(r0, r1 - r0, k, s, pad, spec.in_h)
        lo_q, hi_q = tile_input_range(q0, q1 - q0, k, s, pad, spec.in_w)
        window = self._ifm.load((slice(c0, c1), slice(lo_r, hi_r), slice(lo_q, hi_q)))
        w_tile = self._w.load(slice(c0, c1))
        acc = depthwise_tile(
            window=window,
            weights=w_tile,
            rows_out=r1 - r0,
            cols_out=q1 - q0,
            row_off=lo_r - (r0 * s - pad),
            col_off=lo_q - (q0 * s - pad),
            kernel=k,
            stride=s,
            acc_dtype=self.dtype.acc_dtype,
        )
        y = self.params.epilogue.apply(acc, c0, c1, self.dtype)
        self._out.store((slice(c0, c1), slice(r0, r1), slice(q0, q1)), y)
        self._counters.compute((c1 - c0) * (r1 - r0) * (q1 - q0) * k * k)

    def run_grid(self) -> int:
        """Whole-grid fast path: one full-extent depthwise pass.

        Bulk charges reproduce the per-block sums exactly: window extents
        are separable per axis, weight slices stream once per spatial tile,
        every OFM element is stored exactly once.
        """
        spec = self.spec
        k, s, pad = spec.kernel, spec.stride, spec.padding
        eb = self.dtype.nbytes
        c_all = spec.in_channels
        nh = ceil_div(spec.out_h, self.tile_h)
        nw = ceil_div(spec.out_w, self.tile_w)
        wh = axis_window_extents(spec.out_h, self.tile_h, k, s, pad, spec.in_h)
        ww = axis_window_extents(spec.out_w, self.tile_w, k, s, pad, spec.in_w)
        ctr = self._counters
        ctr.read_bulk("ifm", c_all * sum(wh) * sum(ww) * eb)
        ctr.read_bulk("weights", c_all * k * k * eb, nh * nw)
        ctr.write_bulk("ofm", c_all * spec.out_h * spec.out_w * eb)
        ctr.compute(c_all * spec.out_h * spec.out_w * k * k)

        acc = grid_depthwise(
            window=self._ifm.array,
            weights=self._w.array,
            rows_out=spec.out_h,
            cols_out=spec.out_w,
            row_off=pad,
            col_off=pad,
            kernel=k,
            stride=s,
            acc_dtype=self.dtype.acc_dtype,
        )
        self._out.array[...] = self.params.epilogue.apply(acc, 0, c_all, self.dtype)
        return 0  # direct kernels keep everything in registers / L1

    def output_array(self) -> np.ndarray:
        return self._out.array

    def weight_bytes(self) -> int:
        return self.spec.weights_bytes

    def finalize(self, counters: AccessCounters) -> None:
        """Annotate weight/halo re-reads for L2-aware timing."""
        from ..planner.analytic import lbl_counters

        ref = lbl_counters(
            self.spec,
            {"tile_c": self.tile_c, "tile_h": self.tile_h, "tile_w": self.tile_w},
        )
        counters.rereads.extend(ref.rereads)
