"""Layer-by-layer pointwise convolution kernel (direct, OS-LWS dataflow).

Each thread block owns one OFM tile of ``tile_m`` filters x ``tile_hw``
pixels.  The reduction (channel) dimension is never split, so partial sums
stay in registers and each OFM element is written exactly once (the paper's
two cost-model assumptions, §IV-A).  Global traffic therefore follows Eq. 2:
IFMs are re-read once per filter group, weights once per spatial tile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dtypes import DType
from ..core.tiling import PwTiling, ceil_div
from ..errors import CapacityError, ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.fastpath import grid_matmul
from ..gpu.memory import SharedMemory
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind
from .base import SimKernel
from .params import LayerParams

__all__ = ["PwDirectKernel"]


class PwDirectKernel(SimKernel):
    """Simulated direct PW kernel with output-stationary tiling."""

    def __init__(self, params: LayerParams, tiling: PwTiling) -> None:
        spec = params.spec
        if spec.kind is not ConvKind.POINTWISE:
            raise ShapeError(f"{spec.name}: PwDirectKernel needs a pointwise layer")
        self.params = params
        self.spec = spec
        self.dtype: DType = spec.dtype
        self.name = f"pw_direct[{spec.name}]"
        self.out_hw = spec.out_h * spec.out_w
        self.tile_m = min(tiling.tile_m, spec.out_channels)
        self.tile_hw = min(tiling.tile_hw, self.out_hw)
        self._counters: AccessCounters | None = None

    # ---- capacity (Eq. 2 constraint, reduction-streaming residency) ----------
    def tile_footprint_bytes(self) -> int:
        """Output tile + in-flight reduction chunks, at storage precision."""
        from ..planner.costs import streamed_matmul_l1_bytes

        return streamed_matmul_l1_bytes(self.tile_m, self.tile_hw, self.dtype.nbytes)

    def check_capacity(self, gpu: GpuSpec) -> None:
        fp = self.tile_footprint_bytes()
        if fp > gpu.l1_bytes:
            raise CapacityError(
                f"{self.name}: tile working set {fp}B exceeds L1 {gpu.l1_bytes}B"
            )

    # ---- launch -----------------------------------------------------------------
    def grid(self) -> Sequence[tuple[int, ...]]:
        def build() -> list[tuple[int, ...]]:
            nm = ceil_div(self.spec.out_channels, self.tile_m)
            ns = ceil_div(self.out_hw, self.tile_hw)
            return [(mi, si) for mi in range(nm) for si in range(ns)]

        return self._memo_grid(build)

    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        if ifm.shape != self.spec.ifm.shape:
            raise ShapeError(f"{self.name}: IFM shape {ifm.shape} != {self.spec.ifm.shape}")
        s = self.spec.stride
        # A strided PW only ever touches the subsampled pixels; bind that view
        # so byte accounting charges exactly the elements a real kernel loads.
        x = np.ascontiguousarray(ifm[:, ::s, ::s]).reshape(self.spec.in_channels, -1)
        self._ifm = self.make_buffer("ifm", x, "ifm", counters)
        self._w = self.make_buffer("weights", self.params.weights, "weights", counters)
        out = self._fresh_output((self.spec.out_channels, self.out_hw), self.dtype.np_dtype)
        self._out = self.make_buffer("ofm", out, "ofm", counters)
        self._counters = counters

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        mi, si = coord
        m0 = mi * self.tile_m
        m1 = min(m0 + self.tile_m, self.spec.out_channels)
        p0 = si * self.tile_hw
        p1 = min(p0 + self.tile_hw, self.out_hw)
        acc_t = self.dtype.acc_dtype
        w_tile = self._w.load((slice(m0, m1), slice(None))).astype(acc_t)
        x_tile = self._ifm.load((slice(None), slice(p0, p1))).astype(acc_t)
        acc = w_tile @ x_tile
        y = self.params.epilogue.apply(acc, m0, m1, self.dtype)
        self._out.store((slice(m0, m1), slice(p0, p1)), y)
        self._counters.compute((m1 - m0) * self.spec.in_channels * (p1 - p0))

    def run_grid(self) -> int:
        """Whole-grid fast path: one full matmul over the subsampled IFM.

        Per-block sums in closed form: the IFM streams once per filter
        group, the weight matrix once per spatial tile, every OFM element
        is written exactly once.
        """
        spec = self.spec
        eb = self.dtype.nbytes
        m_all, c_in = spec.out_channels, spec.in_channels
        nm = ceil_div(m_all, self.tile_m)
        ns = ceil_div(self.out_hw, self.tile_hw)
        ctr = self._counters
        ctr.read_bulk("weights", m_all * c_in * eb, ns)
        ctr.read_bulk("ifm", c_in * self.out_hw * eb, nm)
        ctr.write_bulk("ofm", m_all * self.out_hw * eb)
        ctr.compute(m_all * c_in * self.out_hw)

        acc = grid_matmul(self._w.array, self._ifm.array, self.dtype.acc_dtype)
        self._out.array[...] = self.params.epilogue.apply(acc, 0, m_all, self.dtype)
        return 0  # direct kernels keep everything in registers / L1

    def output_array(self) -> np.ndarray:
        return self._out.array.reshape(
            self.spec.out_channels, self.spec.out_h, self.spec.out_w
        )

    def weight_bytes(self) -> int:
        return self.spec.weights_bytes

    def finalize(self, counters: AccessCounters) -> None:
        """Annotate weight/IFM re-reads for L2-aware timing (same math as
        :mod:`repro.planner.analytic`, so functional == analytic timing)."""
        from ..planner.analytic import lbl_counters

        ref = lbl_counters(self.spec, {"tile_m": self.tile_m, "tile_hw": self.tile_hw})
        counters.rereads.extend(ref.rereads)
