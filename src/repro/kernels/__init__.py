"""Simulated GPU kernels: layer-by-layer (LBL) and fused (FCM)."""

from .base import KernelResult, SimKernel
from .direct_dw import DwDirectKernel
from .direct_pw import PwDirectKernel
from .epilogue import ConvEpilogue
from .fused_chain import FusedChainKernel
from .fused_dwpw import DwPwFusedKernel
from .fused_pwdw import PwDwFusedKernel
from .fused_pwdw_r import PwDwRFusedKernel
from .fused_pwpw import PwPwFusedKernel
from .params import LayerParams, chain_quant, make_layer_params
from .registry import build_chain_kernel, build_fcm_kernel, build_lbl_kernel

__all__ = [
    "KernelResult",
    "SimKernel",
    "DwDirectKernel",
    "PwDirectKernel",
    "ConvEpilogue",
    "FusedChainKernel",
    "DwPwFusedKernel",
    "PwDwFusedKernel",
    "PwDwRFusedKernel",
    "PwPwFusedKernel",
    "LayerParams",
    "chain_quant",
    "make_layer_params",
    "build_chain_kernel",
    "build_fcm_kernel",
    "build_lbl_kernel",
]
