"""DWPW FCM: depthwise fused with its following pointwise (paper Fig. 3b, 4).

One thread block owns one *spatial* tile of the module output.  Because the
PW consumer needs every channel of the intermediate at a pixel, the DW stage
computes **all** channels of its output tile and parks them in the shared
commBuffer; the PW stage then streams its filter matrix in ``tile_m``-sized
groups against the resident intermediate.  The DW intermediate is never
written to global memory and never recomputed — DWPW has no redundant
computation (paper Table II shows '-' for every DWPW case).

Global traffic:
``GMA = DwIFM loads (with spatial halo)``
``    + n_spatial_tiles * (DwWeightsSz + PwWeightsSz)``
``    + PwOFMsSz``
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dtypes import DType
from ..core.tiling import ceil_div, input_extent, tile_input_range
from ..errors import CapacityError, ShapeError, UnsupportedError
from ..gpu.counters import AccessCounters
from ..gpu.fastpath import axis_window_extents, grid_depthwise, grid_matmul
from ..gpu.memory import SharedMemory
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind
from .base import SimKernel
from .direct_dw import depthwise_tile
from .params import LayerParams

__all__ = ["DwPwFusedKernel"]


class DwPwFusedKernel(SimKernel):
    """Fused DW->PW kernel exchanging the intermediate via shared memory."""

    def __init__(
        self,
        dw: LayerParams,
        pw: LayerParams,
        tile_h: int,
        tile_w: int,
        tile_m: int,
    ) -> None:
        if dw.spec.kind is not ConvKind.DEPTHWISE or pw.spec.kind is not ConvKind.POINTWISE:
            raise ShapeError("DwPwFusedKernel fuses a DW layer followed by a PW layer")
        if dw.spec.dtype is not pw.spec.dtype:
            raise ShapeError("fused layers must share one precision")
        if (dw.spec.out_channels, dw.spec.out_h, dw.spec.out_w) != (
            pw.spec.in_channels,
            pw.spec.in_h,
            pw.spec.in_w,
        ):
            raise ShapeError(
                f"DW output {dw.spec.ofm.shape} does not feed PW input {pw.spec.ifm.shape}"
            )
        if pw.spec.stride != 1:
            raise UnsupportedError("DWPW fusion assumes a stride-1 pointwise consumer")
        self.dw = dw
        self.pw = pw
        self.dtype: DType = dw.spec.dtype
        self.name = f"fcm_dwpw[{dw.spec.name}+{pw.spec.name}]"
        self.tile_h = min(tile_h, dw.spec.out_h)
        self.tile_w = min(tile_w, dw.spec.out_w)
        self.tile_m = min(tile_m, pw.spec.out_channels)
        self._counters: AccessCounters | None = None

    # ---- capacity -------------------------------------------------------------
    def comm_buffer_bytes(self) -> int:
        """Shared-memory intermediate: all channels x the spatial tile."""
        return self.dw.spec.out_channels * self.tile_h * self.tile_w * self.dtype.nbytes

    def tile_footprint_bytes(self) -> int:
        """Working set: DW halo window + filters + commBuffer + PW stream."""
        from ..planner.costs import streamed_matmul_l1_bytes

        spec_dw = self.dw.spec
        k, s = spec_dw.kernel, spec_dw.stride
        eb = self.dtype.nbytes
        in_h = input_extent(self.tile_h, k, s)
        in_w = input_extent(self.tile_w, k, s)
        ifm_tile = spec_dw.in_channels * in_h * in_w * eb
        dw_w = spec_dw.in_channels * k * k * eb
        pw_stream = streamed_matmul_l1_bytes(self.tile_m, self.tile_h * self.tile_w, eb)
        return ifm_tile + dw_w + self.comm_buffer_bytes() + pw_stream

    def check_capacity(self, gpu: GpuSpec) -> None:
        fp = self.tile_footprint_bytes()
        if fp > gpu.l1_bytes:
            raise CapacityError(f"{self.name}: working set {fp}B exceeds L1 {gpu.l1_bytes}B")
        if self.comm_buffer_bytes() > gpu.shared_bytes:
            raise CapacityError(
                f"{self.name}: commBuffer {self.comm_buffer_bytes()}B exceeds "
                f"shared {gpu.shared_bytes}B"
            )

    # ---- launch ------------------------------------------------------------------
    def grid(self) -> Sequence[tuple[int, ...]]:
        def build() -> list[tuple[int, ...]]:
            nh = ceil_div(self.dw.spec.out_h, self.tile_h)
            nw = ceil_div(self.dw.spec.out_w, self.tile_w)
            return [(hi, wi) for hi in range(nh) for wi in range(nw)]

        return self._memo_grid(build)

    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        if ifm.shape != self.dw.spec.ifm.shape:
            raise ShapeError(f"{self.name}: IFM shape {ifm.shape} != {self.dw.spec.ifm.shape}")
        self._ifm = self.make_buffer("ifm", ifm, "ifm", counters)
        self._dw_w = self.make_buffer("dw_weights", self.dw.weights, "weights", counters)
        self._pw_w = self.make_buffer("pw_weights", self.pw.weights, "weights", counters)
        out = self._fresh_output(self.pw.spec.ofm.shape, self.dtype.np_dtype)
        self._out = self.make_buffer("ofm", out, "ofm", counters)
        self._counters = counters

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        hi, wi = coord
        spec_dw, spec_pw = self.dw.spec, self.pw.spec
        k, s, pad = spec_dw.kernel, spec_dw.stride, spec_dw.padding
        c = spec_dw.in_channels
        r0 = hi * self.tile_h
        r1 = min(r0 + self.tile_h, spec_dw.out_h)
        q0 = wi * self.tile_w
        q1 = min(q0 + self.tile_w, spec_dw.out_w)
        nr, nc = r1 - r0, q1 - q0

        # Part 2: fetch the DW filter slices (kept in registers / L1 — the
        # paper's shfl_sync path exchanges weights without shared memory).
        dw_w = self._dw_w.load(slice(None))

        # Part 3: DW conv-norm-act into the commBuffer (all channels).
        lo_r, hi_r = tile_input_range(r0, nr, k, s, pad, spec_dw.in_h)
        lo_q, hi_q = tile_input_range(q0, nc, k, s, pad, spec_dw.in_w)
        window = self._ifm.load((slice(None), slice(lo_r, hi_r), slice(lo_q, hi_q)))
        acc = depthwise_tile(
            window=window,
            weights=dw_w,
            rows_out=nr,
            cols_out=nc,
            row_off=lo_r - (r0 * s - pad),
            col_off=lo_q - (q0 * s - pad),
            kernel=k,
            stride=s,
            acc_dtype=self.dtype.acc_dtype,
        )
        interm = self.dw.epilogue.apply(acc, 0, c, self.dtype)
        shared.alloc("commBuffer", (c, nr, nc), interm.dtype, self.dtype.nbytes)
        shared.write("commBuffer", interm)
        self._counters.compute(c * nr * nc * k * k)

        # Part 4: PW conv-norm-act streaming filter groups over the commBuffer.
        acc_t = self.dtype.acc_dtype
        m_total = spec_pw.out_channels
        for mi in range(ceil_div(m_total, self.tile_m)):
            m0 = mi * self.tile_m
            m1 = min(m0 + self.tile_m, m_total)
            w_tile = self._pw_w.load((slice(m0, m1), slice(None))).astype(acc_t)
            x = shared.read("commBuffer").reshape(c, nr * nc).astype(acc_t)
            y = self.pw.epilogue.apply(w_tile @ x, m0, m1, self.dtype)
            self._out.store(
                (slice(m0, m1), slice(r0, r1), slice(q0, q1)),
                y.reshape(m1 - m0, nr, nc),
            )
            self._counters.compute((m1 - m0) * c * nr * nc)

    def run_grid(self) -> int:
        """Whole-grid fast path: full DW pass, then one PW matmul.

        Bulk charges: both weight tensors stream once per spatial tile, the
        IFM loads with separable clamped halo windows, the commBuffer sees
        one write plus one read per filter group per block (slot bytes equal
        the block's actual intermediate tile).
        """
        spec_dw, spec_pw = self.dw.spec, self.pw.spec
        k, s, pad = spec_dw.kernel, spec_dw.stride, spec_dw.padding
        eb = self.dtype.nbytes
        c_mid = spec_dw.out_channels
        m_all = spec_pw.out_channels
        oh, ow = spec_dw.out_h, spec_dw.out_w
        nh = ceil_div(oh, self.tile_h)
        nw = ceil_div(ow, self.tile_w)
        n_groups = ceil_div(m_all, self.tile_m)
        wh = axis_window_extents(oh, self.tile_h, k, s, pad, spec_dw.in_h)
        ww = axis_window_extents(ow, self.tile_w, k, s, pad, spec_dw.in_w)
        ctr = self._counters
        ctr.read_bulk("ifm", spec_dw.in_channels * sum(wh) * sum(ww) * eb)
        ctr.read_bulk("weights", (c_mid * k * k + m_all * c_mid) * eb, nh * nw)
        ctr.write_bulk("ofm", m_all * oh * ow * eb)
        # commBuffer slots sum to the full intermediate across the grid.
        ctr.smem_bulk((1 + n_groups) * c_mid * oh * ow * eb)
        ctr.compute(c_mid * oh * ow * k * k)
        ctr.compute(m_all * c_mid * oh * ow)

        acc = grid_depthwise(
            window=self._ifm.array,
            weights=self._dw_w.array,
            rows_out=oh,
            cols_out=ow,
            row_off=pad,
            col_off=pad,
            kernel=k,
            stride=s,
            acc_dtype=self.dtype.acc_dtype,
        )
        interm = self.dw.epilogue.apply(acc, 0, c_mid, self.dtype)
        acc2 = grid_matmul(
            self._pw_w.array, interm.reshape(c_mid, oh * ow), self.dtype.acc_dtype
        )
        y = self.pw.epilogue.apply(acc2, 0, m_all, self.dtype)
        self._out.array[...] = y.reshape(m_all, oh, ow)
        return self.comm_buffer_bytes()  # block (0, 0) holds the full tile

    def output_array(self) -> np.ndarray:
        return self._out.array

    def weight_bytes(self) -> int:
        return self.dw.spec.weights_bytes + self.pw.spec.weights_bytes

    def finalize(self, counters) -> None:
        """Annotate re-reads for L2-aware timing (mirrors planner.analytic)."""
        from ..core.fcm import FcmType
        from ..planner.analytic import fcm_counters

        ref = fcm_counters(
            FcmType.DWPW, self.dw.spec, self.pw.spec,
            {"tile_h": self.tile_h, "tile_w": self.tile_w, "tile_m": self.tile_m},
        )
        counters.rereads.extend(ref.rereads)
