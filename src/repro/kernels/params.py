"""Layer parameter generation: weights + epilogue, FP32 and INT8.

Inference-time evaluation does not need trained weights — the paper measures
memory traffic and latency, which depend only on shapes and dtypes.  This
module materializes deterministic pseudo-random parameters for any
:class:`~repro.ir.layers.ConvSpec`, including a chained INT8 quantization
setup where a layer's output scale becomes the next layer's input scale
(exactly how static-quantized inference graphs are calibrated).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dtypes import DType
from ..core.quantize import QuantParams, choose_scale, quantize
from ..ir.layers import ConvSpec
from .epilogue import ConvEpilogue

__all__ = ["LayerParams", "make_layer_params", "chain_quant"]


@dataclass(frozen=True)
class LayerParams:
    """Materialized parameters of one conv layer: weights + epilogue."""

    spec: ConvSpec
    weights: np.ndarray
    epilogue: ConvEpilogue

    @property
    def in_scale(self) -> QuantParams | None:
        return self.epilogue.in_scale

    @property
    def out_scale(self) -> QuantParams | None:
        return self.epilogue.out_scale


def _rng_for(spec: ConvSpec, seed: int) -> np.random.Generator:
    """Deterministic per-layer RNG (stable across runs and processes)."""
    key = abs(hash((spec.name, spec.kind.value, spec.in_channels, spec.out_channels))) % (2**31)
    return np.random.default_rng(seed ^ key)


def make_layer_params(
    spec: ConvSpec,
    seed: int = 0,
    in_scale: QuantParams | None = None,
) -> LayerParams:
    """Generate weights and epilogue parameters for a layer.

    For INT8 specs, weights are quantized symmetrically and an output scale is
    derived from a conservative range estimate; pass ``in_scale`` to chain the
    producer's output scale (defaults to a fresh unit-range scale).
    """
    rng = _rng_for(spec, seed)
    w_fp = rng.standard_normal(spec.weights_shape).astype(np.float32) * 0.1
    norm_scale = rng.uniform(0.5, 1.5, spec.out_channels).astype(np.float32)
    norm_shift = rng.uniform(-0.1, 0.1, spec.out_channels).astype(np.float32)
    if not spec.epilogue.norm:
        norm_scale = norm_shift = None

    if spec.dtype is DType.INT8:
        w_q = choose_scale(w_fp)
        weights = quantize(w_fp, w_q)
        inp = in_scale if in_scale is not None else QuantParams(scale=1.0 / 127.0)
        # Conservative output range estimate: accumulator spread grows with
        # the sqrt of the reduction depth for zero-mean operands.
        depth = spec.kernel * spec.kernel
        if spec.kind.value != "dw":
            depth *= spec.in_channels
        out = QuantParams(scale=max(inp.scale * w_q.scale * np.sqrt(depth), 1e-8))
        epi = ConvEpilogue(
            norm_scale=norm_scale,
            norm_shift=norm_shift,
            activation=spec.epilogue.activation,
            in_scale=inp,
            w_scale=w_q,
            out_scale=out,
        )
        return LayerParams(spec=spec, weights=weights, epilogue=epi)

    epi = ConvEpilogue(
        norm_scale=norm_scale,
        norm_shift=norm_shift,
        activation=spec.epilogue.activation,
    )
    return LayerParams(spec=spec, weights=w_fp, epilogue=epi)


def chain_quant(first: LayerParams, second_spec: ConvSpec, seed: int = 0) -> LayerParams:
    """Generate the consumer layer's params with its input scale chained.

    For FP32 this is just :func:`make_layer_params`; for INT8 the consumer's
    ``in_scale`` is the producer's ``out_scale`` so fused and layer-by-layer
    executions are numerically identical.
    """
    return make_layer_params(second_spec, seed=seed, in_scale=first.out_scale)
