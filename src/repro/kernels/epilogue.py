"""Fused convolution epilogues: normalization + activation (+ requantization).

Every kernel in the comparison (cuDNN, TVM, LBL, FCM) fuses the elementwise
tail of a convolution into the kernel itself — the FCM additionally fuses the
*next convolution*.  The epilogue is applied to the accumulator while it still
lives in registers, so it contributes MACs-worth-of-nothing to global traffic.

For INT8 the epilogue also performs the dp4a pipeline's requantization:
``int32 acc -> fp32 (in_scale * w_scale) -> norm -> act -> int8 (out_scale)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dtypes import DType
from ..core.ops import apply_activation
from ..core.quantize import QuantParams
from ..errors import ShapeError, UnsupportedError

__all__ = ["ConvEpilogue"]


@dataclass(frozen=True)
class ConvEpilogue:
    """Parameters of one convolution's folded norm/activation tail.

    Attributes:
        norm_scale / norm_shift: folded batch-norm affine per out-channel,
            or ``None`` for layers without normalization.
        activation: activation name (see :data:`repro.core.ops.ACTIVATIONS`).
        in_scale / w_scale / out_scale: symmetric quantization parameters for
            the INT8 path (``None`` for FP32 kernels).
    """

    norm_scale: np.ndarray | None = None
    norm_shift: np.ndarray | None = None
    activation: str | None = None
    in_scale: QuantParams | None = None
    w_scale: QuantParams | None = None
    out_scale: QuantParams | None = None

    def __post_init__(self) -> None:
        if (self.norm_scale is None) != (self.norm_shift is None):
            raise ShapeError("norm_scale and norm_shift must be provided together")

    @property
    def is_quantized(self) -> bool:
        return self.out_scale is not None

    def dequant_multiplier(self) -> float:
        """``in_scale * w_scale`` — real value per accumulator unit."""
        if self.in_scale is None or self.w_scale is None:
            raise UnsupportedError("dequant_multiplier needs int8 scales")
        return self.in_scale.scale * self.w_scale.scale

    def apply(self, acc: np.ndarray, ch0: int, ch1: int, dtype: DType) -> np.ndarray:
        """Apply the epilogue to an accumulator tile.

        Args:
            acc: accumulator with out-channels on axis 0 (fp32 or int32).
            ch0, ch1: which out-channel range this tile covers (for slicing
                the per-channel norm parameters).
            dtype: storage precision of the kernel's outputs.

        Returns:
            The tile in storage dtype (fp32 or int8).
        """
        if dtype is DType.INT8:
            if not self.is_quantized:
                raise UnsupportedError("INT8 kernel requires quantization scales")
            x = acc.astype(np.float64) * self.dequant_multiplier()
        else:
            # copy=False: fp32 accumulators pass through as-is (the epilogue
            # never mutates in place, so aliasing the accumulator is safe).
            x = acc.astype(np.float32, copy=False)
        if self.norm_scale is not None:
            bshape = (-1,) + (1,) * (acc.ndim - 1)
            scale = self.norm_scale[ch0:ch1].reshape(bshape)
            shift = self.norm_shift[ch0:ch1].reshape(bshape)
            if scale.shape[0] != acc.shape[0]:
                raise ShapeError(
                    f"epilogue norm slice [{ch0}:{ch1}] does not cover tile of {acc.shape[0]}"
                )
            x = x * scale + shift
        x = apply_activation(x, self.activation)
        if dtype is DType.INT8:
            q = np.rint(x / self.out_scale.scale)
            return np.clip(q, -128, 127).astype(np.int8)
        return x.astype(np.float32, copy=False)
