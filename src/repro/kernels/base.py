"""Kernel base class and launch results.

Simulated kernels follow the structure of the paper's FCM skeleton
(Listing 1): per thread block they (1) allocate shared buffers, (2) prefetch
weight tiles, (3) compute the first conv-norm-act into the commBuffer, and
(4) compute the second from it.  LBL kernels are the degenerate single-stage
case.  :meth:`SimKernel.simulate` wires up instrumented global buffers, runs
the grid through :func:`repro.gpu.executor.launch`, and returns both the
functional output and the metered statistics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.dtypes import DType
from ..errors import ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.energy import EnergyBreakdown, energy_of
from ..gpu.executor import LaunchStats, launch
from ..gpu.memory import GlobalBuffer, SharedMemory
from ..gpu.roofline import KernelTiming, time_kernel
from ..gpu.specs import GpuSpec

__all__ = ["KernelResult", "SimKernel"]


@dataclass(frozen=True)
class KernelResult:
    """Everything one simulated launch produced."""

    output: np.ndarray
    counters: AccessCounters
    stats: LaunchStats
    gpu: GpuSpec
    dtype: DType

    def timing(self) -> KernelTiming:
        """Roofline timing of the launch on the result's GPU."""
        return time_kernel(self.counters, self.gpu, self.dtype)

    @property
    def time_s(self) -> float:
        """End-to-end launch latency — the cost the tuning harness records."""
        return self.timing().t_total_s

    def energy(self) -> EnergyBreakdown:
        """Energy of the launch on the result's GPU."""
        return energy_of(self.counters, self.timing(), self.gpu, self.dtype)


class SimKernel(abc.ABC):
    """A simulated GPU kernel: a grid of blocks over instrumented buffers."""

    #: kernel name used in reports and error messages.
    name: str
    #: storage precision of feature maps and weights.
    dtype: DType

    @abc.abstractmethod
    def grid(self) -> Sequence[tuple[int, ...]]:
        """Block coordinates of the launch grid."""

    @abc.abstractmethod
    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        """Wrap inputs/outputs/weights into instrumented global buffers."""

    @abc.abstractmethod
    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        """Execute one thread block against the bound buffers."""

    @abc.abstractmethod
    def output_array(self) -> np.ndarray:
        """The OFM array after the launch."""

    def finalize(self, counters: AccessCounters) -> None:
        """Post-launch accounting hook (e.g. redundant-MAC reclassification)."""

    def weight_bytes(self) -> int:
        """Bytes of the kernel's weight tensors at storage precision.

        Batch-invariant traffic: a batched launch streams weights once from
        DRAM and re-reads them from L2 for the remaining images (see
        :meth:`~repro.gpu.counters.AccessCounters.batched`).  Kernels without
        weights (the default) return 0.
        """
        return 0

    def check_capacity(self, gpu: GpuSpec) -> None:
        """Validate the L1 working-set constraint before launching.

        Kernels override this with their Eq. 2/3/4 tile-footprint check; the
        shared-memory portion is additionally enforced at runtime by
        :class:`~repro.gpu.memory.SharedMemory`.
        """

    # ---- common machinery -------------------------------------------------
    def make_buffer(
        self, name: str, array: np.ndarray, kind: str, counters: AccessCounters
    ) -> GlobalBuffer:
        """Instrumented buffer at the kernel's storage width."""
        return GlobalBuffer(name, array, kind, counters, elem_bytes=self.dtype.nbytes)

    def simulate(self, ifm: np.ndarray, gpu: GpuSpec) -> KernelResult:
        """Run the kernel on ``ifm`` and return output + metered statistics."""
        if ifm.dtype != self.dtype.np_dtype:
            raise ShapeError(
                f"{self.name}: IFM dtype {ifm.dtype} does not match kernel {self.dtype}"
            )
        counters = AccessCounters()
        self.check_capacity(gpu)
        self.bind(ifm, counters)
        stats = launch(self, gpu, counters)
        self.finalize(counters)
        return KernelResult(
            output=self.output_array(),
            counters=counters,
            stats=stats,
            gpu=gpu,
            dtype=self.dtype,
        )

    def simulate_batch(self, ifms: np.ndarray, gpu: GpuSpec) -> KernelResult:
        """Run a stack of IFMs (leading batch dimension) as one batched launch.

        Functionally each image flows through the same simulated grid; the
        returned counters describe the single batched launch — one kernel
        launch total, per-image traffic/compute scaled by the batch, and the
        cross-image weight re-streams annotated for L2 absorption.  The
        output keeps the leading batch dimension.
        """
        if ifms.ndim < 2 or ifms.shape[0] < 1:
            raise ShapeError(f"{self.name}: batched IFM needs a leading batch dim")
        results = [self.simulate(ifm, gpu) for ifm in ifms]
        counters = results[0].counters.batched(len(results), self.weight_bytes())
        return KernelResult(
            output=np.stack([r.output for r in results]),
            counters=counters,
            stats=results[0].stats,
            gpu=gpu,
            dtype=self.dtype,
        )
