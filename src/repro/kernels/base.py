"""Kernel base class and launch results.

Simulated kernels follow the structure of the paper's FCM skeleton
(Listing 1): per thread block they (1) allocate shared buffers, (2) prefetch
weight tiles, (3) compute the first conv-norm-act into the commBuffer, and
(4) compute the second from it.  LBL kernels are the degenerate single-stage
case.  :meth:`SimKernel.simulate` wires up instrumented global buffers, runs
the grid through :func:`repro.gpu.executor.launch`, and returns both the
functional output and the metered statistics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.dtypes import DType
from ..errors import ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.energy import EnergyBreakdown, energy_of
from ..gpu.executor import LaunchStats, launch
from ..gpu.fastpath import launch_fast, resolve_engine
from ..gpu.memory import GlobalBuffer, SharedMemory
from ..gpu.roofline import KernelTiming, time_kernel
from ..gpu.specs import GpuSpec

__all__ = ["KernelResult", "SimKernel"]


@dataclass(frozen=True)
class KernelResult:
    """Everything one simulated launch produced."""

    output: np.ndarray
    counters: AccessCounters
    stats: LaunchStats
    gpu: GpuSpec
    dtype: DType

    def timing(self) -> KernelTiming:
        """Roofline timing of the launch on the result's GPU."""
        return time_kernel(self.counters, self.gpu, self.dtype)

    @property
    def time_s(self) -> float:
        """End-to-end launch latency — the cost the tuning harness records."""
        return self.timing().t_total_s

    def energy(self) -> EnergyBreakdown:
        """Energy of the launch on the result's GPU."""
        return energy_of(self.counters, self.timing(), self.gpu, self.dtype)


class SimKernel(abc.ABC):
    """A simulated GPU kernel: a grid of blocks over instrumented buffers.

    Every kernel supports two execution engines (both produce one
    :class:`KernelResult`):

    * ``"fast"`` (default) — the whole grid runs as one vectorized pass
      (:meth:`run_grid`) with bulk counter accounting, bit-identical totals;
    * ``"reference"`` — the per-block interpreted launch through
      :func:`repro.gpu.executor.launch`, the fidelity ground truth.
    """

    #: kernel name used in reports and error messages.
    name: str
    #: storage precision of feature maps and weights.
    dtype: DType
    #: when True, ``bind`` may hand out the memoized OFM buffer again for a
    #: re-simulation with the same geometry (the batch loops set this while
    #: they copy each image's output out immediately; default off so two
    #: independent ``simulate`` calls never alias their outputs).
    reuse_output: bool = False

    @abc.abstractmethod
    def grid(self) -> Sequence[tuple[int, ...]]:
        """Block coordinates of the launch grid."""

    @abc.abstractmethod
    def bind(self, ifm: np.ndarray, counters: AccessCounters) -> None:
        """Wrap inputs/outputs/weights into instrumented global buffers."""

    @abc.abstractmethod
    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        """Execute one thread block against the bound buffers."""

    @abc.abstractmethod
    def output_array(self) -> np.ndarray:
        """The OFM array after the launch."""

    def run_grid(self) -> int:
        """Fast-path hook: execute the whole grid vectorized (see
        :class:`repro.gpu.fastpath.GridProgram`).  Kernels without an
        implementation transparently fall back to the reference launch."""
        raise NotImplementedError(f"{self.name}: no fast-path grid program")

    def has_fast_path(self) -> bool:
        """Does this kernel implement the vectorized grid program?"""
        return type(self).run_grid is not SimKernel.run_grid

    def finalize(self, counters: AccessCounters) -> None:
        """Post-launch accounting hook (e.g. redundant-MAC reclassification)."""

    def weight_bytes(self) -> int:
        """Bytes of the kernel's weight tensors at storage precision.

        Batch-invariant traffic: a batched launch streams weights once from
        DRAM and re-reads them from L2 for the remaining images (see
        :meth:`~repro.gpu.counters.AccessCounters.batched`).  Kernels without
        weights (the default) return 0.
        """
        return 0

    def check_capacity(self, gpu: GpuSpec) -> None:
        """Validate the L1 working-set constraint before launching.

        Kernels override this with their Eq. 2/3/4 tile-footprint check; the
        shared-memory portion is additionally enforced at runtime by
        :class:`~repro.gpu.memory.SharedMemory`.
        """

    # ---- common machinery -------------------------------------------------
    def make_buffer(
        self, name: str, array: np.ndarray, kind: str, counters: AccessCounters
    ) -> GlobalBuffer:
        """Instrumented buffer at the kernel's storage width."""
        return GlobalBuffer(name, array, kind, counters, elem_bytes=self.dtype.nbytes)

    def _memo_grid(self, build) -> Sequence[tuple[int, ...]]:
        """Materialize the launch grid once per kernel instance.

        A kernel's geometry is fixed at construction, yet every launch used
        to rebuild the coordinate list from scratch — measurable overhead
        for batch loops re-simulating the same instance.
        """
        cached = getattr(self, "_grid_cache", None)
        if cached is None:
            cached = build()
            self._grid_cache = cached
        return cached

    def _fresh_output(self, shape: tuple[int, ...], np_dtype) -> np.ndarray:
        """Zeroed OFM array for ``bind``, recycled when the caller allows it.

        With :attr:`reuse_output` set (batch loops that copy each image's
        output out before the next ``bind``), a re-simulation with the same
        geometry re-zeroes the memoized buffer instead of allocating a new
        one.  Otherwise every ``bind`` allocates, so independently returned
        :class:`KernelResult` outputs never alias.
        """
        cached = getattr(self, "_out_cache", None)
        if (
            self.reuse_output
            and cached is not None
            and cached.shape == shape
            and cached.dtype == np_dtype
        ):
            cached.fill(0)
            return cached
        out = np.zeros(shape, dtype=np_dtype)
        self._out_cache = out
        return out

    def _launch(self, gpu: GpuSpec, counters: AccessCounters, engine: str) -> LaunchStats:
        """Dispatch one bound launch to the selected engine."""
        if engine == "fast" and self.has_fast_path():
            return launch_fast(self, gpu, counters)
        return launch(self, gpu, counters)

    def simulate(
        self, ifm: np.ndarray, gpu: GpuSpec, engine: str | None = None
    ) -> KernelResult:
        """Run the kernel on ``ifm`` and return output + metered statistics.

        ``engine`` selects the execution path (``"fast"`` by default,
        ``"reference"`` for the per-block interpreted launch); outputs are
        allclose at dtype tolerance and counters/stats exactly equal.
        """
        engine = resolve_engine(engine)
        if ifm.dtype != self.dtype.np_dtype:
            raise ShapeError(
                f"{self.name}: IFM dtype {ifm.dtype} does not match kernel {self.dtype}"
            )
        counters = AccessCounters()
        self.check_capacity(gpu)
        self.bind(ifm, counters)
        stats = self._launch(gpu, counters, engine)
        self.finalize(counters)
        return KernelResult(
            output=self.output_array(),
            counters=counters,
            stats=stats,
            gpu=gpu,
            dtype=self.dtype,
        )

    def simulate_batch(
        self, ifms: np.ndarray, gpu: GpuSpec, engine: str | None = None
    ) -> KernelResult:
        """Run a stack of IFMs (leading batch dimension) as one batched launch.

        Functionally each image flows through the same simulated grid; the
        returned counters describe the single batched launch — one kernel
        launch total, per-image traffic/compute scaled by the batch, and the
        cross-image weight re-streams annotated for L2 absorption.  The
        output keeps the leading batch dimension.

        Batched counters are the first image's totals scaled by the batch
        (see :meth:`AccessCounters.batched` — asserted in the test suite),
        so only image 0 runs metered-and-finalized; the remaining images
        execute functionally against scratch counters, sharing one finalize
        pass and recycling the OFM buffer (each image's output is copied
        into the batch array before the next ``bind``).
        """
        if ifms.ndim < 2 or ifms.shape[0] < 1:
            raise ShapeError(f"{self.name}: batched IFM needs a leading batch dim")
        engine = resolve_engine(engine)
        n = ifms.shape[0]
        first = self.simulate(ifms[0], gpu, engine)
        out = np.empty((n,) + first.output.shape, dtype=first.output.dtype)
        out[0] = first.output
        prev_reuse = self.reuse_output
        self.reuse_output = True
        try:
            scratch = AccessCounters()
            for i in range(1, n):
                self.bind(ifms[i], scratch)
                self._launch(gpu, scratch, engine)
                out[i] = self.output_array()
        finally:
            self.reuse_output = prev_reuse
        counters = first.counters.batched(n, self.weight_bytes())
        return KernelResult(
            output=out,
            counters=counters,
            stats=first.stats,
            gpu=gpu,
            dtype=self.dtype,
        )
