"""Baselines: simulated cuDNN algorithms and a TVM-like end-to-end compiler."""

from .autotune import SearchOutcome, random_search
from .cudnn import (
    CudnnAlgo,
    best_cudnn_algo,
    cudnn_counters,
    cudnn_timing,
    run_cudnn,
)
from .im2col import conv_via_im2col, depthwise_via_im2col, im2col
from .tvm import TvmCompiler, TvmConvStep, TvmGlueStep, TvmPlan

__all__ = [
    "SearchOutcome",
    "random_search",
    "CudnnAlgo",
    "best_cudnn_algo",
    "cudnn_counters",
    "cudnn_timing",
    "run_cudnn",
    "conv_via_im2col",
    "depthwise_via_im2col",
    "im2col",
    "TvmCompiler",
    "TvmConvStep",
    "TvmGlueStep",
    "TvmPlan",
]
