"""Explicit im2col lowering — the substrate of the cuDNN ``GEMM`` algorithm.

cuDNN's explicit-GEMM path materializes the input-patch matrix in global
memory and then runs a plain GEMM on it; the materialization round trip is
exactly why implicit GEMM outperforms it (paper §VI-B).  The lowering here is
fully vectorized (one ``sliding_window_view`` + reshape) and is also reused by
tests as an independent oracle for the direct convolutions.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ShapeError

__all__ = ["im2col", "conv_via_im2col", "depthwise_via_im2col"]


def im2col(ifm: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Lower ``(C, H, W)`` input to the ``(C*k*k, out_h*out_w)`` patch matrix."""
    if ifm.ndim != 3:
        raise ShapeError(f"im2col expects (C,H,W), got {ifm.shape}")
    c = ifm.shape[0]
    x = np.pad(ifm, ((0, 0), (padding, padding), (padding, padding)))
    win = sliding_window_view(x, (kernel, kernel), axis=(1, 2))[:, ::stride, ::stride]
    # (C, Ho, Wo, k, k) -> (C, k, k, Ho*Wo) -> (C*k*k, Ho*Wo)
    out_h, out_w = win.shape[1], win.shape[2]
    return (
        win.transpose(0, 3, 4, 1, 2).reshape(c * kernel * kernel, out_h * out_w).copy()
    )


def conv_via_im2col(
    ifm: np.ndarray, weights: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Standard convolution as ``weights_matrix @ im2col`` (GEMM oracle).

    Args:
        weights: ``(M, C, k, k)`` filters.
    """
    m, c, kh, kw = weights.shape
    if kh != kw:
        raise ShapeError("conv_via_im2col supports square kernels")
    cols = im2col(ifm, kh, stride, padding)
    acc = np.int32 if np.issubdtype(ifm.dtype, np.integer) else np.float32
    a = weights.reshape(m, c * kh * kw).astype(acc)
    y = a @ cols.astype(acc)
    out_h = (ifm.shape[1] + 2 * padding - kh) // stride + 1
    out_w = (ifm.shape[2] + 2 * padding - kw) // stride + 1
    return y.reshape(m, out_h, out_w)


def depthwise_via_im2col(
    ifm: np.ndarray, weights: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Depthwise convolution as C independent ``(1 x k*k) @ (k*k x HW)`` GEMMs.

    This is exactly how a grouped-GEMM backend treats DW — one degenerate
    matrix product per channel, which is why it is so inefficient there.
    """
    c, kh, kw = weights.shape
    if kh != kw:
        raise ShapeError("depthwise_via_im2col supports square kernels")
    cols = im2col(ifm, kh, stride, padding)  # (C*k*k, HW)
    hw = cols.shape[1]
    acc = np.int32 if np.issubdtype(ifm.dtype, np.integer) else np.float32
    cols3 = cols.reshape(c, kh * kw, hw).astype(acc)
    w2 = weights.reshape(c, 1, kh * kw).astype(acc)
    y = np.einsum("cik,ckj->cij", w2, cols3)[:, 0, :]
    out_h = (ifm.shape[1] + 2 * padding - kh) // stride + 1
    out_w = (ifm.shape[2] + 2 * padding - kw) // stride + 1
    return y.reshape(c, out_h, out_w)
