"""Simulated cuDNN convolution algorithms (paper §V-C baselines).

The paper compares against the three cuDNN algorithms that performed best on
its workloads: ``GEMM`` (explicit im2col), ``IMPLICIT_GEMM`` and
``IMPLICIT_PRECOMP_GEMM``.  Without a physical GPU we model each algorithm's
*global traffic* (what Nsight would count) and its efficiency knobs
(achievable fraction of peak compute / bandwidth), then execute the layer
functionally through the reference ops so end-to-end results stay numerically
real.  Knob values are calibrated to reproduce the paper's orderings:

* implicit GEMM beats explicit GEMM (no patch-matrix round trip, §VI-B);
* precomp beats implicit (offset tables trade a little memory for index math);
* all three handle depthwise convolutions poorly (grouped conv degenerates to
  per-channel 1 x k^2 GEMMs with duplicated window reads) — the source of the
  paper's largest FCM-vs-cuDNN speedups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..core.dtypes import DType
from ..core.ops import apply_activation, apply_norm, conv2d_standard
from ..core.tiling import ceil_div
from ..errors import ShapeError
from ..gpu.counters import AccessCounters
from ..gpu.roofline import KernelTiming, time_kernel
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind, ConvSpec
from ..kernels.params import LayerParams
from .im2col import conv_via_im2col, depthwise_via_im2col

__all__ = [
    "CudnnAlgo",
    "cudnn_counters",
    "cudnn_blocks",
    "cudnn_timing",
    "cudnn_batched",
    "best_cudnn_algo",
    "run_cudnn",
]


class CudnnAlgo(enum.Enum):
    """The three cuDNN algorithms the paper benchmarks against."""

    GEMM = "GEMM"
    IMPLICIT_GEMM = "IMP_GEMM"
    IMPLICIT_PRECOMP_GEMM = "IMPL_PRECOMP_GEMM"


@dataclass(frozen=True)
class _AlgoProfile:
    utilization: float
    bandwidth_efficiency: float


#: Efficiency knobs per (algorithm, is_depthwise).  Grouped (DW) convolutions
#: run degenerate per-channel GEMMs: poor occupancy and small transactions.
_PROFILES: dict[tuple[CudnnAlgo, bool], _AlgoProfile] = {
    (CudnnAlgo.GEMM, False): _AlgoProfile(0.70, 0.85),
    (CudnnAlgo.IMPLICIT_GEMM, False): _AlgoProfile(0.75, 0.85),
    (CudnnAlgo.IMPLICIT_PRECOMP_GEMM, False): _AlgoProfile(0.85, 0.90),
    (CudnnAlgo.GEMM, True): _AlgoProfile(0.06, 0.50),
    (CudnnAlgo.IMPLICIT_GEMM, True): _AlgoProfile(0.10, 0.60),
    (CudnnAlgo.IMPLICIT_PRECOMP_GEMM, True): _AlgoProfile(0.15, 0.65),
}

#: GEMM blocking used by the library kernels (output tile edge).
_GEMM_TILE = 64


def cudnn_counters(spec: ConvSpec, algo: CudnnAlgo, gemm_tile: int = _GEMM_TILE) -> AccessCounters:
    """Analytic traffic + MAC tally of one cuDNN-algorithm launch.

    Traffic model (elements; ``K`` = reduction depth, ``N`` = output pixels,
    ``M`` = output channels):

    * explicit GEMM reads the IFM once to materialize the ``K x N`` patch
      matrix, writes it, reads it back tile-wise, and reads the ``M x K``
      weights once per ``N``-tile;
    * implicit GEMM skips the materialization but re-reads input windows with
      their overlap duplication (``~k^2/2`` after L2 reuse);
    * precomp GEMM moves the same bytes plus a tiny offset table.
    """
    counters = AccessCounters()
    counters.kernel_launches = 1
    eb = spec.dtype.nbytes
    n = spec.out_h * spec.out_w
    ifm_bytes = spec.ifm.nbytes
    if spec.kind is ConvKind.DEPTHWISE:
        c, k = spec.in_channels, spec.kernel
        dup = ceil_div(k * k, 2)  # duplicated window reads surviving L1 reuse
        if algo is CudnnAlgo.GEMM:
            counters.read("ifm", c * spec.in_h * spec.in_w * eb)
            counters.write("im2col", c * k * k * n * eb)
            counters.read("im2col", c * k * k * n * eb)
        else:
            # Duplicated window reads of grouped convolutions are scattered
            # sub-line sector loads: they reach device memory (this is the
            # measured-traffic pathology the paper exploits), so no re-read
            # annotation is given here.
            counters.read("ifm", c * dup * n * eb)
        w_reads = c * k * k * ceil_div(n, gemm_tile * gemm_tile) * eb
        counters.read("weights", w_reads)
        counters.reread(spec.weights_bytes, max(w_reads - spec.weights_bytes, 0))
        counters.write("ofm", c * n * eb)
        counters.compute(spec.macs)
        return counters

    m = spec.out_channels
    kk = spec.kernel * spec.kernel
    kdim = spec.in_channels * kk
    n_tiles_n = ceil_div(n, gemm_tile)
    n_tiles_m = ceil_div(m, gemm_tile)
    if algo is CudnnAlgo.GEMM:
        counters.read("ifm", spec.in_channels * spec.in_h * spec.in_w * eb)
        counters.write("im2col", kdim * n * eb)
        counters.read("im2col", n_tiles_m * kdim * n * eb)
        counters.reread(kdim * n * eb, (n_tiles_m - 1) * kdim * n * eb)
    else:
        dup = max(ceil_div(kk, 2), 1)
        b_reads = n_tiles_m * spec.in_channels * dup * n * eb
        counters.read("ifm", b_reads)
        # Across-m-tile passes re-read the (implicitly formed) input matrix;
        # the within-pass dup factor stays at device memory (sector loads).
        one_pass = spec.in_channels * dup * n * eb
        counters.reread(ifm_bytes, max(b_reads - one_pass, 0))
    w_reads = n_tiles_n * m * kdim * eb
    counters.read("weights", w_reads)
    counters.reread(spec.weights_bytes, max(w_reads - spec.weights_bytes, 0))
    if algo is CudnnAlgo.IMPLICIT_PRECOMP_GEMM:
        counters.read("offsets", kk * n)  # precomputed index table (int32-ish)
    counters.write("ofm", m * n * eb)
    counters.compute(spec.macs)
    return counters


def cudnn_blocks(spec: ConvSpec, gemm_tile: int = _GEMM_TILE) -> int:
    """Thread blocks a library GEMM launches for this layer.

    Grouped (DW) convolutions launch roughly one block per channel group;
    dense GEMMs launch the 2-D blocking grid.
    """
    n = spec.out_h * spec.out_w
    if spec.kind is ConvKind.DEPTHWISE:
        return spec.in_channels * ceil_div(n, gemm_tile * gemm_tile)
    return ceil_div(spec.out_channels, gemm_tile) * ceil_div(n, gemm_tile)


def cudnn_timing(
    spec: ConvSpec, algo: CudnnAlgo, gpu: GpuSpec, gemm_tile: int = _GEMM_TILE
) -> KernelTiming:
    """Roofline timing of one cuDNN launch with the algorithm's knobs.

    Occupancy matters: a launch with fewer blocks than SMs leaves compute
    idle in proportion and loses memory-level parallelism roughly with the
    square root of the occupancy deficit — this is why library GEMMs cannot
    simply choose enormous blocking on the paper's small-HW layers.
    """
    prof = _PROFILES[(algo, spec.kind is ConvKind.DEPTHWISE)]
    occ = min(1.0, cudnn_blocks(spec, gemm_tile) / gpu.sm_count)
    return time_kernel(
        cudnn_counters(spec, algo, gemm_tile=gemm_tile),
        gpu,
        spec.dtype,
        utilization=prof.utilization * occ,
        bandwidth_efficiency=prof.bandwidth_efficiency * occ**0.5,
    )


def cudnn_batched(
    spec: ConvSpec,
    algo: CudnnAlgo,
    gpu: GpuSpec,
    batch: int,
    gemm_tile: int = _GEMM_TILE,
) -> tuple[AccessCounters, KernelTiming]:
    """Counters + timing of one cuDNN launch covering ``batch`` images.

    Batching helps library kernels twice: weights are re-streamed from L2
    rather than DRAM for images beyond the first, and the launch grid grows
    ``batch``-fold, lifting the occupancy of the small-grid layers that
    otherwise leave SMs idle (``cudnn_timing``'s occupancy penalty).
    """
    counters = cudnn_counters(spec, algo, gemm_tile=gemm_tile).batched(
        batch, spec.weights_bytes
    )
    prof = _PROFILES[(algo, spec.kind is ConvKind.DEPTHWISE)]
    occ = min(1.0, batch * cudnn_blocks(spec, gemm_tile) / gpu.sm_count)
    timing = time_kernel(
        counters,
        gpu,
        spec.dtype,
        utilization=prof.utilization * occ,
        bandwidth_efficiency=prof.bandwidth_efficiency * occ**0.5,
    )
    return counters, timing


def best_cudnn_algo(spec: ConvSpec, gpu: GpuSpec) -> tuple[CudnnAlgo, KernelTiming]:
    """The fastest of the three algorithms for this layer on this GPU."""
    choices = [(cudnn_timing(spec, a, gpu).t_total_s, a) for a in CudnnAlgo]
    t, algo = min(choices, key=lambda x: x[0])
    del t
    return algo, cudnn_timing(spec, algo, gpu)


def run_cudnn(
    params: LayerParams,
    ifm: np.ndarray,
    algo: CudnnAlgo,
    gpu: GpuSpec,
    gemm_tile: int = _GEMM_TILE,
) -> tuple[np.ndarray, AccessCounters, KernelTiming]:
    """Execute one layer functionally with cuDNN-modelled accounting.

    The convolution itself goes through the im2col/GEMM oracles (explicit
    algorithm) or the direct reference (implicit ones) — numerically
    identical; the counters/timing come from the traffic model.
    """
    spec = params.spec
    if ifm.shape != spec.ifm.shape:
        raise ShapeError(f"{spec.name}: IFM shape {ifm.shape} != {spec.ifm.shape}")
    if spec.kind is ConvKind.DEPTHWISE:
        acc = depthwise_via_im2col(ifm, params.weights, spec.stride, spec.padding)
    elif spec.kind is ConvKind.POINTWISE:
        w4 = params.weights.reshape(spec.out_channels, spec.in_channels, 1, 1)
        acc = conv_via_im2col(ifm, w4, spec.stride, 0)
    else:
        acc = (
            conv_via_im2col(ifm, params.weights, spec.stride, spec.padding)
            if algo is CudnnAlgo.GEMM
            else conv2d_standard(ifm, params.weights, spec.stride, spec.padding)
        )
    epi = params.epilogue
    if spec.dtype is DType.INT8:
        x = acc.astype(np.float64) * epi.dequant_multiplier()
    else:
        x = acc.astype(np.float32)
    if epi.norm_scale is not None:
        x = apply_norm(x, epi.norm_scale, epi.norm_shift)
    x = apply_activation(x, epi.activation)
    if spec.dtype is DType.INT8:
        out = np.clip(np.rint(x / epi.out_scale.scale), -128, 127).astype(np.int8)
    else:
        out = x.astype(np.float32)
    counters = cudnn_counters(spec, algo, gemm_tile=gemm_tile)
    return out, counters, cudnn_timing(spec, algo, gpu, gemm_tile=gemm_tile)
