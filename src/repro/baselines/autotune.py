"""Deterministic random-search auto-tuner (the paper's "20 iterations").

The paper runs TVM auto-tuning "for 20 iterations with the hardware in the
loop" (§V-C).  This tuner reproduces that protocol against the analytic
timing models: sample up to N configurations without replacement from the
candidate space (seeded, hence reproducible), evaluate each, keep the best.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from ..errors import PlanError

__all__ = ["random_search"]

T = TypeVar("T")


def random_search(
    candidates: Sequence[T],
    evaluate: Callable[[T], float],
    iterations: int = 20,
    seed: int = 0,
) -> tuple[T, float]:
    """Sample up to ``iterations`` candidates and return the best (lowest cost).

    Sampling is without replacement; when the space is smaller than the
    budget the search is exhaustive (as TVM's would effectively be).
    """
    if not candidates:
        raise PlanError("random_search needs at least one candidate")
    rng = np.random.default_rng(seed)
    n = len(candidates)
    take = min(iterations, n)
    idx = rng.choice(n, size=take, replace=False)
    best_cfg: T | None = None
    best_cost = float("inf")
    for i in idx:
        cfg = candidates[int(i)]
        cost = float(evaluate(cfg))
        if cost < best_cost:
            best_cost = cost
            best_cfg = cfg
    assert best_cfg is not None  # take >= 1
    return best_cfg, best_cost
