"""Deterministic random-search auto-tuner (the paper's "20 iterations").

The paper runs TVM auto-tuning "for 20 iterations with the hardware in the
loop" (§V-C).  This tuner reproduces that protocol against the analytic
timing models: sample up to N configurations without replacement from the
candidate space (seeded, hence reproducible), evaluate each, keep the best.

It doubles as the search backend of :mod:`repro.tune` — the
measurement-feedback autotuner — which is why the result reports how many
candidates were actually evaluated (the tuning records persist that budget)
and why cost ties break deterministically: the lowest candidate *index*
wins, so two runs over the same candidate list can never disagree on the
winner even when the cost surface is flat.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Sequence, TypeVar

import numpy as np

from ..errors import PlanError

__all__ = ["SearchOutcome", "random_search"]

T = TypeVar("T")


class SearchOutcome(NamedTuple):
    """Winner of one search: configuration, its cost, evaluations spent."""

    config: object
    cost: float
    evaluated: int


def random_search(
    candidates: Sequence[T],
    evaluate: Callable[[T], float],
    iterations: int = 20,
    seed: int = 0,
) -> SearchOutcome:
    """Sample up to ``iterations`` candidates and return the best (lowest cost).

    Sampling is without replacement; when the space is smaller than the
    budget the search is exhaustive (as TVM's would effectively be).
    Candidates are evaluated in ascending index order and cost ties keep the
    lowest index, so the outcome is a pure function of (candidates,
    iterations, seed).
    """
    if not candidates:
        raise PlanError("random_search needs at least one candidate")
    if iterations < 1:
        raise PlanError(f"random_search needs iterations >= 1, got {iterations}")
    n = len(candidates)
    take = min(iterations, n)
    if take == n:
        idx = range(n)
    else:
        rng = np.random.default_rng(seed)
        idx = sorted(int(i) for i in rng.choice(n, size=take, replace=False))
    best_i = -1
    best_cost = float("inf")
    for i in idx:
        cost = float(evaluate(candidates[int(i)]))
        if cost < best_cost:
            best_cost = cost
            best_i = int(i)
    assert best_i >= 0  # take >= 1
    return SearchOutcome(config=candidates[best_i], cost=best_cost, evaluated=take)
