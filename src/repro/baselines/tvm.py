"""TVM-like end-to-end compiler baseline (paper §V-C).

The paper's strongest end-to-end comparator is TVM with the cuDNN backend:
it fuses each convolution with its trailing normalization/activation (but
never conv with conv), auto-tunes for 20 iterations, and applies graph-level
optimizations that our conv-conv-fused runtime does not (most relevantly,
folding elementwise residual adds into producer kernels — the reason the
paper sees TVM closest on complex-DAG models and our largest win on the
linear MobileNetV1, §VI-C).

``TvmCompiler`` reproduces that surface: per conv layer it tunes over
(algorithm x GEMM blocking) candidates with :func:`random_search`, and its
plan marks add-glue as free (fused).  ``TvmSession``-style execution lives in
:mod:`repro.runtime.session` via the shared step abstractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dtypes import DType
from ..errors import PlanError
from ..gpu.counters import AccessCounters
from ..gpu.roofline import time_kernel
from ..gpu.specs import GpuSpec
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvSpec
from .autotune import random_search
from .cudnn import CudnnAlgo, cudnn_timing

__all__ = ["TvmConvStep", "TvmGlueStep", "TvmPlan", "TvmCompiler"]


@dataclass(frozen=True)
class TvmConvStep:
    """One conv layer as TVM executes it: tuned cuDNN-backend kernel."""

    spec: ConvSpec
    algo: CudnnAlgo
    gemm_tile: int
    tuned_cost_s: float


@dataclass(frozen=True)
class TvmGlueStep:
    """A non-conv node; ``fused`` add-glue costs no extra traffic under TVM."""

    spec: GlueSpec
    fused: bool


@dataclass
class TvmPlan:
    """Compiled TVM execution plan for one model/GPU/precision."""

    model_name: str
    gpu: GpuSpec
    dtype: DType
    steps: list[TvmConvStep | TvmGlueStep] = field(default_factory=list)

    @property
    def conv_steps(self) -> list[TvmConvStep]:
        return [s for s in self.steps if isinstance(s, TvmConvStep)]

    def describe(self) -> str:
        lines = [f"TvmPlan[{self.model_name} on {self.gpu.name}, {self.dtype}]"]
        for s in self.steps:
            if isinstance(s, TvmConvStep):
                lines.append(
                    f"  CONV {s.spec.name}: {s.algo.value} tile={s.gemm_tile} "
                    f"t={s.tuned_cost_s * 1e6:.1f}us"
                )
            else:
                tag = "fused" if s.fused else "kernel"
                lines.append(f"  GLUE {s.spec.name} ({s.spec.op}, {tag})")
        return "\n".join(lines)


class TvmCompiler:
    """Graph compiler with conv+elementwise fusion and seeded auto-tuning."""

    #: GEMM output-tile blockings the tuner may pick.
    TILE_CANDIDATES = (32, 64, 128)

    def __init__(self, gpu: GpuSpec, tuning_iterations: int = 20, seed: int = 0) -> None:
        if tuning_iterations <= 0:
            raise PlanError("tuning_iterations must be positive")
        self.gpu = gpu
        self.tuning_iterations = tuning_iterations
        self.seed = seed

    def tune_layer(self, spec: ConvSpec) -> TvmConvStep:
        """Pick (algorithm, blocking) minimizing modelled latency."""
        candidates = [
            (algo, tile) for algo in CudnnAlgo for tile in self.TILE_CANDIDATES
        ]

        def evaluate(cfg: tuple[CudnnAlgo, int]) -> float:
            algo, tile = cfg
            return cudnn_timing(spec, algo, self.gpu, gemm_tile=tile).t_total_s

        # Per-layer seed keeps tuning deterministic yet layer-diverse.
        lseed = (self.seed * 1000003 + abs(hash(spec.name))) % (2**31)
        (algo, tile), cost, _evaluated = random_search(
            candidates, evaluate, self.tuning_iterations, seed=lseed
        )
        return TvmConvStep(spec=spec, algo=algo, gemm_tile=tile, tuned_cost_s=cost)

    def compile(self, graph: ModelGraph, dtype: DType | None = None) -> TvmPlan:
        """Compile a model: tune every conv, fuse elementwise glue."""
        graph.validate()
        plan = TvmPlan(
            model_name=graph.name,
            gpu=self.gpu,
            dtype=dtype if dtype is not None else DType.FP32,
        )
        for spec in graph.topological():
            if isinstance(spec, GlueSpec):
                # TVM's injective-fusion folds residual adds into producers.
                plan.steps.append(TvmGlueStep(spec=spec, fused=spec.op == "add"))
                continue
            conv = spec.with_dtype(dtype) if dtype is not None else spec
            plan.steps.append(self.tune_layer(conv))
        return plan

    # ---- analytic aggregate -----------------------------------------------------
    def plan_latency_s(self, plan: TvmPlan) -> float:
        """Modelled end-to-end latency: sum of tuned per-kernel times."""
        total = 0.0
        for s in plan.steps:
            if isinstance(s, TvmConvStep):
                total += s.tuned_cost_s
            elif not s.fused:
                total += _glue_time_s(s.spec, plan.dtype, self.gpu)
        return total


def _glue_time_s(spec: GlueSpec, dtype: DType, gpu: GpuSpec) -> float:
    """Memory-bound elementwise node: read inputs + write output once."""
    counters = AccessCounters()
    counters.kernel_launches = 1
    nbytes = spec.out_elements * dtype.nbytes
    counters.read("glue", 2 * nbytes if spec.op == "add" else nbytes)
    counters.write("glue", nbytes)
    return time_kernel(counters, gpu, dtype).t_total_s
