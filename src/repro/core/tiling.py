"""Tiling descriptors and the paper's overlap model (Eq. 1).

The paper tiles OFMs over GPU thread blocks (Output-Stationary / Local Weight
Stationary dataflow).  For depthwise convolutions the input windows of
neighbouring spatial tiles overlap by ``filter - stride`` rows/columns; those
halo elements are (re)loaded by every tile sharing them — Eq. 1 counts them:

``Overlap = (ceil(W/TileW) - 1) * (FilterW - S) * H
          + (ceil(H/TileH) - 1) * (FilterH - S) * W``

(the count is *per channel*; callers multiply by the channel depth).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError

__all__ = [
    "ceil_div",
    "overlap_elements",
    "input_extent",
    "tile_input_range",
    "PwTiling",
    "DwTiling",
]


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division, the ``ceil(x/y)`` of the paper's equations."""
    if b <= 0:
        raise ShapeError(f"ceil_div by non-positive {b}")
    return -(-a // b)


def overlap_elements(
    channel_w: int,
    channel_h: int,
    tile_w: int,
    tile_h: int,
    filter_w: int,
    filter_h: int,
    stride: int,
) -> int:
    """Per-channel overlapping input elements between spatial tiles (paper Eq. 1).

    Returns 0 when the filter is 1x1 with stride >= 1 (pointwise — windows
    never overlap) or when a single tile covers the whole axis.
    """
    if min(channel_w, channel_h, tile_w, tile_h, filter_w, filter_h, stride) <= 0:
        raise ShapeError("overlap_elements: all geometry arguments must be positive")
    w_overlap = max(filter_w - stride, 0)
    h_overlap = max(filter_h - stride, 0)
    n_w_bounds = ceil_div(channel_w, tile_w) - 1
    n_h_bounds = ceil_div(channel_h, tile_h) - 1
    return n_w_bounds * w_overlap * channel_h + n_h_bounds * h_overlap * channel_w


def input_extent(out_tile: int, kernel: int, stride: int) -> int:
    """Input elements along one axis needed to compute ``out_tile`` outputs."""
    if out_tile <= 0:
        raise ShapeError(f"non-positive output tile {out_tile}")
    return (out_tile - 1) * stride + kernel


def tile_input_range(
    tile_start_out: int, tile_len_out: int, kernel: int, stride: int, padding: int, in_size: int
) -> tuple[int, int]:
    """Half-open input index range (unpadded coords, clamped) for an output tile.

    Used by the simulated kernels to know which global-memory rows/cols a
    thread block actually loads; clamping models the zero-padding border that
    is never fetched from DRAM.
    """
    lo = tile_start_out * stride - padding
    hi = (tile_start_out + tile_len_out - 1) * stride - padding + kernel
    return max(lo, 0), min(hi, in_size)


@dataclass(frozen=True)
class PwTiling:
    """Tiling of a pointwise layer: ``tile_m`` filters x ``tile_hw`` pixels.

    The channel (reduction) dimension is never split — the OS-LWS assumption
    that all inputs of one output element live in the same tile (paper §IV-A).
    """

    tile_m: int
    tile_hw: int

    def __post_init__(self) -> None:
        if self.tile_m <= 0 or self.tile_hw <= 0:
            raise ShapeError(f"non-positive PW tile ({self.tile_m},{self.tile_hw})")

    def num_filter_tiles(self, m: int) -> int:
        return ceil_div(m, self.tile_m)

    def num_spatial_tiles(self, out_hw: int) -> int:
        return ceil_div(out_hw, self.tile_hw)

    def num_ofm_tiles(self, m: int, out_hw: int) -> int:
        return self.num_filter_tiles(m) * self.num_spatial_tiles(out_hw)


@dataclass(frozen=True)
class DwTiling:
    """Tiling of a depthwise layer: ``tile_c`` channels x ``tile_h x tile_w`` pixels.

    Depthwise filters are tiny (KhxKw per channel) and are never split across
    their spatial extent (paper §IV-A): a whole filter slice is resident per SM.
    """

    tile_c: int
    tile_h: int
    tile_w: int

    def __post_init__(self) -> None:
        if self.tile_c <= 0 or self.tile_h <= 0 or self.tile_w <= 0:
            raise ShapeError(
                f"non-positive DW tile ({self.tile_c},{self.tile_h},{self.tile_w})"
            )

    def num_channel_tiles(self, c: int) -> int:
        return ceil_div(c, self.tile_c)

    def num_spatial_tiles(self, out_h: int, out_w: int) -> int:
        return ceil_div(out_h, self.tile_h) * ceil_div(out_w, self.tile_w)

    def num_ofm_tiles(self, c: int, out_h: int, out_w: int) -> int:
        return self.num_channel_tiles(c) * self.num_spatial_tiles(out_h, out_w)
