"""Core primitives: dtypes, reference operators, tiling math, quantization, FCM taxonomy."""

from .chain import FusedChain, chain_fcm_type, composed_receptive_field
from .dtypes import DType
from .fcm import FcmType, candidate_fcm_types, fcm_is_redundant
from .ops import (
    ACTIVATIONS,
    apply_activation,
    apply_norm,
    conv2d_depthwise,
    conv2d_pointwise,
    conv2d_standard,
    fold_batchnorm,
    out_dim,
)
from .quantize import (
    QuantParams,
    choose_scale,
    dequantize,
    dp4a_dot,
    pack_int8x4,
    quantize,
    requantize,
    unpack_int8x4,
)
from .tensor import FeatureMapSpec, TensorSpec
from .tiling import (
    DwTiling,
    PwTiling,
    ceil_div,
    input_extent,
    overlap_elements,
    tile_input_range,
)

__all__ = [
    "DType",
    "FusedChain",
    "chain_fcm_type",
    "composed_receptive_field",
    "FcmType",
    "candidate_fcm_types",
    "fcm_is_redundant",
    "ACTIVATIONS",
    "apply_activation",
    "apply_norm",
    "conv2d_depthwise",
    "conv2d_pointwise",
    "conv2d_standard",
    "fold_batchnorm",
    "out_dim",
    "QuantParams",
    "choose_scale",
    "dequantize",
    "dp4a_dot",
    "pack_int8x4",
    "quantize",
    "requantize",
    "unpack_int8x4",
    "FeatureMapSpec",
    "TensorSpec",
    "DwTiling",
    "PwTiling",
    "ceil_div",
    "input_extent",
    "overlap_elements",
    "tile_input_range",
]
