"""FusedChain IR: an arbitrary-length run of DW/PW convolutions fused as one kernel.

The paper's FCMs fuse exactly two convolutions; its GMA cost model extends
naturally to longer chains (cross-layer reuse work fuses three and more
layers to keep intermediates on-chip).  A :class:`FusedChain` is the ordered
list of convolution stages one fused kernel executes: every intermediate
feature map lives in shared-memory commBuffers and never touches global
memory.  Each stage keeps its own epilogue (norm + activation +
requantization), so a chain of N convolutions folds up to ``3N`` layers.

Legality mirrors the pairwise rules (paper §III) stage by stage:

* every stage is DW or PW (standard convolutions are never chain members);
* adjacent stages must connect shape- and dtype-wise;
* DW->DW adjacency is rejected (it never occurs in the paper's networks);
* only the *first* stage may read a strided/halo'd window straight from
  global memory without recomputation — any later DW stage forces halo
  recomputation of every stage before it, exactly the PWDW_R redundancy
  generalized.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError, UnsupportedError
# repro: allow[RPR004] chain IR composes ConvSpec geometry; the core<->ir
# split predates chain fusion and ir.layers never imports back into core.chain
from ..ir.layers import ConvKind, ConvSpec
from .fcm import FcmType

__all__ = ["FusedChain", "chain_fcm_type", "composed_receptive_field"]

#: Adjacent stage kinds a fused chain may contain (DW->DW is illegal).
_LEGAL_ADJACENT = {("dw", "pw"), ("pw", "dw"), ("pw", "pw")}


@dataclass(frozen=True)
class FusedChain:
    """An ordered, shape-checked run of DW/PW conv stages fused into one kernel."""

    specs: tuple[ConvSpec, ...]

    def __post_init__(self) -> None:
        if len(self.specs) < 2:
            raise ShapeError("a fused chain needs at least two stages")
        for spec in self.specs:
            if spec.kind not in (ConvKind.DEPTHWISE, ConvKind.POINTWISE):
                raise ShapeError(
                    f"chain stage {spec.name!r} is {spec.kind.value}; "
                    "only DW/PW layers fuse"
                )
        first = self.specs[0]
        for prev, cur in zip(self.specs, self.specs[1:]):
            if (prev.kind.short, cur.kind.short) not in _LEGAL_ADJACENT:
                raise ShapeError(
                    f"illegal {prev.kind.short}->{cur.kind.short} adjacency "
                    f"({prev.name}->{cur.name})"
                )
            if (prev.out_channels, prev.out_h, prev.out_w) != (
                cur.in_channels,
                cur.in_h,
                cur.in_w,
            ):
                raise ShapeError(
                    f"chain: {prev.name} output does not feed {cur.name} input"
                )
            if prev.dtype is not first.dtype or cur.dtype is not first.dtype:
                raise ShapeError("all chain stages must share one precision")

    # ---- structure ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs)

    @property
    def length(self) -> int:
        return len(self.specs)

    @property
    def first(self) -> ConvSpec:
        return self.specs[0]

    @property
    def last(self) -> ConvSpec:
        return self.specs[-1]

    @property
    def dtype(self):
        return self.specs[0].dtype

    @property
    def kinds(self) -> str:
        """Stage kinds as a label, e.g. ``'pw-dw-pw'``."""
        return "-".join(s.kind.short for s in self.specs)

    @property
    def layer_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    @property
    def name(self) -> str:
        return "+".join(self.layer_names)

    @property
    def macs(self) -> int:
        """Useful MACs: every stage output computed exactly once."""
        return sum(s.macs for s in self.specs)

    @property
    def weights_elements(self) -> int:
        return sum(s.weights_elements for s in self.specs)

    @property
    def weights_bytes(self) -> int:
        return sum(s.weights_bytes for s in self.specs)

    @property
    def has_interior_halo(self) -> bool:
        """Whether any non-first stage is a DW (forcing halo recomputation)."""
        return any(s.kind is ConvKind.DEPTHWISE for s in self.specs[1:])

    def sub(self, start: int, stop: int) -> "FusedChain":
        """Sub-chain ``specs[start:stop]`` (must keep >= 2 stages)."""
        return FusedChain(self.specs[start:stop])

    def describe(self) -> str:
        head = self.specs[0]
        return (
            f"chain[{self.kinds}] {self.name} "
            f"{head.in_channels}ch {head.in_h}x{head.in_w} {head.dtype}"
        )


def chain_fcm_type(chain: FusedChain, redundant: bool = False) -> FcmType:
    """The pairwise FCM type a length-2 chain corresponds to.

    ``redundant`` selects PWDW_R over PWDW for the ambiguous pw->dw pair
    (the pairwise taxonomy distinguishes spatially-tiled from untiled).
    """
    if chain.length != 2:
        raise UnsupportedError(
            f"chain of length {chain.length} has no pairwise FCM type"
        )
    pair = (chain.specs[0].kind.short, chain.specs[1].kind.short)
    if pair == ("dw", "pw"):
        return FcmType.DWPW
    if pair == ("pw", "dw"):
        return FcmType.PWDW_R if redundant else FcmType.PWDW
    return FcmType.PWPW


def composed_receptive_field(
    specs: tuple[ConvSpec, ...] | list[ConvSpec],
) -> tuple[int, int]:
    """Effective ``(kernel, stride)`` of a stage run, composed front to back.

    One output pixel of the run's last stage depends on a ``k_eff x k_eff``
    window of the run's input, and adjacent output pixels are ``s_eff`` input
    pixels apart — the standard receptive-field composition.  A single stage
    returns its own ``(kernel, stride)``; pure-PW runs return ``(1, 1)``
    (times the strides).
    """
    k_eff, jump = 1, 1
    for spec in specs:
        k_eff += (spec.kernel - 1) * jump
        jump *= spec.stride
    return k_eff, jump
