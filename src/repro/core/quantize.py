"""INT8 quantization utilities emulating the paper's dp4a-based kernels.

The paper's INT8 kernels use the ``dp4a`` CUDA intrinsic (4-way int8 dot
product, 32-bit accumulate) and pack every four int8 results into one 32-bit
word before writing to shared or global memory (paper §III-B).  This module
provides:

* symmetric per-tensor quantization (scale only, zero-point 0 — the standard
  inference scheme for dp4a kernels),
* int32-accumulating dot-product helpers (the dp4a emulation),
* 4-lane pack/unpack of int8 vectors into int32 words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError

__all__ = [
    "QuantParams",
    "choose_scale",
    "quantize",
    "dequantize",
    "requantize",
    "dp4a_dot",
    "pack_int8x4",
    "unpack_int8x4",
]

_INT8_MIN, _INT8_MAX = -128, 127


@dataclass(frozen=True)
class QuantParams:
    """Symmetric quantization parameters: ``real = scale * int8``."""

    scale: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.scale) or self.scale <= 0:
            raise ShapeError(f"quantization scale must be positive, got {self.scale}")


def choose_scale(x: np.ndarray) -> QuantParams:
    """Pick the symmetric scale covering the array's dynamic range.

    ``scale = max|x| / 127``; degenerate all-zero inputs get scale 1 so the
    mapping stays invertible.
    """
    amax = float(np.max(np.abs(x))) if x.size else 0.0
    return QuantParams(scale=amax / _INT8_MAX if amax > 0 else 1.0)


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize fp32 data to int8 with round-to-nearest and saturation."""
    q = np.rint(np.asarray(x, dtype=np.float64) / params.scale)
    return np.clip(q, _INT8_MIN, _INT8_MAX).astype(np.int8)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map int8 data back to fp32."""
    return q.astype(np.float32) * np.float32(params.scale)


def requantize(
    acc: np.ndarray, in_params: QuantParams, w_params: QuantParams, out_params: QuantParams
) -> np.ndarray:
    """Rescale an int32 accumulator to the int8 output grid.

    ``acc`` holds sums of ``q_in * q_w`` products, so its real value is
    ``acc * in_scale * w_scale``; dividing by the output scale and rounding
    gives the int8 result — exactly what the epilogue of a dp4a kernel does.
    """
    if not np.issubdtype(acc.dtype, np.integer):
        raise ShapeError(f"requantize expects an integer accumulator, got {acc.dtype}")
    multiplier = in_params.scale * w_params.scale / out_params.scale
    q = np.rint(acc.astype(np.float64) * multiplier)
    return np.clip(q, _INT8_MIN, _INT8_MAX).astype(np.int8)


def dp4a_dot(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Dot product of int8 operands with int32 accumulation along ``axis``.

    Numerically identical to a chain of dp4a intrinsics (which never overflow
    for realistic reduction depths: 127*127*K fits int32 for K < ~133000).
    """
    if a.dtype != np.int8 or b.dtype != np.int8:
        raise ShapeError(f"dp4a_dot expects int8 operands, got {a.dtype}, {b.dtype}")
    return np.sum(a.astype(np.int32) * b.astype(np.int32), axis=axis, dtype=np.int32)


def pack_int8x4(x: np.ndarray) -> np.ndarray:
    """Pack a flat int8 array (length divisible by 4) into int32 words.

    Models the paper's result packing: "every four results are grouped into
    one 32-bit integer before writing to any buffer".
    """
    flat = np.ascontiguousarray(x, dtype=np.int8).reshape(-1)
    if flat.size % 4 != 0:
        raise ShapeError(f"pack_int8x4 needs a multiple of 4 elements, got {flat.size}")
    return flat.view(np.int32)


def unpack_int8x4(words: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_int8x4`, restoring the original shape."""
    flat = np.ascontiguousarray(words, dtype=np.int32).view(np.int8)
    expected = int(np.prod(shape))
    if flat.size != expected:
        raise ShapeError(f"unpack_int8x4: {flat.size} elements cannot fill shape {shape}")
    return flat.reshape(shape)
