"""Fused Convolutional Module (FCM) taxonomy and fusion legality rules.

Paper §III: an FCM fuses two convolutional layers (each with its trailing
normalization + activation, so up to six layers) into one GPU kernel.  The
possible combinations found in DSC and inverted-residual networks are:

* ``DWPW``    — depthwise followed by pointwise (a DSC block).
* ``PWDW``    — pointwise followed by depthwise, *without* spatial tiling of
  the intermediate, hence no redundant computation.
* ``PWDW_R``  — the same pair *with* spatial tiling; intermediate halo values
  must be redundantly recomputed by neighbouring thread blocks.
* ``PWPW``    — two back-to-back pointwise layers (inverted-residual seams).

The second layer of a pair determines the structural constraint: a PW consumer
needs *all* channels of the intermediate at one pixel, a DW consumer needs a
spatial neighbourhood of *its own* channel.
"""

from __future__ import annotations

import enum

from ..errors import UnsupportedError

__all__ = ["FcmType", "candidate_fcm_types", "fcm_is_redundant"]


class FcmType(enum.Enum):
    """The four fused module types of paper Fig. 4 (+ the _R variant of Fig. 3b)."""

    DWPW = "dwpw"
    PWDW = "pwdw"
    PWDW_R = "pwdw_r"
    PWPW = "pwpw"

    @property
    def first_kind(self) -> str:
        """Kind ('dw'/'pw') of the producer layer."""
        return "dw" if self in (FcmType.DWPW,) else "pw"

    @property
    def second_kind(self) -> str:
        """Kind ('dw'/'pw') of the consumer layer."""
        return "pw" if self in (FcmType.DWPW, FcmType.PWPW) else "dw"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def candidate_fcm_types(first_kind: str, second_kind: str) -> tuple[FcmType, ...]:
    """FCM types that can implement a ``first -> second`` convolution pair.

    A PW->DW pair has two implementations (tiled with redundancy, or
    untiled without); the other pairs have one each.  DW->DW never occurs in
    the paper's networks and is rejected.
    """
    pair = (first_kind, second_kind)
    if pair == ("dw", "pw"):
        return (FcmType.DWPW,)
    if pair == ("pw", "dw"):
        return (FcmType.PWDW, FcmType.PWDW_R)
    if pair == ("pw", "pw"):
        return (FcmType.PWPW,)
    raise UnsupportedError(f"no FCM fuses a {first_kind}->{second_kind} pair")


def fcm_is_redundant(fcm_type: FcmType) -> bool:
    """Whether the module recomputes intermediate halo values (paper Table II)."""
    return fcm_type is FcmType.PWDW_R
