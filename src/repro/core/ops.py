"""Reference (non-tiled) convolution and epilogue operators.

These are the *golden* implementations every simulated GPU kernel is tested
against.  They are fully vectorized NumPy (``sliding_window_view`` + einsum):
no Python-level loops over pixels, views instead of copies wherever possible,
per the HPC guidance for this repo.

Layout convention: single-image inference, channels-first ``(C, H, W)``.
Weights are ``(M, C, KH, KW)`` for standard convolution, ``(C, KH, KW)`` for
depthwise (one filter slice per channel) and ``(M, C)`` for pointwise
(1x1 filters spanning all channels).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ShapeError

__all__ = [
    "out_dim",
    "conv2d_standard",
    "conv2d_depthwise",
    "conv2d_pointwise",
    "fold_batchnorm",
    "apply_norm",
    "apply_activation",
    "ACTIVATIONS",
]


def out_dim(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis.

    Standard "floor" convolution arithmetic:
    ``out = floor((size + 2*padding - kernel) / stride) + 1``.
    """
    if size <= 0 or kernel <= 0 or stride <= 0 or padding < 0:
        raise ShapeError(
            f"invalid conv geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    span = size + 2 * padding - kernel
    if span < 0:
        raise ShapeError(f"kernel {kernel} larger than padded input {size + 2 * padding}")
    return span // stride + 1


def _pad_spatial(ifm: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) axes of a ``(C, H, W)`` tensor."""
    if padding == 0:
        return ifm
    return np.pad(ifm, ((0, 0), (padding, padding), (padding, padding)))


def _windows(ifm: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Strided view of all ``(kh, kw)`` input windows: ``(C, Ho, Wo, KH, KW)``."""
    x = _pad_spatial(ifm, padding)
    win = sliding_window_view(x, (kh, kw), axis=(1, 2))
    return win[:, ::stride, ::stride]


def conv2d_standard(
    ifm: np.ndarray, weights: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Direct standard convolution.

    Args:
        ifm: input feature maps, shape ``(C, H, W)``.
        weights: filters, shape ``(M, C, KH, KW)``.
        stride: spatial stride (same for H and W).
        padding: symmetric zero padding.

    Returns:
        OFMs of shape ``(M, Ho, Wo)``.  Integer inputs accumulate in int32,
        floating inputs in float32.
    """
    if ifm.ndim != 3 or weights.ndim != 4:
        raise ShapeError(f"expected (C,H,W) and (M,C,KH,KW), got {ifm.shape}, {weights.shape}")
    if ifm.shape[0] != weights.shape[1]:
        raise ShapeError(f"channel mismatch: ifm C={ifm.shape[0]}, weights C={weights.shape[1]}")
    win = _windows(ifm, weights.shape[2], weights.shape[3], stride, padding)
    acc = np.int32 if np.issubdtype(ifm.dtype, np.integer) else np.float32
    # optimize=True lowers the reduction to a BLAS contraction — an order of
    # magnitude over the naive einsum loop on stem-sized convolutions, which
    # otherwise dominates the fast engine's end-to-end floor.
    return np.einsum(
        "chwkl,mckl->mhw",
        win.astype(acc, copy=False),
        weights.astype(acc, copy=False),
        optimize=True,
    )


def conv2d_depthwise(
    ifm: np.ndarray, weights: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Depthwise convolution: one ``(KH, KW)`` filter slice per input channel.

    Args:
        ifm: ``(C, H, W)`` input.
        weights: ``(C, KH, KW)`` filter slices.

    Returns:
        OFMs of shape ``(C, Ho, Wo)`` (depthwise preserves the channel count).
    """
    if ifm.ndim != 3 or weights.ndim != 3:
        raise ShapeError(f"expected (C,H,W) and (C,KH,KW), got {ifm.shape}, {weights.shape}")
    if ifm.shape[0] != weights.shape[0]:
        raise ShapeError(f"channel mismatch: ifm C={ifm.shape[0]}, weights C={weights.shape[0]}")
    win = _windows(ifm, weights.shape[1], weights.shape[2], stride, padding)
    acc = np.int32 if np.issubdtype(ifm.dtype, np.integer) else np.float32
    return np.einsum(
        "chwkl,ckl->chw", win.astype(acc, copy=False), weights.astype(acc, copy=False)
    )


def conv2d_pointwise(ifm: np.ndarray, weights: np.ndarray, stride: int = 1) -> np.ndarray:
    """Pointwise (1x1) convolution across the channel dimension.

    Args:
        ifm: ``(C, H, W)`` input.
        weights: ``(M, C)`` — each of the M filters spans all C channels.
        stride: spatial subsampling (1x1 filters need no padding/halo).

    Returns:
        OFMs of shape ``(M, Ho, Wo)``.
    """
    if ifm.ndim != 3 or weights.ndim != 2:
        raise ShapeError(f"expected (C,H,W) and (M,C), got {ifm.shape}, {weights.shape}")
    if ifm.shape[0] != weights.shape[1]:
        raise ShapeError(f"channel mismatch: ifm C={ifm.shape[0]}, weights C={weights.shape[1]}")
    x = ifm[:, ::stride, ::stride]
    acc = np.int32 if np.issubdtype(ifm.dtype, np.integer) else np.float32
    return np.tensordot(
        weights.astype(acc, copy=False), x.astype(acc, copy=False), axes=([1], [0])
    )


def fold_batchnorm(
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold inference-time batch-norm statistics into a per-channel affine.

    Returns ``(scale, shift)`` such that ``norm(x) == scale * x + shift``.
    This is the standard offline transformation the paper's kernels rely on:
    the normalization layer of an FCM becomes one FMA in the epilogue.
    """
    inv_std = 1.0 / np.sqrt(var + eps)
    scale = gamma * inv_std
    shift = beta - mean * scale
    return scale.astype(np.float32), shift.astype(np.float32)


def apply_norm(x: np.ndarray, scale: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Apply a folded per-channel affine normalization to ``(C, H, W)`` data."""
    if x.shape[0] != scale.shape[0] or x.shape[0] != shift.shape[0]:
        raise ShapeError(f"norm params of {scale.shape} do not match {x.shape}")
    return x * scale[:, None, None] + shift[:, None, None]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def _relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0, 6)


def _hswish(x: np.ndarray) -> np.ndarray:
    return x * np.clip(x + 3.0, 0.0, 6.0) / 6.0


def _gelu(x: np.ndarray) -> np.ndarray:
    # tanh approximation, standard in ViT inference kernels
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def _identity(x: np.ndarray) -> np.ndarray:
    return x


#: Activation registry: name -> elementwise callable on fp32 arrays.
ACTIVATIONS = {
    "relu": _relu,
    "relu6": _relu6,
    "hswish": _hswish,
    "gelu": _gelu,
    "identity": _identity,
    None: _identity,
}


def apply_activation(x: np.ndarray, name: str | None) -> np.ndarray:
    """Apply a named activation (see :data:`ACTIVATIONS`)."""
    try:
        fn = ACTIVATIONS[name]
    except KeyError:
        raise ShapeError(f"unknown activation {name!r}") from None
    return fn(x)
