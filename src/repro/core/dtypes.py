"""Data types supported by the kernels and cost models.

The paper evaluates two inference precisions:

* **FP32** — the original training precision; one multiply-accumulate (MAC)
  per CUDA-core FMA per cycle.
* **INT8** — the common quantized-inference precision; the ``dp4a`` CUDA
  intrinsic performs a four-way int8 dot product with 32-bit accumulation,
  i.e. four MACs per core per cycle, and each element is a single byte.

Changing the element width changes which tiles fit in L1/shared memory, which
is why FusePlanner picks *different* fusions for FP32 vs INT8 (paper Table II).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["DType"]


class DType(enum.Enum):
    """Inference element type, with the properties the cost models need."""

    FP32 = "fp32"
    INT8 = "int8"

    @property
    def nbytes(self) -> int:
        """Bytes per element as stored in global/shared memory."""
        return 4 if self is DType.FP32 else 1

    @property
    def np_dtype(self) -> np.dtype:
        """NumPy storage dtype used by the functional simulator."""
        return np.dtype(np.float32) if self is DType.FP32 else np.dtype(np.int8)

    @property
    def acc_dtype(self) -> np.dtype:
        """Accumulator dtype (FP32 accumulates in fp32, INT8 in int32)."""
        return np.dtype(np.float32) if self is DType.FP32 else np.dtype(np.int32)

    @property
    def macs_per_core_cycle(self) -> int:
        """MACs one CUDA core retires per cycle (dp4a gives INT8 a 4x ratio)."""
        return 1 if self is DType.FP32 else 4

    @property
    def pack_factor(self) -> int:
        """Elements packed per 32-bit word when writing buffers (paper §III-B)."""
        return 1 if self is DType.FP32 else 4

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
