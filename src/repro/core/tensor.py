"""Lightweight tensor *descriptors* used by the IR and the cost models.

The planner reasons about sizes without materializing data, while the
functional simulator carries real NumPy arrays.  :class:`TensorSpec` is the
shared vocabulary: a shape plus a :class:`~repro.core.dtypes.DType`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .dtypes import DType

__all__ = ["TensorSpec", "FeatureMapSpec"]


@dataclass(frozen=True)
class TensorSpec:
    """Shape + dtype descriptor of any buffer (weights, FMs, commBuffer)."""

    shape: tuple[int, ...]
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if not self.shape or any(d <= 0 for d in self.shape):
            raise ShapeError(f"non-positive dimension in shape {self.shape}")

    @property
    def num_elements(self) -> int:
        """Total element count."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Size in bytes at the spec's precision."""
        return self.num_elements * self.dtype.nbytes

    def with_dtype(self, dtype: DType) -> "TensorSpec":
        """Same shape at a different precision (used for FP32->INT8 sweeps)."""
        return TensorSpec(self.shape, dtype)

    def zeros(self) -> np.ndarray:
        """Materialize a zero array matching the spec."""
        return np.zeros(self.shape, dtype=self.dtype.np_dtype)


@dataclass(frozen=True)
class FeatureMapSpec:
    """A ``(C, H, W)`` feature-map descriptor with convenience accessors."""

    channels: int
    height: int
    width: int
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ShapeError(
                f"non-positive feature map dims ({self.channels},{self.height},{self.width})"
            )

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.channels, self.height, self.width)

    @property
    def hw(self) -> int:
        """Spatial extent (H*W) — the paper's ``HW`` postfix."""
        return self.height * self.width

    @property
    def num_elements(self) -> int:
        return self.channels * self.hw

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype.nbytes

    def as_tensor(self) -> TensorSpec:
        return TensorSpec(self.shape, self.dtype)
