"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a name-keyed collection of instruments whose
exposition order is canonical (names sorted, label sets sorted), so the
Prometheus text rendered by :func:`repro.obs.export.prometheus_text` is
byte-stable across identical replays.  Histograms use *fixed* bucket
boundaries declared at creation time — never data-derived — so two runs
observing the same values produce identical bucket vectors.

:data:`NULL_METRICS` is the zero-cost default registry: every instrument
it hands out is a shared no-op, mirroring :data:`repro.obs.trace.NULL_TRACER`.
"""

from __future__ import annotations

import math
import re

from repro.errors import PlanError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "resolve_metrics",
    "QUEUE_WAIT_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
]

#: Fixed queue-wait buckets (seconds): 10 µs .. 100 ms, 1-3-10 ladder.
QUEUE_WAIT_BUCKETS_S = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1)

#: Fixed batch-size buckets (requests per flushed batch), powers of two.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: dict) -> tuple:
    """Canonical label identity: sorted (name, value-as-string) pairs."""
    for name in labels:
        if not _LABEL_RE.match(name):
            raise PlanError(f"invalid metric label name: {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing sum, one series per label set."""

    kind = "counter"
    enabled = True

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.series: dict = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise PlanError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0.0)


class Gauge:
    """Last-write-wins instantaneous value, one series per label set."""

    kind = "gauge"
    enabled = True

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.series: dict = {}

    def set(self, value: float, **labels) -> None:
        self.series[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0.0)


class _HistogramSeries:
    """Cumulative bucket counts + sum/count for one label set."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Fixed-boundary histogram with Prometheus-style cumulative buckets.

    ``buckets`` are the finite upper bounds (strictly increasing); the
    implicit ``+Inf`` bucket is the series count.  Bucket counts are stored
    cumulatively — ``bucket_counts[i]`` is the number of observations
    ``<= buckets[i]`` — matching the exposition format directly.
    """

    kind = "histogram"
    enabled = True

    def __init__(self, name: str, buckets: tuple, help: str = "") -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise PlanError(f"histogram {name}: needs at least one bucket bound")
        for bound in bounds:
            if not math.isfinite(bound):
                raise PlanError(f"histogram {name}: non-finite bucket bound {bound}")
        if any(lo >= hi for lo, hi in zip(bounds, bounds[1:])):
            raise PlanError(f"histogram {name}: bucket bounds must strictly increase")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.series: dict = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _HistogramSeries(len(self.buckets))
        value = float(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
        series.sum += value
        series.count += 1


class MetricsRegistry:
    """Get-or-create registry; re-registration with a different shape fails."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if not _NAME_RE.match(name):
            raise PlanError(f"invalid metric name: {name!r}")
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise PlanError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {cls.kind}"
                )
            want = kwargs.get("buckets")
            if want is not None and existing.buckets != tuple(float(b) for b in want):
                raise PlanError(f"histogram {name!r} re-registered with different buckets")
            return existing
        instrument = cls(name, help=help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, buckets: tuple, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def families(self) -> list:
        """All instruments in canonical (name-sorted) exposition order."""
        return [self._instruments[name] for name in sorted(self._instruments)]


class _NullInstrument:
    """Shared no-op counter/gauge/histogram (all mutators discard)."""

    __slots__ = ()
    kind = "null"
    enabled = False
    name = "null"
    help = ""
    series: dict = {}
    buckets: tuple = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        return None

    def set(self, value: float, **labels) -> None:
        return None

    def observe(self, value: float, **labels) -> None:
        return None

    def value(self, **labels) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The zero-cost default registry: hands out one shared no-op instrument."""

    enabled = False

    def __len__(self) -> int:
        return 0

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets: tuple, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> list:
        return []


#: The shared no-op registry every component defaults to.
NULL_METRICS = NullMetrics()


def resolve_metrics(metrics: "MetricsRegistry | NullMetrics | None"):
    """``None`` -> the shared :data:`NULL_METRICS` (the house resolver idiom)."""
    return NULL_METRICS if metrics is None else metrics
