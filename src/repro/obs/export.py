"""Canonical exporters: Chrome-trace JSON and Prometheus text exposition.

Both renderers are byte-stable: identical tracer/registry contents always
serialize to identical bytes (sorted keys, sorted label sets, compact
separators, a total event order with the record sequence number as the
final tiebreaker).  That is what makes the replay-twice determinism tests
meaningful — any nondeterminism upstream shows up as a byte diff here.

:func:`record_session_report` is the bridge from the runtime's
:class:`~repro.runtime.session.SessionReport` accounting to the obs layer:
it lays the per-step kernel records end-to-end on the execution lane as
explicit-interval spans (GMA / MAC / roofline attrs attached) and bumps
the serving counters.  It duck-types the report so ``repro.obs`` keeps a
single dependency (``repro.errors``) and stays at the bottom of
``LAYER_DEPS``.
"""

from __future__ import annotations

import json

__all__ = [
    "chrome_trace_json",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "record_session_report",
]


def _json_safe(value):
    """Coerce an attribute value to a JSON-serializable scalar."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _args(attrs: tuple) -> dict:
    return {str(k): _json_safe(v) for k, v in attrs}


def _us(t_s: float) -> float:
    """Seconds -> microseconds, rounded so ties don't depend on float noise."""
    return round(t_s * 1e6, 4)


def chrome_trace_json(tracer) -> str:
    """Render a tracer as canonical Chrome-trace / Perfetto JSON.

    Process lanes (span/instant ``pid`` strings, e.g. worker names) map to
    integer pids in sorted-name order, with ``process_name`` metadata
    events carrying the human-readable names.  Events sort by
    ``(ts, pid, tid, seq)`` — a total order, so the output is byte-stable.
    """
    pid_names = sorted(
        {rec.pid for rec in tracer.spans} | {rec.pid for rec in tracer.instants}
    )
    pid_of = {name: i + 1 for i, name in enumerate(pid_names)}

    events = []
    for name in pid_names:
        events.append(
            (
                (-1.0, pid_of[name], 0, -1),
                {
                    "args": {"name": name},
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid_of[name],
                    "tid": 0,
                },
            )
        )
    for rec in tracer.spans:
        pid = pid_of[rec.pid]
        events.append(
            (
                (_us(rec.start_s), pid, rec.tid, rec.seq),
                {
                    "args": _args(rec.attrs),
                    "cat": "repro",
                    "dur": max(0.0, _us(rec.end_s) - _us(rec.start_s)),
                    "name": rec.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": rec.tid,
                    "ts": _us(rec.start_s),
                },
            )
        )
    for rec in tracer.instants:
        pid = pid_of[rec.pid]
        events.append(
            (
                (_us(rec.t_s), pid, 0, rec.seq),
                {
                    "args": _args(rec.attrs),
                    "cat": "repro",
                    "name": rec.name,
                    "ph": "i",
                    "pid": pid,
                    "s": "p",
                    "tid": 0,
                    "ts": _us(rec.t_s),
                },
            )
        )
    events.sort(key=lambda pair: pair[0])
    doc = {"displayTimeUnit": "ms", "traceEvents": [event for _, event in events]}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer, path) -> str:
    """Write the canonical Chrome-trace JSON (trailing newline) to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(tracer))
        fh.write("\n")
    return str(path)


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats render as integers."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_le(bound: float) -> str:
    return _fmt(bound)


def _label_str(pairs: tuple, extra: "tuple | None" = None) -> str:
    items = list(pairs) + (list(extra) if extra else [])
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def prometheus_text(metrics) -> str:
    """Render a registry in Prometheus text exposition format.

    Families appear in name-sorted order, series in sorted-label order,
    histogram buckets cumulative with the ``+Inf`` bucket plus ``_sum`` and
    ``_count`` — the canonical layout, byte-stable for identical contents.
    """
    lines = []
    for fam in metrics.families():
        if fam.help:
            lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        if fam.kind == "histogram":
            for key in sorted(fam.series):
                series = fam.series[key]
                for bound, count in zip(fam.buckets, series.bucket_counts):
                    labels = _label_str(key, (("le", _fmt_le(bound)),))
                    lines.append(f"{fam.name}_bucket{labels} {count}")
                labels = _label_str(key, (("le", "+Inf"),))
                lines.append(f"{fam.name}_bucket{labels} {series.count}")
                lines.append(f"{fam.name}_sum{_label_str(key)} {_fmt(series.sum)}")
                lines.append(f"{fam.name}_count{_label_str(key)} {series.count}")
        else:
            for key in sorted(fam.series):
                lines.append(f"{fam.name}{_label_str(key)} {_fmt(fam.series[key])}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(metrics, path) -> str:
    """Write the Prometheus text exposition to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(metrics))
    return str(path)


def record_session_report(
    tracer, metrics, report, *, start_s: float, pid: str, tid: int = 0, **attrs
) -> None:
    """Emit one executed batch (a ``SessionReport``) onto the obs layer.

    Lays a ``batch.execute`` interval covering the report's latency on the
    ``(pid, tid)`` execution lane, with one child interval per kernel step
    placed end-to-end inside it (kind / roofline bound / GMA bytes / MACs /
    energy attrs).  Extra keyword attrs (``batch_seq`` etc.) attach to the
    batch span.  Counter families aggregate totals per worker and model.
    """
    end_s = start_s + report.latency_s
    tracer.add_span(
        "batch.execute",
        start_s,
        end_s,
        pid=pid,
        tid=tid,
        model=report.model_name,
        dtype=str(report.dtype),
        batch_size=report.batch_size,
        gma_bytes=report.total_gma_bytes,
        kernel_launches=report.kernel_launches,
        energy_j=report.energy_j,
        **attrs,
    )
    t = start_s
    for step in report.records:
        tracer.add_span(
            step.name,
            t,
            t + step.time_s,
            pid=pid,
            tid=tid,
            kind=step.kind,
            bound=step.bound,
            gma_bytes=step.counters.total_bytes,
            macs=step.counters.macs,
            energy_j=step.energy_j,
        )
        t += step.time_s

    model = report.model_name
    metrics.counter(
        "repro_batches_total", help="Batches executed"
    ).inc(worker=pid, model=model)
    metrics.counter(
        "repro_images_total", help="Images inferred"
    ).inc(report.batch_size, worker=pid, model=model)
    metrics.counter(
        "repro_exec_seconds_total", help="Simulated device-execution seconds"
    ).inc(report.latency_s, worker=pid)
    metrics.counter(
        "repro_energy_joules_total", help="Simulated execution energy"
    ).inc(report.energy_j, worker=pid)
    metrics.counter(
        "repro_gma_bytes_total", help="Global-memory-access bytes"
    ).inc(report.total_gma_bytes, worker=pid)
    metrics.counter(
        "repro_kernel_launches_total", help="Kernel launches"
    ).inc(report.kernel_launches, worker=pid)
