"""Deterministic tracing: nested spans timestamped by an injected clock.

A :class:`Tracer` records :class:`SpanRecord` intervals and
:class:`InstantRecord` point events against whatever clock callable it is
handed — the serving replays bind their shared
:class:`~repro.serve.loadgen.FakeClock`, so two identical replays produce
byte-identical traces (see :func:`repro.obs.export.chrome_trace_json`).
There is deliberately no wall-clock default: a tracer without a clock
stamps everything at ``t=0`` rather than reading host time, keeping the
whole layer inside the injectable-clock discipline (RPR001).

Spans are opened **only** through the ``with tracer.span(...)`` context
manager (enforced by analysis rule RPR007 — no manual start/end pairs can
leak an unbalanced span).  Work whose true interval is computed by a
discrete-event loop *after* the fact — device occupancy, per-step kernel
timelines — is recorded with :meth:`Tracer.add_span`, which takes explicit
start/end instants and never touches the clock.

:data:`NULL_TRACER` (a :class:`NullTracer`) is the zero-cost default every
serving component falls back to: all methods are no-ops, so the hot path
with observability off is byte-identical to a build without it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = [
    "SpanRecord",
    "InstantRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "resolve_tracer",
]


def _attr_items(attrs: dict) -> tuple:
    """Canonical (sorted, tuple-frozen) attribute form for records."""
    return tuple(sorted(attrs.items()))


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named interval on a (pid, tid) lane."""

    seq: int  # creation order, the total-order tiebreaker for exports
    name: str
    start_s: float
    end_s: float
    pid: str  # process lane (worker name in fleet traces)
    tid: int  # thread lane (0 = execution, 1 = occupancy, 2+i = request i)
    depth: int  # nesting depth at open time (0 for add_span intervals)
    parent_seq: int  # seq of the enclosing open span, -1 for roots
    attrs: tuple = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class InstantRecord:
    """One point event (admission verdicts, routing, scale actions)."""

    seq: int
    name: str
    t_s: float
    pid: str
    attrs: tuple = ()


class Tracer:
    """Collects spans/instants against an injected clock (see module doc).

    Args:
        clock: zero-argument callable returning the current instant in
            seconds.  ``None`` (the default) stamps clock-read events at
            ``0.0``; replay harnesses re-bind their own
            :class:`~repro.serve.loadgen.FakeClock` via :attr:`clock`.
        pid: default process lane for records that don't name one.
    """

    enabled = True

    def __init__(
        self, clock: "Callable[[], float] | None" = None, *, pid: str = "repro"
    ) -> None:
        self.clock = clock
        self.pid = pid
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self._stack: list[int] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def _now(self) -> float:
        return 0.0 if self.clock is None else self.clock()

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    @contextmanager
    def span(
        self, name: str, *, pid: "str | None" = None, tid: int = 0, **attrs
    ) -> Iterator[None]:
        """Open one nested span; closed (and recorded) when the ``with``
        block exits, even on error.  Attributes are canonicalized (sorted)
        at record time."""
        seq = self._next_seq()
        parent = self._stack[-1] if self._stack else -1
        depth = len(self._stack)
        start = self._now()
        self._stack.append(seq)
        try:
            yield
        finally:
            self._stack.pop()
            self.spans.append(
                SpanRecord(
                    seq=seq,
                    name=name,
                    start_s=start,
                    end_s=self._now(),
                    pid=pid if pid is not None else self.pid,
                    tid=tid,
                    depth=depth,
                    parent_seq=parent,
                    attrs=_attr_items(attrs),
                )
            )

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        pid: "str | None" = None,
        tid: int = 0,
        **attrs,
    ) -> None:
        """Record one complete interval with explicit bounds (no clock read).

        This is the discrete-event form: the serving replays compute a
        batch's true device interval (``max(now, busy_until)`` onward) after
        the flush, so the caller — not the clock — owns the timestamps.
        """
        self.spans.append(
            SpanRecord(
                seq=self._next_seq(),
                name=name,
                start_s=start_s,
                end_s=end_s,
                pid=pid if pid is not None else self.pid,
                tid=tid,
                depth=0,
                parent_seq=-1,
                attrs=_attr_items(attrs),
            )
        )

    def instant(
        self,
        name: str,
        *,
        t_s: "float | None" = None,
        pid: "str | None" = None,
        **attrs,
    ) -> None:
        """Record one point event at ``t_s`` (default: the clock's now)."""
        self.instants.append(
            InstantRecord(
                seq=self._next_seq(),
                name=name,
                t_s=self._now() if t_s is None else t_s,
                pid=pid if pid is not None else self.pid,
                attrs=_attr_items(attrs),
            )
        )


class _NullSpan:
    """Reusable no-op context manager (one shared instance, zero state)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default tracer: every method is a no-op.

    ``enabled`` is False so hot paths can skip building attribute dicts
    entirely; calling through anyway is still safe and side-effect free.
    """

    enabled = False
    clock = None
    pid = "null"
    spans: tuple = ()
    instants: tuple = ()

    def __len__(self) -> int:
        return 0

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, start_s: float, end_s: float, **attrs) -> None:
        return None

    def instant(self, name: str, **attrs) -> None:
        return None


#: The shared no-op tracer every component defaults to.
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """``None`` -> the shared :data:`NULL_TRACER` (the house resolver idiom)."""
    return NULL_TRACER if tracer is None else tracer
