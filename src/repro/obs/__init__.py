"""Deterministic observability: spans, metrics, canonical exporters.

The obs layer turns every replay into an inspectable timeline without
perturbing it: spans and instants are stamped from the injected clock
(:class:`~repro.serve.loadgen.FakeClock` in replays), metrics use fixed
bucket boundaries and canonical ordering, and both exporters are
byte-stable — two identical replays produce identical Chrome-trace JSON
and Prometheus text.  Everything defaults to the shared no-op
:data:`NULL_TRACER` / :data:`NULL_METRICS`, so with observability off the
serving hot path (and every report it produces) is bit-identical to a
build without this package.
"""

from .export import (
    chrome_trace_json,
    prometheus_text,
    record_session_report,
    write_chrome_trace,
    write_prometheus,
)
from .metrics import (
    BATCH_SIZE_BUCKETS,
    NULL_METRICS,
    QUEUE_WAIT_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    resolve_metrics,
)
from .trace import (
    NULL_TRACER,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "InstantRecord",
    "resolve_tracer",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "resolve_metrics",
    "QUEUE_WAIT_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
    "chrome_trace_json",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "record_session_report",
]
