"""Energy model — the simulator's substitute for nvidia-smi / tegrastats.

Per-kernel energy decomposes into a static term (board power floor over the
kernel's runtime) and dynamic terms proportional to the metered work:

``E = P_idle * t + e_dram * global_bytes + e_mac(dtype) * MACs
    + e_shared * shared_bytes``

The decomposition reproduces the paper's key energy observation (§VI-C):
because the DRAM term is charged per *byte*, fusion reduces energy even for
compute-bound kernels whose latency barely improves — which is why measured
energy savings exceed latency savings on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from .counters import AccessCounters
from .roofline import KernelTiming
from .specs import GpuSpec

__all__ = ["EnergyBreakdown", "energy_of"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joule-level decomposition of one kernel or an aggregated execution."""

    static_j: float
    dram_j: float
    compute_j: float
    shared_j: float

    @property
    def total_j(self) -> float:
        return self.static_j + self.dram_j + self.compute_j + self.shared_j


def energy_of(
    counters: AccessCounters,
    timing: KernelTiming,
    gpu: GpuSpec,
    dtype: DType,
) -> EnergyBreakdown:
    """Compute the energy of a metered launch given its roofline timing."""
    static = gpu.idle_power_w * timing.t_total_s
    dram = gpu.pj_per_byte_dram * 1e-12 * counters.total_bytes
    compute = gpu.pj_per_mac(dtype) * 1e-12 * counters.total_macs
    shared = gpu.pj_per_byte_shared * 1e-12 * counters.shared_bytes
    return EnergyBreakdown(static_j=static, dram_j=dram, compute_j=compute, shared_j=shared)
