"""GPU architecture descriptors and the paper's three evaluation GPUs (Table I).

:class:`GpuSpec` carries exactly what FusePlanner consumes — SM count, L1 size
and the portion configurable as shared memory (paper §IV) — plus the roofline
and energy constants the timing/energy models need (peak bandwidth, clock,
per-byte / per-MAC energies).  The capacity figures follow paper Table I; the
bandwidth/clock/power figures come from the public datasheets of the same
parts and are documented per preset.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from ..errors import ShapeError

__all__ = ["GpuSpec", "GTX1660", "RTX_A4000", "ORIN", "ALL_GPUS", "gpu_by_name"]


@dataclass(frozen=True)
class GpuSpec:
    """Architecture model of one CUDA-capable GPU.

    Attributes:
        name: short identifier used in reports ("GTX", "RTX", "Orin").
        compute_capability: CUDA compute capability (informational).
        sm_count: number of streaming multiprocessors.
        cuda_cores: total CUDA cores (across all SMs).
        l1_kb: L1/shared capacity per SM in KiB (paper Table I column).
        shared_kb: portion of L1 configurable as shared memory, per SM.
        l2_mb: device-level L2 capacity (informational; the paper's cost
            models operate on L1 only).
        dram: off-chip memory technology label.
        dram_bw_gbps: peak off-chip bandwidth in GB/s.
        clock_ghz: sustained SM clock.
        warp_size: threads per warp (32 on all CUDA GPUs).
        kernel_launch_us: fixed host-side cost per kernel launch.
        idle_power_w: board power floor attributed to an active kernel.
        pj_per_byte_dram: energy per off-chip byte moved.
        pj_per_mac_fp32: energy per FP32 multiply-accumulate.
        pj_per_byte_shared: energy per shared-memory byte moved.
    """

    name: str
    compute_capability: str
    sm_count: int
    cuda_cores: int
    l1_kb: int
    shared_kb: int
    l2_mb: float
    dram: str
    dram_bw_gbps: float
    clock_ghz: float
    warp_size: int = 32
    kernel_launch_us: float = 4.0
    idle_power_w: float = 20.0
    pj_per_byte_dram: float = 25.0
    pj_per_mac_fp32: float = 1.2
    pj_per_byte_shared: float = 1.0

    def __post_init__(self) -> None:
        if min(self.sm_count, self.cuda_cores, self.l1_kb, self.shared_kb) <= 0:
            raise ShapeError(f"{self.name}: non-positive GPU resource")
        if self.shared_kb > self.l1_kb:
            raise ShapeError(f"{self.name}: shared portion exceeds L1 size")
        if self.dram_bw_gbps <= 0 or self.clock_ghz <= 0:
            raise ShapeError(f"{self.name}: non-positive bandwidth or clock")

    # ---- derived capacities -----------------------------------------------
    @property
    def l1_bytes(self) -> int:
        """L1 capacity per SM in bytes — Eq. 2-4's ``L1Sz``."""
        return self.l1_kb * 1024

    @property
    def shared_bytes(self) -> int:
        """Shared-memory capacity per SM in bytes (commBuffer budget)."""
        return self.shared_kb * 1024

    @property
    def cores_per_sm(self) -> int:
        return self.cuda_cores // self.sm_count

    # ---- roofline peaks -----------------------------------------------------
    def peak_macs_per_s(self, dtype: DType) -> float:
        """Peak MAC throughput at the given precision (dp4a quadruples INT8)."""
        return self.cuda_cores * self.clock_ghz * 1e9 * dtype.macs_per_core_cycle

    @property
    def peak_bytes_per_s(self) -> float:
        return self.dram_bw_gbps * 1e9

    def machine_balance(self, dtype: DType) -> float:
        """MACs per DRAM byte at the roofline ridge point."""
        return self.peak_macs_per_s(dtype) / self.peak_bytes_per_s

    def pj_per_mac(self, dtype: DType) -> float:
        """Per-MAC energy; INT8 MACs cost ~1/4 of FP32 (4 lanes share a core)."""
        return self.pj_per_mac_fp32 / dtype.macs_per_core_cycle


#: GTX 1660 — Turing TU116: 22 SMs, 1408 cores, 96 KiB L1/shared per SM
#: (Table I), 192 GB/s GDDR5, ~1.78 GHz boost.
GTX1660 = GpuSpec(
    name="GTX",
    compute_capability="7.5",
    sm_count=22,
    cuda_cores=1408,
    l1_kb=96,
    shared_kb=64,
    l2_mb=1.5,
    dram="GDDR5",
    dram_bw_gbps=192.0,
    clock_ghz=1.785,
    idle_power_w=18.0,
    pj_per_byte_dram=28.0,
    pj_per_mac_fp32=1.3,
)

#: RTX A4000 — Ampere GA104: Table I lists 128 KiB L1 per SM and 6144 cores.
#: 448 GB/s GDDR6, ~1.56 GHz boost.
RTX_A4000 = GpuSpec(
    name="RTX",
    compute_capability="8.6",
    sm_count=48,
    cuda_cores=6144,
    l1_kb=128,
    shared_kb=100,
    l2_mb=4.0,
    dram="GDDR6",
    dram_bw_gbps=448.0,
    clock_ghz=1.56,
    idle_power_w=30.0,
    pj_per_byte_dram=22.0,
    pj_per_mac_fp32=1.0,
)

#: Jetson AGX Orin — Ampere iGPU: 16 SMs, 2048 cores, 192 KiB L1 per SM
#: (Table I), 204.8 GB/s LPDDR5 (shared with CPU), ~1.3 GHz.
ORIN = GpuSpec(
    name="Orin",
    compute_capability="8.7",
    sm_count=16,
    cuda_cores=2048,
    l1_kb=192,
    shared_kb=164,
    l2_mb=4.0,
    dram="LPDDR5",
    dram_bw_gbps=204.8,
    clock_ghz=1.3,
    idle_power_w=10.0,
    pj_per_byte_dram=15.0,
    pj_per_mac_fp32=0.9,
)

#: The three evaluation GPUs in the paper's reporting order.
ALL_GPUS: tuple[GpuSpec, ...] = (GTX1660, RTX_A4000, ORIN)


def gpu_by_name(name: str) -> GpuSpec:
    """Look a preset up by its report name ('GTX', 'RTX', 'Orin')."""
    for g in ALL_GPUS:
        if g.name.lower() == name.lower():
            return g
    raise ShapeError(f"unknown GPU {name!r}; presets: {[g.name for g in ALL_GPUS]}")
