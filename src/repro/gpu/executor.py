"""Kernel launch engine: drives a grid of thread blocks over simulated SMs.

A simulated kernel exposes a grid of block coordinates and a ``run_block``
method; the executor launches the grid the way the CUDA runtime would —
each block gets a fresh block-lifetime :class:`SharedMemory`, blocks are
distributed round-robin over SMs (for occupancy accounting), and the launch
itself is charged to the counters (kernel-launch overhead matters: fusion
halves the launch count, §II-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..errors import SimulationError
from .counters import AccessCounters
from .memory import SharedMemory
from .specs import GpuSpec

__all__ = ["BlockKernel", "LaunchStats", "launch"]


class BlockKernel(Protocol):
    """Structural interface every simulated kernel implements."""

    name: str

    def grid(self) -> Sequence[tuple[int, ...]]:
        """Block coordinates of the launch grid."""
        ...

    def run_block(self, coord: tuple[int, ...], shared: SharedMemory) -> None:
        """Execute one thread block."""
        ...


@dataclass(frozen=True)
class LaunchStats:
    """Occupancy-level facts about one launch."""

    kernel_name: str
    num_blocks: int
    peak_shared_bytes: int
    waves: int  # ceil(blocks / SMs): how many rounds the grid needs

    def occupies_all_sms(self, gpu: GpuSpec) -> bool:
        """Paper constraint: at least one block per SM avoids underutilization."""
        return self.num_blocks >= gpu.sm_count


def launch(kernel: BlockKernel, gpu: GpuSpec, counters: AccessCounters) -> LaunchStats:
    """Launch a kernel grid on the simulated GPU.

    Every block must keep its shared-memory footprint within the SM budget;
    a violation raises :class:`~repro.errors.CapacityError` — the simulated
    analogue of a kernel that cannot launch with the requested dynamic
    shared memory.
    """
    blocks = list(kernel.grid())
    if not blocks:
        raise SimulationError(f"kernel {kernel.name!r} launched with an empty grid")
    counters.kernel_launches += 1
    peak = 0
    for coord in blocks:
        shared = SharedMemory(gpu.shared_bytes, counters)
        kernel.run_block(coord, shared)
        peak = max(peak, shared.peak_bytes)
    waves = -(-len(blocks) // gpu.sm_count)
    return LaunchStats(
        kernel_name=kernel.name,
        num_blocks=len(blocks),
        peak_shared_bytes=peak,
        waves=waves,
    )
