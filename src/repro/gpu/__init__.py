"""Simulated GPU substrate: specs, memory hierarchy, launch engine, roofline, energy."""

from .counters import AccessCounters
from .energy import EnergyBreakdown, energy_of
from .executor import LaunchStats, launch
from .memory import GlobalBuffer, SharedMemory
from .roofline import KernelTiming, time_kernel
from .specs import ALL_GPUS, GTX1660, ORIN, RTX_A4000, GpuSpec, gpu_by_name

__all__ = [
    "AccessCounters",
    "EnergyBreakdown",
    "energy_of",
    "LaunchStats",
    "launch",
    "GlobalBuffer",
    "SharedMemory",
    "KernelTiming",
    "time_kernel",
    "ALL_GPUS",
    "GTX1660",
    "ORIN",
    "RTX_A4000",
    "GpuSpec",
    "gpu_by_name",
]
