"""Simulated GPU substrate: specs, memory hierarchy, launch engine, roofline, energy."""

from .counters import AccessCounters
from .energy import EnergyBreakdown, energy_of
from .executor import LaunchStats, launch
from .fastpath import DEFAULT_ENGINE, ENGINES, GridProgram, launch_fast, resolve_engine
from .memory import GlobalBuffer, SharedMemory
from .roofline import KernelTiming, time_kernel
from .specs import ALL_GPUS, GTX1660, ORIN, RTX_A4000, GpuSpec, gpu_by_name

__all__ = [
    "AccessCounters",
    "EnergyBreakdown",
    "energy_of",
    "LaunchStats",
    "launch",
    "DEFAULT_ENGINE",
    "ENGINES",
    "GridProgram",
    "launch_fast",
    "resolve_engine",
    "GlobalBuffer",
    "SharedMemory",
    "KernelTiming",
    "time_kernel",
    "ALL_GPUS",
    "GTX1660",
    "ORIN",
    "RTX_A4000",
    "GpuSpec",
    "gpu_by_name",
]
