"""Access counters — the simulator's equivalent of Nsight Compute metrics.

Every simulated kernel records the global-memory bytes it moves, broken down
by direction (read/write) and by tensor kind (ifm, weights, ofm, im2col...),
plus compute work (MACs, including redundant ones) and shared-memory traffic.
The paper's figures are derived from exactly these quantities: Fig. 8 splits
global-memory time into loads and stores; Table II reports redundant-compute
ratios; Table III classifies kernels via the compute/memory balance.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["AccessCounters"]


@dataclass
class AccessCounters:
    """Mutable tally of one (or several aggregated) kernel launches."""

    #: bytes read from global memory, keyed by tensor kind.
    global_reads: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: bytes written to global memory, keyed by tensor kind.
    global_writes: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: bytes moved through shared memory (both directions).
    shared_bytes: int = 0
    #: re-read traffic annotations: (backing tensor bytes, re-read bytes).
    #: A re-read entry whose backing tensor fits in L2 is served from L2
    #: rather than DRAM by the roofline (see :mod:`repro.gpu.roofline`).
    rereads: list[tuple[int, int]] = field(default_factory=list)
    #: useful multiply-accumulates performed.
    macs: int = 0
    #: redundant multiply-accumulates (recomputed intermediate halos).
    redundant_macs: int = 0
    #: number of kernel launches aggregated into this counter.
    kernel_launches: int = 0

    # ---- recording -----------------------------------------------------------
    def read(self, kind: str, nbytes: int) -> None:
        """Record a global-memory load."""
        self.global_reads[kind] += int(nbytes)

    def write(self, kind: str, nbytes: int) -> None:
        """Record a global-memory store."""
        self.global_writes[kind] += int(nbytes)

    def smem(self, nbytes: int) -> None:
        """Record shared-memory traffic (commBuffer reads/writes)."""
        self.shared_bytes += int(nbytes)

    def compute(self, macs: int, redundant: int = 0) -> None:
        """Record MACs; ``redundant`` is the subset recomputed due to fusion."""
        self.macs += int(macs)
        self.redundant_macs += int(redundant)

    # ---- bulk recording (fast-path engine) -----------------------------------
    # The vectorized whole-grid engine (:mod:`repro.gpu.fastpath`) does not
    # touch instrumented buffers block by block; it charges each closed-form
    # per-block total once, multiplied by the block count.  ``read_bulk(kind,
    # nbytes, count)`` is therefore *defined* as what ``count`` per-block
    # ``read(kind, nbytes)`` calls would have recorded — integer arithmetic,
    # so the equality with the interpreted path is exact, not approximate.

    def read_bulk(self, kind: str, nbytes: int, count: int = 1) -> None:
        """Record ``count`` global-memory loads of ``nbytes`` each."""
        self.global_reads[kind] += int(nbytes) * int(count)

    def write_bulk(self, kind: str, nbytes: int, count: int = 1) -> None:
        """Record ``count`` global-memory stores of ``nbytes`` each."""
        self.global_writes[kind] += int(nbytes) * int(count)

    def smem_bulk(self, nbytes: int, count: int = 1) -> None:
        """Record ``count`` shared-memory transfers of ``nbytes`` each."""
        self.shared_bytes += int(nbytes) * int(count)

    def reread(self, tensor_bytes: int, nbytes: int) -> None:
        """Annotate ``nbytes`` of already-counted reads as re-reads of a
        ``tensor_bytes``-sized tensor (candidate for L2 absorption)."""
        if nbytes > 0:
            self.rereads.append((int(tensor_bytes), int(nbytes)))

    def l2_absorbable_bytes(self, l2_capacity_bytes: int) -> int:
        """Re-read bytes whose backing tensor fits in (80% of) L2."""
        budget = int(0.8 * l2_capacity_bytes)
        return sum(b for t, b in self.rereads if t <= budget)

    # ---- aggregation -----------------------------------------------------------
    def batched(self, batch: int, weight_bytes: int = 0) -> "AccessCounters":
        """Counters of the same grid launched once over ``batch`` images.

        A batched kernel keeps the launch count (one grid covers the whole
        batch) while per-image work — traffic, MACs, shared-memory movement —
        scales linearly.  ``weight_bytes`` marks the kernel's weight tensors:
        ``batch - 1`` re-streams of them across the batch are annotated as
        re-reads so the roofline serves them from L2 (DW/PW weight tensors are
        tiny), which is the traffic amortization batching buys on real GPUs.
        GMA totals — the paper's metric, which counts kernel-issued accesses —
        still scale with the batch, matching the per-launch convention used
        everywhere else in the simulator.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        out = AccessCounters()
        for k, v in self.global_reads.items():
            out.global_reads[k] = v * batch
        for k, v in self.global_writes.items():
            out.global_writes[k] = v * batch
        out.shared_bytes = self.shared_bytes * batch
        out.macs = self.macs * batch
        out.redundant_macs = self.redundant_macs * batch
        out.kernel_launches = self.kernel_launches
        out.rereads = [(t, b * batch) for t, b in self.rereads]
        if batch > 1 and weight_bytes > 0:
            out.reread(weight_bytes, (batch - 1) * weight_bytes)
        return out

    def merge(self, other: "AccessCounters") -> "AccessCounters":
        """Accumulate another counter into this one (returns self)."""
        for k, v in other.global_reads.items():
            self.global_reads[k] += v
        for k, v in other.global_writes.items():
            self.global_writes[k] += v
        self.shared_bytes += other.shared_bytes
        self.macs += other.macs
        self.redundant_macs += other.redundant_macs
        self.kernel_launches += other.kernel_launches
        self.rereads.extend(other.rereads)
        return self

    # ---- summaries ------------------------------------------------------------
    @property
    def read_bytes(self) -> int:
        """Total global-memory bytes loaded."""
        return sum(self.global_reads.values())

    @property
    def write_bytes(self) -> int:
        """Total global-memory bytes stored."""
        return sum(self.global_writes.values())

    @property
    def total_bytes(self) -> int:
        """Total global-memory traffic — the paper's GMA metric, in bytes."""
        return self.read_bytes + self.write_bytes

    @property
    def total_macs(self) -> int:
        """All MACs executed, useful plus redundant."""
        return self.macs + self.redundant_macs

    @property
    def redundancy_ratio(self) -> float:
        """Fraction of executed MACs that are redundant (paper Table II rows)."""
        total = self.total_macs
        return self.redundant_macs / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict summary for reports and tests."""
        return {
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "total_bytes": self.total_bytes,
            "shared_bytes": self.shared_bytes,
            "macs": self.macs,
            "redundant_macs": self.redundant_macs,
            "redundancy_ratio": self.redundancy_ratio,
            "kernel_launches": self.kernel_launches,
        }
