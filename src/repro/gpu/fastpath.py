"""Fast-path launch engine: one vectorized pass over a kernel's whole grid.

The reference executor (:mod:`repro.gpu.executor`) interprets a launch the
way the CUDA runtime schedules it — one Python call per thread block, every
slice metered through :class:`~repro.gpu.memory.GlobalBuffer`.  That fidelity
is the simulator's ground truth, but it pays an interpreter tax per block
that real fused kernels never would, and it dominates the wall-clock of
functional serving, kernel-in-the-loop tuning and every parity test.

This module is the production alternative: a kernel that implements
:class:`GridProgram` executes its **entire grid as whole-tensor NumPy ops**
(one einsum/matmul per stage instead of one per block) and charges the
counters **in bulk** with closed-form per-block totals via
:meth:`~repro.gpu.counters.AccessCounters.read_bulk` /
:meth:`~repro.gpu.counters.AccessCounters.write_bulk` /
:meth:`~repro.gpu.counters.AccessCounters.smem_bulk`.  The bulk charges are
derived from the same clamped tile ranges the interpreted blocks use
(:func:`axis_tile_extents` / :func:`axis_window_extents`), so metered totals,
:class:`~repro.gpu.executor.LaunchStats` and roofline timings are
*bit-identical* to the reference path — enforced by the zoo-wide parity
matrix in ``tests/test_fastpath.py``.

Engine selection is a string everywhere (``"fast"`` — the default — or
``"reference"``), validated by :func:`resolve_engine` and threaded through
``SimKernel.simulate``, ``InferenceSession.run``, the serving layer and the
CLI ``--engine`` flags.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.tiling import input_extent, tile_input_range
from ..errors import SimulationError
from .counters import AccessCounters
from .executor import LaunchStats
from .specs import GpuSpec

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "resolve_engine",
    "GridProgram",
    "launch_fast",
    "axis_tile_extents",
    "axis_window_extents",
    "grid_matmul",
    "grid_depthwise",
]

#: Execution engines threaded through the whole stack (CLI ``--engine``).
ENGINES = ("fast", "reference")

#: The fast vectorized engine is the default everywhere; the per-block
#: interpreted path stays available as the reference mode.
DEFAULT_ENGINE = "fast"


def resolve_engine(engine: str | None) -> str:
    """Normalize an engine name (``None`` -> the default), or raise."""
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown execution engine {engine!r}; choose from {ENGINES}"
        )
    return engine


@runtime_checkable
class GridProgram(Protocol):
    """A kernel that can execute its whole grid in one vectorized pass.

    ``run_grid`` runs against the buffers prepared by ``bind``: it computes
    the full OFM with whole-tensor ops, charges the counters in bulk (exactly
    what the per-block path would have metered), and returns the launch's
    peak per-block shared-memory bytes for :class:`LaunchStats`.
    """

    name: str

    def grid(self) -> Sequence[tuple[int, ...]]:
        """Block coordinates of the launch grid (for occupancy stats)."""
        ...

    def run_grid(self) -> int:
        """Execute the whole grid vectorized; returns peak shared bytes."""
        ...


def launch_fast(kernel: GridProgram, gpu: GpuSpec, counters: AccessCounters) -> LaunchStats:
    """Launch a kernel grid through the vectorized fast path.

    Mirrors :func:`repro.gpu.executor.launch` exactly — empty-grid guard,
    one launch charged to the counters, waves from the block count — except
    the blocks execute as a single whole-tensor pass.
    """
    blocks = kernel.grid()
    if not blocks:
        raise SimulationError(f"kernel {kernel.name!r} launched with an empty grid")
    counters.kernel_launches += 1
    peak = int(kernel.run_grid())
    waves = -(-len(blocks) // gpu.sm_count)
    return LaunchStats(
        kernel_name=kernel.name,
        num_blocks=len(blocks),
        peak_shared_bytes=peak,
        waves=waves,
    )


def axis_tile_extents(out_size: int, tile: int) -> list[int]:
    """Clamped output-tile extents along one axis, one entry per tile index.

    ``sum()`` of the result is ``out_size``; the entries reproduce the
    ``min(tile, out_size - t0)`` arithmetic of every ``run_block``.
    """
    return [min(tile, out_size - t0) for t0 in range(0, out_size, tile)]


def axis_window_extents(
    out_size: int, tile: int, kernel: int, stride: int, padding: int, in_size: int
) -> list[int]:
    """Clamped *input-window* extents along one axis, one entry per tile.

    Exactly the ``hi - lo`` of :func:`repro.core.tiling.tile_input_range`
    per output tile — the rows/cols an interpreted block actually loads,
    border clamping included.  Summing these (times channels times element
    bytes) gives the bulk IFM charge of a halo-tiled launch.
    """
    out: list[int] = []
    for t0 in range(0, out_size, tile):
        lo, hi = tile_input_range(
            t0, min(tile, out_size - t0), kernel, stride, padding, in_size
        )
        out.append(hi - lo)
    return out


# ---- whole-tensor compute primitives ------------------------------------------
def grid_matmul(w: np.ndarray, x: np.ndarray, acc_dtype) -> np.ndarray:
    """Full-precision matmul at the accumulator dtype, BLAS wherever legal.

    Floating accumulators go straight through BLAS.  *Integer* accumulators
    (the INT8 dp4a pipeline) would fall into NumPy's scalar integer matmul —
    an order of magnitude slower than GEMM — so they run as a float64 GEMM
    and cast back: every product is bounded by ``127 * 127`` and the deepest
    reduction in the model zoo keeps ``|acc|`` far below ``2**53``, so the
    float64 result is the exact int32 accumulator, bit for bit.
    """
    acc_np = np.dtype(acc_dtype)
    if np.issubdtype(acc_np, np.integer):
        return (w.astype(np.float64) @ x.astype(np.float64)).astype(acc_np)
    return w.astype(acc_np, copy=False) @ x.astype(acc_np, copy=False)


def grid_depthwise(
    window: np.ndarray,
    weights: np.ndarray,
    rows_out: int,
    cols_out: int,
    row_off: int,
    col_off: int,
    kernel: int,
    stride: int,
    acc_dtype,
) -> np.ndarray:
    """Whole-image depthwise convolution by shifted multiply-accumulate.

    Same canvas/clipping discipline (and argument contract) as
    :func:`repro.kernels.direct_dw.depthwise_tile`, but one fused
    multiply-add per filter tap over the full image instead of a windowed
    einsum — several times faster at grid scale, and tap order matches the
    einsum's ``(k, l)`` reduction order, so integer results are identical
    and floating results agree at dtype tolerance.
    """
    c = window.shape[0]
    canvas_h = input_extent(rows_out, kernel, stride)
    canvas_w = input_extent(cols_out, kernel, stride)
    canvas = np.zeros((c, canvas_h, canvas_w), dtype=acc_dtype)
    use_h = min(window.shape[1], canvas_h - row_off)
    use_w = min(window.shape[2], canvas_w - col_off)
    canvas[:, row_off : row_off + use_h, col_off : col_off + use_w] = window[
        :, :use_h, :use_w
    ]
    wk = weights.astype(acc_dtype, copy=False)
    acc = np.zeros((c, rows_out, cols_out), dtype=acc_dtype)
    h_span = (rows_out - 1) * stride + 1
    w_span = (cols_out - 1) * stride + 1
    for dk in range(kernel):
        for dl in range(kernel):
            acc += (
                canvas[:, dk : dk + h_span : stride, dl : dl + w_span : stride]
                * wk[:, dk : dk + 1, dl : dl + 1]
            )
    return acc
