"""Roofline timing model and compute/memory-bound classification.

The paper measures execution time with CUDA events and classifies kernels via
Nsight Compute roofline analysis (Table III).  The simulator substitutes an
analytic roofline over the metered counters:

``t_mem     = global_bytes / peak_bandwidth``
``t_compute = total_MACs / peak_MAC_throughput(dtype)``
``t_kernel  = max(t_mem, t_compute) + launches * launch_overhead``

A kernel is *memory-bound* when ``t_mem > t_compute`` — reductions in global
traffic then translate (nearly) fully into speedup, which is the paper's
central explanatory mechanism (§VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dtypes import DType
from .counters import AccessCounters
from .specs import GpuSpec

__all__ = [
    "KernelTiming",
    "time_kernel",
    "Boundedness",
    "OUR_KERNEL_UTILIZATION",
    "OUR_KERNEL_BANDWIDTH_EFF",
]

#: classification labels matching paper Table III ("C" / "M").
Boundedness = str

#: Default efficiency of our hand-written direct/fused kernels: ~55% of peak
#: MAC throughput (between a pure depthwise kernel's ~40% and a well-tiled
#: GEMM-shaped pointwise kernel's ~70%) and ~90% of peak DRAM bandwidth
#: (fully coalesced accesses, assumption 1 of §IV-A).  Baselines pass their
#: own per-algorithm knobs.
OUR_KERNEL_UTILIZATION = 0.55
OUR_KERNEL_BANDWIDTH_EFF = 0.90


@dataclass(frozen=True)
class KernelTiming:
    """Timing decomposition of one kernel (or an aggregate of kernels)."""

    t_memory_s: float
    t_compute_s: float
    t_launch_s: float
    read_bytes: int
    write_bytes: int

    @property
    def t_total_s(self) -> float:
        """End-to-end kernel time under the overlap-of-pipes roofline."""
        return max(self.t_memory_s, self.t_compute_s) + self.t_launch_s

    @property
    def bound(self) -> Boundedness:
        """'M' if memory-bound, 'C' if compute-bound (paper Table III)."""
        return "M" if self.t_memory_s > self.t_compute_s else "C"

    @property
    def t_mem_read_s(self) -> float:
        """Share of memory time spent on loads (Fig. 8 breakdown)."""
        total = self.read_bytes + self.write_bytes
        return self.t_memory_s * (self.read_bytes / total) if total else 0.0

    @property
    def t_mem_write_s(self) -> float:
        """Share of memory time spent on stores (Fig. 8 breakdown)."""
        total = self.read_bytes + self.write_bytes
        return self.t_memory_s * (self.write_bytes / total) if total else 0.0


def time_kernel(
    counters: AccessCounters,
    gpu: GpuSpec,
    dtype: DType,
    *,
    utilization: float = OUR_KERNEL_UTILIZATION,
    bandwidth_efficiency: float = OUR_KERNEL_BANDWIDTH_EFF,
) -> KernelTiming:
    """Apply the roofline to a counter tally.

    Args:
        counters: metered traffic/compute of the launch(es).
        gpu: architecture model providing the peaks.
        dtype: precision, which sets the MAC peak (dp4a quadruples INT8).
        utilization: fraction of peak MAC throughput the kernel can reach
            (baselines with poor occupancy pass < 1; our kernels use 1).
        bandwidth_efficiency: fraction of peak DRAM bandwidth achieved
            (uncoalesced baselines pass < 1).
    """
    if not 0 < utilization <= 1 or not 0 < bandwidth_efficiency <= 1:
        raise ValueError("utilization/bandwidth_efficiency must be in (0, 1]")
    # Re-reads of tensors that fit in L2 are served on-chip at ~4x the DRAM
    # bandwidth instead of going to device memory.  GMA totals (what the
    # paper's equations count) are unchanged; only the time model benefits.
    l2_bytes = min(counters.l2_absorbable_bytes(int(gpu.l2_mb * 1e6)),
                   counters.total_bytes)
    dram_bytes = counters.total_bytes - l2_bytes
    bw = gpu.peak_bytes_per_s * bandwidth_efficiency
    t_mem = dram_bytes / bw + l2_bytes / (4.0 * bw)
    t_cmp = counters.total_macs / (gpu.peak_macs_per_s(dtype) * utilization)
    t_launch = counters.kernel_launches * gpu.kernel_launch_us * 1e-6
    return KernelTiming(
        t_memory_s=t_mem,
        t_compute_s=t_cmp,
        t_launch_s=t_launch,
        read_bytes=counters.read_bytes,
        write_bytes=counters.write_bytes,
    )
