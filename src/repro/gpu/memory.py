"""Simulated memory hierarchy: instrumented global buffers and shared memory.

:class:`GlobalBuffer` wraps a NumPy array and charges every indexed access to
an :class:`~repro.gpu.counters.AccessCounters` instance, so the simulated
kernels cannot touch global data without the traffic being metered — the same
way Nsight Compute observes a real kernel from outside.

:class:`SharedMemory` models one SM's programmer-managed scratchpad: fixed
byte capacity, block-lifetime allocations, capacity violations raise
:class:`~repro.errors.CapacityError` (a real kernel would simply fail to
launch).  Data stored there is *not* charged as global traffic — that is the
entire point of fusion.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import CapacityError, SimulationError
from .counters import AccessCounters

__all__ = ["GlobalBuffer", "SharedMemory"]


class GlobalBuffer:
    """An instrumented global-memory tensor.

    Args:
        name: label used in error messages.
        array: backing NumPy array (owned by the buffer).
        kind: counter category ("ifm", "weights", "ofm", ...).
        counters: tally to charge accesses to.
        elem_bytes: storage bytes per element.  Defaults to the array
            itemsize; INT8 kernels pass 1 even while the functional simulator
            computes in wider dtypes.
    """

    def __init__(
        self,
        name: str,
        array: np.ndarray,
        kind: str,
        counters: AccessCounters,
        elem_bytes: int | None = None,
    ) -> None:
        self.name = name
        self._array = array
        self.kind = kind
        self._counters = counters
        self._elem_bytes = int(elem_bytes if elem_bytes is not None else array.itemsize)
        if self._elem_bytes <= 0:
            raise SimulationError(f"{name}: non-positive element size")

    # ---- properties -----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def array(self) -> np.ndarray:
        """Un-instrumented view for result verification after the launch."""
        return self._array

    # ---- instrumented access -----------------------------------------------------
    def load(self, index: Any) -> np.ndarray:
        """Read a slice from global memory, charging the counters."""
        view = self._array[index]
        self._counters.read(self.kind, view.size * self._elem_bytes)
        return view

    def load_free(self, index: Any) -> np.ndarray:
        """Read without charging (e.g. values already resident in registers)."""
        return self._array[index]

    def store(self, index: Any, values: np.ndarray) -> None:
        """Write a slice to global memory, charging the counters."""
        target = self._array[index]
        if target.shape != np.shape(values):
            raise SimulationError(
                f"{self.name}: store shape {np.shape(values)} != slot {target.shape}"
            )
        self._array[index] = values
        self._counters.write(self.kind, target.size * self._elem_bytes)


class SharedMemory:
    """One SM's shared-memory scratchpad with block lifetime.

    Allocations model the paper's commBuffer and prefetched weight tiles.
    Traffic through :meth:`write` / :meth:`read` is charged to the counters'
    ``shared_bytes`` (used by the energy model), never to global memory.
    """

    def __init__(self, capacity_bytes: int, counters: AccessCounters) -> None:
        if capacity_bytes <= 0:
            raise CapacityError(f"non-positive shared capacity {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._counters = counters
        self._used = 0
        self._peak = 0
        self._slots: dict[str, np.ndarray] = {}
        self._slot_bytes: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark across the block's lifetime."""
        return self._peak

    def alloc(self, name: str, shape: tuple[int, ...], dtype: np.dtype, elem_bytes: int) -> np.ndarray:
        """Reserve a named slot; raises :class:`CapacityError` on overflow."""
        if name in self._slots:
            raise SimulationError(f"shared slot {name!r} already allocated")
        nbytes = int(np.prod(shape)) * int(elem_bytes)
        if self._used + nbytes > self.capacity_bytes:
            raise CapacityError(
                f"shared memory overflow: {self._used} + {nbytes} "
                f"> {self.capacity_bytes} bytes (slot {name!r})"
            )
        buf = np.zeros(shape, dtype=dtype)
        self._slots[name] = buf
        self._slot_bytes[name] = nbytes
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return buf

    def write(self, name: str, values: np.ndarray) -> None:
        """Store into a slot, charging shared traffic (commBuffer writes)."""
        slot = self._require(name)
        slot[...] = values
        self._counters.smem(self._slot_bytes[name])

    def read(self, name: str) -> np.ndarray:
        """Load from a slot, charging shared traffic (commBuffer reads)."""
        slot = self._require(name)
        self._counters.smem(self._slot_bytes[name])
        return slot

    def free(self, name: str) -> None:
        """Release a slot (block-scoped buffers die with the block)."""
        self._require(name)
        self._used -= self._slot_bytes.pop(name)
        del self._slots[name]

    def _require(self, name: str) -> np.ndarray:
        try:
            return self._slots[name]
        except KeyError:
            raise SimulationError(f"shared slot {name!r} not allocated") from None
