"""Exception hierarchy for the ``repro`` package.

All errors raised intentionally by this library derive from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError):
    """A tensor/layer shape is inconsistent (e.g. weights do not match IFMs)."""


class CapacityError(ReproError):
    """A tile set does not fit in the modelled on-chip memory (L1/shared)."""


class PlanError(ReproError):
    """FusePlanner could not produce a feasible plan for a layer or model."""


class UnsupportedError(ReproError):
    """The requested combination (dtype, fusion type, layer kind) is unsupported."""


class SimulationError(ReproError):
    """The GPU simulator detected an internal inconsistency during a launch."""


class TuneError(ReproError):
    """A tuning database is corrupt, from a future schema, or misused."""


class AnalysisError(ReproError):
    """The static analyzer was misused (unknown rule, unparseable target)."""
