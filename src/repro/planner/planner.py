"""FusePlanner: decide which layers to fuse and with which tile sizes.

Paper §IV / Fig. 5: given GPU specs and a model DAG, FusePlanner (1) makes a
first pass estimating each DW/PW layer's minimum layer-by-layer GMA (Eq. 2/3),
(2) examines every possible fusion and evaluates its GMA (Eq. 4 family), and
(3) suggests fusing whenever an FCM's minimum estimated GMA undercuts the sum
of its constituents' LBL minima.

Overlapping candidates (a PW may fuse backward with a DW or forward with the
next conv) are resolved optimally as a maximum-weight matching on the layer
graph with edge weights = estimated GMA savings — each conv joins at most one
FCM.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.dtypes import DType
from ..core.fcm import FcmType, candidate_fcm_types
from ..errors import PlanError
from ..gpu.specs import GpuSpec
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvKind, ConvSpec
from .plan import ExecutionPlan, FcmStep, GlueStep, LblStep, StdStep
from .search import SearchResult, best_fcm_tiling, best_lbl_tiling

__all__ = ["FusePlanner", "FusionDecision"]


@dataclass(frozen=True)
class FusionDecision:
    """Outcome of evaluating one candidate pair."""

    first: ConvSpec
    second: ConvSpec
    fcm_type: FcmType
    fcm: SearchResult
    lbl_first: SearchResult
    lbl_second: SearchResult

    @property
    def savings_bytes(self) -> int:
        return self.lbl_first.gma_bytes + self.lbl_second.gma_bytes - self.fcm.gma_bytes


class FusePlanner:
    """Cost-model-driven fusion and tiling planner (paper Fig. 5)."""

    def __init__(self, gpu: GpuSpec, convention: str = "paper") -> None:
        self.gpu = gpu
        self.convention = convention
        self._lbl_cache: dict[str, SearchResult] = {}

    # ---- single-layer pass ---------------------------------------------------
    def lbl_plan(self, spec: ConvSpec) -> SearchResult:
        """Minimum-GMA layer-by-layer tiling for one DW/PW layer (cached)."""
        key = f"{spec.name}|{spec.dtype.value}|{spec.in_h}x{spec.in_w}"
        if key not in self._lbl_cache:
            self._lbl_cache[key] = best_lbl_tiling(spec, self.gpu, self.convention)
        return self._lbl_cache[key]

    # ---- pair evaluation --------------------------------------------------------
    def evaluate_pair(self, first: ConvSpec, second: ConvSpec) -> FusionDecision | None:
        """Best feasible FCM for a pair, or ``None`` if no module is feasible.

        When both PWDW variants are feasible the one with lower estimated GMA
        wins; ties prefer the redundancy-free module.
        """
        types = candidate_fcm_types(first.kind.short, second.kind.short)
        best: tuple[int, float, FcmType, SearchResult] | None = None
        for t in types:
            res = best_fcm_tiling(t, first, second, self.gpu, self.convention)
            if res is None:
                continue
            key = (res.gma_bytes, res.redundancy_ratio, t, res)
            if best is None or key[:2] < best[:2]:
                best = key
        if best is None:
            return None
        return FusionDecision(
            first=first,
            second=second,
            fcm_type=best[2],
            fcm=best[3],
            lbl_first=self.lbl_plan(first),
            lbl_second=self.lbl_plan(second),
        )

    # ---- whole-model pass ------------------------------------------------------
    def plan(self, graph: ModelGraph, dtype: DType | None = None) -> ExecutionPlan:
        """Produce the execution plan for a model DAG.

        Args:
            graph: the model; conv layers must already be at the target
                precision, or pass ``dtype`` to re-type them on the fly.
        """
        graph.validate()
        retype = (lambda s: s.with_dtype(dtype)) if dtype is not None else (lambda s: s)

        # Pass 1+2: evaluate every fusion candidate.
        decisions: list[FusionDecision] = []
        for cand in graph.fusion_candidates():
            first, second = retype(cand.first), retype(cand.second)
            try:
                dec = self.evaluate_pair(first, second)
            except PlanError:
                continue  # a constituent has no feasible LBL tiling either
            if dec is not None and dec.savings_bytes > 0:
                decisions.append(dec)

        # Pass 3: optimal non-overlapping selection via max-weight matching.
        m = nx.Graph()
        for i, dec in enumerate(decisions):
            m.add_edge(dec.first.name, dec.second.name, weight=dec.savings_bytes, idx=i)
        chosen_pairs = nx.max_weight_matching(m, maxcardinality=False)
        chosen: dict[str, FusionDecision] = {}
        for u, v in chosen_pairs:
            idx = m.edges[u, v]["idx"]
            dec = decisions[idx]
            chosen[dec.first.name] = dec

        plan = ExecutionPlan(
            model_name=graph.name,
            gpu=self.gpu,
            dtype=dtype if dtype is not None else _graph_dtype(graph),
        )
        fused_seconds = {d.second.name for d in chosen.values()}
        for spec in graph.topological():
            if isinstance(spec, GlueSpec):
                plan.steps.append(GlueStep(spec))
                continue
            spec = retype(spec)
            if spec.name in chosen:
                dec = chosen[spec.name]
                plan.steps.append(
                    FcmStep(
                        fcm_type=dec.fcm_type,
                        first=dec.first,
                        second=dec.second,
                        tiling=dec.fcm.tiling,
                        est_gma_bytes=dec.fcm.gma_bytes,
                        est_lbl_gma_bytes=dec.lbl_first.gma_bytes
                        + dec.lbl_second.gma_bytes,
                        redundancy_ratio=dec.fcm.redundancy_ratio,
                    )
                )
                continue
            if spec.name in fused_seconds:
                continue  # consumed by its producer's FCM step
            if spec.kind is ConvKind.STANDARD:
                plan.steps.append(StdStep(spec))
                continue
            lbl = self.lbl_plan(spec)
            plan.steps.append(
                LblStep(spec=spec, tiling=lbl.tiling, est_gma_bytes=lbl.gma_bytes)
            )
        return plan


def _graph_dtype(graph: ModelGraph) -> DType:
    for spec in graph.topological():
        if isinstance(spec, ConvSpec):
            return spec.dtype
    raise PlanError(f"model {graph.name!r} has no convolutional layers")
