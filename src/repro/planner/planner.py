"""FusePlanner: decide which layers to fuse, how long the chains are, and
which tile sizes each fused kernel uses.

Paper §IV / Fig. 5, generalized from pairs to chains: given GPU specs and a
model DAG, FusePlanner (1) makes a first pass estimating each DW/PW layer's
minimum layer-by-layer GMA (Eq. 2/3), (2) evaluates every candidate fusion —
consecutive runs of 2..``max_chain`` layers — with the chain cost models
(the Eq. 4 family at length 2, the compositional chain estimators beyond),
and (3) partitions each linear run of fusable layers optimally with an
interval dynamic program:

    ``best[i] = max over L in 1..K of best[i - L] + savings(run[i-L:i])``

where length-1 "chains" are the LBL baseline (zero savings) and a longer
chain only participates when it is feasible and strictly beats its members'
LBL minima.  At ``max_chain=2`` the DP is exactly a maximum-weight matching
on each run's path graph — today's pairwise plans are reproduced — while
being fully deterministic (ties prefer the unfused/shorter split, then
earlier layers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.chain import FusedChain
from ..core.dtypes import DType
from ..core.fcm import FcmType, candidate_fcm_types
from ..errors import PlanError
from ..gpu.specs import GpuSpec
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvKind, ConvSpec
from ..obs import resolve_metrics, resolve_tracer
from .memo import shared_memo
from .plan import (
    ChainStep,
    ExecutionPlan,
    GlueStep,
    LblStep,
    StdStep,
    chain_family,
    lbl_family,
)
from .search import (
    SearchResult,
    best_chain_tiling,
    best_fcm_tiling,
    best_lbl_tiling,
    resolve_search_engine,
)

__all__ = ["FusePlanner", "FusionDecision", "ChainDecision", "CandidateReport"]


@dataclass(frozen=True)
class FusionDecision:
    """Outcome of evaluating one candidate pair."""

    first: ConvSpec
    second: ConvSpec
    fcm_type: FcmType
    fcm: SearchResult
    lbl_first: SearchResult
    lbl_second: SearchResult

    @property
    def savings_bytes(self) -> int:
        return self.lbl_first.gma_bytes + self.lbl_second.gma_bytes - self.fcm.gma_bytes


@dataclass(frozen=True)
class ChainDecision:
    """Outcome of evaluating one candidate chain (length >= 2)."""

    specs: tuple[ConvSpec, ...]
    fcm_type: FcmType | None  # set for length-2 chains
    result: SearchResult
    lbl_gma_bytes: int  # what the member layers would cost unfused

    @property
    def length(self) -> int:
        return len(self.specs)

    @property
    def savings_bytes(self) -> int:
        return self.lbl_gma_bytes - self.result.gma_bytes

    @property
    def label(self) -> str:
        if self.fcm_type is not None:
            return self.fcm_type.name
        return "-".join(s.kind.short.upper() for s in self.specs)

    def to_step(self) -> ChainStep:
        return ChainStep(
            specs=self.specs,
            tiling=self.result.tiling,
            est_gma_bytes=self.result.gma_bytes,
            est_lbl_gma_bytes=self.lbl_gma_bytes,
            redundancy_ratio=self.result.redundancy_ratio,
            fcm_type=self.fcm_type,
        )


@dataclass(frozen=True)
class CandidateReport:
    """One evaluated fusion candidate, for ``plan --explain`` dumps."""

    layers: tuple[str, ...]
    label: str  # FCM type / chain kinds, or why it was rejected
    feasible: bool
    gma_bytes: int  # 0 when infeasible
    lbl_gma_bytes: int
    savings_bytes: int
    chosen: bool
    #: the savings the DP actually weighed: equals ``savings_bytes`` when
    #: uncalibrated, calibrated seconds otherwise (``plan --db --explain``
    #: must explain the calibrated decision, not the byte objective).
    cost_savings: float = 0.0


def _lbl_key(spec: ConvSpec) -> tuple:
    """Cache key covering everything the LBL tiling search depends on.

    Deliberately *not* just the layer name: a planner reused across models
    (as :class:`repro.serve.cache.PlanCache` encourages) can see two layers
    sharing a common name (``conv1``) with different shapes, strides or
    padding — keying on the full geometry prevents a stale-tiling collision.
    """
    return (
        spec.kind,
        spec.in_channels,
        spec.out_channels,
        spec.in_h,
        spec.in_w,
        spec.kernel,
        spec.stride,
        spec.padding,
        spec.dtype,
    )


class FusePlanner:
    """Cost-model-driven fusion and tiling planner (paper Fig. 5).

    Args:
        gpu: target GPU spec.
        convention: cost convention, ``"paper"`` or ``"measured"``.
        max_chain: longest fused chain the DP may pick.  The default of 2
            reproduces the paper's pairwise FCM plans; 3+ unlocks e.g. the
            PW->DW->PW inverted-residual chains of MobileNetV2.
        calibration: optional measurement-feedback corrections (duck-typed
            :class:`repro.tune.calibrate.Calibration`).  When given, fusion
            decisions — the run-partitioning DP and FCM-type arbitration —
            compare *calibrated seconds* (per-family factor x analytic cost)
            instead of raw estimated GMA bytes, so candidates reorder where
            the analytic model and the measurements disagree.  The switch is
            evidence-gated per (GPU, dtype): groups the calibration holds no
            factors for keep the byte ranking, so ``None``, an empty
            calibration, and a DB tuned on other silicon all reproduce the
            uncalibrated plans bit-for-bit.
        search_engine: tile-search engine, ``"vectorized"`` (default) or the
            scalar ``"reference"`` oracle — bit-identical winners either way
            (:data:`repro.planner.search.SEARCH_ENGINES`).
        memo: a :class:`repro.planner.memo.GeometryMemo` to consult/fill;
            defaults to the process-wide shared memo, so planners built for
            different models reuse each other's searches.  Safe to share
            across engines and calibrations — only calibration-independent
            search winners are stored.
    """

    def __init__(
        self,
        gpu: GpuSpec,
        convention: str = "paper",
        max_chain: int = 2,
        calibration=None,
        search_engine: str | None = None,
        memo=None,
        tracer=None,
        metrics=None,
    ) -> None:
        if max_chain < 1:
            raise PlanError(f"max_chain must be >= 1, got {max_chain}")
        self.gpu = gpu
        self.convention = convention
        self.max_chain = max_chain
        self.calibration = calibration
        self.search_engine = resolve_search_engine(search_engine)
        self.memo = shared_memo() if memo is None else memo
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        self._covered: dict[DType, bool] = {}
        self._lbl_cache: dict[tuple, SearchResult] = {}
        #: memoized chain searches by run geometry; layer names are excluded
        #: deliberately, so lbl_gma_bytes is recomputed per actual span.
        self._chain_cache: dict[tuple, tuple[FcmType | None, SearchResult] | None] = {}
        #: candidate evaluations of the most recent :meth:`plan` call.
        self.last_candidates: list[CandidateReport] = []

    # ---- single-layer pass ---------------------------------------------------
    def lbl_plan(self, spec: ConvSpec) -> SearchResult:
        """Minimum-GMA layer-by-layer tiling for one DW/PW layer (cached)."""
        key = _lbl_key(spec)
        if key not in self._lbl_cache:
            self._lbl_cache[key] = best_lbl_tiling(
                spec,
                self.gpu,
                self.convention,
                engine=self.search_engine,
                memo=self.memo,
            )
        return self._lbl_cache[key]

    # ---- candidate-ranking currency --------------------------------------------
    def _calibrated(self, dtype: DType) -> bool:
        """Calibration applies only where measurements exist: a DB tuned on
        another GPU or dtype must not reorder this group's plans (cached —
        ``covers`` scans the factor table)."""
        if self.calibration is None:
            return False
        if dtype not in self._covered:
            self._covered[dtype] = self.calibration.covers(
                self.gpu.name, dtype.value
            )
        return self._covered[dtype]

    def _cost(self, family: str, gma_bytes: int, dtype: DType, launches: int = 1):
        """What one candidate costs for ranking purposes.

        Uncalibrated: the estimated GMA bytes themselves (the paper's
        objective, kept as exact ints so plans reproduce bit-for-bit).
        Calibrated: per-family corrected seconds, which is where measured
        feedback reorders fuse-vs-not and FCM-type decisions.
        """
        if not self._calibrated(dtype):
            return gma_bytes
        return self.calibration.cost_s(
            family, gma_bytes, launches, self.gpu, dtype.value
        )

    def _lbl_cost(self, spec: ConvSpec):
        return self._cost(lbl_family(spec), self.lbl_plan(spec).gma_bytes, spec.dtype)

    def _decision_savings(self, dec: "ChainDecision"):
        """DP weight of fusing one chain: unfused cost minus fused cost."""
        if not self._calibrated(dec.specs[0].dtype):
            return dec.savings_bytes
        family = chain_family(dec.fcm_type, dec.length)
        fused = self._cost(family, dec.result.gma_bytes, dec.specs[0].dtype)
        return sum(self._lbl_cost(s) for s in dec.specs) - fused

    # ---- pair evaluation --------------------------------------------------------
    def _arbitrate_pair(
        self, first: ConvSpec, second: ConvSpec
    ) -> tuple[FcmType, SearchResult] | None:
        """Best feasible FCM type for a pair (lowest cost, then redundancy)."""
        types = candidate_fcm_types(first.kind.short, second.kind.short)
        best: tuple[tuple, FcmType, SearchResult] | None = None
        for t in types:
            res = best_fcm_tiling(
                t,
                first,
                second,
                self.gpu,
                self.convention,
                engine=self.search_engine,
                memo=self.memo,
            )
            if res is None:
                continue
            cost = self._cost(chain_family(t, 2), res.gma_bytes, first.dtype)
            key = ((cost, res.redundancy_ratio), t, res)
            if best is None or key[0] < best[0]:
                best = key
        if best is None:
            return None
        return best[1], best[2]

    def evaluate_pair(self, first: ConvSpec, second: ConvSpec) -> FusionDecision | None:
        """Best feasible FCM for a pair, or ``None`` if no module is feasible.

        When both PWDW variants are feasible the one with lower estimated GMA
        (calibrated cost, when calibrated) wins; ties prefer the
        redundancy-free module.
        """
        hit = self._arbitrate_pair(first, second)
        if hit is None:
            return None
        return FusionDecision(
            first=first,
            second=second,
            fcm_type=hit[0],
            fcm=hit[1],
            lbl_first=self.lbl_plan(first),
            lbl_second=self.lbl_plan(second),
        )

    # ---- chain evaluation -------------------------------------------------------
    def evaluate_chain(self, specs: tuple[ConvSpec, ...]) -> ChainDecision | None:
        """Best feasible fused implementation of a consecutive layer run.

        Length-2 runs go through the pairwise taxonomy (so PWDW vs PWDW_R is
        still arbitrated exactly as before); longer runs go through the
        chain-tiling sweep.  Returns ``None`` when no tiling is feasible, and
        raises :class:`~repro.errors.PlanError` when a member has no feasible
        LBL tiling either (no baseline to compare against).

        The tiling search is memoized by the run's full geometry (not layer
        names), so repeated identical blocks — ubiquitous in the zoo models —
        are swept once.
        """
        lbl_total = sum(self.lbl_plan(s).gma_bytes for s in specs)
        key = tuple(_lbl_key(s) for s in specs)
        if key not in self._chain_cache:
            self._chain_cache[key] = self._search_chain(specs)
        hit = self._chain_cache[key]
        if hit is None:
            return None
        fcm_type, result = hit
        return ChainDecision(
            specs=specs, fcm_type=fcm_type, result=result, lbl_gma_bytes=lbl_total
        )

    def _search_chain(
        self, specs: tuple[ConvSpec, ...]
    ) -> tuple[FcmType | None, SearchResult] | None:
        if len(specs) == 2:
            return self._arbitrate_pair(specs[0], specs[1])
        res = best_chain_tiling(
            FusedChain(specs),
            self.gpu,
            self.convention,
            engine=self.search_engine,
            memo=self.memo,
        )
        if res is None:
            return None
        return None, res

    # ---- run partitioning -------------------------------------------------------
    def _partition_run(
        self, specs: list[ConvSpec]
    ) -> tuple[list[ChainDecision], list[CandidateReport]]:
        """Optimal partition of one linear run into chains of length 1..K.

        Interval DP maximizing total estimated savings over the run — GMA
        bytes uncalibrated, per-family-corrected seconds when a calibration
        is attached; a candidate chain participates only when feasible with
        positive savings.  Ties deterministically prefer the shorter (less fused)
        split, then earlier layers.
        """
        n = len(specs)
        best = [0] * (n + 1)
        choice = [1] * (n + 1)
        picked: dict[tuple[int, int], ChainDecision] = {}
        reports: list[CandidateReport] = []
        for i in range(1, n + 1):
            best[i] = best[i - 1]
            choice[i] = 1
            for length in range(2, min(self.max_chain, i) + 1):
                span = tuple(specs[i - length : i])
                try:
                    dec = self.evaluate_chain(span)
                    lbl = (
                        dec.lbl_gma_bytes
                        if dec is not None
                        else sum(self.lbl_plan(s).gma_bytes for s in span)
                    )
                except PlanError:
                    dec, lbl = None, 0  # no feasible LBL baseline either
                savings = self._decision_savings(dec) if dec is not None else 0
                reports.append(
                    CandidateReport(
                        layers=tuple(s.name for s in span),
                        label=dec.label if dec is not None else "infeasible",
                        feasible=dec is not None,
                        gma_bytes=dec.result.gma_bytes if dec is not None else 0,
                        lbl_gma_bytes=lbl,
                        savings_bytes=dec.savings_bytes if dec is not None else 0,
                        chosen=False,
                        cost_savings=float(savings),
                    )
                )
                if dec is None or savings <= 0:
                    continue
                picked[(i - length, i)] = dec
                total = best[i - length] + savings
                if total > best[i]:
                    best[i] = total
                    choice[i] = length
        chosen: list[ChainDecision] = []
        i = n
        while i > 0:
            length = choice[i]
            if length > 1:
                chosen.append(picked[(i - length, i)])
            i -= length
        chosen.reverse()
        chosen_layers = {tuple(s.name for s in d.specs) for d in chosen}
        reports = [
            r if r.layers not in chosen_layers else replace(r, chosen=True)
            for r in reports
        ]
        return chosen, reports

    # ---- whole-model pass ------------------------------------------------------
    def plan(self, graph: ModelGraph, dtype: DType | None = None) -> ExecutionPlan:
        """Produce the execution plan for a model DAG.

        Args:
            graph: the model; conv layers must already be at the target
                precision, or pass ``dtype`` to re-type them on the fly.
        """
        if not (self.tracer.enabled or self.metrics.enabled):
            return self._plan_impl(graph, dtype)
        hits0, misses0 = self.memo.hits, self.memo.misses
        with self.tracer.span(
            "planner.plan",
            model=graph.name,
            gpu=self.gpu.name,
            convention=self.convention,
            max_chain=self.max_chain,
        ):
            result = self._plan_impl(graph, dtype)
        self.metrics.counter(
            "repro_memo_hits_total", help="GeometryMemo hits during planning"
        ).inc(self.memo.hits - hits0)
        self.metrics.counter(
            "repro_memo_misses_total", help="GeometryMemo misses during planning"
        ).inc(self.memo.misses - misses0)
        self.metrics.counter(
            "repro_plans_total", help="Whole-model planning passes"
        ).inc(model=graph.name)
        return result

    def _plan_impl(self, graph: ModelGraph, dtype: DType | None = None) -> ExecutionPlan:
        graph.validate()
        retype = (lambda s: s.with_dtype(dtype)) if dtype is not None else (lambda s: s)

        # Pass 1+2: evaluate candidates and partition every fusable run.
        chosen: dict[str, ChainDecision] = {}
        consumed: set[str] = set()
        self.last_candidates = []
        for run in graph.fusion_runs():
            decisions, reports = self._partition_run([retype(s) for s in run])
            self.last_candidates.extend(reports)
            for dec in decisions:
                chosen[dec.specs[0].name] = dec
                consumed.update(s.name for s in dec.specs[1:])

        plan = ExecutionPlan(
            model_name=graph.name,
            gpu=self.gpu,
            dtype=dtype if dtype is not None else _graph_dtype(graph),
        )
        for spec in graph.topological():
            if isinstance(spec, GlueSpec):
                plan.steps.append(GlueStep(spec))
                continue
            spec = retype(spec)
            if spec.name in chosen:
                plan.steps.append(chosen[spec.name].to_step())
                continue
            if spec.name in consumed:
                continue  # executed inside its producer's chain step
            if spec.kind is ConvKind.STANDARD:
                plan.steps.append(StdStep(spec))
                continue
            lbl = self.lbl_plan(spec)
            plan.steps.append(
                LblStep(spec=spec, tiling=lbl.tiling, est_gma_bytes=lbl.gma_bytes)
            )
        return plan


def _graph_dtype(graph: ModelGraph) -> DType:
    for spec in graph.topological():
        if isinstance(spec, ConvSpec):
            return spec.dtype
    raise PlanError(f"model {graph.name!r} has no convolutional layers")
