"""Cross-model geometry memo: tile searches keyed by what they depend on.

Zoo models repeat geometries heavily — MobileNetV2's inverted residuals
reuse a handful of (channels, extent, stride) shapes, and *different* models
share stem/head shapes too.  :class:`repro.planner.planner.FusePlanner`
already memoizes per instance (``_lbl_cache`` / ``_chain_cache``); this
module lifts that to a process-wide store shared across planner instances
(the serving fleet builds one planner per worker) and persistable next to
the tuning DB, in the same canonical-JSONL discipline as
:class:`repro.tune.records.TuningDB`.

Only the three *search* families are memoized — ``best_lbl_tiling``,
``best_fcm_tiling``, ``best_chain_tiling`` — because their winners depend
solely on (geometry, dtype, GPU limits, cost convention).  FCM-type
arbitration and the run-partitioning DP are deliberately *not* memoized
here: those decisions are calibration-dependent and stay in the planner.
The search engine is excluded from the key by design: the vectorized and
reference engines are bit-identical (enforced by the parity suite), so a
memo may serve either.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (search uses memos)
    from .search import SearchResult

__all__ = ["GeometryMemo", "shared_memo"]

SCHEMA_VERSION = 1
_KIND = "repro-planmemo"


def _spec_key(spec) -> tuple:
    """Everything a tile search reads from one layer: geometry + precision."""
    return (
        spec.kind.short,
        spec.in_channels,
        spec.out_channels,
        spec.in_h,
        spec.in_w,
        spec.kernel,
        spec.stride,
        spec.padding,
        spec.dtype.value,
    )


def _gpu_key(gpu) -> tuple:
    """Everything a tile search reads from the GPU: capacity limits only."""
    return (gpu.name, gpu.sm_count, gpu.l1_kb, gpu.shared_kb, gpu.warp_size)


def _tuplify(obj):
    """JSON arrays back to the hashable nested-tuple key form."""
    if isinstance(obj, list):
        return tuple(_tuplify(v) for v in obj)
    return obj


class GeometryMemo:
    """Process-wide keyed store of tile-search winners (``None`` = infeasible).

    Infeasible outcomes are memoized too — re-proving that PWPW does not fit
    at FP32 for every model that asks costs as much as finding a winner.
    """

    def __init__(self) -> None:
        self._store: dict[tuple, "SearchResult | None"] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    # ---- keys ----------------------------------------------------------------
    def lbl_key(self, spec, gpu, convention: str) -> tuple:
        return ("lbl", _spec_key(spec), _gpu_key(gpu), convention)

    def fcm_key(self, fcm_type, first, second, gpu, convention: str) -> tuple:
        return (
            "fcm",
            fcm_type.name,
            _spec_key(first),
            _spec_key(second),
            _gpu_key(gpu),
            convention,
        )

    def chain_key(self, chain, gpu, convention: str) -> tuple:
        return (
            "chain",
            tuple(_spec_key(s) for s in chain.specs),
            _gpu_key(gpu),
            convention,
        )

    # ---- lookup ---------------------------------------------------------------
    def get_or_search(
        self, key: tuple, search: Callable[[], "SearchResult | None"]
    ) -> "SearchResult | None":
        """Return the memoized result, running ``search`` on first miss.

        A ``search`` that raises stores nothing (e.g. an infeasible-LBL
        PlanError carries the layer *name*, which is not part of the
        geometry key and must not be replayed for an unrelated layer).
        """
        if key in self._store:
            self.hits += 1
            return self._store[key]
        self.misses += 1
        value = search()
        self._store[key] = value
        return value

    # ---- persistence ----------------------------------------------------------
    def dumps(self) -> str:
        """Canonical JSONL: header line + one row per key, sorted by key.

        Same discipline as :meth:`repro.tune.records.TuningDB.dumps` —
        equal stores serialize to equal bytes regardless of insertion order.
        """
        header = _canonical({"kind": _KIND, "schema": SCHEMA_VERSION})
        rows = []
        # repro: allow[RPR003] keys mix str/int/tuple and cannot be compared
        # directly; the serialized rows are sorted below instead
        for key, result in self._store.items():
            if result is None:
                payload = None
            else:
                payload = {
                    "tiling": dict(result.tiling),
                    "gma_bytes": result.gma_bytes,
                    "redundancy_ratio": result.redundancy_ratio,
                }
            rows.append(_canonical({"key": key, "result": payload}))
        return "\n".join([header] + sorted(rows)) + "\n"

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def loads(cls, text: str) -> "GeometryMemo":
        from .search import SearchResult

        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise PlanError("geometry memo: empty file")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise PlanError(f"geometry memo: corrupt header: {exc}") from exc
        if header.get("kind") != _KIND:
            raise PlanError(f"geometry memo: unknown kind {header.get('kind')!r}")
        if header.get("schema", 0) > SCHEMA_VERSION:
            raise PlanError(
                f"geometry memo: schema {header.get('schema')} is newer than "
                f"this build's {SCHEMA_VERSION}"
            )
        memo = cls()
        for ln in lines[1:]:
            try:
                row = json.loads(ln)
            except json.JSONDecodeError as exc:
                raise PlanError(f"geometry memo: corrupt row: {exc}") from exc
            payload = row.get("result")
            result = None
            if payload is not None:
                result = SearchResult(
                    tiling={k: int(v) for k, v in payload["tiling"].items()},
                    gma_bytes=int(payload["gma_bytes"]),
                    redundancy_ratio=float(payload["redundancy_ratio"]),
                )
            memo._store[_tuplify(row["key"])] = result
        return memo

    @classmethod
    def load(cls, path: str | Path) -> "GeometryMemo":
        return cls.loads(Path(path).read_text(encoding="utf-8"))


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


#: The process-wide default memo every FusePlanner shares unless handed its
#: own (tests pass fresh instances; worker processes each grow their own).
_SHARED = GeometryMemo()


def shared_memo() -> GeometryMemo:
    return _SHARED
