"""FusePlanner: cost models (paper Eq. 1-4), tile search, and the DAG planner."""

from .chain_costs import chain_feasible, chain_footprints, chain_gma, chain_tiling_keys
from .costs import (
    GmaEstimate,
    dw_feasible,
    dw_gma,
    dw_tile_footprint,
    lbl_gma,
    loaded_axis_elems,
    pw_feasible,
    pw_gma,
    pw_tile_footprint,
)
from .fcm_costs import FcmCost, fcm_feasible, fcm_footprints, fcm_gma
from .grid_search import TilingGrid, chain_grid, fcm_grid, lbl_grid, pow2_candidates
from .memo import GeometryMemo, shared_memo
from .plan import ChainStep, ExecutionPlan, FcmStep, GlueStep, LblStep, StdStep
from .planner import CandidateReport, ChainDecision, FusePlanner, FusionDecision
from .search import (
    DEFAULT_SEARCH_ENGINE,
    SEARCH_ENGINES,
    SearchResult,
    best_chain_tiling,
    best_fcm_tiling,
    best_lbl_tiling,
    resolve_search_engine,
)

__all__ = [
    "GmaEstimate",
    "dw_feasible",
    "dw_gma",
    "dw_tile_footprint",
    "lbl_gma",
    "loaded_axis_elems",
    "pw_feasible",
    "pw_gma",
    "pw_tile_footprint",
    "FcmCost",
    "fcm_feasible",
    "fcm_footprints",
    "fcm_gma",
    "chain_feasible",
    "chain_footprints",
    "chain_gma",
    "chain_tiling_keys",
    "ExecutionPlan",
    "ChainStep",
    "FcmStep",
    "GlueStep",
    "LblStep",
    "StdStep",
    "FusePlanner",
    "FusionDecision",
    "ChainDecision",
    "CandidateReport",
    "SearchResult",
    "SEARCH_ENGINES",
    "DEFAULT_SEARCH_ENGINE",
    "resolve_search_engine",
    "best_chain_tiling",
    "best_fcm_tiling",
    "best_lbl_tiling",
    "TilingGrid",
    "lbl_grid",
    "fcm_grid",
    "chain_grid",
    "pow2_candidates",
    "GeometryMemo",
    "shared_memo",
]
