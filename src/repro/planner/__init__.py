"""FusePlanner: cost models (paper Eq. 1-4), tile search, and the DAG planner."""

from .costs import (
    GmaEstimate,
    dw_feasible,
    dw_gma,
    dw_tile_footprint,
    lbl_gma,
    loaded_axis_elems,
    pw_feasible,
    pw_gma,
    pw_tile_footprint,
)
from .fcm_costs import FcmCost, fcm_feasible, fcm_footprints, fcm_gma
from .plan import ExecutionPlan, FcmStep, GlueStep, LblStep, StdStep
from .planner import FusePlanner, FusionDecision
from .search import SearchResult, best_fcm_tiling, best_lbl_tiling

__all__ = [
    "GmaEstimate",
    "dw_feasible",
    "dw_gma",
    "dw_tile_footprint",
    "lbl_gma",
    "loaded_axis_elems",
    "pw_feasible",
    "pw_gma",
    "pw_tile_footprint",
    "FcmCost",
    "fcm_feasible",
    "fcm_footprints",
    "fcm_gma",
    "ExecutionPlan",
    "FcmStep",
    "GlueStep",
    "LblStep",
    "StdStep",
    "FusePlanner",
    "FusionDecision",
    "SearchResult",
    "best_fcm_tiling",
    "best_lbl_tiling",
]
