"""Chain-fusion cost models: the Eq. 4 family generalized to N stages.

The pairwise FCM estimators (:mod:`repro.planner.fcm_costs`) hard-code two
stages.  This module rebuilds them *compositionally*: a chain's global
memory accesses, shared-memory footprint and halo redundancy are derived
per stage by propagating the final output tile backward through every
stage's ``(kernel, stride, padding)`` geometry.  At length 2 the
construction reduces to the existing Eq. 4 family:

* ``dw->pw``  — identical formulas to :data:`~repro.core.fcm.FcmType.DWPW`
  (same tiling vocabulary, term for term);
* ``pw->dw``  — the PWDW_R formulas with ``tile_f = Cmid`` (the chain
  model always keeps all intermediate channels resident; the untiled PWDW
  channel-group dataflow remains a pairwise specialization);
* ``pw->pw``  — the PWPW formulas on a 2-D spatial grid instead of the
  flattened ``tile_hw`` vocabulary.

:func:`chain_gma` therefore dispatches length-2 chains carrying a pairwise
tiling vocabulary straight to :func:`~repro.planner.fcm_costs.fcm_gma`, so
pairwise numbers are reproduced bit-for-bit, and runs the general N-stage
model everywhere else.

Chain dataflow (one thread block):

1. own one ``tile_h x tile_w`` tile of the *final* stage's output;
2. walk the stages backward to find each intermediate's halo-extended
   window (any non-first DW stage grows the window — those halo elements
   are recomputed by every sharing block, the PWDW_R redundancy
   generalized);
3. execute the stages forward, parking each intermediate in a shared
   commBuffer (freed once its consumer stage finishes, so at most two
   commBuffers are ever live);
4. the final PW stage streams its filters in ``tile_m`` groups (a final DW
   stage consumes the last commBuffer channel-wise, no ``tile_m``).
"""

from __future__ import annotations

from typing import Mapping

from ..core.chain import FusedChain, chain_fcm_type, composed_receptive_field
from ..core.tiling import ceil_div, input_extent, overlap_elements, tile_input_range
from ..errors import UnsupportedError
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind, ConvSpec
from .costs import GmaEstimate
from .fcm_costs import FcmCost, fcm_feasible, fcm_gma

__all__ = [
    "chain_gma",
    "chain_feasible",
    "chain_footprints",
    "chain_tiling_keys",
    "chain_axis_tables",
    "chain_window_extents",
]


def chain_tiling_keys(chain: FusedChain) -> tuple[str, ...]:
    """Canonical tiling-dict keys of the N-stage chain dataflow."""
    keys = ["tile_h", "tile_w"]
    if chain.last.kind is ConvKind.POINTWISE:
        keys.append("tile_m")
    return tuple(keys)


def _is_pairwise_tiling(chain: FusedChain, tiling: Mapping[str, int]) -> bool:
    """Whether a length-2 chain's tiling uses a pairwise-only vocabulary."""
    if chain.length != 2:
        return False
    return "tile_f" in tiling or "tile_hw" in tiling


def _pairwise_dispatch(
    chain: FusedChain, tiling: Mapping[str, int]
) -> "tuple[ConvSpec, ConvSpec, object]":
    first, second = chain.specs
    redundant = "tile_h" in tiling  # PWDW_R carries spatial keys, PWDW does not
    return first, second, chain_fcm_type(chain, redundant=redundant)


# ---- backward tile propagation ------------------------------------------------


def _clamp_tiles(chain: FusedChain, tiling: Mapping[str, int]) -> tuple[int, int]:
    last = chain.last
    return min(tiling["tile_h"], last.out_h), min(tiling["tile_w"], last.out_w)


def _axis_ranges(
    chain: FusedChain, tile: int, axis: int
) -> list[list[tuple[int, int]]]:
    """Per-boundary clamped index ranges of every final-output tile, one axis.

    Boundary ``b`` is stage ``b``'s output grid (``b = 0`` is the chain
    input).  ``ranges[b][t]`` is the half-open index range tile ``t`` needs
    on boundary ``b`` — exactly what the simulated chain kernel loads
    (``b = 0`` or ``1``) and computes (``0 < b < N``), so measured-convention
    costs match the kernel's metered bytes.
    """
    specs = chain.specs
    out_size = specs[-1].out_h if axis == 0 else specs[-1].out_w
    cur = [
        (t0, min(t0 + tile, out_size)) for t0 in range(0, out_size, tile)
    ]
    per: list[list[tuple[int, int]]] = [cur]
    for spec in reversed(specs):  # boundary i+1 -> boundary i through stage i+1
        in_size = spec.in_h if axis == 0 else spec.in_w
        cur = [
            tile_input_range(lo, hi - lo, spec.kernel, spec.stride, spec.padding, in_size)
            for lo, hi in cur
        ]
        per.append(cur)
    per.reverse()
    return per


def _axis_sums(ranges: list[tuple[int, int]]) -> tuple[int, int]:
    """(summed extents, union of extents) of one boundary's axis ranges."""
    total = 0
    covered = 0
    prev_hi = 0
    for lo, hi in ranges:
        total += max(hi - lo, 0)
        lo = max(lo, prev_hi)
        if hi > lo:
            covered += hi - lo
            prev_hi = hi
    return total, covered


def _grid(chain: FusedChain, b: int) -> tuple[int, int]:
    """(H, W) of boundary ``b`` (chain input for 0, stage b output otherwise)."""
    if b == 0:
        return chain.first.in_h, chain.first.in_w
    spec = chain.specs[b - 1]
    return spec.out_h, spec.out_w


def _stage_macs_per_elem(spec: ConvSpec) -> int:
    """MACs to produce one output element of a stage."""
    per = spec.kernel * spec.kernel
    if spec.kind is not ConvKind.DEPTHWISE:
        per *= spec.in_channels
    return per


def chain_axis_tables(
    chain: FusedChain, tiles, axis: int
) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
    """(summed, covered) per-boundary extents for every candidate tile size.

    Returns ``(totals, covered)`` where ``totals[b][i]`` is the summed
    clamped extent of boundary ``b`` under tile size ``tiles[i]`` along
    ``axis`` (0 = rows, 1 = cols) and ``covered[b][i]`` the union of those
    extents — the measured-convention inputs the vectorized chain search
    broadcasts over its (tile_h, tile_w) grid.
    """
    n_bounds = chain.length + 1
    per_tile = [[_axis_sums(r) for r in _axis_ranges(chain, t, axis)] for t in tiles]
    totals = [tuple(per_tile[i][b][0] for i in range(len(per_tile))) for b in range(n_bounds)]
    covered = [tuple(per_tile[i][b][1] for i in range(len(per_tile))) for b in range(n_bounds)]
    return totals, covered


def chain_window_extents(chain: FusedChain, tiles) -> list[tuple[int, ...]]:
    """Unclamped per-boundary window extents for every candidate tile size.

    ``ext[b][i]`` composes :func:`repro.core.tiling.input_extent` backward
    through the stages (the worst-case interior tile of :func:`_max_extents`),
    one axis at a time — the footprint tables of the vectorized feasibility
    check.  Kernels are square, so the same table serves both axes (fed with
    that axis's candidate tile sizes).
    """
    per_tile = []
    for t in tiles:
        e = t
        per = [e]
        for spec in reversed(chain.specs):
            e = input_extent(e, spec.kernel, spec.stride)
            per.append(e)
        per.reverse()
        per_tile.append(per)
    n_bounds = chain.length + 1
    return [tuple(per_tile[i][b] for i in range(len(per_tile))) for b in range(n_bounds)]


# ---- GMA ---------------------------------------------------------------------


def _chain_gma_general(
    chain: FusedChain, tiling: Mapping[str, int], convention: str
) -> FcmCost:
    n = chain.length
    first, last = chain.first, chain.last
    tile_h, tile_w = _clamp_tiles(chain, tiling)
    n_sp = ceil_div(last.out_h, tile_h) * ceil_div(last.out_w, tile_w)
    weights = sum(s.weights_elements for s in chain.specs)
    writes = last.out_channels * last.out_h * last.out_w
    # A first PW stage reads its (subsampled) input pixel-per-output, so its
    # traffic follows boundary 1's grid; a first DW stage reads boundary 0.
    in_b = 1 if first.kind is ConvKind.POINTWISE else 0

    if convention == "paper":
        redundant = 0
        useful = last.macs
        in_h, in_w = _grid(chain, in_b)
        k_eff, s_eff = composed_receptive_field(chain.specs[in_b:])
        ovl_in = overlap_elements(in_w, in_h, tile_w * s_eff, tile_h * s_eff, k_eff, k_eff, s_eff)
        ifm_reads = first.in_channels * (2 * ovl_in + in_h * in_w)
        for b in range(1, n):  # intermediate boundaries
            h, w = _grid(chain, b)
            k_eff, s_eff = composed_receptive_field(chain.specs[b:])
            ovl = overlap_elements(w, h, tile_w * s_eff, tile_h * s_eff, k_eff, k_eff, s_eff)
            stage = chain.specs[b - 1]
            mpe = _stage_macs_per_elem(stage)
            redundant += stage.out_channels * ovl * mpe
            useful += stage.out_channels * h * w * mpe
    else:
        rows = _axis_ranges(chain, tile_h, axis=0)
        cols = _axis_ranges(chain, tile_w, axis=1)
        # Per-boundary (summed, covered) extents; rows/cols factorize because
        # the tiles form a grid: sum over (hi, wi) of rext*cext = (sum r)(sum c).
        row_sums = [_axis_sums(r) for r in rows]
        col_sums = [_axis_sums(c) for c in cols]
        ifm_reads = first.in_channels * row_sums[in_b][0] * col_sums[in_b][0]
        redundant = 0
        useful = last.macs
        for b in range(1, n):
            stage = chain.specs[b - 1]
            mpe = _stage_macs_per_elem(stage)
            executed = stage.out_channels * row_sums[b][0] * col_sums[b][0]
            unique = stage.out_channels * row_sums[b][1] * col_sums[b][1]
            redundant += (executed - unique) * mpe
            useful += unique * mpe

    reads = ifm_reads + n_sp * weights
    return FcmCost(
        GmaEstimate(reads, writes, chain.dtype.nbytes), redundant, useful
    )


def chain_gma(
    chain: FusedChain, tiling: Mapping[str, int], convention: str = "paper"
) -> FcmCost:
    """Estimate the global memory accesses of one fused-chain configuration.

    Length-2 chains carrying a pairwise tiling vocabulary (``tile_f`` /
    ``tile_hw``) are priced by the pairwise Eq. 4 estimators so the chain
    layer reproduces every pairwise number exactly; everything else runs the
    general per-stage model.
    """
    if convention not in ("paper", "measured"):
        raise UnsupportedError(f"unknown cost convention {convention!r}")
    if _is_pairwise_tiling(chain, tiling):
        first, second, fcm_type = _pairwise_dispatch(chain, tiling)
        return fcm_gma(fcm_type, first, second, tiling, convention)
    return _chain_gma_general(chain, tiling, convention)


# ---- feasibility -------------------------------------------------------------


def _max_extents(chain: FusedChain, tile_h: int, tile_w: int) -> list[tuple[int, int]]:
    """Unclamped per-boundary window extents (worst-case interior tile)."""
    eh, ew = tile_h, tile_w
    per = [(eh, ew)]
    for spec in reversed(chain.specs):
        eh = input_extent(eh, spec.kernel, spec.stride)
        ew = input_extent(ew, spec.kernel, spec.stride)
        per.append((eh, ew))
    per.reverse()
    return per


def chain_footprints(
    chain: FusedChain, tiling: Mapping[str, int]
) -> tuple[int, int, int]:
    """(L1 working set, shared-memory need, #output tiles) of a configuration.

    Mirrors the chain kernel's capacity checks: every intermediate lives in
    a commBuffer sized for the worst-case halo-extended window; a consumer
    stage frees its producer's buffer when it finishes, so the shared-memory
    high-water mark is the largest *adjacent pair* of commBuffers.  The L1
    working set composes the same per-stage terms as the pairwise models:
    resident DW windows/filters, streamed PW reduction chunks, and the final
    stage's output tile.
    """
    from .costs import STREAM_CHUNK, streamed_matmul_l1_bytes

    if _is_pairwise_tiling(chain, tiling):
        from .fcm_costs import fcm_footprints

        first, second, fcm_type = _pairwise_dispatch(chain, tiling)
        return fcm_footprints(fcm_type, first, second, tiling)

    n = chain.length
    eb = chain.dtype.nbytes
    tile_h, tile_w = _clamp_tiles(chain, tiling)
    ext = _max_extents(chain, tile_h, tile_w)
    comm = [0] * n  # comm[b] holds boundary b's buffer bytes (1..n-1 used)
    for b in range(1, n):
        c_b = chain.specs[b - 1].out_channels
        comm[b] = c_b * ext[b][0] * ext[b][1] * eb
    if n == 2:
        shared = comm[1]
    else:
        shared = max(comm[b] + (comm[b + 1] if b + 1 < n else 0) for b in range(1, n))

    l1 = sum(comm)
    first, last = chain.first, chain.last
    if first.kind is ConvKind.DEPTHWISE:
        l1 += first.in_channels * ext[0][0] * ext[0][1] * eb
        l1 += first.in_channels * first.kernel * first.kernel * eb
    else:
        l1 += STREAM_CHUNK * (first.out_channels + ext[1][0] * ext[1][1]) * eb
    for b in range(2, n):  # interior stages
        stage = chain.specs[b - 1]
        if stage.kind is ConvKind.DEPTHWISE:
            l1 += stage.out_channels * stage.kernel * stage.kernel * eb
        else:
            l1 += STREAM_CHUNK * (stage.out_channels + ext[b][0] * ext[b][1]) * eb
    if last.kind is ConvKind.POINTWISE:
        tile_m = min(tiling["tile_m"], last.out_channels)
        l1 += streamed_matmul_l1_bytes(tile_m, tile_h * tile_w, eb)
    else:
        l1 += last.out_channels * last.kernel * last.kernel * eb
        l1 += last.out_channels * tile_h * tile_w * eb

    n_tiles = ceil_div(last.out_h, tile_h) * ceil_div(last.out_w, tile_w)
    return l1, shared, n_tiles


def chain_feasible(
    chain: FusedChain, tiling: Mapping[str, int], gpu: GpuSpec
) -> bool:
    """Generalized Eq. 4 constraints: L1 fit, shared fit, >= #SMs tiles."""
    if _is_pairwise_tiling(chain, tiling):
        first, second, fcm_type = _pairwise_dispatch(chain, tiling)
        return fcm_feasible(fcm_type, first, second, tiling, gpu)
    l1, shared, n_tiles = chain_footprints(chain, tiling)
    return l1 <= gpu.l1_bytes and shared <= gpu.shared_bytes and n_tiles >= gpu.sm_count
