"""Layer-by-layer global-memory-access estimators (paper Eq. 2 and Eq. 3).

Costs are computed in *elements* and converted to bytes with the layer dtype,
since the equations are element-counting identities.  Two conventions are
implemented:

* ``paper`` — the equations exactly as printed.  Two notational choices are
  resolved as documented in DESIGN.md: Eq. 2's weight-reload factor is read
  as the number of *spatial* OFM tiles (consistent with Eq. 3), and Eq. 3
  charges overlap as ``2 x IFMsD x Overlap``.
* ``measured`` — what an OS-LWS kernel actually issues, with border clamping
  and one extra load per shared halo element; this convention matches the
  simulator's byte counters exactly and is verified by integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tiling import DwTiling, PwTiling, overlap_elements, tile_input_range
from ..errors import ShapeError, UnsupportedError
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind, ConvSpec

__all__ = [
    "GmaEstimate",
    "pw_gma",
    "dw_gma",
    "lbl_gma",
    "loaded_axis_elems",
    "loaded_axis_table",
    "pw_tile_footprint",
    "dw_tile_footprint",
    "pw_feasible",
    "dw_feasible",
    "STREAM_CHUNK",
    "streamed_matmul_l1_bytes",
]

_CONVENTIONS = ("paper", "measured")


@dataclass(frozen=True)
class GmaEstimate:
    """A global-memory-access estimate for one kernel configuration."""

    reads_elems: int
    writes_elems: int
    elem_bytes: int

    @property
    def total_elems(self) -> int:
        return self.reads_elems + self.writes_elems

    @property
    def total_bytes(self) -> int:
        return self.total_elems * self.elem_bytes

    @property
    def read_bytes(self) -> int:
        return self.reads_elems * self.elem_bytes

    @property
    def write_bytes(self) -> int:
        return self.writes_elems * self.elem_bytes


def _check_convention(convention: str) -> None:
    if convention not in _CONVENTIONS:
        raise UnsupportedError(f"unknown cost convention {convention!r}; use {_CONVENTIONS}")


def loaded_axis_elems(
    out_size: int, tile: int, kernel: int, stride: int, padding: int, in_size: int
) -> int:
    """Input elements loaded along one axis, summed over all tiles (clamped).

    This is the measured-convention analogue of ``size + overlap``: each tile
    loads its halo-extended window, borders clamp to the feature map.
    """
    total = 0
    for t0 in range(0, out_size, tile):
        tlen = min(tile, out_size - t0)
        lo, hi = tile_input_range(t0, tlen, kernel, stride, padding, in_size)
        total += max(hi - lo, 0)
    return total


def loaded_axis_table(
    out_size: int, tiles, kernel: int, stride: int, padding: int, in_size: int
) -> tuple[int, ...]:
    """:func:`loaded_axis_elems` for every candidate tile size along one axis.

    The vectorized search evaluates whole candidate grids at once; the
    measured convention is not closed-form (border clamping), but it *is*
    axis-separable, so one small table per axis — one entry per distinct
    tile size — is all the grid evaluation needs.
    """
    return tuple(
        loaded_axis_elems(out_size, t, kernel, stride, padding, in_size) for t in tiles
    )


def pw_gma(spec: ConvSpec, tiling: PwTiling, convention: str = "paper") -> GmaEstimate:
    """Eq. 2: pointwise-layer global memory accesses under OS-LWS tiling.

    ``PwGMA = ceil(WeightsSz/WeightsTileSz) * IFMsSz + OFMsSz
            + n_spatial_tiles * WeightsSz``
    """
    _check_convention(convention)
    if spec.kind is not ConvKind.POINTWISE:
        raise ShapeError(f"{spec.name}: pw_gma needs a pointwise layer")
    m, c = spec.out_channels, spec.in_channels
    out_hw = spec.out_h * spec.out_w
    weights = m * c
    # A strided PW only reads the subsampled pixels; for the ubiquitous
    # stride-1 case this equals the paper's IFMsSz.
    ifm_read_once = c * out_hw
    n_w_tiles = tiling.num_filter_tiles(m)
    n_sp_tiles = tiling.num_spatial_tiles(out_hw)
    reads = n_w_tiles * ifm_read_once + n_sp_tiles * weights
    writes = m * out_hw
    return GmaEstimate(reads, writes, spec.dtype.nbytes)


def dw_gma(spec: ConvSpec, tiling: DwTiling, convention: str = "paper") -> GmaEstimate:
    """Eq. 3: depthwise-layer global memory accesses under OS-LWS tiling.

    ``DwGMA = 2 * IFMsD * Overlap + IFMsSz + OFMsSz
            + ceil(OFMsHW / OFMsTileHW) * WeightsSz``
    """
    _check_convention(convention)
    if spec.kind is not ConvKind.DEPTHWISE:
        raise ShapeError(f"{spec.name}: dw_gma needs a depthwise layer")
    c, k, s, pad = spec.in_channels, spec.kernel, spec.stride, spec.padding
    weights = c * k * k
    n_sp_tiles = tiling.num_spatial_tiles(spec.out_h, spec.out_w)
    if convention == "paper":
        ovl = overlap_elements(
            channel_w=spec.in_w,
            channel_h=spec.in_h,
            tile_w=tiling.tile_w * s,
            tile_h=tiling.tile_h * s,
            filter_w=k,
            filter_h=k,
            stride=s,
        )
        reads = 2 * c * ovl + c * spec.in_h * spec.in_w + n_sp_tiles * weights
    else:
        rows = loaded_axis_elems(spec.out_h, tiling.tile_h, k, s, pad, spec.in_h)
        cols = loaded_axis_elems(spec.out_w, tiling.tile_w, k, s, pad, spec.in_w)
        reads = c * rows * cols + n_sp_tiles * weights
    writes = c * spec.out_h * spec.out_w
    return GmaEstimate(reads, writes, spec.dtype.nbytes)


def lbl_gma(
    spec: ConvSpec, tiling: PwTiling | DwTiling, convention: str = "paper"
) -> GmaEstimate:
    """Dispatch Eq. 2 / Eq. 3 by layer kind."""
    if spec.kind is ConvKind.POINTWISE:
        if not isinstance(tiling, PwTiling):
            raise ShapeError(f"{spec.name}: pointwise layer needs a PwTiling")
        return pw_gma(spec, tiling, convention)
    if spec.kind is ConvKind.DEPTHWISE:
        if not isinstance(tiling, DwTiling):
            raise ShapeError(f"{spec.name}: depthwise layer needs a DwTiling")
        return dw_gma(spec, tiling, convention)
    raise UnsupportedError(f"{spec.name}: no LBL cost model for {spec.kind}")


# ---- feasibility constraints (shared with the FCM estimators) -----------------

#: Reduction-dimension streaming chunk (elements).  Output-stationary kernels
#: keep partial sums in registers and stream the C dimension through L1 in
#: chunks — the standard GEMM discipline.  Streaming changes *residency*, not
#: the GMA totals of Eq. 2-4, so the tile-fit constraints charge the chunk
#: rather than the full reduction extent.
STREAM_CHUNK = 8


def streamed_matmul_l1_bytes(m_tile: int, n_tile: int, elem_bytes: int) -> int:
    """L1 working set of an OS matmul tile with reduction streaming.

    The resident set is the output tile (partial sums) plus one weights chunk
    (``m_tile x STREAM_CHUNK``) and one input chunk (``STREAM_CHUNK x n_tile``).
    """
    return (m_tile * n_tile + STREAM_CHUNK * (m_tile + n_tile)) * elem_bytes


def pw_tile_footprint(spec: ConvSpec, tiling: PwTiling) -> int:
    """Eq. 2's L1 constraint operand with reduction streaming, in bytes."""
    return streamed_matmul_l1_bytes(tiling.tile_m, tiling.tile_hw, spec.dtype.nbytes)


def dw_tile_footprint(spec: ConvSpec, tiling: DwTiling) -> int:
    """Eq. 3's L1 constraint operand, with the halo-extended input tile."""
    k, s = spec.kernel, spec.stride
    eb = spec.dtype.nbytes
    in_h = (tiling.tile_h - 1) * s + k
    in_w = (tiling.tile_w - 1) * s + k
    return (
        tiling.tile_c * in_h * in_w
        + tiling.tile_c * tiling.tile_h * tiling.tile_w
        + tiling.tile_c * k * k
    ) * eb


def pw_feasible(spec: ConvSpec, tiling: PwTiling, gpu: GpuSpec) -> bool:
    """Both Eq. 2 constraints: L1 fit and >= #SMs output tiles."""
    if pw_tile_footprint(spec, tiling) > gpu.l1_bytes:
        return False
    return tiling.num_ofm_tiles(spec.out_channels, spec.out_h * spec.out_w) >= gpu.sm_count


def dw_feasible(spec: ConvSpec, tiling: DwTiling, gpu: GpuSpec) -> bool:
    """Both Eq. 3 constraints: L1 fit and >= #SMs output tiles."""
    if dw_tile_footprint(spec, tiling) > gpu.l1_bytes:
        return False
    return tiling.num_ofm_tiles(spec.in_channels, spec.out_h, spec.out_w) >= gpu.sm_count
