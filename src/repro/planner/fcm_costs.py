"""FCM global-memory-access estimators (paper §IV-B, Eq. 4 and derivatives).

Two key differences from the layer-by-layer estimators (paper §IV-B): the
intermediate feature maps never touch global memory, and each fused layer's
accesses depend on the other's tiling.  Eq. 4 is given for PWDW_R; "the
equations of the other FCMs are constructed from the PW and DW Equations 2
and 3 similarly" — those constructions live here, with the ``measured``
convention again matching the simulated kernels byte-for-byte.

Feasibility adds the fused constraints: five tiles + commBuffer within L1,
the shared-memory subset within the shared partition, and at least #SMs
output tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.fcm import FcmType
from ..core.tiling import ceil_div, overlap_elements
from ..errors import ShapeError, UnsupportedError
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind, ConvSpec
from .costs import GmaEstimate, loaded_axis_elems

__all__ = [
    "FcmCost",
    "fcm_gma",
    "fcm_feasible",
    "fcm_footprints",
    "covered_axis_elems",
    "covered_axis_table",
]


@dataclass(frozen=True)
class FcmCost:
    """GMA estimate plus the redundancy the module incurs."""

    gma: GmaEstimate
    redundant_macs: int
    useful_macs: int

    @property
    def redundancy_ratio(self) -> float:
        total = self.useful_macs + self.redundant_macs
        return self.redundant_macs / total if total else 0.0


def _validate_pair(fcm_type: FcmType, first: ConvSpec, second: ConvSpec) -> None:
    kinds = {
        FcmType.DWPW: (ConvKind.DEPTHWISE, ConvKind.POINTWISE),
        FcmType.PWDW: (ConvKind.POINTWISE, ConvKind.DEPTHWISE),
        FcmType.PWDW_R: (ConvKind.POINTWISE, ConvKind.DEPTHWISE),
        FcmType.PWPW: (ConvKind.POINTWISE, ConvKind.POINTWISE),
    }[fcm_type]
    if (first.kind, second.kind) != kinds:
        raise ShapeError(
            f"{fcm_type}: expected {kinds[0].short}->{kinds[1].short}, "
            f"got {first.kind.short}->{second.kind.short}"
        )
    if (first.out_channels, first.out_h, first.out_w) != (
        second.in_channels,
        second.in_h,
        second.in_w,
    ):
        raise ShapeError(
            f"{fcm_type}: {first.name} output does not feed {second.name} input"
        )
    if first.dtype is not second.dtype:
        raise ShapeError(f"{fcm_type}: fused layers must share one precision")


def _dwpw_gma(
    dw: ConvSpec, pw: ConvSpec, tiling: Mapping[str, int], convention: str
) -> FcmCost:
    """DWPW: spatial tiles over all channels; PW weights streamed per tile."""
    c = dw.in_channels
    m = pw.out_channels
    k, s, pad = dw.kernel, dw.stride, dw.padding
    tile_h = min(tiling["tile_h"], dw.out_h)
    tile_w = min(tiling["tile_w"], dw.out_w)
    n_sp = ceil_div(dw.out_h, tile_h) * ceil_div(dw.out_w, tile_w)
    dw_w = c * k * k
    pw_w = m * c
    if convention == "paper":
        ovl = overlap_elements(dw.in_w, dw.in_h, tile_w * s, tile_h * s, k, k, s)
        ifm_reads = 2 * c * ovl + c * dw.in_h * dw.in_w
    else:
        rows = loaded_axis_elems(dw.out_h, tile_h, k, s, pad, dw.in_h)
        cols = loaded_axis_elems(dw.out_w, tile_w, k, s, pad, dw.in_w)
        ifm_reads = c * rows * cols
    reads = ifm_reads + n_sp * (dw_w + pw_w)
    writes = m * pw.out_h * pw.out_w
    useful = dw.macs + pw.macs
    return FcmCost(GmaEstimate(reads, writes, dw.dtype.nbytes), 0, useful)


def _pwdw_gma(
    pw: ConvSpec, dw: ConvSpec, tiling: Mapping[str, int], convention: str
) -> FcmCost:
    """PWDW: channel-group tiles over the full spatial extent, no redundancy."""
    del convention  # identical in both conventions: no halo, no clamping
    c = pw.in_channels
    cmid = pw.out_channels
    tile_f = min(tiling["tile_f"], cmid)
    n_f = ceil_div(cmid, tile_f)
    pw_ifm = c * pw.out_h * pw.out_w
    reads = n_f * pw_ifm + cmid * c + cmid * dw.kernel * dw.kernel
    writes = cmid * dw.out_h * dw.out_w
    return FcmCost(GmaEstimate(reads, writes, pw.dtype.nbytes), 0, pw.macs + dw.macs)


def _pwdw_r_gma(
    pw: ConvSpec, dw: ConvSpec, tiling: Mapping[str, int], convention: str
) -> FcmCost:
    """PWDW_R per Eq. 4, with intermediate halo recomputation."""
    c = pw.in_channels
    cmid = pw.out_channels
    k, s, pad = dw.kernel, dw.stride, dw.padding
    tile_f = min(tiling["tile_f"], cmid)
    tile_h = min(tiling["tile_h"], dw.out_h)
    tile_w = min(tiling["tile_w"], dw.out_w)
    n_f = ceil_div(cmid, tile_f)
    n_sp = ceil_div(dw.out_h, tile_h) * ceil_div(dw.out_w, tile_w)
    pw_w = cmid * c
    dw_w = cmid * k * k
    # Intermediate geometry: the DW input (== PW output) grid.
    if convention == "paper":
        ovl = overlap_elements(dw.in_w, dw.in_h, tile_w * s, tile_h * s, k, k, s)
        # Eq. 4 first term: (2 * PwIFMsD * DwOverlap + PwIFMsSz) * max(weight tile ratios)
        ifm_reads = (2 * c * ovl + c * pw.out_h * pw.out_w) * n_f
        interm_executed = cmid * (dw.in_h * dw.in_w + ovl)
        interm_unique = cmid * dw.in_h * dw.in_w
    else:
        rows = loaded_axis_elems(dw.out_h, tile_h, k, s, pad, dw.in_h)
        cols = loaded_axis_elems(dw.out_w, tile_w, k, s, pad, dw.in_w)
        ifm_reads = n_f * c * rows * cols
        rows_u = _covered_axis(dw.out_h, tile_h, k, s, pad, dw.in_h)
        cols_u = _covered_axis(dw.out_w, tile_w, k, s, pad, dw.in_w)
        interm_executed = cmid * rows * cols
        interm_unique = cmid * rows_u * cols_u
    reads = ifm_reads + n_sp * pw_w + n_sp * dw_w
    writes = cmid * dw.out_h * dw.out_w
    redundant = max(interm_executed - interm_unique, 0) * c
    # Useful MACs are exactly one computation of every intermediate element
    # (clamping can make the covered footprint smaller than pw.macs implies).
    useful = interm_unique * c + dw.macs
    return FcmCost(GmaEstimate(reads, writes, pw.dtype.nbytes), redundant, useful)


def _pwpw_gma(
    pw1: ConvSpec, pw2: ConvSpec, tiling: Mapping[str, int], convention: str
) -> FcmCost:
    """PWPW: spatial tiles; both weight matrices re-read per spatial tile."""
    del convention  # 1x1 filters: no halo in either convention
    c = pw1.in_channels
    cmid = pw1.out_channels
    m = pw2.out_channels
    out_hw = pw2.out_h * pw2.out_w
    tile_hw = min(tiling["tile_hw"], out_hw)
    n_sp = ceil_div(out_hw, tile_hw)
    reads = c * out_hw + n_sp * (cmid * c + m * cmid)
    writes = m * out_hw
    return FcmCost(GmaEstimate(reads, writes, pw1.dtype.nbytes), 0, pw1.macs + pw2.macs)


def _covered_axis(out: int, tile: int, k: int, s: int, pad: int, in_size: int) -> int:
    """Distinct input indices covered along one axis (clamped windows union)."""
    from ..core.tiling import tile_input_range

    used, prev_hi = 0, 0
    for t0 in range(0, out, tile):
        tlen = min(tile, out - t0)
        lo, hi = tile_input_range(t0, tlen, k, s, pad, in_size)
        lo = max(lo, prev_hi)
        if hi > lo:
            used += hi - lo
            prev_hi = hi
    return used


#: Public name for the distinct-coverage counter: the vectorized search and
#: the chain cost model both need the same clamped-union geometry.
covered_axis_elems = _covered_axis


def covered_axis_table(
    out: int, tiles, k: int, s: int, pad: int, in_size: int
) -> tuple[int, ...]:
    """:func:`covered_axis_elems` for every candidate tile size (one axis).

    Like :func:`repro.planner.costs.loaded_axis_table`, this is the
    axis-separable ingredient the whole-grid evaluation broadcasts.
    """
    return tuple(_covered_axis(out, t, k, s, pad, in_size) for t in tiles)


_ESTIMATORS = {
    FcmType.DWPW: _dwpw_gma,
    FcmType.PWDW: _pwdw_gma,
    FcmType.PWDW_R: _pwdw_r_gma,
    FcmType.PWPW: _pwpw_gma,
}


def fcm_gma(
    fcm_type: FcmType,
    first: ConvSpec,
    second: ConvSpec,
    tiling: Mapping[str, int],
    convention: str = "paper",
) -> FcmCost:
    """Estimate the global memory accesses of one FCM configuration."""
    if convention not in ("paper", "measured"):
        raise UnsupportedError(f"unknown cost convention {convention!r}")
    _validate_pair(fcm_type, first, second)
    return _ESTIMATORS[fcm_type](first, second, tiling, convention)


# ---- feasibility -------------------------------------------------------------


def fcm_footprints(
    fcm_type: FcmType, first: ConvSpec, second: ConvSpec, tiling: Mapping[str, int]
) -> tuple[int, int, int]:
    """(L1 working set, shared-memory need, #output tiles) of a configuration.

    Residency follows the reduction-streaming discipline (see
    :data:`repro.planner.costs.STREAM_CHUNK`): pointwise stages stream the C
    dimension through L1 while partial sums accumulate in registers or in the
    commBuffer; weight tiles move through registers (the paper's ``shfl_sync``
    path, §III-B), so only the commBuffer occupies shared memory.  Mirrors
    each fused kernel's capacity checks exactly.
    """
    from .costs import STREAM_CHUNK, streamed_matmul_l1_bytes

    eb = first.dtype.nbytes
    if fcm_type is FcmType.DWPW:
        dw, pw = first, second
        k, s = dw.kernel, dw.stride
        tile_h = min(tiling["tile_h"], dw.out_h)
        tile_w = min(tiling["tile_w"], dw.out_w)
        tile_m = min(tiling["tile_m"], pw.out_channels)
        comm = dw.in_channels * tile_h * tile_w * eb
        in_h = (tile_h - 1) * s + k
        in_w = (tile_w - 1) * s + k
        # DW stage: halo window + filter slices; PW stage: streamed matmul
        # against the resident commBuffer.
        l1 = (
            dw.in_channels * in_h * in_w * eb
            + dw.in_channels * k * k * eb
            + comm
            + streamed_matmul_l1_bytes(tile_m, tile_h * tile_w, eb)
        )
        shared = comm
        n_tiles = ceil_div(dw.out_h, tile_h) * ceil_div(dw.out_w, tile_w)
        return l1, shared, n_tiles
    if fcm_type is FcmType.PWDW:
        pw, dw = first, second
        tile_f = min(tiling["tile_f"], pw.out_channels)
        comm = tile_f * pw.out_h * pw.out_w * eb
        k = dw.kernel
        dw_w = tile_f * k * k * eb
        stream = STREAM_CHUNK * (tile_f + pw.out_w) * eb  # PW chunk in flight
        out_row = tile_f * dw.out_w * eb
        l1 = dw_w + stream + out_row + comm
        shared = comm
        n_tiles = ceil_div(pw.out_channels, tile_f)
        return l1, shared, n_tiles
    if fcm_type is FcmType.PWDW_R:
        pw, dw = first, second
        k, s = dw.kernel, dw.stride
        tile_f = min(tiling["tile_f"], pw.out_channels)
        tile_h = min(tiling["tile_h"], dw.out_h)
        tile_w = min(tiling["tile_w"], dw.out_w)
        wr = (tile_h - 1) * s + k
        wc = (tile_w - 1) * s + k
        comm = tile_f * wr * wc * eb
        dw_w = tile_f * k * k * eb
        stream = STREAM_CHUNK * (tile_f + wr * wc) * eb
        l1 = comm + dw_w + stream + tile_f * tile_h * tile_w * eb
        shared = comm
        n_tiles = (
            ceil_div(pw.out_channels, tile_f)
            * ceil_div(dw.out_h, tile_h)
            * ceil_div(dw.out_w, tile_w)
        )
        return l1, shared, n_tiles
    if fcm_type is FcmType.PWPW:
        pw1, pw2 = first, second
        out_hw = pw2.out_h * pw2.out_w
        tile_hw = min(tiling["tile_hw"], out_hw)
        tile_m = min(tiling["tile_m"], pw2.out_channels)
        cmid = pw1.out_channels
        comm = cmid * tile_hw * eb
        stream1 = STREAM_CHUNK * (cmid + tile_hw) * eb
        l1 = comm + stream1 + streamed_matmul_l1_bytes(tile_m, tile_hw, eb)
        shared = comm
        n_tiles = ceil_div(out_hw, tile_hw)
        return l1, shared, n_tiles
    raise UnsupportedError(f"unknown FCM type {fcm_type}")


def fcm_feasible(
    fcm_type: FcmType,
    first: ConvSpec,
    second: ConvSpec,
    tiling: Mapping[str, int],
    gpu: GpuSpec,
) -> bool:
    """Eq. 4 constraints: L1 fit (incl. commBuffer), shared fit, >= #SMs tiles."""
    l1, shared, n_tiles = fcm_footprints(fcm_type, first, second, tiling)
    return l1 <= gpu.l1_bytes and shared <= gpu.shared_bytes and n_tiles >= gpu.sm_count
