"""Analytic counter builders with L2 re-read annotations.

These produce :class:`~repro.gpu.counters.AccessCounters` byte-identical to
what the simulated kernels meter, plus *re-read annotations*: portions of the
read traffic that revisit a tensor already streamed once (weight tiles
re-fetched per spatial tile, IFMs re-streamed per filter group, halo lines).
The roofline serves re-reads of L2-resident tensors on-chip, which is what
lets weight-heavy layers (e.g. Xception's 728-channel middle flow) run at
paper-like speed despite their nominal GMA.
"""

from __future__ import annotations

from typing import Mapping

from ..core.chain import FusedChain
from ..core.fcm import FcmType
from ..core.tiling import DwTiling, PwTiling, ceil_div
from ..errors import UnsupportedError
from ..gpu.counters import AccessCounters
from ..ir.layers import ConvKind, ConvSpec
from .chain_costs import chain_gma
from .costs import lbl_gma
from .fcm_costs import fcm_gma

__all__ = ["lbl_counters", "fcm_counters", "chain_counters", "pair_lbl_counters"]


def _pw_rereads(spec: ConvSpec, tiling: PwTiling, counters: AccessCounters) -> None:
    eb = spec.dtype.nbytes
    out_hw = spec.out_h * spec.out_w
    tile_m = min(tiling.tile_m, spec.out_channels)
    tile_hw = min(tiling.tile_hw, out_hw)
    n_w = ceil_div(spec.out_channels, tile_m)
    n_sp = ceil_div(out_hw, tile_hw)
    ifm_pass = spec.in_channels * out_hw * eb
    w = spec.weights_elements * eb
    counters.reread(ifm_pass, (n_w - 1) * ifm_pass)
    counters.reread(w, (n_sp - 1) * w)


def _dw_rereads(spec: ConvSpec, tiling: DwTiling, counters: AccessCounters) -> None:
    eb = spec.dtype.nbytes
    tile_h = min(tiling.tile_h, spec.out_h)
    tile_w = min(tiling.tile_w, spec.out_w)
    n_sp = ceil_div(spec.out_h, tile_h) * ceil_div(spec.out_w, tile_w)
    w = spec.weights_elements * eb
    counters.reread(w, (n_sp - 1) * w)
    # Halo re-loads: everything the kernel read beyond one IFM pass.
    ifm_bytes = spec.ifm.nbytes
    halo = counters.global_reads.get("lbl", counters.read_bytes) - w * n_sp - ifm_bytes
    counters.reread(ifm_bytes, max(halo, 0))


def lbl_counters(spec: ConvSpec, tiling: Mapping[str, int]) -> AccessCounters:
    """Counters of one layer-by-layer kernel launch (measured convention)."""
    if spec.kind is ConvKind.POINTWISE:
        t = PwTiling(tiling["tile_m"], tiling["tile_hw"])
    elif spec.kind is ConvKind.DEPTHWISE:
        t = DwTiling(tiling["tile_c"], tiling["tile_h"], tiling["tile_w"])
    else:
        raise UnsupportedError(f"{spec.name}: no LBL counters for {spec.kind}")
    est = lbl_gma(spec, t, "measured")
    counters = AccessCounters()
    counters.kernel_launches = 1
    counters.read("lbl", est.read_bytes)
    counters.write("lbl", est.write_bytes)
    counters.compute(spec.macs)
    if spec.kind is ConvKind.POINTWISE:
        _pw_rereads(spec, t, counters)
    else:
        _dw_rereads(spec, t, counters)
    return counters


def fcm_counters(
    fcm_type: FcmType,
    first: ConvSpec,
    second: ConvSpec,
    tiling: Mapping[str, int],
) -> AccessCounters:
    """Counters of one fused-module launch (redundant MACs included)."""
    cost = fcm_gma(fcm_type, first, second, tiling, "measured")
    counters = AccessCounters()
    counters.kernel_launches = 1
    counters.read("fcm", cost.gma.read_bytes)
    counters.write("fcm", cost.gma.write_bytes)
    counters.compute(cost.useful_macs, cost.redundant_macs)
    eb = first.dtype.nbytes
    w1 = first.weights_elements * eb
    w2 = second.weights_elements * eb
    if fcm_type is FcmType.DWPW:
        dw, pw = first, second
        tile_h = min(tiling["tile_h"], dw.out_h)
        tile_w = min(tiling["tile_w"], dw.out_w)
        n_sp = ceil_div(dw.out_h, tile_h) * ceil_div(dw.out_w, tile_w)
        counters.reread(w1, (n_sp - 1) * w1)
        counters.reread(w2, (n_sp - 1) * w2)
        halo = counters.read_bytes - n_sp * (w1 + w2) - dw.ifm.nbytes
        counters.reread(dw.ifm.nbytes, max(halo, 0))
    elif fcm_type is FcmType.PWDW:
        pw = first
        tile_f = min(tiling["tile_f"], pw.out_channels)
        n_f = ceil_div(pw.out_channels, tile_f)
        ifm_pass = pw.in_channels * pw.out_h * pw.out_w * eb
        counters.reread(ifm_pass, (n_f - 1) * ifm_pass)
    elif fcm_type is FcmType.PWDW_R:
        pw, dw = first, second
        tile_f = min(tiling["tile_f"], pw.out_channels)
        tile_h = min(tiling["tile_h"], dw.out_h)
        tile_w = min(tiling["tile_w"], dw.out_w)
        n_f = ceil_div(pw.out_channels, tile_f)
        n_sp = ceil_div(dw.out_h, tile_h) * ceil_div(dw.out_w, tile_w)
        counters.reread(w1, (n_sp - 1) * w1)
        counters.reread(w2, (n_sp - 1) * w2)
        ifm_pass = pw.in_channels * pw.out_h * pw.out_w * eb
        ifm_extra = counters.read_bytes - n_sp * (w1 + w2) - ifm_pass
        counters.reread(ifm_pass, max(ifm_extra, 0))
    elif fcm_type is FcmType.PWPW:
        pw2 = second
        out_hw = pw2.out_h * pw2.out_w
        tile_hw = min(tiling["tile_hw"], out_hw)
        n_sp = ceil_div(out_hw, tile_hw)
        counters.reread(w1, (n_sp - 1) * w1)
        counters.reread(w2, (n_sp - 1) * w2)
    return counters


def chain_counters(
    specs: tuple[ConvSpec, ...],
    tiling: Mapping[str, int],
    fcm_type: FcmType | None = None,
) -> AccessCounters:
    """Counters of one fused-chain launch (redundant MACs included).

    Length-2 chains with a pairwise ``fcm_type`` delegate to
    :func:`fcm_counters` so the pairwise annotations are preserved
    byte-for-byte; longer chains use the compositional chain estimator.
    """
    if fcm_type is not None and len(specs) == 2:
        return fcm_counters(fcm_type, specs[0], specs[1], tiling)
    chain = FusedChain(specs)
    cost = chain_gma(chain, tiling, "measured")
    counters = AccessCounters()
    counters.kernel_launches = 1
    counters.read("fcm", cost.gma.read_bytes)
    counters.write("fcm", cost.gma.write_bytes)
    counters.compute(cost.useful_macs, cost.redundant_macs)
    # Re-read annotations: every stage's weights stream once per spatial
    # tile; any input traffic beyond one pass over the (subsampled) IFM is
    # halo re-loading of an L2-resident tensor.
    eb = chain.dtype.nbytes
    first, last = chain.first, chain.last
    tile_h = min(tiling["tile_h"], last.out_h)
    tile_w = min(tiling["tile_w"], last.out_w)
    n_sp = ceil_div(last.out_h, tile_h) * ceil_div(last.out_w, tile_w)
    for spec in chain.specs:
        w = spec.weights_elements * eb
        counters.reread(w, (n_sp - 1) * w)
    if first.kind is ConvKind.POINTWISE:
        ifm_pass = first.in_channels * first.out_h * first.out_w * eb
    else:
        ifm_pass = first.ifm.nbytes
    total_w = chain.weights_bytes
    ifm_extra = counters.read_bytes - n_sp * total_w - ifm_pass
    counters.reread(ifm_pass, max(ifm_extra, 0))
    return counters


def pair_lbl_counters(
    first: ConvSpec,
    second: ConvSpec,
    first_tiling: Mapping[str, int],
    second_tiling: Mapping[str, int],
) -> AccessCounters:
    """Counters of the two-kernel layer-by-layer execution of a pair."""
    agg = lbl_counters(first, first_tiling)
    agg.merge(lbl_counters(second, second_tiling))
    return agg
