"""Whole-grid tile-size evaluation: the search families as array programs.

The scalar sweeps in :mod:`repro.planner.search` visit every pow2 candidate
with Python loops — after the fast-path engine removed kernel execution from
the profile, that interpreter-bound search became the dominant planning cost.
This module evaluates each family's *entire* candidate grid at once: the
pow2 axes are materialized as 1-D ``int64`` arrays, Eq. 2/3/4-family
feasibility and GMA become broadcast expressions over their outer product,
and the winner falls out of one stable lexsort.

Every estimator here is axis-separable: GMA and footprint terms factor into
small per-axis tables (``ceil_div`` ladders, Eq. 1 overlap terms, the
measured convention's clamped ``loaded``/``covered`` extents), so a grid of
thousands of candidates costs a handful of table builds plus a few
broadcast multiplies.  All arithmetic stays in ``int64`` — the same exact
integers the scalar path computes — and the rank order reproduces
``search._rank_key`` bit-for-bit: warp-multiple thread blocks first, then
GMA, then larger tiles, ties broken by the scalar sweep's visiting order
(C-order flat index, axes nested exactly like the reference loops).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core.chain import FusedChain, composed_receptive_field
from ..core.fcm import FcmType
from ..errors import PlanError, UnsupportedError
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind, ConvSpec
from .chain_costs import (
    _stage_macs_per_elem,
    chain_axis_tables,
    chain_tiling_keys,
    chain_window_extents,
)
from .costs import STREAM_CHUNK, _check_convention, loaded_axis_table
from .fcm_costs import _validate_pair, covered_axis_table

__all__ = [
    "TilingGrid",
    "pow2_candidates",
    "lbl_grid",
    "fcm_grid",
    "chain_grid",
]


@lru_cache(maxsize=None)
def pow2_candidates(limit: int, minimum: int = 1) -> tuple[int, ...]:
    """Powers of two in ``[minimum, limit]``, always including ``limit``.

    Pure in its arguments and heavily repeated across layers (every 7x7 /
    14x14 / 28x28 zoo geometry rebuilds the same ladder), so the result is
    cached and immutable.
    """
    vals: list[int] = []
    v = minimum
    while v < limit:
        vals.append(v)
        v *= 2
    vals.append(limit)
    return tuple(sorted(set(vals)))


def _cdiv(a, b):
    """``ceil_div`` for int64 arrays (floor division identity)."""
    return -(-a // b)


def _axis(vals) -> np.ndarray:
    return np.asarray(vals, dtype=np.int64)


@lru_cache(maxsize=None)
def _pow2_axis(limit: int, minimum: int = 1) -> np.ndarray:
    """The pow2 candidate ladder as a cached (treat-as-immutable) array."""
    return _axis(pow2_candidates(limit, minimum))


@lru_cache(maxsize=None)
def _loaded_table(
    out: int, tiles: tuple[int, ...], k: int, s: int, pad: int, in_size: int
) -> np.ndarray:
    """Cached measured-convention loaded-extent table (pure in its args)."""
    return _axis(loaded_axis_table(out, tiles, k, s, pad, in_size))


@lru_cache(maxsize=None)
def _covered_table(
    out: int, tiles: tuple[int, ...], k: int, s: int, pad: int, in_size: int
) -> np.ndarray:
    """Cached measured-convention covered-extent table (pure in its args)."""
    return _axis(covered_axis_table(out, tiles, k, s, pad, in_size))


@dataclass(frozen=True)
class TilingGrid:
    """One search family's full candidate grid, evaluated as arrays.

    ``axes[i]`` holds the pow2 candidates of ``keys[i]``; the result arrays
    all broadcast to the outer-product shape, with axes ordered exactly as
    the scalar sweep nests its loops — so a C-order flat index *is* the
    scalar enumeration index, which is what makes :meth:`best` reproduce
    the reference tie-breaking.
    """

    keys: tuple[str, ...]
    axes: tuple[np.ndarray, ...]
    feasible: np.ndarray
    gma_bytes: np.ndarray
    redundant_macs: np.ndarray
    useful_macs: np.ndarray

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(a.size for a in self.axes)

    @property
    def n_candidates(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    def threads(self) -> np.ndarray:
        """Thread-block size (tile-dimension product) of every candidate."""
        n = len(self.axes)
        out = np.ones(self.shape, dtype=np.int64)
        for i, ax in enumerate(self.axes):
            out = out * ax.reshape((1,) * i + (-1,) + (1,) * (n - i - 1))
        return out

    def tiling_at(self, flat_index: int) -> dict[str, int]:
        """The tiling dict of one candidate by scalar-sweep (C-order) index."""
        idx = np.unravel_index(flat_index, self.shape)
        return {k: int(ax[i]) for k, ax, i in zip(self.keys, self.axes, idx)}

    def best(self, warp_size: int) -> tuple[dict[str, int], int, float] | None:
        """Winner under the scalar rank order, or ``None`` if none feasible.

        Returns ``(tiling, gma_bytes, redundancy_ratio)``.  A stable lexsort
        on (warp-multiple, GMA, -threads) over the feasible cells leaves
        equal-ranked candidates in ascending flat-index order — the scalar
        sweep's first-minimum-wins tie-break.
        """
        flat = np.flatnonzero(self.feasible.ravel())
        if flat.size == 0:
            return None
        idx = np.unravel_index(flat, self.shape)
        thr = self.axes[0][idx[0]]
        for ax, ii in zip(self.axes[1:], idx[1:]):
            thr = thr * ax[ii]
        gma = self.gma_bytes[idx]
        warp_bad = thr % warp_size != 0
        at = int(np.lexsort((-thr, gma, warp_bad))[0])
        sel = tuple(int(ii[at]) for ii in idx)
        red = int(self.redundant_macs[sel])
        useful = int(self.useful_macs[sel])
        total = red + useful
        ratio = red / total if total else 0.0
        tiling = {k: int(ax[i]) for k, ax, i in zip(self.keys, self.axes, sel)}
        return tiling, int(gma[at]), ratio


# ---- layer-by-layer (Eq. 2 / Eq. 3) -------------------------------------------


def lbl_grid(spec: ConvSpec, gpu: GpuSpec, convention: str = "paper") -> TilingGrid:
    """Eq. 2 / Eq. 3 GMA and feasibility over the full LBL candidate grid."""
    _check_convention(convention)
    eb = spec.dtype.nbytes
    if spec.kind is ConvKind.POINTWISE:
        m, c = spec.out_channels, spec.in_channels
        out_hw = spec.out_h * spec.out_w
        tm = _pow2_axis(m)
        thw = _pow2_axis(out_hw, 4)
        n_w = _cdiv(m, tm)[:, None]
        n_sp = _cdiv(out_hw, thw)[None, :]
        # Eq. 2 is convention-independent (1x1 filters: no halo, no clamping).
        reads = n_w * (c * out_hw) + n_sp * (m * c)
        gma = (reads + m * out_hw) * eb
        l1 = (tm[:, None] * thw[None, :] + STREAM_CHUNK * (tm[:, None] + thw[None, :])) * eb
        feasible = (l1 <= gpu.l1_bytes) & (n_w * n_sp >= gpu.sm_count)
        zeros = np.zeros(gma.shape, dtype=np.int64)
        return TilingGrid(("tile_m", "tile_hw"), (tm, thw), feasible, gma, zeros, zeros)
    if spec.kind is ConvKind.DEPTHWISE:
        c, k, s, pad = spec.in_channels, spec.kernel, spec.stride, spec.padding
        tc = _pow2_axis(c)
        th = _pow2_axis(spec.out_h)
        tw = _pow2_axis(spec.out_w)
        shape = (tc.size, th.size, tw.size)
        n_sp = _cdiv(spec.out_h, th)[:, None] * _cdiv(spec.out_w, tw)[None, :]
        weights = c * k * k
        if convention == "paper":
            # Eq. 1 overlap is a sum of one th-term and one tw-term.
            ovl = ((_cdiv(spec.in_h, th * s) - 1) * max(k - s, 0) * spec.in_w)[:, None] + (
                (_cdiv(spec.in_w, tw * s) - 1) * max(k - s, 0) * spec.in_h
            )[None, :]
            reads = 2 * c * ovl + c * spec.in_h * spec.in_w + n_sp * weights
        else:
            rows = _loaded_table(spec.out_h, pow2_candidates(spec.out_h), k, s, pad, spec.in_h)
            cols = _loaded_table(spec.out_w, pow2_candidates(spec.out_w), k, s, pad, spec.in_w)
            reads = c * rows[:, None] * cols[None, :] + n_sp * weights
        gma = np.broadcast_to(
            ((reads + c * spec.out_h * spec.out_w) * eb)[None, :, :], shape
        )
        ext_hw = ((th - 1) * s + k)[:, None] * ((tw - 1) * s + k)[None, :]
        per_c = ext_hw + th[:, None] * tw[None, :] + k * k
        l1 = tc[:, None, None] * per_c[None, :, :] * eb
        n_ofm = _cdiv(c, tc)[:, None, None] * n_sp[None, :, :]
        feasible = (l1 <= gpu.l1_bytes) & (n_ofm >= gpu.sm_count)
        zeros = np.zeros(shape, dtype=np.int64)
        return TilingGrid(("tile_c", "tile_h", "tile_w"), (tc, th, tw), feasible, gma, zeros, zeros)
    raise PlanError(f"{spec.name}: LBL search supports only DW/PW layers")


# ---- pairwise FCMs (Eq. 4 family) ---------------------------------------------


def fcm_grid(
    fcm_type: FcmType,
    first: ConvSpec,
    second: ConvSpec,
    gpu: GpuSpec,
    convention: str = "paper",
) -> TilingGrid:
    """One pairwise FCM's GMA, redundancy and feasibility over its full grid."""
    if convention not in ("paper", "measured"):
        raise UnsupportedError(f"unknown cost convention {convention!r}")
    _validate_pair(fcm_type, first, second)
    eb = first.dtype.nbytes
    if fcm_type is FcmType.DWPW:
        dw, pw = first, second
        c, m = dw.in_channels, pw.out_channels
        k, s, pad = dw.kernel, dw.stride, dw.padding
        th = _pow2_axis(dw.out_h)
        tw = _pow2_axis(dw.out_w)
        tm = _pow2_axis(m)
        shape = (th.size, tw.size, tm.size)
        n_sp = _cdiv(dw.out_h, th)[:, None] * _cdiv(dw.out_w, tw)[None, :]
        if convention == "paper":
            ovl = ((_cdiv(dw.in_h, th * s) - 1) * max(k - s, 0) * dw.in_w)[:, None] + (
                (_cdiv(dw.in_w, tw * s) - 1) * max(k - s, 0) * dw.in_h
            )[None, :]
            ifm = 2 * c * ovl + c * dw.in_h * dw.in_w
        else:
            rows = _loaded_table(dw.out_h, pow2_candidates(dw.out_h), k, s, pad, dw.in_h)
            cols = _loaded_table(dw.out_w, pow2_candidates(dw.out_w), k, s, pad, dw.in_w)
            ifm = c * rows[:, None] * cols[None, :]
        reads = ifm + n_sp * (c * k * k + m * c)
        gma = np.broadcast_to(((reads + m * pw.out_h * pw.out_w) * eb)[:, :, None], shape)
        thw = th[:, None, None] * tw[None, :, None]
        comm = c * th[:, None] * tw[None, :] * eb
        ext_hw = ((th - 1) * s + k)[:, None] * ((tw - 1) * s + k)[None, :]
        l1 = (c * ext_hw * eb + c * k * k * eb + comm)[:, :, None] + (
            tm[None, None, :] * thw + STREAM_CHUNK * (tm[None, None, :] + thw)
        ) * eb
        feasible = (
            (l1 <= gpu.l1_bytes)
            & (comm[:, :, None] <= gpu.shared_bytes)
            & (n_sp[:, :, None] >= gpu.sm_count)
        )
        zeros = np.zeros(shape, dtype=np.int64)
        useful = np.broadcast_to(np.int64(dw.macs + pw.macs), shape)
        return TilingGrid(("tile_h", "tile_w", "tile_m"), (th, tw, tm), feasible, gma, zeros, useful)
    if fcm_type is FcmType.PWDW:
        pw, dw = first, second
        c, cmid, k = pw.in_channels, pw.out_channels, dw.kernel
        tf = _pow2_axis(cmid)
        n_f = _cdiv(cmid, tf)
        reads = n_f * (c * pw.out_h * pw.out_w) + cmid * c + cmid * k * k
        gma = (reads + cmid * dw.out_h * dw.out_w) * eb
        comm = tf * pw.out_h * pw.out_w * eb
        l1 = tf * k * k * eb + STREAM_CHUNK * (tf + pw.out_w) * eb + tf * dw.out_w * eb + comm
        feasible = (l1 <= gpu.l1_bytes) & (comm <= gpu.shared_bytes) & (n_f >= gpu.sm_count)
        zeros = np.zeros(gma.shape, dtype=np.int64)
        useful = np.broadcast_to(np.int64(pw.macs + dw.macs), gma.shape)
        return TilingGrid(("tile_f",), (tf,), feasible, gma, zeros, useful)
    if fcm_type is FcmType.PWDW_R:
        pw, dw = first, second
        c, cmid = pw.in_channels, pw.out_channels
        k, s, pad = dw.kernel, dw.stride, dw.padding
        tf = _pow2_axis(cmid)
        th = _pow2_axis(dw.out_h)
        tw = _pow2_axis(dw.out_w)
        shape = (tf.size, th.size, tw.size)
        n_f = _cdiv(cmid, tf)
        n_sp = _cdiv(dw.out_h, th)[:, None] * _cdiv(dw.out_w, tw)[None, :]
        if convention == "paper":
            ovl = ((_cdiv(dw.in_h, th * s) - 1) * max(k - s, 0) * dw.in_w)[:, None] + (
                (_cdiv(dw.in_w, tw * s) - 1) * max(k - s, 0) * dw.in_h
            )[None, :]
            ifm = (2 * c * ovl + c * pw.out_h * pw.out_w)[None, :, :] * n_f[:, None, None]
            executed = cmid * (dw.in_h * dw.in_w + ovl)
            unique = np.broadcast_to(np.int64(cmid * dw.in_h * dw.in_w), executed.shape)
        else:
            rows = _loaded_table(dw.out_h, pow2_candidates(dw.out_h), k, s, pad, dw.in_h)
            cols = _loaded_table(dw.out_w, pow2_candidates(dw.out_w), k, s, pad, dw.in_w)
            rows_u = _covered_table(dw.out_h, pow2_candidates(dw.out_h), k, s, pad, dw.in_h)
            cols_u = _covered_table(dw.out_w, pow2_candidates(dw.out_w), k, s, pad, dw.in_w)
            ifm = n_f[:, None, None] * (c * rows[:, None] * cols[None, :])[None, :, :]
            executed = cmid * rows[:, None] * cols[None, :]
            unique = cmid * rows_u[:, None] * cols_u[None, :]
        reads = ifm + (n_sp * (cmid * c) + n_sp * (cmid * k * k))[None, :, :]
        gma = (reads + cmid * dw.out_h * dw.out_w) * eb
        redundant = np.broadcast_to((np.maximum(executed - unique, 0) * c)[None, :, :], shape)
        useful = np.broadcast_to((unique * c + dw.macs)[None, :, :], shape)
        wrc = ((th - 1) * s + k)[:, None] * ((tw - 1) * s + k)[None, :]
        comm = tf[:, None, None] * wrc[None, :, :] * eb
        l1 = (
            comm
            + (tf * k * k * eb)[:, None, None]
            + STREAM_CHUNK * (tf[:, None, None] + wrc[None, :, :]) * eb
            + tf[:, None, None] * (th[:, None] * tw[None, :])[None, :, :] * eb
        )
        n_tiles = n_f[:, None, None] * n_sp[None, :, :]
        feasible = (
            (l1 <= gpu.l1_bytes) & (comm <= gpu.shared_bytes) & (n_tiles >= gpu.sm_count)
        )
        return TilingGrid(("tile_f", "tile_h", "tile_w"), (tf, th, tw), feasible, gma, redundant, useful)
    if fcm_type is FcmType.PWPW:
        pw1, pw2 = first, second
        c, cmid, m = pw1.in_channels, pw1.out_channels, pw2.out_channels
        out_hw = pw2.out_h * pw2.out_w
        thw = _pow2_axis(out_hw, 4)
        tm = _pow2_axis(m)
        shape = (thw.size, tm.size)
        n_sp = _cdiv(out_hw, thw)
        reads = c * out_hw + n_sp * (cmid * c + m * cmid)
        gma = np.broadcast_to(((reads + m * out_hw) * eb)[:, None], shape)
        comm = cmid * thw * eb
        l1 = (comm + STREAM_CHUNK * (cmid + thw) * eb)[:, None] + (
            tm[None, :] * thw[:, None] + STREAM_CHUNK * (tm[None, :] + thw[:, None])
        ) * eb
        feasible = (
            (l1 <= gpu.l1_bytes)
            & (comm[:, None] <= gpu.shared_bytes)
            & (n_sp[:, None] >= gpu.sm_count)
        )
        zeros = np.zeros(shape, dtype=np.int64)
        useful = np.broadcast_to(np.int64(pw1.macs + pw2.macs), shape)
        return TilingGrid(("tile_hw", "tile_m"), (thw, tm), feasible, gma, zeros, useful)
    raise PlanError(f"unknown FCM type {fcm_type}")


# ---- N-stage chains -----------------------------------------------------------


def chain_grid(chain: FusedChain, gpu: GpuSpec, convention: str = "paper") -> TilingGrid:
    """The compositional chain model over the full (th, tw[, tm]) grid.

    Mirrors :func:`repro.planner.chain_costs.chain_gma` /
    :func:`~repro.planner.chain_costs.chain_footprints` term for term; the
    per-boundary overlap, clamped-extent and window-extent quantities come
    from the cost module's axis tables, one entry per candidate tile size.
    """
    if convention not in ("paper", "measured"):
        raise UnsupportedError(f"unknown cost convention {convention!r}")
    n = chain.length
    first, last = chain.first, chain.last
    eb = chain.dtype.nbytes
    keys = chain_tiling_keys(chain)
    th = _pow2_axis(last.out_h)
    tw = _pow2_axis(last.out_w)
    has_tm = last.kind is ConvKind.POINTWISE
    n_sp = _cdiv(last.out_h, th)[:, None] * _cdiv(last.out_w, tw)[None, :]
    weights = sum(s.weights_elements for s in chain.specs)
    writes = last.out_channels * last.out_h * last.out_w
    in_b = 1 if first.kind is ConvKind.POINTWISE else 0

    def grid_hw(b: int) -> tuple[int, int]:
        if b == 0:
            return first.in_h, first.in_w
        sp = chain.specs[b - 1]
        return sp.out_h, sp.out_w

    sp_shape = (th.size, tw.size)
    redundant = np.zeros(sp_shape, dtype=np.int64)
    useful = np.full(sp_shape, last.macs, dtype=np.int64)
    if convention == "paper":

        def ovl_at(b: int) -> np.ndarray:
            h, w = grid_hw(b)
            k_eff, s_eff = composed_receptive_field(chain.specs[b:])
            o = max(k_eff - s_eff, 0)
            return ((_cdiv(h, th * s_eff) - 1) * o * w)[:, None] + (
                (_cdiv(w, tw * s_eff) - 1) * o * h
            )[None, :]

        h_in, w_in = grid_hw(in_b)
        ifm = first.in_channels * (2 * ovl_at(in_b) + h_in * w_in)
        for b in range(1, n):
            h, w = grid_hw(b)
            stage = chain.specs[b - 1]
            mpe = _stage_macs_per_elem(stage)
            redundant = redundant + stage.out_channels * ovl_at(b) * mpe
            useful = useful + stage.out_channels * h * w * mpe
    else:
        row_tot, row_cov = chain_axis_tables(chain, th.tolist(), 0)
        col_tot, col_cov = chain_axis_tables(chain, tw.tolist(), 1)
        ifm = first.in_channels * _axis(row_tot[in_b])[:, None] * _axis(col_tot[in_b])[None, :]
        for b in range(1, n):
            stage = chain.specs[b - 1]
            mpe = _stage_macs_per_elem(stage)
            executed = stage.out_channels * _axis(row_tot[b])[:, None] * _axis(col_tot[b])[None, :]
            unique = stage.out_channels * _axis(row_cov[b])[:, None] * _axis(col_cov[b])[None, :]
            redundant = redundant + (executed - unique) * mpe
            useful = useful + unique * mpe
    gma = (ifm + n_sp * weights + writes) * eb

    # Footprints: commBuffers from the worst-case window extents, plus the
    # same per-stage residency terms as chain_footprints.
    eh = [_axis(v) for v in chain_window_extents(chain, th.tolist())]
    ew = [_axis(v) for v in chain_window_extents(chain, tw.tolist())]
    comms = [
        chain.specs[b - 1].out_channels * eh[b][:, None] * ew[b][None, :] * eb
        for b in range(1, n)
    ]
    if n == 2:
        shared = comms[0]
    else:
        shared = None
        for j in range(len(comms)):
            pair = comms[j] + (comms[j + 1] if j + 1 < len(comms) else 0)
            shared = pair if shared is None else np.maximum(shared, pair)
    l1 = sum(comms)
    if first.kind is ConvKind.DEPTHWISE:
        l1 = l1 + first.in_channels * eh[0][:, None] * ew[0][None, :] * eb
        l1 = l1 + first.in_channels * first.kernel * first.kernel * eb
    else:
        l1 = l1 + STREAM_CHUNK * (first.out_channels + eh[1][:, None] * ew[1][None, :]) * eb
    for b in range(2, n):
        stage = chain.specs[b - 1]
        if stage.kind is ConvKind.DEPTHWISE:
            l1 = l1 + stage.out_channels * stage.kernel * stage.kernel * eb
        else:
            l1 = l1 + STREAM_CHUNK * (stage.out_channels + eh[b][:, None] * ew[b][None, :]) * eb

    if has_tm:
        tm = _pow2_axis(last.out_channels)
        shape = (th.size, tw.size, tm.size)
        thw = th[:, None, None] * tw[None, :, None]
        l1_3 = l1[:, :, None] + (
            tm[None, None, :] * thw + STREAM_CHUNK * (tm[None, None, :] + thw)
        ) * eb
        feasible = (
            (l1_3 <= gpu.l1_bytes)
            & (shared[:, :, None] <= gpu.shared_bytes)
            & (n_sp[:, :, None] >= gpu.sm_count)
        )
        return TilingGrid(
            keys,
            (th, tw, tm),
            feasible,
            np.broadcast_to(gma[:, :, None], shape),
            np.broadcast_to(redundant[:, :, None], shape),
            np.broadcast_to(useful[:, :, None], shape),
        )
    l1 = l1 + last.out_channels * last.kernel * last.kernel * eb
    l1 = l1 + last.out_channels * th[:, None] * tw[None, :] * eb
    feasible = (l1 <= gpu.l1_bytes) & (shared <= gpu.shared_bytes) & (n_sp >= gpu.sm_count)
    return TilingGrid(keys, (th, tw), feasible, gma, redundant, useful)
