"""Execution-plan data structures — FusePlanner's output.

A plan lists, in topological order, the steps an inference session executes:
fused chain steps (two or more convs, one kernel), layer-by-layer conv
steps, and glue steps (residual adds, pooling, ...).  Each conv-bearing step
carries the tile sizes and the estimated GMA that justified the decision
(paper Fig. 5's "FCMs / LBL" output box, generalized to chains).

:class:`ChainStep` is the fused step; ``FcmStep`` is kept as an alias for
the ubiquitous pairwise case (a length-2 chain carrying its pairwise
:class:`~repro.core.fcm.FcmType`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dtypes import DType
from ..core.fcm import FcmType
from ..gpu.specs import GpuSpec
from ..ir.graph import GlueSpec
from ..ir.layers import ConvSpec

__all__ = [
    "LblStep",
    "ChainStep",
    "FcmStep",
    "GlueStep",
    "StdStep",
    "ExecutionPlan",
    "lbl_family",
    "chain_family",
    "step_family",
]


@dataclass(frozen=True)
class LblStep:
    """One unfused DW or PW convolution with its chosen tiling."""

    spec: ConvSpec
    tiling: dict[str, int]
    est_gma_bytes: int

    @property
    def layer_names(self) -> tuple[str, ...]:
        return (self.spec.name,)


@dataclass(frozen=True)
class ChainStep:
    """One fused module: a chain of convolutions executed as a single kernel.

    Length-2 chains carry their pairwise taxonomy type in ``fcm_type`` (and
    keep the pairwise tiling vocabulary); longer chains set it to ``None``
    and use the chain vocabulary (``tile_h``/``tile_w``[/``tile_m``]).
    """

    specs: tuple[ConvSpec, ...]
    tiling: dict[str, int]
    est_gma_bytes: int
    est_lbl_gma_bytes: int  # what the member layers would cost unfused
    redundancy_ratio: float
    fcm_type: FcmType | None = None

    @property
    def length(self) -> int:
        return len(self.specs)

    @property
    def first(self) -> ConvSpec:
        return self.specs[0]

    @property
    def second(self) -> ConvSpec:
        return self.specs[1]

    @property
    def layer_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    @property
    def label(self) -> str:
        """Human-readable module label: FCM type name or the stage kinds."""
        if self.fcm_type is not None:
            return self.fcm_type.name
        return "-".join(s.kind.short.upper() for s in self.specs)

    @property
    def est_savings_bytes(self) -> int:
        return self.est_lbl_gma_bytes - self.est_gma_bytes


#: Pairwise alias — every existing ``isinstance(step, FcmStep)`` check now
#: covers chains of any length.
FcmStep = ChainStep


@dataclass(frozen=True)
class StdStep:
    """A standard convolution (stem/exit layers) — outside FCM scope.

    Executed identically by our runtime and the baselines so end-to-end
    comparisons isolate the DW/PW treatment.
    """

    spec: ConvSpec


@dataclass(frozen=True)
class GlueStep:
    """A non-convolutional node carried through for end-to-end accounting."""

    spec: GlueSpec


PlanStep = LblStep | FcmStep | StdStep | GlueStep


def lbl_family(spec: ConvSpec) -> str:
    """Kernel-family name of one layer-by-layer kernel (``lbl-dw``/``lbl-pw``)."""
    return f"lbl-{spec.kind.short}"


def chain_family(fcm_type: FcmType | None, length: int) -> str:
    """Kernel-family name of one fused module: ``fcm-<type>`` for pairwise
    chains carrying their taxonomy type, ``chain-<N>`` beyond."""
    if fcm_type is not None:
        return f"fcm-{fcm_type.name.lower()}"
    return f"chain-{length}"


def step_family(step: PlanStep) -> str:
    """Canonical kernel-family name of one plan step.

    The vocabulary both the calibration fit (:mod:`repro.tune`) and the
    calibrated planner group corrections by: ``lbl-dw`` / ``lbl-pw``,
    ``fcm-<type>`` for pairwise fused modules, ``chain-<N>`` for longer
    chains, ``std`` and ``glue`` for the shared non-DW/PW steps.  The
    planner's cost hooks and the measurement harness both resolve names
    through :func:`lbl_family` / :func:`chain_family`, so the vocabulary
    has exactly one owner.
    """
    if isinstance(step, ChainStep):
        return chain_family(step.fcm_type, step.length)
    if isinstance(step, LblStep):
        return lbl_family(step.spec)
    if isinstance(step, StdStep):
        return "std"
    return "glue"


@dataclass
class ExecutionPlan:
    """FusePlanner's decision for one model on one GPU at one precision."""

    model_name: str
    gpu: GpuSpec
    dtype: DType
    steps: list[PlanStep] = field(default_factory=list)

    # ---- summaries ----------------------------------------------------------
    @property
    def fcm_steps(self) -> list[ChainStep]:
        """Fused steps of any length (``chain_steps`` is the modern alias)."""
        return [s for s in self.steps if isinstance(s, ChainStep)]

    @property
    def chain_steps(self) -> list[ChainStep]:
        return self.fcm_steps

    @property
    def lbl_steps(self) -> list[LblStep]:
        return [s for s in self.steps if isinstance(s, LblStep)]

    @property
    def num_fused_layers(self) -> int:
        """DW/PW conv layers executing inside a fused chain."""
        return sum(s.length for s in self.fcm_steps)

    @property
    def num_conv_layers(self) -> int:
        """DW/PW conv layers covered by the plan (a chain counts its stages)."""
        return self.num_fused_layers + len(self.lbl_steps)

    @property
    def fused_layer_fraction(self) -> float:
        """Fraction of DW/PW layers executing inside an FCM (paper: 46-58%)."""
        n = self.num_conv_layers
        return (self.num_fused_layers / n) if n else 0.0

    @property
    def max_chain_length(self) -> int:
        """Longest fused chain in the plan (0 when nothing fused)."""
        return max((s.length for s in self.fcm_steps), default=0)

    @property
    def est_total_gma_bytes(self) -> int:
        total = 0
        for s in self.steps:
            if isinstance(s, (LblStep, FcmStep)):
                total += s.est_gma_bytes
        return total

    @property
    def est_savings_bytes(self) -> int:
        """Estimated GMA saved versus the all-LBL plan."""
        return sum(s.est_savings_bytes for s in self.fcm_steps)

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        lines = [
            f"ExecutionPlan[{self.model_name} on {self.gpu.name}, {self.dtype}]:"
        ]
        for s in self.steps:
            if isinstance(s, ChainStep):
                lines.append(
                    f"  FCM {s.label:8s} {'+'.join(s.layer_names)} "
                    f"tiles={s.tiling} gma={s.est_gma_bytes}B "
                    f"(saves {s.est_savings_bytes}B, redund {s.redundancy_ratio:.1%})"
                )
            elif isinstance(s, LblStep):
                lines.append(
                    f"  LBL {s.spec.kind.short:3s}     {s.spec.name} "
                    f"tiles={s.tiling} gma={s.est_gma_bytes}B"
                )
            elif isinstance(s, StdStep):
                lines.append(f"  STD         {s.spec.name}")
            else:
                lines.append(f"  GLUE        {s.spec.name} ({s.spec.op})")
        lines.append(
            f"  -> {len(self.fcm_steps)} FCMs, {len(self.lbl_steps)} LBL layers, "
            f"fused fraction {self.fused_layer_fraction:.0%}, "
            f"est GMA {self.est_total_gma_bytes} B"
        )
        return "\n".join(lines)
