"""Tile-size search: enumerate feasible tilings and minimize estimated GMA.

FusePlanner "explores all tile sizes that meet the constraints in Equations
2, 3 and 4 and identifies the ones that minimize the global memory accesses"
(§IV-B), with candidates "restricted to multiples of the warp size to avoid
resource underutilization".  The warp rule applies to a thread block's
*thread count* — the product of the tile dimensions — so late layers with
tiny spatial extents (7x7) can still trade pixels for filters.  Among
feasible configurations, warp-multiple blocks are preferred, then minimum
GMA, then larger tiles (fewer blocks) as the tie-break.

Two engines implement the same search contract, mirroring the kernel
simulator's ``fast``/``reference`` split (:mod:`repro.gpu.fastpath`):

* ``vectorized`` (default) — the whole candidate grid evaluated as array
  programs (:mod:`repro.planner.grid_search`);
* ``reference`` — the original scalar sweep, kept as the oracle the parity
  suite compares against.

Both produce bit-identical :class:`SearchResult` winners; an optional
:class:`repro.planner.memo.GeometryMemo` caches winners across planner
instances (and, persisted, across processes).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterable, Mapping

from ..core.chain import FusedChain
from ..core.fcm import FcmType
from ..core.tiling import DwTiling, PwTiling
from ..errors import PlanError, UnsupportedError
from ..gpu.specs import GpuSpec
from ..ir.layers import ConvKind, ConvSpec
from .chain_costs import chain_feasible, chain_gma
from .costs import dw_feasible, dw_gma, pw_feasible, pw_gma
from .fcm_costs import FcmCost, fcm_feasible, fcm_gma
from .grid_search import chain_grid, fcm_grid, lbl_grid, pow2_candidates

__all__ = [
    "SearchResult",
    "SEARCH_ENGINES",
    "DEFAULT_SEARCH_ENGINE",
    "resolve_search_engine",
    "best_lbl_tiling",
    "best_fcm_tiling",
    "best_chain_tiling",
    "enumerate_lbl_tilings",
    "enumerate_fcm_tilings",
    "enumerate_chain_tilings",
]


@dataclass(frozen=True)
class SearchResult:
    """Winner of one tile-size sweep."""

    tiling: dict[str, int]
    gma_bytes: int
    redundancy_ratio: float = 0.0


SEARCH_ENGINES = ("vectorized", "reference")

#: The whole-grid array evaluation is the default everywhere; the scalar
#: per-candidate sweep stays available as the reference oracle.
DEFAULT_SEARCH_ENGINE = "vectorized"


def resolve_search_engine(engine: str | None) -> str:
    """Normalize a search-engine name (``None`` -> the default), or raise."""
    if engine is None:
        return DEFAULT_SEARCH_ENGINE
    if engine not in SEARCH_ENGINES:
        raise UnsupportedError(
            f"unknown search engine {engine!r}; choose from {SEARCH_ENGINES}"
        )
    return engine


def _pow2_upto(limit: int, minimum: int = 1) -> tuple[int, ...]:
    """Powers of two in [minimum, limit], always including ``limit`` itself."""
    return pow2_candidates(limit, minimum)


def _rank_key(tiling: Mapping[str, int], gma: int, warp: int) -> tuple[int, int, int]:
    """Search ordering: warp-multiple blocks first, then GMA, then big tiles."""
    threads = prod(tiling.values())
    return (0 if threads % warp == 0 else 1, gma, -threads)


def _best(
    scored: Iterable[tuple[tuple[int, int, int], dict[str, int], float]],
) -> tuple[dict[str, int], int, float] | None:
    """Pick the minimum-ranked configuration; returns (tiling, gma, redund)."""
    best = None
    for key, tiling, redundancy in scored:
        if best is None or key < best[0]:
            best = (key, tiling, redundancy)
    if best is None:
        return None
    return best[1], best[0][1], best[2]


def enumerate_lbl_tilings(spec: ConvSpec, gpu: GpuSpec) -> list[dict[str, int]]:
    """All *feasible* LBL tiling dicts for one DW/PW layer, in sweep order.

    The grid the planner minimizes over — and the candidate space the
    :mod:`repro.tune` measurement harness searches by observed cost.
    """
    out: list[dict[str, int]] = []
    if spec.kind is ConvKind.POINTWISE:
        out_hw = spec.out_h * spec.out_w
        for tm in _pow2_upto(spec.out_channels):
            for thw in _pow2_upto(out_hw, minimum=4):
                if pw_feasible(spec, PwTiling(tm, thw), gpu):
                    out.append({"tile_m": tm, "tile_hw": thw})
    elif spec.kind is ConvKind.DEPTHWISE:
        for tc in _pow2_upto(spec.in_channels):
            for th in _pow2_upto(spec.out_h):
                for tw in _pow2_upto(spec.out_w):
                    if dw_feasible(spec, DwTiling(tc, th, tw), gpu):
                        out.append({"tile_c": tc, "tile_h": th, "tile_w": tw})
    else:
        raise PlanError(f"{spec.name}: LBL search supports only DW/PW layers")
    return out


def _search_lbl(spec: ConvSpec, gpu: GpuSpec, convention: str, engine: str) -> SearchResult | None:
    if engine == "vectorized":
        win = lbl_grid(spec, gpu, convention).best(gpu.warp_size)
        if win is None:
            return None
        return SearchResult(tiling=win[0], gma_bytes=win[1])
    scored: list[tuple[tuple[int, int, int], dict[str, int], float]] = []
    for d in enumerate_lbl_tilings(spec, gpu):
        if spec.kind is ConvKind.POINTWISE:
            gma = pw_gma(spec, PwTiling(d["tile_m"], d["tile_hw"]), convention).total_bytes
        else:
            gma = dw_gma(
                spec, DwTiling(d["tile_c"], d["tile_h"], d["tile_w"]), convention
            ).total_bytes
        scored.append((_rank_key(d, gma, gpu.warp_size), d, 0.0))
    win = _best(scored)
    if win is None:
        return None
    return SearchResult(tiling=win[0], gma_bytes=win[1])


def best_lbl_tiling(
    spec: ConvSpec,
    gpu: GpuSpec,
    convention: str = "paper",
    *,
    engine: str | None = None,
    memo=None,
) -> SearchResult:
    """Minimize Eq. 2 / Eq. 3 over the feasible tile grid for one layer.

    ``engine`` picks the grid evaluation (:data:`SEARCH_ENGINES`); ``memo``
    is an optional :class:`repro.planner.memo.GeometryMemo` consulted before
    searching.
    """
    engine = resolve_search_engine(engine)
    if memo is None:
        res = _search_lbl(spec, gpu, convention, engine)
    else:
        res = memo.get_or_search(
            memo.lbl_key(spec, gpu, convention),
            lambda: _search_lbl(spec, gpu, convention, engine),
        )
    if res is None:
        raise PlanError(
            f"{spec.name}: no feasible LBL tiling on {gpu.name} "
            f"(L1 {gpu.l1_kb}KiB, {gpu.sm_count} SMs)"
        )
    return res


def _fcm_tiling_candidates(
    fcm_type: FcmType, first: ConvSpec, second: ConvSpec
) -> list[dict[str, int]]:
    if fcm_type is FcmType.DWPW:
        dw, pw = first, second
        return [
            {"tile_h": th, "tile_w": tw, "tile_m": tm}
            for th in _pow2_upto(dw.out_h)
            for tw in _pow2_upto(dw.out_w)
            for tm in _pow2_upto(pw.out_channels)
        ]
    if fcm_type is FcmType.PWDW:
        return [{"tile_f": tf} for tf in _pow2_upto(first.out_channels)]
    if fcm_type is FcmType.PWDW_R:
        dw = second
        return [
            {"tile_f": tf, "tile_h": th, "tile_w": tw}
            for tf in _pow2_upto(first.out_channels)
            for th in _pow2_upto(dw.out_h)
            for tw in _pow2_upto(dw.out_w)
        ]
    if fcm_type is FcmType.PWPW:
        out_hw = second.out_h * second.out_w
        return [
            {"tile_hw": thw, "tile_m": tm}
            for thw in _pow2_upto(out_hw, minimum=4)
            for tm in _pow2_upto(second.out_channels)
        ]
    raise PlanError(f"unknown FCM type {fcm_type}")


def enumerate_fcm_tilings(
    fcm_type: FcmType, first: ConvSpec, second: ConvSpec, gpu: GpuSpec
) -> list[dict[str, int]]:
    """All *feasible* tiling dicts of one pairwise FCM, in sweep order."""
    return [
        t
        for t in _fcm_tiling_candidates(fcm_type, first, second)
        if fcm_feasible(fcm_type, first, second, t, gpu)
    ]


def _search_fcm(
    fcm_type: FcmType,
    first: ConvSpec,
    second: ConvSpec,
    gpu: GpuSpec,
    convention: str,
    engine: str,
) -> SearchResult | None:
    if engine == "vectorized":
        win = fcm_grid(fcm_type, first, second, gpu, convention).best(gpu.warp_size)
        if win is None:
            return None
        return SearchResult(tiling=win[0], gma_bytes=win[1], redundancy_ratio=win[2])
    scored: list[tuple[tuple[int, int, int], dict[str, int], float]] = []
    for tiling in enumerate_fcm_tilings(fcm_type, first, second, gpu):
        cost: FcmCost = fcm_gma(fcm_type, first, second, tiling, convention)
        scored.append(
            (
                _rank_key(tiling, cost.gma.total_bytes, gpu.warp_size),
                dict(tiling),
                cost.redundancy_ratio,
            )
        )
    win = _best(scored)
    if win is None:
        return None
    return SearchResult(tiling=win[0], gma_bytes=win[1], redundancy_ratio=win[2])


def best_fcm_tiling(
    fcm_type: FcmType,
    first: ConvSpec,
    second: ConvSpec,
    gpu: GpuSpec,
    convention: str = "paper",
    *,
    engine: str | None = None,
    memo=None,
) -> SearchResult | None:
    """Minimize the FCM estimator over the feasible tile grid.

    Returns ``None`` when no tiling satisfies the fused constraints — the
    module is infeasible on this GPU at this precision (paper §IV-B: "PWPW
    fusion is less likely when the weights use FP32").  ``None`` outcomes
    are memoized too when a ``memo`` is supplied.
    """
    engine = resolve_search_engine(engine)
    if memo is None:
        return _search_fcm(fcm_type, first, second, gpu, convention, engine)
    return memo.get_or_search(
        memo.fcm_key(fcm_type, first, second, gpu, convention),
        lambda: _search_fcm(fcm_type, first, second, gpu, convention, engine),
    )


def _chain_tiling_candidates(chain: FusedChain) -> list[dict[str, int]]:
    last = chain.last
    spatial = [
        {"tile_h": th, "tile_w": tw}
        for th in _pow2_upto(last.out_h)
        for tw in _pow2_upto(last.out_w)
    ]
    if last.kind is not ConvKind.POINTWISE:
        return spatial
    return [
        {**d, "tile_m": tm}
        for d in spatial
        for tm in _pow2_upto(last.out_channels)
    ]


def enumerate_chain_tilings(chain: FusedChain, gpu: GpuSpec) -> list[dict[str, int]]:
    """All *feasible* tiling dicts of one fused chain, in sweep order."""
    return [
        t for t in _chain_tiling_candidates(chain) if chain_feasible(chain, t, gpu)
    ]


def _search_chain(chain: FusedChain, gpu: GpuSpec, convention: str, engine: str) -> SearchResult | None:
    if engine == "vectorized":
        win = chain_grid(chain, gpu, convention).best(gpu.warp_size)
        if win is None:
            return None
        return SearchResult(tiling=win[0], gma_bytes=win[1], redundancy_ratio=win[2])
    scored: list[tuple[tuple[int, int, int], dict[str, int], float]] = []
    for tiling in enumerate_chain_tilings(chain, gpu):
        cost: FcmCost = chain_gma(chain, tiling, convention)
        scored.append(
            (
                _rank_key(tiling, cost.gma.total_bytes, gpu.warp_size),
                dict(tiling),
                cost.redundancy_ratio,
            )
        )
    win = _best(scored)
    if win is None:
        return None
    return SearchResult(tiling=win[0], gma_bytes=win[1], redundancy_ratio=win[2])


def best_chain_tiling(
    chain: FusedChain,
    gpu: GpuSpec,
    convention: str = "paper",
    *,
    engine: str | None = None,
    memo=None,
) -> SearchResult | None:
    """Minimize the N-stage chain estimator over the feasible tile grid.

    Same sweep discipline as the pairwise search — powers of two per tile
    axis, warp-multiple thread blocks preferred, minimum GMA, then larger
    tiles — applied to the chain vocabulary (``tile_h``/``tile_w`` on the
    final output plus ``tile_m`` when the last stage is pointwise).
    Returns ``None`` when no tiling satisfies the chained constraints.
    """
    engine = resolve_search_engine(engine)
    if memo is None:
        return _search_chain(chain, gpu, convention, engine)
    return memo.get_or_search(
        memo.chain_key(chain, gpu, convention),
        lambda: _search_chain(chain, gpu, convention, engine),
    )
