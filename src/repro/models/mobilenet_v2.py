"""MobileNetV2 (Sandler et al., 2018) at 224x224 — the paper's ``Mob_v2``.

A stack of inverted residual bottlenecks (PW-expand, DW3x3, linear
PW-project) described by the standard (t, c, n, s) table.  Stride-1 blocks
with matching channels carry a residual add — the glue node TVM fuses but our
conv-conv runtime pays for, per the paper's complex-DAG observation.
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..ir.blocks import inverted_residual_block, standard_conv
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = ["build_mobilenet_v2"]

#: (expansion t, out channels c, repeats n, first stride s) — paper table.
_SETTINGS: tuple[tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def build_mobilenet_v2(dtype: DType = DType.FP32) -> ModelGraph:
    """Build the MobileNetV2 DAG (batch 1, 224x224x3 input)."""
    g = ModelGraph("mobilenet_v2")
    last = standard_conv(
        g, "stem", 3, 32, 224, 224, kernel=3, stride=2, activation="relu6", dtype=dtype
    )
    c, h, w = 32, 112, 112
    idx = 0
    for t, out_c, n, s in _SETTINGS:
        for rep in range(n):
            stride = s if rep == 0 else 1
            idx += 1
            last = inverted_residual_block(
                g,
                f"ir{idx}",
                c,
                out_c,
                h,
                w,
                expansion=t,
                stride=stride,
                activation="relu6",
                dtype=dtype,
                after=last,
            )
            c = out_c
            h = (h + 2 - 3) // stride + 1
            w = (w + 2 - 3) // stride + 1
    head = ConvSpec(
        name="head_pw",
        kind=ConvKind.POINTWISE,
        in_channels=c,
        out_channels=1280,
        in_h=h,
        in_w=w,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation="relu6"),
    )
    last = g.add(head, after=last)
    g.add(GlueSpec(name="gap", op="gap", out_elements=1280), after=last)
    g.add(GlueSpec(name="classifier", op="dense", out_elements=1000, flops=2 * 1280 * 1000))
    g.validate()
    return g
