"""Model registry: the paper's six workload networks (§V-B)."""

from __future__ import annotations

from typing import Callable

from ..core.dtypes import DType
from ..errors import UnsupportedError
from ..ir.graph import ModelGraph
from .ceit import build_ceit
from .cmt import build_cmt
from .mobilenet_v1 import build_mobilenet_v1
from .mobilenet_v2 import build_mobilenet_v2
from .proxylessnas import build_proxylessnas
from .xception import build_xception

__all__ = ["MODELS", "CNN_MODELS", "VIT_MODELS", "build_model", "model_names"]

#: Builder registry keyed by the paper's model labels.
MODELS: dict[str, Callable[[DType], ModelGraph]] = {
    "mobilenet_v1": build_mobilenet_v1,
    "mobilenet_v2": build_mobilenet_v2,
    "xception": build_xception,
    "proxylessnas": build_proxylessnas,
    "ceit": build_ceit,
    "cmt": build_cmt,
}

#: The four CNNs used in the end-to-end TVM comparison (Fig. 10/11).
CNN_MODELS: tuple[str, ...] = ("mobilenet_v1", "mobilenet_v2", "xception", "proxylessnas")

#: The two convolutional ViTs (fusion-case workloads only).
VIT_MODELS: tuple[str, ...] = ("ceit", "cmt")

#: Pretty labels matching the paper's figures.
PAPER_LABELS: dict[str, str] = {
    "mobilenet_v1": "Mob_v1",
    "mobilenet_v2": "Mob_v2",
    "xception": "XCe",
    "proxylessnas": "Prox",
    "ceit": "CeiT",
    "cmt": "CMT",
}


def model_names() -> tuple[str, ...]:
    """All registered model names, papers' reporting order."""
    return tuple(MODELS)


def build_model(name: str, dtype: DType = DType.FP32) -> ModelGraph:
    """Build a registered model at the requested precision."""
    try:
        builder = MODELS[name]
    except KeyError:
        raise UnsupportedError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
    return builder(dtype)
