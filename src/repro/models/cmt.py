"""CMT (Guo et al., 2022) convolutional structure — the paper's ``CMT``.

CMT interleaves convolutions and attention in four stages.  Convolutional
content per block: a Local Perception Unit (residual DW3x3) and an IRFFN
(inverted-residual FFN: PW expand, DW3x3, PW project, residual).  Stage
transitions are 2x2 stride-2 patch-aggregation convolutions.  The PW-PW
seams between a block's projecting PW and the next block's expanding PW, and
the PW-DW chains inside IRFFN, supply the paper's CMT fusion cases (F11/F12).
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = ["build_cmt"]

#: CMT-S: four stages of (dim, depth) at strides 4/8/16/32.
_STAGES: tuple[tuple[int, int], ...] = ((64, 3), (128, 3), (256, 16), (512, 3))
_EXPAND = 4


def build_cmt(dtype: DType = DType.FP32) -> ModelGraph:
    """Build the CMT-S conv DAG (batch 1, 224x224x3 input)."""
    g = ModelGraph("cmt")
    g.add(
        ConvSpec("stem1", ConvKind.STANDARD, 3, 32, 224, 224, kernel=3, stride=2,
                 padding=1, dtype=dtype, epilogue=EpilogueSpec(norm=True, activation="gelu"))
    )
    g.add(
        ConvSpec("stem2", ConvKind.STANDARD, 32, 32, 112, 112, kernel=3, stride=1,
                 padding=1, dtype=dtype, epilogue=EpilogueSpec(norm=True, activation="gelu"))
    )
    last = g.add(
        ConvSpec("stem3", ConvKind.STANDARD, 32, 32, 112, 112, kernel=3, stride=1,
                 padding=1, dtype=dtype, epilogue=EpilogueSpec(norm=True, activation="gelu"))
    )
    c, h, w = 32, 112, 112
    for si, (dim, depth) in enumerate(_STAGES, start=1):
        # Patch aggregation: 2x2 stride-2 conv (valid padding).
        last = g.add(
            ConvSpec(
                f"s{si}_patch", ConvKind.STANDARD, c, dim, h, w, kernel=2, stride=2,
                padding=0, dtype=dtype, epilogue=EpilogueSpec(norm=True, activation=None),
            ),
            after=last,
        )
        c, h, w = dim, h // 2, w // 2
        hidden = dim * _EXPAND
        for bi in range(1, depth + 1):
            name = f"s{si}b{bi}"
            # Local Perception Unit: residual DW 3x3.
            lpu_in = last
            lpu = g.add(
                ConvSpec(
                    f"{name}_lpu_dw", ConvKind.DEPTHWISE, dim, dim, h, w, kernel=3,
                    stride=1, padding=1, dtype=dtype,
                    epilogue=EpilogueSpec(norm=True, activation=None),
                ),
                after=lpu_in,
            )
            lpu_add = g.add(
                GlueSpec(name=f"{name}_lpu_add", op="add", out_elements=dim * h * w),
                after=[lpu_in, lpu],
            )
            # Lightweight MHSA (k/v spatially reduced) — glue FLOPs only.
            attn = g.add(
                GlueSpec(
                    name=f"{name}_attn", op="attention", out_elements=dim * h * w,
                    flops=4 * dim * dim * h * w,
                ),
                after=lpu_add,
            )
            attn_add = g.add(
                GlueSpec(name=f"{name}_attn_add", op="add", out_elements=dim * h * w),
                after=[lpu_add, attn],
            )
            # IRFFN: PW expand -> DW3x3 -> PW project (+ residual).
            pw1 = g.add(
                ConvSpec(
                    f"{name}_ffn_pw1", ConvKind.POINTWISE, dim, hidden, h, w,
                    dtype=dtype, epilogue=EpilogueSpec(norm=True, activation="gelu"),
                ),
                after=attn_add,
            )
            dw = g.add(
                ConvSpec(
                    f"{name}_ffn_dw", ConvKind.DEPTHWISE, hidden, hidden, h, w,
                    kernel=3, stride=1, padding=1, dtype=dtype,
                    epilogue=EpilogueSpec(norm=True, activation="gelu"),
                ),
                after=pw1,
            )
            pw2 = g.add(
                ConvSpec(
                    f"{name}_ffn_pw2", ConvKind.POINTWISE, hidden, dim, h, w,
                    dtype=dtype, epilogue=EpilogueSpec(norm=True, activation=None),
                ),
                after=dw,
            )
            last = g.add(
                GlueSpec(name=f"{name}_ffn_add", op="add", out_elements=dim * h * w),
                after=[attn_add, pw2],
            )
    g.add(GlueSpec(name="gap", op="gap", out_elements=c), after=last)
    g.add(GlueSpec(name="classifier", op="dense", out_elements=1000, flops=2 * c * 1000))
    g.validate()
    return g
