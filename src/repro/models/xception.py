"""Xception (Chollet, 2017) at 299x299 — the paper's ``XCe``.

Entry flow (two standard convs + three downsampling separable blocks with
strided 1x1-conv shortcuts), middle flow (8 residual blocks of three
DW+PW separable convolutions at 19x19x728), and exit flow.  The strided
shortcut convolutions are genuine pointwise layers (kernel 1, stride 2) but
sit on multi-consumer branches, so FusePlanner correctly never fuses them.
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = ["build_xception"]


def _sepconv(
    g: ModelGraph,
    name: str,
    c_in: int,
    c_out: int,
    h: int,
    w: int,
    dtype: DType,
    after: str | None = None,
    activation: str | None = "relu",
) -> str:
    """Xception separable conv: DW3x3 (stride 1) then PW, both batch-normed."""
    dw = ConvSpec(
        name=f"{name}_dw",
        kind=ConvKind.DEPTHWISE,
        in_channels=c_in,
        out_channels=c_in,
        in_h=h,
        in_w=w,
        kernel=3,
        stride=1,
        padding=1,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=None),
    )
    g.add(dw, after=after)
    pw = ConvSpec(
        name=f"{name}_pw",
        kind=ConvKind.POINTWISE,
        in_channels=c_in,
        out_channels=c_out,
        in_h=h,
        in_w=w,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=activation),
    )
    return g.add(pw)


def _pool(g: ModelGraph, name: str, c: int, h: int, w: int, after: str) -> tuple[str, int, int]:
    """3x3 stride-2 max pool (padding 1)."""
    oh = (h + 2 - 3) // 2 + 1
    ow = (w + 2 - 3) // 2 + 1
    node = g.add(GlueSpec(name=name, op="maxpool2", out_elements=c * oh * ow), after=after)
    return node, oh, ow


def _shortcut(
    g: ModelGraph, name: str, c_in: int, c_out: int, h: int, w: int, dtype: DType, after: str
) -> str:
    """Strided 1x1 projection on the residual branch (linear, batch-normed)."""
    pw = ConvSpec(
        name=name,
        kind=ConvKind.POINTWISE,
        in_channels=c_in,
        out_channels=c_out,
        in_h=h,
        in_w=w,
        kernel=1,
        stride=2,
        padding=0,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation=None),
    )
    return g.add(pw, after=after)


def build_xception(dtype: DType = DType.FP32) -> ModelGraph:
    """Build the Xception DAG (batch 1, 299x299x3 input)."""
    g = ModelGraph("xception")
    g.add(
        ConvSpec(
            "stem1", ConvKind.STANDARD, 3, 32, 299, 299, kernel=3, stride=2, padding=0,
            dtype=dtype,
        )
    )
    last = g.add(
        ConvSpec(
            "stem2", ConvKind.STANDARD, 32, 64, 149, 149, kernel=3, stride=1, padding=0,
            dtype=dtype,
        )
    )
    h = w = 147
    c = 64
    # Entry flow: three residual downsampling blocks.
    for i, c_out in enumerate((128, 256, 728), start=1):
        entry = last
        s1 = _sepconv(g, f"entry{i}_sep1", c, c_out, h, w, dtype, after=entry)
        s2 = _sepconv(g, f"entry{i}_sep2", c_out, c_out, h, w, dtype, after=s1)
        pool, oh, ow = _pool(g, f"entry{i}_pool", c_out, h, w, after=s2)
        short = _shortcut(g, f"entry{i}_short", c, c_out, h, w, dtype, after=entry)
        last = g.add(
            GlueSpec(name=f"entry{i}_add", op="add", out_elements=c_out * oh * ow),
            after=[pool, short],
        )
        c, h, w = c_out, oh, ow
    # Middle flow: 8 x (3 separable convs + residual add) at 19x19x728.
    for i in range(1, 9):
        entry = last
        s = entry
        for j in range(1, 4):
            s = _sepconv(g, f"mid{i}_sep{j}", c, c, h, w, dtype, after=s)
        last = g.add(
            GlueSpec(name=f"mid{i}_add", op="add", out_elements=c * h * w),
            after=[s, entry],
        )
    # Exit flow.
    entry = last
    s1 = _sepconv(g, "exit_sep1", 728, 728, h, w, dtype, after=entry)
    s2 = _sepconv(g, "exit_sep2", 728, 1024, h, w, dtype, after=s1)
    pool, oh, ow = _pool(g, "exit_pool", 1024, h, w, after=s2)
    short = _shortcut(g, "exit_short", 728, 1024, h, w, dtype, after=entry)
    last = g.add(
        GlueSpec(name="exit_add", op="add", out_elements=1024 * oh * ow),
        after=[pool, short],
    )
    h, w = oh, ow
    s3 = _sepconv(g, "exit_sep3", 1024, 1536, h, w, dtype, after=last)
    s4 = _sepconv(g, "exit_sep4", 1536, 2048, h, w, dtype, after=s3)
    g.add(GlueSpec(name="gap", op="gap", out_elements=2048), after=s4)
    g.add(GlueSpec(name="classifier", op="dense", out_elements=1000, flops=2 * 2048 * 1000))
    g.validate()
    return g
