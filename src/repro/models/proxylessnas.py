"""ProxylessNAS (Cai et al., 2019), GPU-searched variant — the paper's ``Prox``.

ProxylessNAS searches per-block expansion ratios and DW kernel sizes; the
GPU-optimized network is shallow-and-wide with large kernels in late stages.
The table below follows the released GPU architecture's shape progression
(representative, as the paper uses it only as a DW/PW workload source).
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..ir.blocks import inverted_residual_block, standard_conv
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = ["build_proxylessnas"]

#: (expansion, out_channels, kernel, stride) per MBConv block.
_BLOCKS: tuple[tuple[int, int, int, int], ...] = (
    (1, 24, 3, 1),
    (3, 32, 5, 2),
    (3, 32, 3, 1),
    (3, 32, 3, 1),
    (6, 56, 7, 2),
    (3, 56, 3, 1),
    (3, 56, 3, 1),
    (6, 112, 5, 2),
    (3, 112, 5, 1),
    (3, 112, 5, 1),
    (6, 128, 3, 1),
    (3, 128, 5, 1),
    (3, 128, 5, 1),
    (6, 256, 7, 2),
    (3, 256, 7, 1),
    (3, 256, 7, 1),
    (6, 432, 7, 1),
)


def build_proxylessnas(dtype: DType = DType.FP32) -> ModelGraph:
    """Build the ProxylessNAS-GPU DAG (batch 1, 224x224x3 input)."""
    g = ModelGraph("proxylessnas")
    last = standard_conv(
        g, "stem", 3, 40, 224, 224, kernel=3, stride=2, activation="relu6", dtype=dtype
    )
    c, h, w = 40, 112, 112
    for i, (t, out_c, k, s) in enumerate(_BLOCKS, start=1):
        last = inverted_residual_block(
            g,
            f"mb{i}",
            c,
            out_c,
            h,
            w,
            expansion=t,
            stride=s,
            kernel=k,
            activation="relu6",
            dtype=dtype,
            after=last,
        )
        c = out_c
        h = (h + 2 * (k // 2) - k) // s + 1
        w = (w + 2 * (k // 2) - k) // s + 1
    head = ConvSpec(
        name="head_pw",
        kind=ConvKind.POINTWISE,
        in_channels=c,
        out_channels=1728,
        in_h=h,
        in_w=w,
        dtype=dtype,
        epilogue=EpilogueSpec(norm=True, activation="relu6"),
    )
    last = g.add(head, after=last)
    g.add(GlueSpec(name="gap", op="gap", out_elements=1728), after=last)
    g.add(GlueSpec(name="classifier", op="dense", out_elements=1000, flops=2 * 1728 * 1000))
    g.validate()
    return g
