"""CeiT (Yuan et al., 2021) convolutional structure — the paper's ``CeiT``.

CeiT is a convolutional ViT: an Image-to-Tokens stem (conv + pool + patch
projection) and 12 encoder blocks whose feed-forward network is a LeFF —
Locally-enhanced Feed-Forward: expand the 14x14 token grid channel-wise with
a 1x1 conv (the linear layer viewed spatially), apply a 3x3 *depthwise*
convolution over the grid, and project back with another 1x1 conv.  The
PW-DW-PW chains inside LeFF are exactly where the paper draws its CeiT fusion
cases (F9/F10).  Self-attention is carried as glue FLOPs — it contains no
DW/PW convolutions.
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..ir.graph import GlueSpec, ModelGraph
from ..ir.layers import ConvKind, ConvSpec, EpilogueSpec

__all__ = ["build_ceit"]

_DEPTH = 12
_DIM = 192  # CeiT-T embedding dim
_EXPAND = 4
_TOKENS = 14  # 14x14 patch grid


def build_ceit(dtype: DType = DType.FP32) -> ModelGraph:
    """Build the CeiT-T conv DAG (batch 1, 224x224x3 input)."""
    g = ModelGraph("ceit")
    # Image-to-Tokens: conv stem, pool, then patch-projection conv.
    g.add(
        ConvSpec(
            "i2t_conv", ConvKind.STANDARD, 3, 32, 224, 224, kernel=7, stride=2,
            padding=3, dtype=dtype,
        )
    )
    last = g.add(GlueSpec(name="i2t_pool", op="maxpool2", out_elements=32 * 56 * 56))
    last = g.add(
        ConvSpec(
            "i2t_proj", ConvKind.STANDARD, 32, _DIM, 56, 56, kernel=4, stride=4,
            padding=0, dtype=dtype,
            epilogue=EpilogueSpec(norm=True, activation=None),
        ),
        after=last,
    )
    hidden = _DIM * _EXPAND
    for i in range(1, _DEPTH + 1):
        attn_in = last
        attn = g.add(
            GlueSpec(
                name=f"blk{i}_attn",
                op="attention",
                out_elements=_DIM * _TOKENS * _TOKENS,
                flops=4 * _DIM * _DIM * _TOKENS**2 + 2 * _DIM * _TOKENS**4,
            ),
            after=attn_in,
        )
        res1 = g.add(
            GlueSpec(name=f"blk{i}_add1", op="add", out_elements=_DIM * _TOKENS**2),
            after=[attn_in, attn],
        )
        # LeFF: PW expand -> DW 3x3 over the token grid -> PW project.
        pw1 = g.add(
            ConvSpec(
                f"blk{i}_leff_pw1", ConvKind.POINTWISE, _DIM, hidden, _TOKENS, _TOKENS,
                dtype=dtype, epilogue=EpilogueSpec(norm=True, activation="gelu"),
            ),
            after=res1,
        )
        dw = g.add(
            ConvSpec(
                f"blk{i}_leff_dw", ConvKind.DEPTHWISE, hidden, hidden, _TOKENS, _TOKENS,
                kernel=3, stride=1, padding=1, dtype=dtype,
                epilogue=EpilogueSpec(norm=True, activation="gelu"),
            ),
            after=pw1,
        )
        pw2 = g.add(
            ConvSpec(
                f"blk{i}_leff_pw2", ConvKind.POINTWISE, hidden, _DIM, _TOKENS, _TOKENS,
                dtype=dtype, epilogue=EpilogueSpec(norm=True, activation=None),
            ),
            after=dw,
        )
        last = g.add(
            GlueSpec(name=f"blk{i}_add2", op="add", out_elements=_DIM * _TOKENS**2),
            after=[res1, pw2],
        )
    g.add(GlueSpec(name="head_pool", op="gap", out_elements=_DIM), after=last)
    g.add(GlueSpec(name="classifier", op="dense", out_elements=1000, flops=2 * _DIM * 1000))
    g.validate()
    return g
