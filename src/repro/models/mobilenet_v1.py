"""MobileNetV1 (Howard et al., 2017) at 224x224 — the paper's ``Mob_v1``.

A linear stack: one standard stem convolution followed by 13 depthwise-
separable blocks (DW3x3 + PW1x1), global average pooling and a classifier.
Its simple chain topology is why the paper sees its largest end-to-end
speedups here: TVM's graph optimizations have nothing extra to fold (§VI-C).
"""

from __future__ import annotations

from ..core.dtypes import DType
from ..ir.blocks import dsc_block, standard_conv
from ..ir.graph import GlueSpec, ModelGraph

__all__ = ["build_mobilenet_v1"]

#: (out_channels, stride) of the 13 DSC blocks; spatial sizes follow.
_BLOCKS: tuple[tuple[int, int], ...] = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


def build_mobilenet_v1(dtype: DType = DType.FP32) -> ModelGraph:
    """Build the MobileNetV1 DAG (batch 1, 224x224x3 input)."""
    g = ModelGraph("mobilenet_v1")
    standard_conv(g, "stem", 3, 32, 224, 224, kernel=3, stride=2, dtype=dtype)
    c, h, w = 32, 112, 112
    for i, (out_c, stride) in enumerate(_BLOCKS, start=1):
        dsc_block(g, f"b{i}", c, out_c, h, w, stride=stride, dtype=dtype)
        c = out_c
        h = (h + 2 - 3) // stride + 1
        w = (w + 2 - 3) // stride + 1
    g.add(GlueSpec(name="gap", op="gap", out_elements=c))
    g.add(GlueSpec(name="classifier", op="dense", out_elements=1000, flops=2 * c * 1000))
    g.validate()
    return g
