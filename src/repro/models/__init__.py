"""The paper's six workload models: 4 CNNs + 2 convolutional ViTs."""

from .ceit import build_ceit
from .cmt import build_cmt
from .mobilenet_v1 import build_mobilenet_v1
from .mobilenet_v2 import build_mobilenet_v2
from .proxylessnas import build_proxylessnas
from .xception import build_xception
from .zoo import CNN_MODELS, MODELS, PAPER_LABELS, VIT_MODELS, build_model, model_names

__all__ = [
    "build_ceit",
    "build_cmt",
    "build_mobilenet_v1",
    "build_mobilenet_v2",
    "build_proxylessnas",
    "build_xception",
    "CNN_MODELS",
    "MODELS",
    "PAPER_LABELS",
    "VIT_MODELS",
    "build_model",
    "model_names",
]
