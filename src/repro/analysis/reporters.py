"""Finding reporters: human-readable text and canonical JSON.

The JSON report follows the house canonical-serialization discipline
(:meth:`repro.tune.records.TuningDB.dumps`): fixed key set, sorted keys,
compact separators, findings in canonical order — equal analysis results
serialize to equal bytes, so CI artifacts diff cleanly run over run.
"""

from __future__ import annotations

import json
from typing import Sequence

from .base import Finding

__all__ = ["render_json", "render_text"]

#: Bumped when the report layout changes shape.
REPORT_SCHEMA = 1


def render_text(
    findings: Sequence[Finding], rule_ids: Sequence[str], files_scanned: int
) -> str:
    """One ``path:line:col: RULE message`` line per finding plus a summary."""
    lines = [f.describe() for f in sorted(findings)]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"{len(findings)} {noun} ({files_scanned} files, "
        f"rules {', '.join(rule_ids)})"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], rule_ids: Sequence[str], files_scanned: int
) -> str:
    """Canonical JSON report (sorted keys, compact, trailing newline)."""
    payload = {
        "kind": "repro-analysis-report",
        "schema": REPORT_SCHEMA,
        "rules": list(rule_ids),
        "files_scanned": files_scanned,
        "findings": [f.to_json() for f in sorted(findings)],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
