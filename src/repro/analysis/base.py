"""Rule base class, finding record, registry and suppression comments.

The registry follows the house resolver style (`ENGINES`/`resolve_engine`
in :mod:`repro.gpu.fastpath`, `SEARCH_ENGINES` in :mod:`repro.planner.search`):
rules register under a stable ``RPR0xx`` identifier, ``ALL_RULE_IDS`` is the
canonical ordered vocabulary, and :func:`resolve_rules` normalizes a
user-supplied selection (``None`` -> everything) or raises
:class:`~repro.errors.AnalysisError` on an unknown id.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import AnalysisContext

__all__ = [
    "Finding",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "parse_suppressions",
    "register_rule",
    "resolve_rules",
    "rule_registry",
]

#: Pseudo-rule id for malformed suppression comments (a suppression with no
#: reason is itself a finding — the reason *is* the audit trail).
SUPPRESSION_RULE_ID = "RPR000"


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer hit, ordered canonically for deterministic reports."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


class Rule(abc.ABC):
    """One invariant checked over the parsed module set.

    Subclasses set ``rule_id`` / ``title`` and yield :class:`Finding`s from
    :meth:`check`.  Suppressions are applied by the runner, not the rule.
    """

    rule_id: str
    title: str

    @abc.abstractmethod
    def check(self, ctx: "AnalysisContext") -> Iterator[Finding]:
        """Yield every violation found in ``ctx`` (suppressed or not)."""


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule under its ``rule_id``."""
    if not getattr(cls, "rule_id", ""):
        raise AnalysisError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def rule_registry() -> dict[str, type[Rule]]:
    """The registered rules, id -> class (import-time populated)."""
    from . import rules as _rules  # noqa: F401  (registers on import)

    return dict(_REGISTRY)


def _all_rule_ids() -> tuple[str, ...]:
    return tuple(sorted(rule_registry()))


def resolve_rules(spec: "str | Iterable[str] | None") -> tuple[str, ...]:
    """Normalize a rule selection (``None``/"" -> all rules), or raise.

    Accepts a comma-separated string (CLI style) or an iterable of ids;
    returns ids in canonical sorted order.
    """
    known = _all_rule_ids()
    if spec is None:
        return known
    if isinstance(spec, str):
        spec = [s for s in spec.split(",") if s.strip()]
    chosen = tuple(sorted({s.strip() for s in spec}))
    if not chosen:
        return known
    unknown = [s for s in chosen if s not in known]
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s) {', '.join(unknown)}; choose from {', '.join(known)}"
        )
    return chosen


#: ``# repro: allow[RPR001] reason`` — the reason is mandatory; see
#: :data:`SUPPRESSION_RULE_ID`.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[A-Z]{3}\d{3})\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    line: int
    rule_id: str
    reason: str


def parse_suppressions(source_lines: "list[str]") -> "list[Suppression]":
    """Extract every suppression comment from a module's source lines.

    A suppression on a code line covers that line; a suppression opening a
    comment block covers the first code line after the block (so multi-line
    reasons can sit above the code they excuse).
    """
    out: list[Suppression] = []
    for lineno, text in enumerate(source_lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        target = lineno
        if text.lstrip().startswith("#"):
            for nxt in range(lineno + 1, len(source_lines) + 1):
                following = source_lines[nxt - 1].strip()
                if following and not following.startswith("#"):
                    target = nxt
                    break
        out.append(Suppression(target, m.group("rule"), m.group("reason").strip()))
    return out
