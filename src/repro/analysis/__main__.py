"""``python -m repro.analysis`` — run the invariant linter."""

from __future__ import annotations

import sys

from .cli import main

sys.exit(main())
