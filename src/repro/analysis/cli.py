"""Analyzer command line: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error — so ``make lint`` and CI
gate on it directly.  ``repro.cli lint`` is a thin alias of this entry.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import AnalysisError
from .base import resolve_rules, rule_registry
from .reporters import render_json, render_text
from .runner import analyze_paths

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="AST invariant linter: determinism, parity and layering "
                    "contracts over the repro source tree",
        epilog=(
            "examples:\n"
            "  python -m repro.analysis src\n"
            "  python -m repro.analysis src --format json --output ANALYSIS_report.json\n"
            "  python -m repro.analysis src/repro/serve --rules RPR001,RPR006\n"
            "  python -m repro.analysis --list-rules"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default text; json is canonical "
                             "byte-stable)")
    parser.add_argument("--rules", default="",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--output", default="",
                        help="also write the report to this file")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule vocabulary and exit")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.list_rules:
            registry = rule_registry()
            for rule_id in resolve_rules(None):
                print(f"{rule_id}  {registry[rule_id].title}")
            return 0
        findings, ctx = analyze_paths(args.paths or ["src"], args.rules or None)
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    report = render(findings, ctx.rule_ids, len(ctx.modules))
    print(report, end="" if report.endswith("\n") else "\n")
    if args.output:
        out = report if report.endswith("\n") else report + "\n"
        Path(args.output).write_text(out, encoding="utf-8")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
