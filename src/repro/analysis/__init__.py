"""Static analysis: AST-level enforcement of the simulator's contracts.

The test suite defends the repo's invariants *dynamically* — replay
determinism on the shared ``FakeClock``, byte-identical canonical JSONL
(:class:`~repro.tune.records.TuningDB`,
:class:`~repro.planner.memo.GeometryMemo`, request traces), fast/reference
engine parity, and the ``core -> gpu -> planner -> kernels -> runtime ->
serve``/``tune`` layering.  This package enforces the same contracts
*statically*, before a single test runs: a rule-driven analyzer over the
stdlib ``ast`` (no third-party dependencies) with a rule registry mirroring
the house ``ENGINES``/``SEARCH_ENGINES`` resolver style.

Rules ship as ``RPR0xx`` identifiers (see :mod:`repro.analysis.rules`);
individual lines opt out with an explicit, reasoned suppression comment::

    t0 = time.perf_counter()  # repro: allow[RPR001] operator-facing wall clock

Run it as ``python -m repro.analysis src`` or ``python -m repro.cli lint``;
``--format json`` emits the canonical machine-readable report CI archives.
"""

from __future__ import annotations

from .base import Finding, Rule, resolve_rules, rule_registry
from .importgraph import ImportGraph, build_import_graph
from .reporters import render_json, render_text
from .rules import ALL_RULE_IDS, LAYER_DEPS, SERIALIZER_ROOTS
from .runner import AnalysisContext, analyze_paths, run_analysis

__all__ = [
    "ALL_RULE_IDS",
    "AnalysisContext",
    "Finding",
    "ImportGraph",
    "LAYER_DEPS",
    "Rule",
    "SERIALIZER_ROOTS",
    "analyze_paths",
    "build_import_graph",
    "render_json",
    "render_text",
    "resolve_rules",
    "rule_registry",
    "run_analysis",
]
