"""Module import graph: edges, package layering, cycle detection.

Two granularities matter for the architecture contract (RPR004):

* **module-level** edges (imports executed at import time, including
  ``TYPE_CHECKING`` blocks) — these are what can form genuine import
  cycles, detected here via Tarjan's strongly-connected components;
* **all** edges (module-level plus function-local lazy imports) — the
  layering DAG applies to both, because a lazy upward import is still an
  architectural dependency even when it dodges the runtime cycle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import ModuleInfo

__all__ = ["ImportEdge", "ImportGraph", "build_import_graph"]


@dataclass(frozen=True)
class ImportEdge:
    """One import of ``target`` by ``source`` (dotted module names)."""

    source: str
    target: str
    line: int
    module_level: bool


@dataclass
class ImportGraph:
    """All intra-namespace import edges of an analyzed module set."""

    modules: tuple[str, ...]
    edges: tuple[ImportEdge, ...]
    #: source module -> targets, module-level edges only (cycle semantics).
    module_level: dict[str, set[str]] = field(default_factory=dict)

    def cycles(self) -> list[tuple[str, ...]]:
        """Import cycles as sorted SCCs of the module-level graph.

        Returns one tuple per strongly-connected component of size > 1
        (or a self-loop), each sorted, the list sorted — deterministic
        output for reports and tests.
        """
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[tuple[str, ...]] = []

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: (node, iterator) frames, no recursion limit.
            work = [(v, iter(sorted(self.module_level.get(v, ()))))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(self.module_level.get(w, ())))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    self_loop = node in self.module_level.get(node, ())
                    if len(scc) > 1 or self_loop:
                        sccs.append(tuple(sorted(scc)))

        for v in sorted(self.modules):
            if v not in index:
                strongconnect(v)
        return sorted(sccs)


def _resolve_relative(module: str, is_package: bool, level: int, target: str | None) -> str | None:
    """Resolve ``from ...target import x`` to a dotted module name."""
    base = module.split(".")
    if not is_package:
        base = base[:-1]
    drop = level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def _iter_imports(info: "ModuleInfo") -> Iterator[tuple[str, int, bool]]:
    """Yield (target dotted name, line, module_level) for every import."""
    # A node is module-level when no enclosing function wraps it; class
    # bodies and top-level if/try blocks still execute at import time.
    # ``if TYPE_CHECKING:`` blocks never execute, so their imports join the
    # lazy bucket: layering edges, but exempt from runtime-cycle detection.
    func_spans: list[tuple[int, int]] = []
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            func_spans.append((node.lineno, node.end_lineno or node.lineno))
        elif isinstance(node, ast.If):
            test = node.test
            attr = test.attr if isinstance(test, ast.Attribute) else None
            name = test.id if isinstance(test, ast.Name) else None
            if "TYPE_CHECKING" in (attr, name):
                func_spans.append((node.lineno, node.end_lineno or node.lineno))

    def at_module_level(line: int) -> bool:
        return not any(lo <= line <= hi for lo, hi in func_spans)

    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno, at_module_level(node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                target = _resolve_relative(
                    info.module, info.is_package, node.level, node.module
                )
                if target is None:
                    continue
            else:
                target = node.module
                if target is None:
                    continue
            level = at_module_level(node.lineno)
            yield target, node.lineno, level
            for alias in node.names:
                # ``from pkg import sub`` binds the submodule pkg.sub.
                yield f"{target}.{alias.name}", node.lineno, level


def build_import_graph(infos: "Iterable[ModuleInfo]") -> ImportGraph:
    """Build the intra-namespace import graph of an analyzed module set.

    Only edges whose target is (a prefix of) another analyzed module are
    kept: stdlib and third-party imports are not architecture edges.
    ``from pkg import name`` resolves to ``pkg.name`` when that is an
    analyzed module (a submodule import), else to ``pkg``.
    """
    infos = list(infos)
    known = {i.module for i in infos}
    edges: list[ImportEdge] = []
    module_level: dict[str, set[str]] = {}
    for info in infos:
        seen: set[tuple[str, int, bool]] = set()
        for target, line, is_mod_level in _iter_imports(info):
            resolved = None
            if target in known:
                resolved = target
            else:
                # `from a.b import c` where a.b.c is a module, or an import
                # of a deeper attribute path: walk prefixes down to a module.
                parts = target.split(".")
                for i in range(len(parts), 0, -1):
                    prefix = ".".join(parts[:i])
                    if prefix in known:
                        resolved = prefix
                        break
            if resolved is None or resolved == info.module:
                continue
            if (resolved, line, is_mod_level) in seen:
                continue
            seen.add((resolved, line, is_mod_level))
            edges.append(ImportEdge(info.module, resolved, line, is_mod_level))
            if is_mod_level:
                module_level.setdefault(info.module, set()).add(resolved)
    return ImportGraph(
        modules=tuple(sorted(known)),
        edges=tuple(edges),
        module_level=module_level,
    )
