"""Name-based call graph: which functions are reachable from which roots.

Python's dynamism rules out a sound call graph without running the code, so
this is a deliberate *over*-approximation: every ``f(...)`` or ``obj.f(...)``
call site links to **every** analyzed function named ``f``.  For the
determinism rule (RPR003) that bias is the safe one — a function falsely
considered reachable from a canonical serializer gets *checked*, never
skipped, and a reasoned suppression comment handles the rare false hit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["CallGraph", "FunctionDefSite", "build_call_graph"]


@dataclass(frozen=True)
class FunctionDefSite:
    """One function/method definition in the analyzed set."""

    path: str
    module: str
    qualname: str
    name: str
    node: ast.AST

    def __hash__(self) -> int:  # node identity keeps sites distinct
        return hash((self.module, self.qualname, id(self.node)))


def _walk_functions(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """Yield (qualname, def-node) for every function, methods included."""

    def visit(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def _called_names(fn_node: ast.AST) -> set[str]:
    """Bare names of everything this function's body calls."""
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name):
                names.add(fn.id)
            elif isinstance(fn, ast.Attribute):
                names.add(fn.attr)
    return names


@dataclass
class CallGraph:
    """Defs indexed by bare name plus per-def called-name sets."""

    defs_by_name: dict[str, tuple[FunctionDefSite, ...]]
    calls: dict[FunctionDefSite, frozenset[str]]

    def reachable_from(self, root_names: Iterable[str]) -> set[FunctionDefSite]:
        """Every def reachable from defs with the given bare names."""
        frontier = [
            site for name in sorted(set(root_names))
            for site in self.defs_by_name.get(name, ())
        ]
        seen: set[FunctionDefSite] = set(frontier)
        while frontier:
            site = frontier.pop()
            for called in sorted(self.calls.get(site, frozenset())):
                for target in self.defs_by_name.get(called, ()):
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return seen


def build_call_graph(infos) -> CallGraph:
    """Index every function def and its called names across the module set."""
    defs_by_name: dict[str, list[FunctionDefSite]] = {}
    calls: dict[FunctionDefSite, frozenset[str]] = {}
    for info in infos:
        for qualname, node in _walk_functions(info.tree):
            site = FunctionDefSite(
                path=info.path,
                module=info.module,
                qualname=qualname,
                name=qualname.rsplit(".", 1)[-1],
                node=node,
            )
            defs_by_name.setdefault(site.name, []).append(site)
            calls[site] = frozenset(_called_names(node))
    return CallGraph(
        defs_by_name={k: tuple(v) for k, v in defs_by_name.items()},
        calls=calls,
    )
