"""The shipped invariant rules, RPR001 through RPR008.

Each rule enforces a contract the dynamic test suite defends end-to-end;
see the class docstrings for the mapping.  Real, audited exceptions are
carried as ``# repro: allow[RPR0xx] reason`` comments at the site — the
analyzer's job is to make sure every new exception is an *explicit* one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .base import Finding, Rule, register_rule
from .callgraph import build_call_graph
from .importgraph import _resolve_relative
from .runner import AnalysisContext, ModuleInfo

__all__ = [
    "ALL_RULE_IDS",
    "LAYER_DEPS",
    "SERIALIZER_ROOTS",
    "WALLCLOCK_TIME_ATTRS",
]

#: ``time`` module attributes that read the host's wall/CPU clock.  Any use
#: in ``src/repro`` bypasses the injectable-clock discipline (FakeClock).
WALLCLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns",
    "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns",
})

#: ``datetime``/``date`` constructors that read the host clock.
_DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})

#: Bare names of the canonical-serialization entry points; the functions
#: reachable from these through the call graph form RPR003's scope.
SERIALIZER_ROOTS = ("dump", "dumps", "save", "to_json", "to_jsonl", "write_trace")

#: The architecture DAG RPR004 enforces: package -> packages it may import
#: (``repro.<pkg>.*`` granularity; ``repro`` itself is the public facade and
#: may import anything).  Mirrors docs/architecture.md's layering diagram.
LAYER_DEPS: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    "analysis": frozenset({"errors"}),
    "core": frozenset({"errors"}),
    # obs sits at the bottom: spans/metrics/exporters duck-type everything
    # they record, so any layer may emit into them without new edges.
    "obs": frozenset({"errors"}),
    "ir": frozenset({"core", "errors"}),
    "gpu": frozenset({"core", "errors"}),
    "models": frozenset({"core", "errors", "ir"}),
    "planner": frozenset({"core", "errors", "gpu", "ir", "obs"}),
    "kernels": frozenset({"core", "errors", "gpu", "ir", "planner"}),
    "baselines": frozenset({"core", "errors", "gpu", "ir", "kernels"}),
    "runtime": frozenset(
        {"baselines", "core", "errors", "gpu", "ir", "kernels", "models", "planner"}
    ),
    # serve and tune are siblings: serve consumes TuningDB/Calibration
    # duck-typed, never by import — keep it that way.
    "tune": frozenset(
        {"baselines", "core", "errors", "gpu", "ir", "kernels", "models",
         "obs", "planner", "runtime"}
    ),
    "serve": frozenset(
        {"core", "errors", "gpu", "ir", "models", "obs", "planner", "runtime"}
    ),
    "experiments": frozenset(
        {"baselines", "core", "errors", "gpu", "ir", "kernels", "models",
         "planner", "runtime"}
    ),
    "cli": frozenset(
        {"analysis", "core", "errors", "experiments", "gpu", "ir", "models",
         "obs", "planner", "runtime", "serve", "tune"}
    ),
}


@dataclass
class _Aliases:
    """Names a module binds to determinism-sensitive modules/callables."""

    time: set[str] = field(default_factory=set)
    random: set[str] = field(default_factory=set)
    numpy: set[str] = field(default_factory=set)
    datetime_mod: set[str] = field(default_factory=set)
    datetime_cls: set[str] = field(default_factory=set)
    default_rng: set[str] = field(default_factory=set)


def _aliases(info: ModuleInfo) -> _Aliases:
    al = _Aliases()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                bound = a.asname or a.name.split(".")[0]
                if a.name == "time":
                    al.time.add(bound)
                elif a.name == "random":
                    al.random.add(bound)
                elif a.name in ("numpy", "numpy.random"):
                    al.numpy.add(bound)
                elif a.name == "datetime":
                    al.datetime_mod.add(bound)
        elif isinstance(node, ast.ImportFrom) and not node.level:
            if node.module == "datetime":
                for a in node.names:
                    if a.name in ("datetime", "date"):
                        al.datetime_cls.add(a.asname or a.name)
            elif node.module == "numpy.random":
                for a in node.names:
                    if a.name == "default_rng":
                        al.default_rng.add(a.asname or a.name)
    return al


def _dotted(node: ast.AST) -> "str | None":
    """Render a Name/Attribute chain as dotted text (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _finding(info: ModuleInfo, node: ast.AST, rule_id: str, message: str) -> Finding:
    return Finding(
        path=info.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=rule_id,
        message=message,
    )


@register_rule
class WallClockRule(Rule):
    """RPR001: no wall-clock reads — clocks are injected, never ambient.

    Replay determinism (FakeClock) and byte-identical reports depend on no
    code path consulting the host clock.  The only sanctioned uses are
    injectable-clock *defaults* and operator-facing wall-time displays,
    each carrying a reasoned allow comment.
    """

    rule_id = "RPR001"
    title = "no ambient wall-clock reads"

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for info in ctx.modules:
            al = _aliases(info)
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ImportFrom) and not node.level \
                        and node.module == "time":
                    for a in node.names:
                        if a.name in WALLCLOCK_TIME_ATTRS:
                            yield _finding(
                                info, node, self.rule_id,
                                f"`from time import {a.name}` binds an ambient "
                                "wall clock; inject a clock callable instead",
                            )
                elif isinstance(node, ast.Attribute):
                    base = node.value
                    if isinstance(base, ast.Name) and base.id in al.time \
                            and node.attr in WALLCLOCK_TIME_ATTRS:
                        yield _finding(
                            info, node, self.rule_id,
                            f"wall-clock read `{base.id}.{node.attr}`; inject a "
                            "clock callable (cf. serve.loadgen.FakeClock)",
                        )
                    elif node.attr in _DATETIME_NOW_ATTRS:
                        dotted = _dotted(node)
                        if dotted is None:
                            continue
                        head = dotted.split(".")[0]
                        if head in al.datetime_mod or head in al.datetime_cls:
                            yield _finding(
                                info, node, self.rule_id,
                                f"wall-clock read `{dotted}`; pass timestamps "
                                "in explicitly",
                            )


@register_rule
class UnseededRngRule(Rule):
    """RPR002: no module-level or unseeded RNG.

    Every random draw must come from an explicitly seeded
    ``np.random.default_rng(seed)`` (or a seeded ``random.Random(seed)``
    instance) so replays and worker pools reproduce bit-identically.  The
    stdlib module-level ``random.*`` functions and unseeded generators are
    process-global hidden state.
    """

    rule_id = "RPR002"
    title = "no module-level or unseeded RNG"

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for info in ctx.modules:
            al = _aliases(info)
            seeded_call_funcs: set[int] = set()
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Call):
                    dotted = _dotted(node.func)
                    if dotted is None:
                        continue
                    parts = dotted.split(".")
                    seeded = bool(node.args or node.keywords)
                    # np.random.default_rng(seed) / default_rng(seed): fine.
                    if (
                        (len(parts) >= 2 and parts[0] in al.numpy
                         and parts[-2:] == ["random", "default_rng"])
                        or (len(parts) == 1 and parts[0] in al.default_rng)
                        or (len(parts) == 2 and parts[0] in al.random
                            and parts[1] == "Random")
                    ):
                        if seeded:
                            seeded_call_funcs.add(id(node.func))
                        else:
                            yield _finding(
                                info, node, self.rule_id,
                                f"`{dotted}()` without a seed draws from OS "
                                "entropy; pass an explicit seed",
                            )
                            seeded_call_funcs.add(id(node.func))
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ImportFrom) and not node.level \
                        and node.module == "random":
                    yield _finding(
                        info, node, self.rule_id,
                        "importing module-level `random` state; use a seeded "
                        "`np.random.default_rng(seed)` passed down explicitly",
                    )
                elif isinstance(node, ast.Attribute) and id(node) not in seeded_call_funcs:
                    base = node.value
                    if isinstance(base, ast.Name) and base.id in al.random:
                        yield _finding(
                            info, node, self.rule_id,
                            f"module-level RNG `{base.id}.{node.attr}` is hidden "
                            "process-global state; pass a seeded generator",
                        )
                    else:
                        dotted = _dotted(node)
                        if dotted is None:
                            continue
                        parts = dotted.split(".")
                        if (
                            len(parts) >= 3
                            and parts[0] in al.numpy
                            and parts[-2] == "random"
                            and parts[-1] not in ("default_rng", "Generator")
                        ):
                            yield _finding(
                                info, node, self.rule_id,
                                f"`{dotted}` uses numpy's global RNG; use "
                                "`np.random.default_rng(seed)`",
                            )


#: Unordered-iterable producers flagged by RPR003 when iterated bare.
_UNORDERED_METHODS = frozenset({"keys", "values", "items"})
_UNORDERED_FS = frozenset({"glob", "iglob", "rglob", "iterdir", "listdir", "scandir"})
_TRANSPARENT_WRAPPERS = frozenset({"enumerate", "list", "tuple", "reversed"})


def _unordered_desc(expr: ast.AST) -> "str | None":
    """Describe ``expr`` if it yields unordered elements, else None."""
    while isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in _TRANSPARENT_WRAPPERS and expr.args:
        expr = expr.args[0]
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(expr, ast.Call):
        fn = expr.func
        if isinstance(fn, ast.Name):
            if fn.id == "set":
                return "set(...)"
            if fn.id in _UNORDERED_FS:
                return f"{fn.id}(...)"
        elif isinstance(fn, ast.Attribute):
            if fn.attr in _UNORDERED_METHODS:
                return f".{fn.attr}()"
            if fn.attr in _UNORDERED_FS:
                return f".{fn.attr}(...)"
    return None


@register_rule
class SerializerOrderRule(Rule):
    """RPR003: canonical serializers iterate in sorted order only.

    TuningDB, GeometryMemo and trace files guarantee byte-identical output
    for equal contents at any worker count.  Inside any function reachable
    from the canonical serialization roots (``dump``/``dumps``/``save``/
    ``to_json``/``to_jsonl``/``write_trace``), iterating a dict view, set,
    or directory listing without ``sorted(...)`` lets insertion/filesystem
    order leak into the bytes.
    """

    rule_id = "RPR003"
    title = "sorted iteration in canonical serializers"

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        graph = build_call_graph(ctx.modules)
        reachable = graph.reachable_from(SERIALIZER_ROOTS)
        by_path = {info.path: info for info in ctx.modules}
        for site in sorted(reachable, key=lambda s: (s.path, s.qualname)):
            info = by_path[site.path]
            for node in ast.walk(site.node):
                iters: list[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    desc = _unordered_desc(it)
                    if desc is not None:
                        yield _finding(
                            info, it, self.rule_id,
                            f"iterates {desc} unsorted in `{site.qualname}`, "
                            "reachable from canonical serializers "
                            f"({'/'.join(SERIALIZER_ROOTS)}); wrap in sorted(...)",
                        )


@register_rule
class LayeringRule(Rule):
    """RPR004: the import graph respects the architecture DAG, acyclically.

    Package-level edges must appear in :data:`LAYER_DEPS` (lazy function-
    local imports included — dodging the runtime cycle does not excuse an
    upward dependency), and the module-level import graph must have no
    cycles at all, in any analyzed namespace.
    """

    rule_id = "RPR004"
    title = "import layering and acyclicity"

    @staticmethod
    def _layer(module: str) -> "str | None":
        parts = module.split(".")
        if parts[0] != "repro":
            return None
        if len(parts) == 1:
            return "repro"
        return parts[1]

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        graph = ctx.import_graph
        by_module = ctx.by_module
        for edge in graph.edges:
            src_layer = self._layer(edge.source)
            dst_layer = self._layer(edge.target)
            if src_layer is None or dst_layer is None or src_layer == dst_layer:
                continue
            if src_layer == "repro":  # the facade re-exports the public API
                continue
            info = by_module[edge.source]
            allowed = LAYER_DEPS.get(src_layer)
            if allowed is None:
                yield _finding(
                    info, _At(edge.line), self.rule_id,
                    f"layer `{src_layer}` is not in the architecture DAG; add "
                    "it to repro.analysis.rules.LAYER_DEPS (and the docs)",
                )
            elif dst_layer != "repro" and dst_layer not in allowed:
                yield _finding(
                    info, _At(edge.line), self.rule_id,
                    f"`{edge.source}` imports `{edge.target}`: layer "
                    f"`{src_layer}` may not depend on `{dst_layer}` "
                    f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})",
                )
        for cycle in graph.cycles():
            first = by_module[cycle[0]]
            yield _finding(
                first, _At(1), self.rule_id,
                "module-level import cycle: " + " -> ".join(cycle + (cycle[0],)),
            )


class _At:
    """A minimal lineno/col carrier for findings not tied to one AST node."""

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


@register_rule
class RegistryParityRule(Rule):
    """RPR005: registered kernels and schema records keep their pairs.

    Every kernel class the registry builds must implement both execution
    engines — ``run_block`` (reference, per-block) and ``run_grid`` (fast,
    vectorized) — so engine parity stays testable.  Every class in a
    ``SCHEMA_VERSION``-bearing module must keep its canonical round-trip
    pair complete: ``to_json``/``from_json``, ``dumps``/``loads``,
    ``save``/``load``.
    """

    rule_id = "RPR005"
    title = "kernel and schema round-trip parity"

    _PAIRS = (("to_json", "from_json"), ("dumps", "loads"), ("save", "load"))

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        yield from self._check_kernels(ctx)
        yield from self._check_schemas(ctx)

    @staticmethod
    def _methods(cls_node: ast.ClassDef) -> set[str]:
        return {
            n.name for n in cls_node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def _check_kernels(self, ctx: AnalysisContext) -> Iterator[Finding]:
        registry = ctx.find_module("kernels.registry")
        if registry is None:
            return
        imported: dict[str, str] = {}  # class name -> source module
        for node in ast.walk(registry.tree):
            if isinstance(node, ast.ImportFrom) and node.level:
                target = _resolve_relative(
                    registry.module, registry.is_package, node.level, node.module
                )
                if target is None:
                    continue
                for a in node.names:
                    imported[a.name] = target
        for cls_name, module in sorted(imported.items()):
            info = ctx.by_module.get(module)
            if info is None:
                continue
            for node in info.tree.body:
                if not (isinstance(node, ast.ClassDef) and node.name == cls_name):
                    continue
                bases = {_dotted(b) for b in node.bases}
                if not any(b and b.split(".")[-1] == "SimKernel" for b in bases):
                    continue
                methods = self._methods(node)
                for required, engine in (
                    ("run_block", "reference (per-block)"),
                    ("run_grid", "fast (vectorized)"),
                ):
                    if required not in methods:
                        yield _finding(
                            info, node, self.rule_id,
                            f"registered kernel `{cls_name}` does not define "
                            f"`{required}`: every registry kernel implements "
                            f"the {engine} engine so parity stays testable",
                        )

    def _check_schemas(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for info in ctx.modules:
            has_schema = any(
                isinstance(n, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "SCHEMA_VERSION"
                    for t in n.targets
                )
                for n in info.tree.body
            )
            if not has_schema:
                continue
            for node in info.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = self._methods(node)
                for a, b in self._PAIRS:
                    present = methods & {a, b}
                    if len(present) == 1:
                        have = present.pop()
                        miss = b if have == a else a
                        yield _finding(
                            info, node, self.rule_id,
                            f"`{node.name}` defines `{have}` but not `{miss}`: "
                            "SCHEMA_VERSION-bearing records keep the canonical "
                            "round-trip pair complete",
                        )


@register_rule
class SubmissionOrderRule(Rule):
    """RPR006: pool results merge in submission order, never completion order.

    ``tune_models(workers=N)`` and ``Fleet.preplan`` guarantee byte-identical
    merged output at any worker count because they consume ``pool.map``
    results in submission order.  ``as_completed`` / ``imap_unordered``
    reintroduce scheduling order into the merge.
    """

    rule_id = "RPR006"
    title = "deterministic pool-result consumption"

    _BANNED = frozenset({"as_completed", "imap_unordered"})

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for info in ctx.modules:
            for node in ast.walk(info.tree):
                name = None
                if isinstance(node, ast.ImportFrom):
                    hits = [a.name for a in node.names if a.name in self._BANNED]
                    if hits:
                        name = "/".join(hits)
                elif isinstance(node, ast.Attribute) and node.attr in self._BANNED:
                    name = node.attr
                elif isinstance(node, ast.Name) and node.id in self._BANNED:
                    name = node.id
                if name:
                    yield _finding(
                        info, node, self.rule_id,
                        f"`{name}` yields results in completion order; consume "
                        "pool results in submission order (pool.map) so merged "
                        "output is byte-identical at any worker count",
                    )


@register_rule
class SpanContextRule(Rule):
    """RPR007: spans open only through ``with tracer.span(...)``.

    The context-manager form is what guarantees every span closes (and
    records) exactly once, even when the body raises — which the
    byte-identical trace exports depend on.  A manual ``start``/``end``
    pair can leak an unbalanced span on any exception path, and a bare
    ``tracer.span(...)`` call outside a ``with`` opens a span that never
    closes.  Explicit-interval recording belongs to ``add_span`` (no clock
    reads, no open state), which this rule deliberately leaves alone.
    """

    rule_id = "RPR007"
    title = "spans opened via context manager only"

    #: Manual open/close method names — the API shape this rule bans.
    _MANUAL = frozenset({"start_span", "end_span", "span_start", "span_end"})

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for info in ctx.modules:
            with_exprs: set[int] = set()
            for node in ast.walk(info.tree):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        with_exprs.add(id(item.context_expr))
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call) \
                        or not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr in self._MANUAL:
                    yield _finding(
                        info, node, self.rule_id,
                        f"manual span API `.{node.func.attr}(...)`: open spans "
                        "with `with tracer.span(...)` so they always close",
                    )
                elif node.func.attr == "span" and id(node) not in with_exprs:
                    dotted = _dotted(node.func.value)
                    if dotted is None:
                        continue
                    receiver = dotted.split(".")[-1].lstrip("_").lower()
                    if "tracer" in receiver:
                        yield _finding(
                            info, node, self.rule_id,
                            f"`{dotted}.span(...)` outside a `with` opens a "
                            "span that never closes; use "
                            "`with tracer.span(...)`",
                        )


@register_rule
class AmbientSleepRule(Rule):
    """RPR008: waits are *scheduled events* on the injected clock.

    Retry backoff, hedge delays, breaker resets and health probes are all
    instants on the simulated timeline (cf. ``serve.faults.FaultInjector``'s
    event heap).  Calling ``time.sleep`` instead blocks the host thread:
    the wait is invisible to the FakeClock, so fault/retry timing would
    depend on wall time and a chaos replay could never be byte-identical.
    Injectable ``sleep=time.sleep`` *defaults* are attribute references,
    not calls, and stay allowed (they carry their RPR001 allow comments).
    """

    rule_id = "RPR008"
    title = "no ambient sleeps; waits are events on the injected clock"

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for info in ctx.modules:
            al = _aliases(info)
            sleep_names: set[str] = set()
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ImportFrom) and not node.level \
                        and node.module == "time":
                    for a in node.names:
                        if a.name == "sleep":
                            sleep_names.add(a.asname or a.name)
                            yield _finding(
                                info, node, self.rule_id,
                                "`from time import sleep` binds an ambient "
                                "blocking sleep; schedule the wait on the "
                                "injected clock instead",
                            )
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                fn = node.func
                if isinstance(fn, ast.Attribute) and fn.attr == "sleep" \
                        and isinstance(fn.value, ast.Name) \
                        and fn.value.id in al.time:
                    yield _finding(
                        info, node, self.rule_id,
                        f"`{fn.value.id}.sleep(...)` blocks the host thread; "
                        "retry/backoff waits must be scheduled events on the "
                        "injected clock (cf. serve.faults.FaultInjector)",
                    )
                elif isinstance(fn, ast.Name) and fn.id in sleep_names:
                    yield _finding(
                        info, node, self.rule_id,
                        f"ambient `{fn.id}(...)` blocks the host thread; "
                        "retry/backoff waits must be scheduled events on the "
                        "injected clock (cf. serve.faults.FaultInjector)",
                    )


#: Canonical ordered rule vocabulary (the resolver's `ENGINES` analogue).
ALL_RULE_IDS: tuple[str, ...] = tuple(sorted(
    cls.rule_id for cls in (
        WallClockRule, UnseededRngRule, SerializerOrderRule,
        LayeringRule, RegistryParityRule, SubmissionOrderRule,
        SpanContextRule, AmbientSleepRule,
    )
))
