"""Analysis driver: collect files, parse, run rules, apply suppressions.

:func:`analyze_paths` is the programmatic entry point (the CLI and the
meta-test both sit on it): it walks the requested files/directories in
sorted order, parses each module once, runs the selected rules over the
shared :class:`AnalysisContext`, and filters findings through the
``# repro: allow[RULE] reason`` suppression comments.  Suppressions with
an empty reason do not suppress — they surface as ``RPR000`` findings,
because the written reason is the whole point of the mechanism.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import AnalysisError
from .base import (
    SUPPRESSION_RULE_ID,
    Finding,
    Suppression,
    parse_suppressions,
    resolve_rules,
    rule_registry,
)
from .importgraph import ImportGraph, build_import_graph

__all__ = [
    "AnalysisContext",
    "ModuleInfo",
    "analyze_paths",
    "collect_files",
    "run_analysis",
    "run_context",
]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module plus everything rules need to inspect it."""

    path: str
    module: str
    is_package: bool
    tree: ast.Module
    source_lines: tuple[str, ...]
    suppressions: tuple[Suppression, ...]


@dataclass
class AnalysisContext:
    """The shared state one analysis run exposes to every rule."""

    modules: tuple[ModuleInfo, ...]
    rule_ids: tuple[str, ...]
    _import_graph: "ImportGraph | None" = field(default=None, repr=False)

    @property
    def import_graph(self) -> ImportGraph:
        if self._import_graph is None:
            self._import_graph = build_import_graph(self.modules)
        return self._import_graph

    @cached_property
    def by_module(self) -> dict[str, ModuleInfo]:
        return {info.module: info for info in self.modules}

    def find_module(self, suffix: str) -> "ModuleInfo | None":
        """The unique analyzed module whose dotted name ends with ``suffix``."""
        hits = [i for i in self.modules if i.module == suffix or i.module.endswith("." + suffix)]
        return hits[0] if len(hits) == 1 else None


def _module_name(path: Path) -> tuple[str, bool]:
    """Derive the dotted module name by walking up the ``__init__.py`` chain."""
    path = path.resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a bare top-level module (fixture snippets)
        parts = [path.stem]
    return ".".join(reversed(parts)), is_package


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py" and p.exists():
            out.append(p)
        else:
            raise AnalysisError(f"not a Python file or directory: {p}")
    seen: set[Path] = set()
    unique = []
    for p in sorted(out):
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            unique.append(p)
    return unique


def _parse(path: Path) -> ModuleInfo:
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from None
    lines = text.splitlines()
    module, is_package = _module_name(path)
    return ModuleInfo(
        path=str(path),
        module=module,
        is_package=is_package,
        tree=tree,
        source_lines=tuple(lines),
        suppressions=tuple(parse_suppressions(lines)),
    )


def run_analysis(
    modules: Iterable[ModuleInfo], rules: "str | Iterable[str] | None" = None
) -> list[Finding]:
    """Run the selected rules over parsed modules; returns sorted findings."""
    ctx = AnalysisContext(modules=tuple(modules), rule_ids=resolve_rules(rules))
    return run_context(ctx)


def run_context(ctx: AnalysisContext) -> list[Finding]:
    """Run ``ctx.rule_ids`` over ``ctx.modules``; returns sorted findings.

    Suppression comments matching a finding's (line, rule) drop it; every
    reason-less suppression comment becomes an ``RPR000`` finding whether
    or not it matched anything.
    """
    registry = rule_registry()
    raw: list[Finding] = []
    for rule_id in ctx.rule_ids:
        rule = registry[rule_id]()
        raw.extend(rule.check(ctx))

    findings: list[Finding] = []
    for info in ctx.modules:
        allowed = {
            (s.line, s.rule_id) for s in info.suppressions if s.reason
        }
        for f in raw:
            if f.path != info.path:
                continue
            if (f.line, f.rule_id) in allowed:
                continue
            findings.append(f)
        for s in info.suppressions:
            if not s.reason:
                findings.append(
                    Finding(
                        path=info.path,
                        line=s.line,
                        col=0,
                        rule_id=SUPPRESSION_RULE_ID,
                        message=(
                            f"suppression of {s.rule_id} has no reason; write "
                            f"`# repro: allow[{s.rule_id}] <why>`"
                        ),
                    )
                )
    # Overlapping call-graph walks (nested defs) can report a site twice.
    return sorted(set(findings))


def analyze_paths(
    paths: Sequence[str | Path], rules: "str | Iterable[str] | None" = None
) -> tuple[list[Finding], AnalysisContext]:
    """Parse every module under ``paths`` and run the selected rules."""
    infos = tuple(_parse(p) for p in collect_files(paths))
    ctx = AnalysisContext(modules=infos, rule_ids=resolve_rules(rules))
    return run_context(ctx), ctx
