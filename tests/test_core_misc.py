"""Tests for dtypes, tensor specs and the FCM taxonomy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.core.fcm import FcmType, candidate_fcm_types, fcm_is_redundant
from repro.core.tensor import FeatureMapSpec, TensorSpec
from repro.errors import ShapeError, UnsupportedError


class TestDType:
    def test_sizes(self):
        assert DType.FP32.nbytes == 4
        assert DType.INT8.nbytes == 1

    def test_numpy_mapping(self):
        assert DType.FP32.np_dtype == np.float32
        assert DType.INT8.np_dtype == np.int8
        assert DType.INT8.acc_dtype == np.int32
        assert DType.FP32.acc_dtype == np.float32

    def test_dp4a_throughput_ratio(self):
        assert DType.INT8.macs_per_core_cycle == 4 * DType.FP32.macs_per_core_cycle

    def test_pack_factor(self):
        assert DType.INT8.pack_factor == 4
        assert DType.FP32.pack_factor == 1


class TestTensorSpec:
    def test_sizes(self):
        t = TensorSpec((4, 8, 8), DType.FP32)
        assert t.num_elements == 256
        assert t.nbytes == 1024
        assert t.with_dtype(DType.INT8).nbytes == 256

    def test_zeros(self):
        z = TensorSpec((2, 3), DType.INT8).zeros()
        assert z.shape == (2, 3) and z.dtype == np.int8

    def test_invalid(self):
        with pytest.raises(ShapeError):
            TensorSpec((0, 3))

    def test_feature_map(self):
        f = FeatureMapSpec(16, 14, 14, DType.INT8)
        assert f.hw == 196
        assert f.nbytes == 16 * 196
        assert f.as_tensor().shape == (16, 14, 14)
        with pytest.raises(ShapeError):
            FeatureMapSpec(0, 1, 1)


class TestFcmTaxonomy:
    def test_candidate_types(self):
        assert candidate_fcm_types("dw", "pw") == (FcmType.DWPW,)
        assert set(candidate_fcm_types("pw", "dw")) == {FcmType.PWDW, FcmType.PWDW_R}
        assert candidate_fcm_types("pw", "pw") == (FcmType.PWPW,)

    def test_dw_dw_rejected(self):
        with pytest.raises(UnsupportedError):
            candidate_fcm_types("dw", "dw")

    def test_redundancy_flag(self):
        assert fcm_is_redundant(FcmType.PWDW_R)
        for t in (FcmType.DWPW, FcmType.PWDW, FcmType.PWPW):
            assert not fcm_is_redundant(t)

    def test_kind_properties(self):
        assert FcmType.DWPW.first_kind == "dw" and FcmType.DWPW.second_kind == "pw"
        assert FcmType.PWDW_R.first_kind == "pw" and FcmType.PWDW_R.second_kind == "dw"
        assert FcmType.PWPW.first_kind == "pw" and FcmType.PWPW.second_kind == "pw"
