"""Fast-path engine: vectorized whole-grid execution vs the reference path.

The contract under test (ISSUE 5 acceptance): for every kernel family, dtype
and tiling edge case, the ``"fast"`` engine's outputs are allclose to the
``"reference"`` engine at dtype tolerance (bit-equal for INT8) while its
:class:`~repro.gpu.counters.AccessCounters` and
:class:`~repro.gpu.executor.LaunchStats` are **exactly** equal — bulk charges
are per-block sums in closed form, not approximations.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import dw_spec, pw_spec, random_ifm, register_tiny_zoo
from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.errors import SimulationError, TuneError
from repro.gpu.counters import AccessCounters
from repro.gpu.executor import launch
from repro.gpu.fastpath import (
    DEFAULT_ENGINE,
    axis_tile_extents,
    axis_window_extents,
    launch_fast,
    resolve_engine,
)
from repro.gpu.specs import RTX_A4000
from repro.kernels.params import chain_quant, make_layer_params
from repro.kernels.registry import (
    build_chain_kernel,
    build_fcm_kernel,
    build_lbl_kernel,
)

_DTYPES = (DType.FP32, DType.INT8)


def assert_counters_equal(a: AccessCounters, b: AccessCounters) -> None:
    """Exact equality, field by field (clearer diffs than dataclass ==)."""
    assert dict(a.global_reads) == dict(b.global_reads)
    assert dict(a.global_writes) == dict(b.global_writes)
    assert a.shared_bytes == b.shared_bytes
    assert a.macs == b.macs
    assert a.redundant_macs == b.redundant_macs
    assert a.kernel_launches == b.kernel_launches
    assert a.rereads == b.rereads


def assert_outputs_match(fast: np.ndarray, ref: np.ndarray, dtype: DType) -> None:
    if dtype is DType.INT8:
        np.testing.assert_array_equal(fast, ref)
    else:
        np.testing.assert_allclose(fast, ref, rtol=1e-4, atol=1e-4)


def assert_parity(make_kernel, ifm: np.ndarray, dtype: DType) -> None:
    """Run fast and reference on fresh kernel instances and compare all."""
    ref = make_kernel().simulate(ifm, RTX_A4000, engine="reference")
    fast = make_kernel().simulate(ifm, RTX_A4000, engine="fast")
    assert_outputs_match(fast.output, ref.output, dtype)
    assert_counters_equal(fast.counters, ref.counters)
    assert fast.stats == ref.stats
    # Identical counters price identically through the roofline.
    assert fast.time_s == ref.time_s


# ---- parity matrix: kernel family x dtype x edge-case geometry ---------------
#: (h, kernel, stride, tile_c, tile_hw-ish) DW edge cases: odd remainders,
#: stride-2 non-divisible geometry, single-tile, halo-heavy 5x5.
_DW_CASES = [
    (13, 3, 1, 4, 5),  # odd remainder rows/cols
    (14, 5, 2, 3, 4),  # stride 2, 5x5 halo, channel remainder
    (12, 3, 2, 16, 16),  # one tile covers everything
    (7, 5, 1, 1, 2),  # tile far smaller than halo
]


@pytest.mark.parametrize("dtype", _DTYPES, ids=[d.value for d in _DTYPES])
@pytest.mark.parametrize("case", _DW_CASES, ids=lambda c: f"h{c[0]}k{c[1]}s{c[2]}")
def test_dw_direct_parity(dtype, case):
    h, k, s, tc, th = case
    spec = dw_spec(c=10, h=h, w=h, kernel=k, stride=s, dtype=dtype)
    params = make_layer_params(spec)
    x = random_ifm(spec)
    assert_parity(
        lambda: build_lbl_kernel(params, {"tile_c": tc, "tile_h": th, "tile_w": th}),
        x,
        dtype,
    )


@pytest.mark.parametrize("dtype", _DTYPES, ids=[d.value for d in _DTYPES])
@pytest.mark.parametrize(
    "stride,tile_m,tile_hw", [(1, 5, 7), (2, 3, 11), (1, 64, 4096)]
)
def test_pw_direct_parity(dtype, stride, tile_m, tile_hw):
    spec = pw_spec(c_in=7, c_out=13, h=11, w=11, stride=stride, dtype=dtype)
    params = make_layer_params(spec)
    x = random_ifm(spec)
    assert_parity(
        lambda: build_lbl_kernel(params, {"tile_m": tile_m, "tile_hw": tile_hw}),
        x,
        dtype,
    )


@pytest.mark.parametrize("dtype", _DTYPES, ids=[d.value for d in _DTYPES])
def test_dwpw_parity(dtype):
    dw = dw_spec(c=8, h=13, w=13, kernel=3, stride=1, dtype=dtype)
    pw = pw_spec("pw2", c_in=8, c_out=12, h=13, w=13, dtype=dtype)
    p1 = make_layer_params(dw)
    p2 = chain_quant(p1, pw)
    x = random_ifm(dw)
    assert_parity(
        lambda: build_fcm_kernel(
            FcmType.DWPW, p1, p2, {"tile_h": 5, "tile_w": 4, "tile_m": 5}
        ),
        x,
        dtype,
    )


@pytest.mark.parametrize("dtype", _DTYPES, ids=[d.value for d in _DTYPES])
@pytest.mark.parametrize("fcm", [FcmType.PWDW, FcmType.PWDW_R])
def test_pwdw_parity(dtype, fcm):
    pw = pw_spec(c_in=6, c_out=10, h=9, w=9, dtype=dtype)
    dw = dw_spec("dw2", c=10, h=9, w=9, kernel=3, stride=2, dtype=dtype)
    p1 = make_layer_params(pw)
    p2 = chain_quant(p1, dw)
    x = random_ifm(pw)
    tiling = {"tile_f": 4}
    if fcm is FcmType.PWDW_R:
        tiling.update(tile_h=3, tile_w=2)  # odd remainders on a 5x5 output
    assert_parity(lambda: build_fcm_kernel(fcm, p1, p2, tiling), x, dtype)


@pytest.mark.parametrize("dtype", _DTYPES, ids=[d.value for d in _DTYPES])
def test_pwpw_parity(dtype):
    pw1 = pw_spec(c_in=6, c_out=10, h=9, w=9, dtype=dtype)
    pw2 = pw_spec("pwb", c_in=10, c_out=9, h=9, w=9, dtype=dtype)
    p1 = make_layer_params(pw1)
    p2 = chain_quant(p1, pw2)
    x = random_ifm(pw1)
    assert_parity(
        lambda: build_fcm_kernel(FcmType.PWPW, p1, p2, {"tile_hw": 13, "tile_m": 4}),
        x,
        dtype,
    )


@pytest.mark.parametrize("dtype", _DTYPES, ids=[d.value for d in _DTYPES])
def test_chain3_parity(dtype):
    """The max_chain=3 kernel: PW -> DW -> PW, odd tile remainders."""
    pw_a = pw_spec("A", c_in=6, c_out=8, h=12, w=12, dtype=dtype)
    dw_b = dw_spec("B", c=8, h=12, w=12, kernel=3, stride=1, dtype=dtype)
    pw_c = pw_spec("C", c_in=8, c_out=10, h=12, w=12, dtype=dtype)
    p_a = make_layer_params(pw_a)
    p_b = chain_quant(p_a, dw_b)
    p_c = chain_quant(p_b, pw_c)
    x = random_ifm(pw_a)
    assert_parity(
        lambda: build_chain_kernel(
            [p_a, p_b, p_c], {"tile_h": 5, "tile_w": 4, "tile_m": 4}
        ),
        x,
        dtype,
    )


@pytest.mark.parametrize("dtype", _DTYPES, ids=[d.value for d in _DTYPES])
def test_chain3_strided_middle_parity(dtype):
    """Chain with a stride-2 middle DW: boundary windows shrink mid-chain."""
    pw_a = pw_spec("A", c_in=4, c_out=6, h=14, w=14, dtype=dtype)
    dw_b = dw_spec("B", c=6, h=14, w=14, kernel=3, stride=2, dtype=dtype)
    pw_c = pw_spec("C", c_in=6, c_out=8, h=7, w=7, dtype=dtype)
    p_a = make_layer_params(pw_a)
    p_b = chain_quant(p_a, dw_b)
    p_c = chain_quant(p_b, pw_c)
    x = random_ifm(pw_a)
    assert_parity(
        lambda: build_chain_kernel(
            [p_a, p_b, p_c], {"tile_h": 3, "tile_w": 5, "tile_m": 8}
        ),
        x,
        dtype,
    )


# ---- property test: bulk charges == sum of per-block charges -----------------
@settings(max_examples=25, deadline=None)
@given(
    c=st.sampled_from([2, 7, 12]),
    h=st.integers(5, 16),
    kernel=st.sampled_from([3, 5]),
    stride=st.integers(1, 2),
    tile_c=st.sampled_from([1, 3, 16]),
    tile_h=st.sampled_from([2, 5, 16]),
    dtype=st.sampled_from(_DTYPES),
)
def test_dw_bulk_charges_equal_per_block_sums(c, h, kernel, stride, tile_c, tile_h, dtype):
    spec = dw_spec(c=c, h=h, w=h, kernel=kernel, stride=stride, dtype=dtype)
    params = make_layer_params(spec)
    x = random_ifm(spec)
    # Raw launches (no finalize), so this isolates the launch-time charging.
    ref_k = build_lbl_kernel(
        params, {"tile_c": tile_c, "tile_h": tile_h, "tile_w": tile_h}
    )
    ref_ctr = AccessCounters()
    ref_k.bind(x, ref_ctr)
    ref_stats = launch(ref_k, RTX_A4000, ref_ctr)
    fast_k = build_lbl_kernel(
        params, {"tile_c": tile_c, "tile_h": tile_h, "tile_w": tile_h}
    )
    fast_ctr = AccessCounters()
    fast_k.bind(x, fast_ctr)
    fast_stats = launch_fast(fast_k, RTX_A4000, fast_ctr)
    assert_counters_equal(fast_ctr, ref_ctr)
    assert fast_stats == ref_stats


@settings(max_examples=25, deadline=None)
@given(
    c=st.sampled_from([3, 8]),
    m=st.sampled_from([4, 11]),
    h=st.integers(4, 12),
    stride=st.integers(1, 2),
    tile_m=st.sampled_from([1, 3, 64]),
    tile_hw=st.sampled_from([5, 16, 1024]),
    dtype=st.sampled_from(_DTYPES),
)
def test_pw_bulk_charges_equal_per_block_sums(c, m, h, stride, tile_m, tile_hw, dtype):
    spec = pw_spec(c_in=c, c_out=m, h=h, w=h, stride=stride, dtype=dtype)
    params = make_layer_params(spec)
    x = random_ifm(spec)
    ref_k = build_lbl_kernel(params, {"tile_m": tile_m, "tile_hw": tile_hw})
    ref_ctr = AccessCounters()
    ref_k.bind(x, ref_ctr)
    ref_stats = launch(ref_k, RTX_A4000, ref_ctr)
    fast_k = build_lbl_kernel(params, {"tile_m": tile_m, "tile_hw": tile_hw})
    fast_ctr = AccessCounters()
    fast_k.bind(x, fast_ctr)
    fast_stats = launch_fast(fast_k, RTX_A4000, fast_ctr)
    assert_counters_equal(fast_ctr, ref_ctr)
    assert fast_stats == ref_stats


def test_axis_extent_helpers():
    assert axis_tile_extents(10, 4) == [4, 4, 2]
    assert sum(axis_tile_extents(113, 7)) == 113
    # 3x3 stride-1 pad-1 over 6 rows, tile 4: first window clamped at the
    # top border, second at the bottom.
    assert axis_window_extents(6, 4, 3, 1, 1, 6) == [5, 3]


# ---- engine selection --------------------------------------------------------
def test_unknown_engine_rejected():
    spec = pw_spec()
    params = make_layer_params(spec)
    kernel = build_lbl_kernel(params, {"tile_m": 8, "tile_hw": 32})
    with pytest.raises(SimulationError):
        kernel.simulate(random_ifm(spec), RTX_A4000, engine="warp")
    assert resolve_engine(None) == DEFAULT_ENGINE == "fast"
    with pytest.raises(SimulationError):
        resolve_engine("turbo")


def test_reference_fallback_for_kernels_without_fast_path():
    """A kernel that never implemented run_grid still simulates (reference)."""
    from repro.core.tiling import PwTiling
    from repro.kernels.base import SimKernel
    from repro.kernels.direct_pw import PwDirectKernel

    spec = pw_spec()
    params = make_layer_params(spec)
    assert build_lbl_kernel(params, {"tile_m": 8, "tile_hw": 32}).has_fast_path()

    class Legacy(PwDirectKernel):
        run_grid = SimKernel.run_grid

    legacy = Legacy(params, PwTiling(8, 32))
    assert not legacy.has_fast_path()
    res = legacy.simulate(random_ifm(spec), RTX_A4000, engine="fast")
    assert res.counters.total_bytes > 0


# ---- batched execution -------------------------------------------------------
@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_batched_counters_scale_single_image_totals(engine):
    """simulate_batch meters image 0 once and scales it (documented contract)."""
    spec = dw_spec(c=6, h=10, w=10, kernel=3, stride=1)
    params = make_layer_params(spec)
    kernel = build_lbl_kernel(params, {"tile_c": 4, "tile_h": 4, "tile_w": 4})
    rng = np.random.default_rng(3)
    batch = rng.standard_normal((3,) + spec.ifm.shape).astype(np.float32)
    single = build_lbl_kernel(
        params, {"tile_c": 4, "tile_h": 4, "tile_w": 4}
    ).simulate(batch[0], RTX_A4000, engine)
    res = kernel.simulate_batch(batch, RTX_A4000, engine)
    expected = single.counters.batched(3, kernel.weight_bytes())
    assert_counters_equal(res.counters, expected)
    assert res.stats == single.stats
    # Every image's output matches its standalone simulation (no aliasing
    # between the recycled OFM buffer and the stacked batch output).
    for i in range(3):
        np.testing.assert_allclose(
            res.output[i],
            build_lbl_kernel(
                params, {"tile_c": 4, "tile_h": 4, "tile_w": 4}
            ).simulate(batch[i], RTX_A4000, engine).output,
            rtol=1e-5,
            atol=1e-5,
        )


def test_batch_engines_agree():
    spec = pw_spec(c_in=5, c_out=9, h=8, w=8)
    params = make_layer_params(spec)
    rng = np.random.default_rng(4)
    batch = rng.standard_normal((4,) + spec.ifm.shape).astype(np.float32)
    fast = build_lbl_kernel(params, {"tile_m": 4, "tile_hw": 16}).simulate_batch(
        batch, RTX_A4000, "fast"
    )
    ref = build_lbl_kernel(params, {"tile_m": 4, "tile_hw": 16}).simulate_batch(
        batch, RTX_A4000, "reference"
    )
    np.testing.assert_allclose(fast.output, ref.output, rtol=1e-4, atol=1e-4)
    assert_counters_equal(fast.counters, ref.counters)


def test_independent_simulations_never_alias_outputs():
    """Two simulate calls on one instance must not share the OFM buffer."""
    spec = pw_spec(c_in=4, c_out=6, h=6, w=6)
    params = make_layer_params(spec)
    kernel = build_lbl_kernel(params, {"tile_m": 4, "tile_hw": 16})
    x1 = random_ifm(spec, seed=1)
    x2 = random_ifm(spec, seed=2)
    out1 = kernel.simulate(x1, RTX_A4000).output
    snapshot = out1.copy()
    kernel.simulate(x2, RTX_A4000)
    np.testing.assert_array_equal(out1, snapshot)


def test_grid_is_memoized_per_instance():
    spec = dw_spec(c=4, h=8, w=8)
    params = make_layer_params(spec)
    kernel = build_lbl_kernel(params, {"tile_c": 2, "tile_h": 4, "tile_w": 4})
    assert kernel.grid() is kernel.grid()


# ---- zoo-wide end-to-end parity ---------------------------------------------
@pytest.mark.parametrize(
    "model,dtype",
    [
        ("mobilenet_v1", DType.FP32),
        ("mobilenet_v2", DType.INT8),
        ("proxylessnas", DType.FP32),
    ],
)
def test_session_engine_parity(model, dtype):
    """Whole-plan parity: per-step counters exactly equal, outputs allclose."""
    from repro.models.zoo import build_model
    from repro.planner.planner import FusePlanner
    from repro.runtime.network_params import materialize_network
    from repro.runtime.session import InferenceSession

    graph = build_model(model, dtype)
    plan = FusePlanner(RTX_A4000).plan(graph)
    params = materialize_network(graph, dtype, 0)
    session = InferenceSession(graph, plan, params)
    rng = np.random.default_rng(0)
    shape = next(iter(graph.topological())).ifm.shape
    if dtype is DType.INT8:
        x = rng.integers(-128, 128, shape).astype(np.int8)
    else:
        x = rng.standard_normal(shape).astype(np.float32)
    fast = session.run(x, engine="fast")
    ref = session.run(x, engine="reference")
    assert len(fast.records) == len(ref.records)
    for rf, rr in zip(fast.records, ref.records):
        assert rf.name == rr.name
        assert_counters_equal(rf.counters, rr.counters)
        assert rf.time_s == rr.time_s
        assert rf.energy_j == rr.energy_j
    assert fast.latency_s == ref.latency_s
    assert_outputs_match(fast.output, ref.output, dtype)


def test_server_engine_threads_through(monkeypatch):
    """A reference-engine server returns the same report as a fast one."""
    from repro.serve.server import ModelServer

    register_tiny_zoo(monkeypatch)
    rng = np.random.default_rng(0)
    inputs = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
    fast_srv = ModelServer(RTX_A4000, engine="fast")
    ref_srv = ModelServer(RTX_A4000, engine="reference")
    rep_fast = fast_srv.submit("tiny_a", inputs)
    rep_ref = ref_srv.submit("tiny_a", inputs)
    np.testing.assert_allclose(rep_fast.output, rep_ref.output, rtol=1e-4, atol=1e-4)
    assert rep_fast.latency_s == rep_ref.latency_s


# ---- tuning integration ------------------------------------------------------
def test_simulated_kernel_cost_engine_invariant():
    """Kernel-in-the-loop cost is identical on both engines (exact counters)."""
    from repro.planner.plan import LblStep
    from repro.planner.search import best_lbl_tiling

    spec = pw_spec(c_in=8, c_out=16, h=10, w=10)
    tiling = best_lbl_tiling(spec, RTX_A4000)
    step = LblStep(spec=spec, tiling=tiling.tiling, est_gma_bytes=tiling.gma_bytes)
    from repro.tune.measure import simulated_kernel_cost_s

    fast = simulated_kernel_cost_s(step, RTX_A4000, DType.FP32, engine="fast")
    ref = simulated_kernel_cost_s(step, RTX_A4000, DType.FP32, engine="reference")
    assert fast == ref


def test_tuning_record_engine_provenance_round_trip():
    from repro.tune.records import SCHEMA_VERSION, TuningDB, TuningKey, TuningRecord

    key = TuningKey(
        family="lbl-pw", geometry=("pw", 8, 16, 10, 10, 1, 1, 0),
        gpu="RTX", dtype="fp32", convention="paper",
    )
    rec = TuningRecord(
        key=key, tiling={"tile_m": 8, "tile_hw": 32}, est_cost_s=1e-6,
        measured_cost_s=2e-6, tuned_cost_s=2e-6, gma_bytes=1024, evaluated=3,
        engine="fast",
    )
    db = TuningDB()
    db.add(rec)
    reloaded = TuningDB.loads(db.dumps())
    assert reloaded.get(key).engine == "fast"
    assert reloaded.dumps() == db.dumps()  # canonical round-trip keeps the field

    # Schema guard: a v1 record written *before* the engine field existed
    # (no "engine" key) still loads, defaulting to the analytic backend.
    old = rec.to_json()
    del old["engine"]
    header = json.dumps({"kind": "repro-tunedb", "schema": SCHEMA_VERSION})
    legacy = TuningDB.loads(header + "\n" + json.dumps(old) + "\n")
    assert legacy.get(key).engine == "analytic"

    # Corrupt records still raise, engine field or not.
    bad = rec.to_json()
    bad["evaluated"] = "many"
    with pytest.raises(TuneError):
        TuningDB.loads(header + "\n" + json.dumps(bad) + "\n")


def test_measure_model_records_engine(monkeypatch, tmp_path):
    from repro.tune.measure import measure_model
    from repro.tune.records import TuningDB

    register_tiny_zoo(monkeypatch)
    db = TuningDB()
    measure_model("tiny_a", RTX_A4000, DType.FP32, db=db, iterations=2)
    assert all(r.engine == "analytic" for r in db)
    db_k = TuningDB()
    measure_model(
        "tiny_a", RTX_A4000, DType.FP32, db=db_k, iterations=2, backend="kernel"
    )
    assert all(r.engine == "fast" for r in db_k)
