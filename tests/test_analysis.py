"""repro.analysis: the AST invariant linter that guards this repo's contracts.

Each rule gets a fixture triplet (violating / suppressed / clean snippet on
disk via tmp_path), plus import-graph cycle detection, the suppression
grammar (reason mandatory -> RPR000), registry resolution, report
byte-determinism, CLI exit codes — and the meta-test: ``src/repro`` itself
must analyze finding-free, so every audited exception in the tree carries
its reasoned allow comment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULE_IDS,
    LAYER_DEPS,
    Finding,
    analyze_paths,
    build_import_graph,
    render_json,
    render_text,
    resolve_rules,
    rule_registry,
)
from repro.analysis.base import SUPPRESSION_RULE_ID, parse_suppressions
from repro.analysis.cli import main as analysis_main
from repro.errors import AnalysisError, ReproError

REPO = Path(__file__).resolve().parents[1]


def _write(tmp_path: Path, name: str, source: str) -> Path:
    p = tmp_path / name
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(source, encoding="utf-8")
    return p


def _rule_ids(findings: "list[Finding]") -> set[str]:
    return {f.rule_id for f in findings}


def _analyze_snippet(tmp_path: Path, source: str, rules: "str | None" = None):
    path = _write(tmp_path, "snippet.py", source)
    findings, _ = analyze_paths([path], rules)
    return findings


class TestRegistry:
    def test_all_eight_rules_registered(self):
        assert ALL_RULE_IDS == (
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008",
        )
        registry = rule_registry()
        assert set(registry) == set(ALL_RULE_IDS)
        for rule_id, cls in registry.items():
            assert cls.rule_id == rule_id
            assert cls.title

    def test_resolve_rules_defaults_to_all(self):
        assert resolve_rules(None) == ALL_RULE_IDS
        assert resolve_rules("") == ALL_RULE_IDS
        assert resolve_rules([]) == ALL_RULE_IDS

    def test_resolve_rules_normalizes_selection(self):
        assert resolve_rules("RPR006,RPR001") == ("RPR001", "RPR006")
        assert resolve_rules(["RPR003", "RPR003"]) == ("RPR003",)

    def test_resolve_rules_rejects_unknown(self):
        with pytest.raises(AnalysisError, match="RPR999"):
            resolve_rules("RPR001,RPR999")

    def test_analysis_error_is_a_repro_error(self):
        assert issubclass(AnalysisError, ReproError)


class TestWallClockRule:
    """RPR001 — no ambient wall-clock reads."""

    def test_flags_time_calls(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n"
        ), rules="RPR001")
        assert _rule_ids(findings) == {"RPR001"}
        assert findings[0].line == 3

    def test_flags_from_time_import_and_datetime_now(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "from time import monotonic\n"
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return monotonic(), datetime.now()\n"
        ), rules="RPR001")
        assert len(findings) == 2
        assert {f.line for f in findings} == {1, 4}

    def test_suppression_with_reason_clears_it(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def stamp(clock=time.monotonic):"
            "  # repro: allow[RPR001] injectable default\n"
            "    return clock()\n"
        ), rules="RPR001")
        assert findings == []

    def test_clean_injected_clock_passes(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def stamp(clock):\n"
            "    return clock()\n"
        ), rules="RPR001")
        assert findings == []

    def test_sleep_is_not_a_clock_read(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def nap():\n"
            "    time.sleep(0.1)\n"
        ), rules="RPR001")
        assert findings == []


class TestUnseededRngRule:
    """RPR002 — no module-level or unseeded RNG."""

    def test_flags_stdlib_random_and_unseeded_default_rng(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import random\n"
            "import numpy as np\n"
            "def draw():\n"
            "    a = random.random()\n"
            "    rng = np.random.default_rng()\n"
            "    return a, rng\n"
        ), rules="RPR002")
        assert _rule_ids(findings) == {"RPR002"}
        assert {f.line for f in findings} == {4, 5}

    def test_flags_numpy_global_state(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.rand(3)\n"
        ), rules="RPR002")
        assert len(findings) == 1
        assert "global RNG" in findings[0].message

    def test_seeded_default_rng_is_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import numpy as np\n"
            "def draw(seed):\n"
            "    return np.random.default_rng(seed).normal()\n"
        ), rules="RPR002")
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import random\n"
            "def shuffle_demo():\n"
            "    # repro: allow[RPR002] demo script, not a reproducible path\n"
            "    return random.random()\n"
        ), rules="RPR002")
        assert findings == []


class TestSerializerOrderRule:
    """RPR003 — sorted iteration in functions reachable from serializers."""

    def test_flags_bare_dict_iteration_in_serializer(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def dumps(store):\n"
            "    return [k for k, v in store.items()]\n"
        ), rules="RPR003")
        assert _rule_ids(findings) == {"RPR003"}
        assert ".items()" in findings[0].message

    def test_reaches_through_the_call_graph(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def _rows(store):\n"
            "    for key in store.keys():\n"
            "        yield key\n"
            "def to_jsonl(store):\n"
            "    return list(_rows(store))\n"
        ), rules="RPR003")
        assert len(findings) == 1
        assert "_rows" in findings[0].message

    def test_sorted_iteration_is_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def dumps(store):\n"
            "    return [k for k, v in sorted(store.items())]\n"
        ), rules="RPR003")
        assert findings == []

    def test_unreachable_functions_are_out_of_scope(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def hot_loop(store):\n"
            "    return [v for v in store.values()]\n"
        ), rules="RPR003")
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def dumps(store):\n"
            "    # repro: allow[RPR003] keys are unsortable; rows sorted below\n"
            "    rows = [k for k in store.keys()]\n"
            "    return sorted(map(str, rows))\n"
        ), rules="RPR003")
        assert findings == []


class TestLayeringRule:
    """RPR004 — the import graph matches the architecture DAG, acyclically."""

    @staticmethod
    def _fake_repro(tmp_path: Path, core_body: str, serve_body: str = "") -> Path:
        root = tmp_path / "repro"
        _write(tmp_path, "repro/__init__.py", "")
        _write(tmp_path, "repro/core/__init__.py", "")
        _write(tmp_path, "repro/serve/__init__.py", "")
        _write(tmp_path, "repro/core/engine.py", core_body)
        _write(tmp_path, "repro/serve/server.py", serve_body)
        return root

    def test_upward_import_is_flagged(self, tmp_path):
        root = self._fake_repro(
            tmp_path, core_body="from ..serve.server import x\n",
            serve_body="x = 1\n",
        )
        findings, _ = analyze_paths([root], rules="RPR004")
        assert len(findings) == 1
        assert "`core` may not depend on `serve`" in findings[0].message

    def test_lazy_upward_import_is_still_flagged(self, tmp_path):
        root = self._fake_repro(
            tmp_path,
            core_body=(
                "def boot():\n"
                "    from ..serve.server import x\n"
                "    return x\n"
            ),
            serve_body="x = 1\n",
        )
        findings, _ = analyze_paths([root], rules="RPR004")
        assert len(findings) == 1

    def test_downward_import_is_clean(self, tmp_path):
        root = self._fake_repro(
            tmp_path, core_body="VALUE = 2\n",
            serve_body="from ..core.engine import VALUE\n",
        )
        findings, _ = analyze_paths([root], rules="RPR004")
        assert findings == []

    def test_module_cycle_is_flagged(self, tmp_path):
        root = tmp_path / "repro"
        _write(tmp_path, "repro/__init__.py", "")
        _write(tmp_path, "repro/core/__init__.py", "")
        _write(tmp_path, "repro/core/a.py", "from .b import y\nx = 1\n")
        _write(tmp_path, "repro/core/b.py", "from .a import x\ny = 2\n")
        findings, _ = analyze_paths([root], rules="RPR004")
        assert len(findings) == 1
        assert "import cycle" in findings[0].message
        assert "repro.core.a" in findings[0].message

    def test_lazy_import_breaks_the_cycle(self, tmp_path):
        root = tmp_path / "repro"
        _write(tmp_path, "repro/__init__.py", "")
        _write(tmp_path, "repro/core/__init__.py", "")
        _write(tmp_path, "repro/core/a.py", (
            "def go():\n"
            "    from .b import y\n"
            "    return y\n"
            "x = 1\n"
        ))
        _write(tmp_path, "repro/core/b.py", "from .a import x\ny = 2\n")
        findings, _ = analyze_paths([root], rules="RPR004")
        assert findings == []

    def test_layer_deps_is_a_dag(self):
        # The allow-table itself must be acyclic and closed over its keys.
        for layer, deps in LAYER_DEPS.items():
            assert layer not in deps
            assert deps <= set(LAYER_DEPS), (layer, deps - set(LAYER_DEPS))
        seen: set[str] = set()
        frontier = [l for l, d in LAYER_DEPS.items() if not d]
        while frontier:
            seen.update(frontier)
            frontier = [
                l for l, d in LAYER_DEPS.items()
                if l not in seen and d <= seen
            ]
        assert seen == set(LAYER_DEPS)


class TestRegistryParityRule:
    """RPR005 — kernel engine pairs and schema round-trip pairs stay whole."""

    def test_schema_class_missing_from_json(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "SCHEMA_VERSION = 3\n"
            "class Record:\n"
            "    def to_json(self):\n"
            "        return {}\n"
        ), rules="RPR005")
        assert len(findings) == 1
        assert "`to_json` but not `from_json`" in findings[0].message

    def test_complete_pairs_are_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "SCHEMA_VERSION = 3\n"
            "class Record:\n"
            "    def to_json(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_json(cls, data):\n"
            "        return cls()\n"
        ), rules="RPR005")
        assert findings == []

    def test_no_schema_marker_no_requirement(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "class Scratch:\n"
            "    def dumps(self):\n"
            "        return ''\n"
        ), rules="RPR005")
        assert findings == []

    def test_registered_kernel_missing_run_grid(self, tmp_path):
        _write(tmp_path, "repro/__init__.py", "")
        _write(tmp_path, "repro/kernels/__init__.py", "")
        _write(tmp_path, "repro/kernels/base.py", (
            "class SimKernel:\n"
            "    pass\n"
        ))
        _write(tmp_path, "repro/kernels/direct.py", (
            "from .base import SimKernel\n"
            "class HalfKernel(SimKernel):\n"
            "    def run_block(self):\n"
            "        return None\n"
        ))
        _write(tmp_path, "repro/kernels/registry.py", (
            "from .direct import HalfKernel\n"
            "KERNELS = {'half': HalfKernel}\n"
        ))
        findings, _ = analyze_paths([tmp_path / "repro"], rules="RPR005")
        assert len(findings) == 1
        assert "`HalfKernel` does not define `run_grid`" in findings[0].message


class TestSubmissionOrderRule:
    """RPR006 — pool results merge in submission order."""

    def test_flags_as_completed(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "from concurrent.futures import as_completed\n"
            "def merge(futures):\n"
            "    return [f.result() for f in as_completed(futures)]\n"
        ), rules="RPR006")
        assert _rule_ids(findings) == {"RPR006"}
        assert {f.line for f in findings} == {1, 3}

    def test_flags_imap_unordered(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def merge(pool, work):\n"
            "    return list(pool.imap_unordered(str, work))\n"
        ), rules="RPR006")
        assert len(findings) == 1

    def test_pool_map_is_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def merge(pool, work):\n"
            "    return list(pool.map(str, work))\n"
        ), rules="RPR006")
        assert findings == []


class TestSpanContextRule:
    """RPR007 — spans open only through the context-manager form."""

    def test_flags_manual_start_end_pair(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def work(tracer):\n"
            "    tracer.start_span('batch')\n"
            "    run()\n"
            "    tracer.end_span()\n"
        ), rules="RPR007")
        assert _rule_ids(findings) == {"RPR007"}
        assert {f.line for f in findings} == {2, 4}

    def test_flags_bare_span_call_outside_with(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def work(tracer):\n"
            "    span = tracer.span('batch')\n"
            "    span.__enter__()\n"
        ), rules="RPR007")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "with tracer.span" in findings[0].message

    def test_with_form_is_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def work(tracer):\n"
            "    with tracer.span('batch', size=4):\n"
            "        run()\n"
        ), rules="RPR007")
        assert findings == []

    def test_add_span_and_foreign_span_calls_are_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import re\n"
            "def work(tracer, text):\n"
            "    tracer.add_span('busy', 0.0, 1.0)\n"
            "    return re.match('a', text).span()\n"
        ), rules="RPR007")
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def work(tracer):\n"
            "    # repro: allow[RPR007] exporter test fixture, never entered\n"
            "    return tracer.span('batch')\n"
        ), rules="RPR007")
        assert findings == []


class TestAmbientSleepRule:
    """RPR008 — retry/backoff waits are events on the injected clock."""

    def test_flags_time_sleep_call(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def backoff(attempt):\n"
            "    time.sleep(2 ** attempt)\n"
        ), rules="RPR008")
        assert _rule_ids(findings) == {"RPR008"}
        assert findings[0].line == 3
        assert "injected clock" in findings[0].message

    def test_flags_from_time_import_sleep_and_its_call(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "from time import sleep\n"
            "def backoff():\n"
            "    sleep(0.1)\n"
        ), rules="RPR008")
        assert len(findings) == 2
        assert {f.line for f in findings} == {1, 3}

    def test_injectable_sleep_default_is_clean(self, tmp_path):
        # The reference, not the call: `sleep=time.sleep` defaults stay
        # legal (their wall-clock nature is RPR001's allow-comment domain).
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def serve(sleep=time.sleep):\n"
            "    sleep(0.0)\n"
        ), rules="RPR008")
        assert findings == []

    def test_scheduled_event_on_injected_clock_is_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import heapq\n"
            "def schedule(heap, now, delay):\n"
            "    heapq.heappush(heap, (now + delay, 'retry'))\n"
        ), rules="RPR008")
        assert findings == []

    def test_foreign_sleep_attribute_is_clean(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "def drive(clock):\n"
            "    clock.sleep(0.1)\n"
        ), rules="RPR008")
        assert findings == []

    def test_suppressed_with_reason(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def wait():\n"
            "    # repro: allow[RPR008] operator-facing poll loop, not replay\n"
            "    time.sleep(1.0)\n"
        ), rules="RPR008")
        assert findings == []


class TestSuppressions:
    def test_reasonless_suppression_is_a_finding(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow[RPR001]\n"
        ))
        # The bad comment does NOT suppress, and additionally reports RPR000.
        assert _rule_ids(findings) == {"RPR001", SUPPRESSION_RULE_ID}

    def test_comment_block_covers_next_code_line(self):
        sup = parse_suppressions([
            "# repro: allow[RPR004] the reason spans",
            "# two comment lines",
            "from ..serve import x",
        ])
        assert len(sup) == 1
        assert sup[0].line == 3
        assert sup[0].rule_id == "RPR004"
        assert sup[0].reason

    def test_suppression_is_rule_specific(self, tmp_path):
        findings = _analyze_snippet(tmp_path, (
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow[RPR002] wrong rule id\n"
        ), rules="RPR001")
        assert _rule_ids(findings) == {"RPR001"}


class TestImportGraph:
    def test_edges_resolve_relative_imports(self, tmp_path):
        _write(tmp_path, "pkg/__init__.py", "")
        _write(tmp_path, "pkg/a.py", "from . import b\n")
        _write(tmp_path, "pkg/b.py", "")
        _, ctx = analyze_paths([tmp_path / "pkg"], rules="RPR004")
        graph = build_import_graph(ctx.modules)
        assert any(
            e.source == "pkg.a" and e.target == "pkg.b" for e in graph.edges
        )

    def test_cycles_are_deterministic(self, tmp_path):
        _write(tmp_path, "pkg/__init__.py", "")
        _write(tmp_path, "pkg/a.py", "from .b import y\n")
        _write(tmp_path, "pkg/b.py", "from .c import z\n")
        _write(tmp_path, "pkg/c.py", "from .a import x\n")
        _, ctx = analyze_paths([tmp_path / "pkg"], rules="RPR004")
        graph = build_import_graph(ctx.modules)
        cycles = graph.cycles()
        assert cycles == graph.cycles()  # stable
        assert len(cycles) == 1
        assert set(cycles[0]) == {"pkg.a", "pkg.b", "pkg.c"}

    def test_no_false_cycle_from_type_checking_imports(self, tmp_path):
        _write(tmp_path, "pkg/__init__.py", "")
        _write(tmp_path, "pkg/a.py", (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from .b import B\n"
        ))
        _write(tmp_path, "pkg/b.py", "from .a import x\nclass B: pass\n")
        _, ctx = analyze_paths([tmp_path / "pkg"], rules="RPR004")
        assert build_import_graph(ctx.modules).cycles() == []


class TestReporters:
    def _findings(self, tmp_path):
        return _analyze_snippet(tmp_path, (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ), rules="RPR001")

    def test_text_report_lists_findings_and_summary(self, tmp_path):
        findings = self._findings(tmp_path)
        text = render_text(findings, ("RPR001",), 1)
        assert "RPR001" in text
        assert "1 finding" in text

    def test_json_report_is_byte_deterministic(self, tmp_path):
        findings = self._findings(tmp_path)
        a = render_json(findings, ("RPR001",), 1)
        b = render_json(list(findings), ("RPR001",), 1)
        assert a == b
        assert a.endswith("\n")
        import json

        payload = json.loads(a)
        assert payload["kind"] == "repro-analysis-report"
        assert payload["schema"] == 1
        assert payload["rules"] == ["RPR001"]
        assert len(payload["findings"]) == len(findings)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "def f():\n    return 1\n")
        assert analysis_main([str(path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one_and_write_report(self, tmp_path, capsys):
        bad = _write(tmp_path, "bad.py", (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ))
        out = tmp_path / "report.json"
        rc = analysis_main([str(bad), "--format", "json",
                            "--output", str(out)])
        assert rc == 1
        report = out.read_text(encoding="utf-8")
        assert report == capsys.readouterr().out
        assert "RPR001" in report

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "ok.py", "x = 1\n")
        assert analysis_main([str(path), "--rules", "NOPE01"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path):
        assert analysis_main([str(tmp_path / "missing.py")]) == 2

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out


class TestSelfAnalysis:
    """The meta-test: the shipped tree holds its own invariants."""

    def test_src_repro_is_finding_free(self):
        findings, ctx = analyze_paths([REPO / "src" / "repro"])
        assert findings == [], "\n".join(f.describe() for f in findings)
        assert ctx.rule_ids == ALL_RULE_IDS
        assert len(ctx.modules) > 50  # the whole tree was actually scanned

    def test_every_shipped_suppression_carries_a_reason(self):
        _, ctx = analyze_paths([REPO / "src" / "repro"])
        for info in ctx.modules:
            for sup in info.suppressions:
                assert sup.reason, f"{info.path}:{sup.line} ({sup.rule_id})"
