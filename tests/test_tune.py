"""repro.tune: tuning records, measurement, calibration, warm-start."""

from __future__ import annotations

import json

import pytest

from helpers import TINY_ZOO, register_tiny_zoo
from repro.core.dtypes import DType
from repro.errors import TuneError
from repro.gpu.specs import GTX1660, RTX_A4000
from repro.models.zoo import build_model, model_names
from repro.planner.plan import ChainStep, LblStep, step_family
from repro.planner.planner import FusePlanner
from repro.runtime.session import InferenceSession
from repro.serve.cache import PlanCache
from repro.serve.loadgen import fleet_replay
from repro.serve.server import ModelServer
from repro.tune.calibrate import Calibration, analytic_cost_s, fit_calibration
from repro.tune.measure import (
    estimated_step_cost_s,
    measure_model,
    measured_step_cost_s,
    plan_cost_estimate,
    simulated_kernel_cost_s,
    tune_step_tiling,
)
from repro.tune.records import (
    SCHEMA_VERSION,
    TuningDB,
    TuningKey,
    TuningRecord,
    spec_geometry,
)


def _key(family="lbl-pw", geometry=("pw", 8, 16, 12, 12, 1, 1, 0),
         gpu="RTX", dtype="fp32", convention="paper") -> TuningKey:
    return TuningKey(family=family, geometry=geometry, gpu=gpu, dtype=dtype,
                     convention=convention)


def _record(key=None, tiling=None, est=1e-4, measured=1.3e-4, tuned=1.2e-4,
            gma=4096, evaluated=7, seed=0) -> TuningRecord:
    return TuningRecord(
        key=key if key is not None else _key(),
        tiling=tiling if tiling is not None else {"tile_m": 16, "tile_hw": 64},
        est_cost_s=est,
        measured_cost_s=measured,
        tuned_cost_s=tuned,
        gma_bytes=gma,
        evaluated=evaluated,
        seed=seed,
    )


class TestTuningDB:
    def test_roundtrip_is_byte_identical(self, tmp_path):
        db = TuningDB()
        # Awkward floats on purpose: shortest-repr JSON must round-trip them.
        db.add(_record(est=1 / 3, measured=0.1 + 0.2))
        db.add(_record(key=_key(family="lbl-dw", gpu="GTX"),
                       tiling={"tile_c": 4, "tile_h": 8, "tile_w": 8}))
        db.add(_record(key=_key(family="model", geometry=("m", 2)), tiling={}))
        p1 = tmp_path / "a.json"
        db.save(p1)
        text1 = p1.read_text()
        db2 = TuningDB.load(p1)
        p2 = tmp_path / "b.json"
        db2.save(p2)
        assert p2.read_bytes() == p1.read_bytes()
        # ... and loaded keys hash identically (tuples, not lists).
        assert db2.get(_key()) is not None
        assert text1.startswith('{"kind":"repro-tunedb"')

    def test_best_record_per_key(self):
        db = TuningDB()
        assert db.add(_record(tuned=2e-4))
        assert db.add(_record(tuned=1e-4))  # better: adopted
        assert not db.add(_record(tuned=3e-4))  # worse: rejected
        assert not db.add(_record(tuned=1e-4))  # tie: incumbent kept
        assert len(db) == 1
        assert db.get(_key()).tuned_cost_s == 1e-4

    def test_merge_adopts_better_records(self):
        a, b = TuningDB(), TuningDB()
        a.add(_record(tuned=2e-4))
        b.add(_record(tuned=1e-4))
        b.add(_record(key=_key(gpu="GTX"), tuned=5e-4))
        assert a.merge(b) == 2
        assert len(a) == 2 and a.get(_key()).tuned_cost_s == 1e-4

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TuneError, match="does not exist"):
            TuningDB.load(tmp_path / "nope.json")

    def test_empty_and_bad_header_rejected(self):
        with pytest.raises(TuneError, match="empty"):
            TuningDB.loads("")
        with pytest.raises(TuneError, match="corrupt tuning DB header"):
            TuningDB.loads("not json\n")
        with pytest.raises(TuneError, match="not a tuning DB"):
            TuningDB.loads('{"kind":"something-else","schema":1}\n')

    def test_future_schema_rejected(self):
        header = json.dumps({"kind": "repro-tunedb", "schema": SCHEMA_VERSION + 1})
        with pytest.raises(TuneError, match="refusing to guess"):
            TuningDB.loads(header + "\n")

    def test_corrupt_record_line_rejected(self, tmp_path):
        db = TuningDB()
        db.add(_record())
        p = tmp_path / "db.json"
        db.save(p)
        p.write_text(p.read_text() + "{truncated\n")
        with pytest.raises(TuneError, match="line 3"):
            TuningDB.load(p)

    def test_future_record_version_rejected(self):
        db = TuningDB()
        db.add(_record())
        obj = json.loads(db.dumps().splitlines()[1])
        obj["v"] = SCHEMA_VERSION + 1
        header = json.dumps({"kind": "repro-tunedb", "schema": SCHEMA_VERSION})
        with pytest.raises(TuneError, match=f"v{SCHEMA_VERSION + 1}"):
            TuningDB.loads(header + "\n" + json.dumps(obj) + "\n")

    def test_malformed_record_fields_rejected(self):
        header = json.dumps({"kind": "repro-tunedb", "schema": SCHEMA_VERSION})
        with pytest.raises(TuneError, match="schema version"):
            TuningDB.loads(header + "\n" + json.dumps({"no": "version"}) + "\n")
        bad = _record().to_json()
        del bad["tiling"]
        with pytest.raises(TuneError, match="malformed tuning record"):
            TuningDB.loads(header + "\n" + json.dumps(bad) + "\n")
        # Wrong-typed fields raise TuneError too, never a raw traceback.
        nulled = _record().to_json()
        nulled["tiling"] = None
        with pytest.raises(TuneError, match="malformed tuning record"):
            TuningDB.loads(header + "\n" + json.dumps(nulled) + "\n")


class TestMeasurement:
    @pytest.fixture(scope="class")
    def planned(self):
        graph = build_model("mobilenet_v1", DType.FP32)
        plan = FusePlanner(GTX1660).plan(graph)
        return graph, plan

    def test_measured_matches_session_analytic(self, planned):
        graph, plan = planned
        report = InferenceSession(graph, plan).run_analytic()
        for step, rec in zip(plan.steps, report.records):
            measured = measured_step_cost_s(step, GTX1660, DType.FP32)
            assert measured == pytest.approx(rec.time_s, rel=1e-12)

    def test_simulated_kernel_agrees_with_counters(self, planned):
        # Hardware-in-the-loop backend: the instrumented kernel grid meters
        # the same cost the analytic counter builders predict.
        _graph, plan = planned
        conv_steps = [s for s in plan.steps if isinstance(s, (LblStep, ChainStep))]
        for step in conv_steps[:2]:
            fast = measured_step_cost_s(step, GTX1660, DType.FP32)
            slow = simulated_kernel_cost_s(step, GTX1660, DType.FP32)
            assert slow == pytest.approx(fast, rel=1e-9)

    def test_tune_step_modes(self, planned):
        _graph, plan = planned
        step = next(s for s in plan.steps if isinstance(s, (LblStep, ChainStep)))
        t_ex, c_ex, n_ex = tune_step_tiling(
            step, GTX1660, DType.FP32, mode="exhaustive")
        t_g, c_g, n_g = tune_step_tiling(
            step, GTX1660, DType.FP32, mode="guided", iterations=4, seed=1)
        t_r, c_r, n_r = tune_step_tiling(
            step, GTX1660, DType.FP32, mode="random", iterations=4, seed=1)
        # Exhaustive is the floor; guided can only add the planner's pick.
        assert c_ex <= c_g <= c_r
        assert n_ex >= n_g >= n_r == 4
        with pytest.raises(TuneError, match="unknown search mode"):
            tune_step_tiling(step, GTX1660, DType.FP32, mode="best")
        with pytest.raises(TuneError, match="budget must be >= 1"):
            tune_step_tiling(step, GTX1660, DType.FP32, iterations=0)

    def test_guided_budget_never_exceeds_grid(self, planned):
        # When the budget already covers every candidate, guided mode must
        # not re-measure the planner's pick: evaluated <= grid size.
        from repro.planner.search import enumerate_lbl_tilings

        _graph, plan = planned
        step = next(s for s in plan.steps if isinstance(s, LblStep))
        grid = len(enumerate_lbl_tilings(step.spec, GTX1660))
        _t, _c, n = tune_step_tiling(step, GTX1660, DType.FP32,
                                     mode="guided", iterations=10 * grid)
        assert n == grid

    def test_guided_never_worse_than_planned(self, planned):
        _graph, plan = planned
        for step in plan.steps:
            if not isinstance(step, (LblStep, ChainStep)):
                continue
            planned_cost = measured_step_cost_s(step, GTX1660, DType.FP32)
            _t, cost, _n = tune_step_tiling(
                step, GTX1660, DType.FP32, mode="guided", iterations=3)
            assert cost <= planned_cost + 1e-15

    def test_measure_model_populates_db(self):
        db = TuningDB()
        mm = measure_model("mobilenet_v1", GTX1660, DType.FP32, db=db,
                           mode="guided", iterations=4)
        assert mm.records_added == len(db) > 0
        families = {r.key.family for r in db}
        assert "model" in families and any(f.startswith("lbl-") for f in families)
        model_rec = db.get(TuningKey("model", ("mobilenet_v1", 2), "GTX",
                                     "fp32", "paper"))
        assert model_rec is not None
        assert model_rec.measured_cost_s == pytest.approx(mm.measured_cost_s)
        # Tuning can only improve on what the planner already picked.
        assert mm.tuned_cost_s <= mm.measured_cost_s + 1e-12

    def test_measurement_reproducible_from_seed(self):
        db1, db2 = TuningDB(), TuningDB()
        measure_model("mobilenet_v1", GTX1660, DType.FP32, db=db1,
                      mode="random", iterations=5, seed=42)
        measure_model("mobilenet_v1", GTX1660, DType.FP32, db=db2,
                      mode="random", iterations=5, seed=42)
        assert db1.dumps() == db2.dumps()


class TestCalibration:
    def test_analytic_cost_monotone(self):
        assert analytic_cost_s(0, 1, GTX1660) == GTX1660.kernel_launch_us * 1e-6
        assert analytic_cost_s(2**20, 1, GTX1660) > analytic_cost_s(2**10, 1, GTX1660)

    def test_fit_reproducible_and_positive(self):
        db1, db2 = TuningDB(), TuningDB()
        for db in (db1, db2):
            measure_model("mobilenet_v2", GTX1660, DType.FP32, db=db,
                          mode="guided", iterations=4, seed=7)
        c1, c2 = fit_calibration(db1), fit_calibration(db2)
        assert c1.factors == c2.factors and len(c1) > 0
        assert all(f > 0 for f in c1.factors.values())
        # Model-level records never leak into step-family factors.
        assert all(k[2] != "model" for k in c1.factors)

    def test_unknown_family_defaults_to_identity(self):
        c = Calibration()
        assert c.factor("lbl-pw", "RTX", "fp32") == 1.0
        assert c.cost_s("lbl-pw", 1024, 1, RTX_A4000, "fp32") == pytest.approx(
            analytic_cost_s(1024, 1, RTX_A4000))

    def test_unmeasured_family_in_covered_group_gets_group_mean(self):
        """Inside a measured (GPU, dtype) group an unmeasured family must be
        priced at the group's typical correction, not a flat 1.0 — otherwise
        candidates with zero evidence win arbitration by default."""
        db = TuningDB()
        measure_model("mobilenet_v1", RTX_A4000, DType.FP32, db=db,
                      mode="guided", iterations=4)
        calib = fit_calibration(db)
        assert ("RTX", "fp32", "chain-3") not in calib.factors
        group_mean = calib.group_default[("RTX", "fp32")]
        assert calib.factor("chain-3", "RTX", "fp32") == group_mean != 1.0
        # Unmeasured *groups* still fall back to identity (and the planner
        # gates them out entirely via covers()).
        assert calib.factor("chain-3", "Orin", "fp32") == 1.0

    def test_calibration_reduces_error_across_zoo(self):
        """Acceptance: calibrated planning estimates beat uncalibrated ones
        on mean relative error, across every model in the zoo."""
        db = TuningDB()
        models = model_names()
        for m in models:
            measure_model(m, RTX_A4000, DType.FP32, db=db, mode="guided",
                          iterations=4)
        calib = fit_calibration(db)
        errors_uncal, errors_cal = [], []
        for m in models:
            graph = build_model(m, DType.FP32)
            plan = FusePlanner(RTX_A4000).plan(graph)
            measured = InferenceSession(graph, plan).run_analytic().latency_s
            est_u = plan_cost_estimate(plan)
            est_c = plan_cost_estimate(plan, calib)
            errors_uncal.append(abs(est_u - measured) / measured)
            errors_cal.append(abs(est_c - measured) / measured)
        mean_u = sum(errors_uncal) / len(errors_uncal)
        mean_c = sum(errors_cal) / len(errors_cal)
        assert mean_c < mean_u, (mean_c, mean_u)

    def test_identity_calibration_plans_bit_for_bit(self):
        for model, gpu in (("mobilenet_v2", RTX_A4000), ("mobilenet_v1", GTX1660)):
            graph = build_model(model, DType.FP32)
            base = FusePlanner(gpu).plan(graph)
            ident = FusePlanner(gpu, calibration=Calibration()).plan(graph)
            assert base.steps == ident.steps

    def test_uncovered_group_keeps_byte_ranking(self):
        """A DB tuned on other silicon (or another dtype) must not reorder
        this group's plans — calibration is evidence-gated per (GPU, dtype)."""
        db = TuningDB()
        measure_model("mobilenet_v1", RTX_A4000, DType.FP32, db=db,
                      mode="guided", iterations=4)
        calib = fit_calibration(db)
        assert calib.covers("RTX", "fp32") and not calib.covers("GTX", "fp32")
        for model in ("mobilenet_v1", "proxylessnas"):
            graph = build_model(model, DType.FP32)
            base = FusePlanner(GTX1660).plan(graph)
            foreign = FusePlanner(GTX1660, calibration=calib).plan(graph)
            assert base.steps == foreign.steps
        # ... and the measured group itself does calibrate.
        int8_base = FusePlanner(RTX_A4000).plan(build_model("mobilenet_v1", DType.INT8))
        int8_cal = FusePlanner(RTX_A4000, calibration=calib).plan(
            build_model("mobilenet_v1", DType.INT8))
        assert int8_base.steps == int8_cal.steps  # fp32 factors don't leak to int8

    def test_extreme_factor_reorders_fusion_decisions(self):
        """A calibration claiming fused kernels are catastrophically slow
        must flip the planner to layer-by-layer execution — the reordering
        path measured feedback flows through."""
        from repro.core.fcm import FcmType

        graph = build_model("mobilenet_v1", DType.FP32)
        base = FusePlanner(GTX1660).plan(graph)
        assert base.fcm_steps  # the uncalibrated plan fuses
        chosen = {step_family(s) for s in base.fcm_steps}
        # Penalizing only the *chosen* FCM families makes the type
        # arbitration switch to other fused implementations: the plan
        # reorders without abandoning fusion.
        partial = Calibration(factors={
            ("GTX", "fp32", fam): 1e6 for fam in chosen
        })
        reordered = FusePlanner(GTX1660, calibration=partial).plan(graph)
        assert reordered.steps != base.steps
        # Penalizing *every* fused family flips the fuse-vs-not decision
        # itself: the calibrated DP keeps everything layer-by-layer.
        all_fused = Calibration(factors={
            ("GTX", "fp32", f"fcm-{t.name.lower()}"): 1e6 for t in FcmType
        })
        unfused = FusePlanner(GTX1660, calibration=all_fused).plan(graph)
        assert not unfused.fcm_steps
        # And per-step estimates pick the factors up.
        est = estimated_step_cost_s(base.fcm_steps[0], GTX1660, DType.FP32)
        assert plan_cost_estimate(base, all_fused) > plan_cost_estimate(base)
        assert est > 0


class TestWarmStart:
    @pytest.fixture
    def tiny_db(self, monkeypatch):
        register_tiny_zoo(monkeypatch)
        db = TuningDB()
        for gpu in (GTX1660, RTX_A4000):
            for name, _ch in TINY_ZOO:
                measure_model(name, gpu, DType.FP32, db=db, mode="guided",
                              iterations=3)
        return db

    def test_cache_warm_start_preloads_matching_gpu_only(self, tiny_db):
        cache = PlanCache(capacity=8)
        loaded = cache.warm_start(tiny_db, GTX1660)
        assert len(loaded) == len(TINY_ZOO)
        assert all(k.gpu == "GTX" for k in loaded)
        assert cache.stats.warm_starts == len(TINY_ZOO)
        boot_invocations = cache.stats.planner_invocations
        # Every tuned model now hits without planning.
        for name, _ch in TINY_ZOO:
            cache.get(name, DType.FP32, GTX1660, "paper", 2)
        assert cache.stats.planner_invocations == boot_invocations
        assert cache.stats.hits == len(TINY_ZOO)

    def test_warm_start_skips_foreign_records(self, tiny_db):
        cache = PlanCache(capacity=8)
        # Wrong convention / chain cap: nothing matches, nothing planned.
        assert cache.warm_start(tiny_db, GTX1660, convention="measured") == []
        assert cache.warm_start(tiny_db, GTX1660, max_chain=3) == []
        assert cache.stats.planner_invocations == 0

    def test_warm_start_skips_unknown_models(self):
        db = TuningDB()
        db.add(_record(key=_key(family="model", geometry=("not_a_model", 2),
                                gpu="GTX"), tiling={}))
        cache = PlanCache(capacity=8)
        assert cache.warm_start(db, GTX1660) == []

    def test_warm_start_skips_malformed_model_geometry(self):
        # A foreign tool's model record with the wrong geometry arity must
        # not crash server boot.
        db = TuningDB()
        db.add(_record(key=_key(family="model", geometry=("mobilenet_v1",),
                                gpu="GTX"), tiling={}))
        cache = PlanCache(capacity=8)
        assert cache.warm_start(db, GTX1660) == []
        assert cache.stats.planner_invocations == 0

    def test_warm_start_skips_records_that_no_longer_plan(self, monkeypatch):
        # A stale DB whose model now fails to plan (changed zoo/GPU defs)
        # must not stop a server from booting.
        from repro.errors import PlanError

        db = TuningDB()
        db.add(_record(key=_key(family="model", geometry=("mobilenet_v1", 2),
                                gpu="GTX"), tiling={}))

        def boom(model, dtype):
            raise PlanError("no feasible tiling anymore")

        monkeypatch.setattr("repro.serve.cache.build_model", boom)
        cache = PlanCache(capacity=8)
        assert cache.warm_start(db, GTX1660) == []
        assert cache.stats.warm_starts == 0

    def test_warm_start_skips_unknown_dtype(self):
        # A record from a build with more dtypes must not crash boot either.
        db = TuningDB()
        db.add(_record(key=_key(family="model", geometry=("mobilenet_v1", 2),
                                gpu="GTX", dtype="fp16"), tiling={}))
        cache = PlanCache(capacity=8)
        assert cache.warm_start(db, GTX1660) == []
        assert cache.stats.planner_invocations == 0

    def test_server_boot_warm_start(self, tiny_db):
        srv = ModelServer(GTX1660, db=tiny_db)
        assert srv.cache.stats.warm_starts == len(TINY_ZOO)
        boot = srv.cache.stats.planner_invocations
        srv.submit_analytic(TINY_ZOO[0][0], 4)
        assert srv.cache.stats.planner_invocations == boot

    def test_warm_fleet_serves_without_critical_path_planning(self, tiny_db):
        """Acceptance: a TuningDB-warm-started fleet serves its first request
        (and the whole replay) with zero planner invocations on the critical
        path, deterministically."""
        gpus = [GTX1660, RTX_A4000]
        models = [name for name, _ch in TINY_ZOO]
        warm = fleet_replay(gpus, models, 48, 1e5, db=tiny_db)
        assert warm.warm_starts == len(gpus) * len(TINY_ZOO)
        assert warm.critical_path_planner_invocations == 0
        # No worker missed: every plan was resident before the first arrival.
        assert all(w.plan_misses == len(TINY_ZOO) for w in warm.per_worker)
        # Deterministic replay: byte-identical latency stream on a rerun.
        again = fleet_replay(gpus, models, 48, 1e5, db=tiny_db)
        assert warm.latencies_s == again.latencies_s
        # The cold fleet pays its planning during the replay instead.
        cold = fleet_replay(gpus, models, 48, 1e5)
        assert cold.warm_starts == 0
        assert cold.critical_path_planner_invocations > 0

    def test_calibrated_serving_path(self, tiny_db):
        calib = fit_calibration(tiny_db)
        srv = ModelServer(GTX1660, db=tiny_db, calibration=calib)
        report = srv.submit_analytic(TINY_ZOO[0][0], 2)
        assert report.latency_s > 0


class TestGeometryKeys:
    def test_spec_geometry_excludes_names(self):
        graph = build_model("mobilenet_v1", DType.FP32)
        convs = graph.conv_layers()
        g0 = spec_geometry(convs[1])
        renamed = convs[1].with_dtype(convs[1].dtype)  # same geometry
        assert spec_geometry(renamed) == g0
        assert convs[1].name not in g0
