"""Functional correctness and accounting of the four FCM kernels."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import dw_spec, pw_spec, random_ifm, ref_layer
from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.errors import CapacityError, ShapeError, UnsupportedError
from repro.gpu.specs import ORIN, RTX_A4000
from repro.kernels.params import chain_quant, make_layer_params
from repro.kernels.registry import build_fcm_kernel, build_lbl_kernel


def _pair(first_spec, second_spec, seed=0):
    p1 = make_layer_params(first_spec, seed=seed)
    p2 = chain_quant(p1, second_spec, seed=seed)
    x = random_ifm(first_spec, seed)
    return p1, p2, x, ref_layer(p2, ref_layer(p1, x))


class TestDwPwFused:
    def test_matches_reference(self):
        dw = dw_spec(c=8, h=14, w=14)
        pw = pw_spec(c_in=8, c_out=24, h=14, w=14)
        p1, p2, x, ref = _pair(dw, pw)
        res = build_fcm_kernel(
            FcmType.DWPW, p1, p2, {"tile_h": 5, "tile_w": 5, "tile_m": 8}
        ).simulate(x, RTX_A4000)
        np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-4)
        assert res.counters.redundant_macs == 0

    def test_strided_dw_producer(self):
        dw = dw_spec(c=8, h=14, w=14, stride=2)
        pw = pw_spec(c_in=8, c_out=16, h=7, w=7)
        p1, p2, x, ref = _pair(dw, pw)
        res = build_fcm_kernel(
            FcmType.DWPW, p1, p2, {"tile_h": 3, "tile_w": 3, "tile_m": 16}
        ).simulate(x, RTX_A4000)
        np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-4)

    def test_intermediate_never_in_global(self):
        dw = dw_spec(c=8, h=14, w=14)
        pw = pw_spec(c_in=8, c_out=24, h=14, w=14)
        p1, p2, x, _ = _pair(dw, pw)
        res = build_fcm_kernel(
            FcmType.DWPW, p1, p2, {"tile_h": 7, "tile_w": 7, "tile_m": 8}
        ).simulate(x, RTX_A4000)
        # Global writes must be exactly the final OFM.
        assert res.counters.write_bytes == pw.ofm.nbytes
        assert res.counters.shared_bytes > 0  # commBuffer traffic happened

    def test_saves_traffic_vs_lbl(self):
        dw = dw_spec(c=16, h=28, w=28)
        pw = pw_spec(c_in=16, c_out=32, h=28, w=28)
        p1, p2, x, _ = _pair(dw, pw)
        fcm = build_fcm_kernel(
            FcmType.DWPW, p1, p2, {"tile_h": 7, "tile_w": 7, "tile_m": 32}
        ).simulate(x, RTX_A4000)
        l1 = build_lbl_kernel(p1, {"tile_c": 16, "tile_h": 7, "tile_w": 7}).simulate(
            x, RTX_A4000
        )
        l2 = build_lbl_kernel(p2, {"tile_m": 32, "tile_hw": 98}).simulate(
            l1.output, RTX_A4000
        )
        assert fcm.counters.total_bytes < l1.counters.total_bytes + l2.counters.total_bytes

    def test_pair_mismatch_rejected(self):
        dw = dw_spec(c=8, h=14, w=14)
        pw = pw_spec(c_in=16, c_out=24, h=14, w=14)  # wrong channel count
        p1 = make_layer_params(dw)
        p2 = make_layer_params(pw)
        with pytest.raises(ShapeError):
            build_fcm_kernel(FcmType.DWPW, p1, p2, {"tile_h": 7, "tile_w": 7, "tile_m": 8})


class TestPwDwFused:
    def test_matches_reference_no_redundancy(self):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12, stride=2)
        p1, p2, x, ref = _pair(pw, dw)
        res = build_fcm_kernel(FcmType.PWDW, p1, p2, {"tile_f": 4}).simulate(x, ORIN)
        np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-4)
        assert res.counters.redundant_macs == 0

    def test_ifm_restreamed_per_group(self):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12)
        p1, p2, x, _ = _pair(pw, dw)
        r4 = build_fcm_kernel(FcmType.PWDW, p1, p2, {"tile_f": 4}).simulate(x, ORIN)
        r16 = build_fcm_kernel(FcmType.PWDW, p1, p2, {"tile_f": 16}).simulate(x, ORIN)
        assert r4.counters.global_reads["ifm"] == 4 * r16.counters.global_reads["ifm"]

    def test_weights_read_once_total(self):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12)
        p1, p2, x, _ = _pair(pw, dw)
        res = build_fcm_kernel(FcmType.PWDW, p1, p2, {"tile_f": 4}).simulate(x, ORIN)
        assert res.counters.global_reads["weights"] == (
            pw.weights_bytes + dw.weights_bytes
        )


class TestPwDwRFused:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_matches_reference(self, stride):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12, stride=stride)
        p1, p2, x, ref = _pair(pw, dw)
        res = build_fcm_kernel(
            FcmType.PWDW_R, p1, p2, {"tile_f": 8, "tile_h": 3, "tile_w": 3}
        ).simulate(x, RTX_A4000)
        np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-4)

    def test_redundancy_reported_and_positive(self):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12)
        p1, p2, x, _ = _pair(pw, dw)
        res = build_fcm_kernel(
            FcmType.PWDW_R, p1, p2, {"tile_f": 8, "tile_h": 4, "tile_w": 4}
        ).simulate(x, RTX_A4000)
        assert res.counters.redundant_macs > 0
        assert 0 < res.counters.redundancy_ratio < 0.5
        # Total executed MACs conserved: useful part equals the pair's MACs.
        assert res.counters.macs == pw.macs + dw.macs

    def test_full_spatial_tile_no_redundancy(self):
        """With one spatial tile the _R variant degenerates redundancy-free."""
        pw = pw_spec(c_in=8, c_out=16, h=10, w=10)
        dw = dw_spec(c=16, h=10, w=10)
        p1, p2, x, _ = _pair(pw, dw)
        res = build_fcm_kernel(
            FcmType.PWDW_R, p1, p2, {"tile_f": 4, "tile_h": 10, "tile_w": 10}
        ).simulate(x, RTX_A4000)
        assert res.counters.redundant_macs == 0

    def test_smaller_tiles_more_redundancy(self):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12)
        p1, p2, x, _ = _pair(pw, dw)
        big = build_fcm_kernel(
            FcmType.PWDW_R, p1, p2, {"tile_f": 8, "tile_h": 6, "tile_w": 6}
        ).simulate(x, RTX_A4000)
        small = build_fcm_kernel(
            FcmType.PWDW_R, p1, p2, {"tile_f": 8, "tile_h": 2, "tile_w": 2}
        ).simulate(x, RTX_A4000)
        assert small.counters.redundancy_ratio > big.counters.redundancy_ratio


class TestPwPwFused:
    def test_matches_reference(self):
        pw1 = pw_spec("pw1", c_in=8, c_out=24, h=10, w=10)
        pw2 = pw_spec("pw2", c_in=24, c_out=16, h=10, w=10)
        p1, p2, x, ref = _pair(pw1, pw2)
        res = build_fcm_kernel(
            FcmType.PWPW, p1, p2, {"tile_hw": 25, "tile_m": 8}
        ).simulate(x, RTX_A4000)
        np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-4)
        assert res.counters.redundant_macs == 0

    def test_ifm_read_once(self):
        pw1 = pw_spec("pw1", c_in=8, c_out=24, h=10, w=10)
        pw2 = pw_spec("pw2", c_in=24, c_out=16, h=10, w=10)
        p1, p2, x, _ = _pair(pw1, pw2)
        res = build_fcm_kernel(
            FcmType.PWPW, p1, p2, {"tile_hw": 25, "tile_m": 8}
        ).simulate(x, RTX_A4000)
        assert res.counters.global_reads["ifm"] == pw1.ifm.nbytes

    def test_strided_second_rejected(self):
        pw1 = pw_spec("pw1", c_in=8, c_out=24, h=10, w=10)
        pw2 = pw_spec("pw2", c_in=24, c_out=16, h=10, w=10, stride=2)
        p1 = make_layer_params(pw1)
        p2 = chain_quant(p1, pw2)
        with pytest.raises(UnsupportedError):
            build_fcm_kernel(FcmType.PWPW, p1, p2, {"tile_hw": 25, "tile_m": 8})


class TestInt8FusedEquivalence:
    """Fused INT8 must be bit-exact against the two-kernel LBL execution."""

    @pytest.mark.parametrize("fcm_type", [FcmType.PWDW, FcmType.PWDW_R])
    def test_pw_dw_variants(self, fcm_type):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12, dtype=DType.INT8)
        dw = dw_spec(c=16, h=12, w=12, dtype=DType.INT8)
        p1, p2, x, _ = _pair(pw, dw)
        l1 = build_lbl_kernel(p1, {"tile_m": 8, "tile_hw": 36}).simulate(x, RTX_A4000)
        l2 = build_lbl_kernel(p2, {"tile_c": 8, "tile_h": 4, "tile_w": 4}).simulate(
            l1.output, RTX_A4000
        )
        tiling = (
            {"tile_f": 8} if fcm_type is FcmType.PWDW
            else {"tile_f": 8, "tile_h": 4, "tile_w": 4}
        )
        fused = build_fcm_kernel(fcm_type, p1, p2, tiling).simulate(x, RTX_A4000)
        np.testing.assert_array_equal(fused.output, l2.output)

    def test_dwpw(self):
        dw = dw_spec(c=8, h=12, w=12, dtype=DType.INT8)
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12, dtype=DType.INT8)
        p1, p2, x, _ = _pair(dw, pw)
        l1 = build_lbl_kernel(p1, {"tile_c": 8, "tile_h": 4, "tile_w": 4}).simulate(
            x, RTX_A4000
        )
        l2 = build_lbl_kernel(p2, {"tile_m": 8, "tile_hw": 36}).simulate(
            l1.output, RTX_A4000
        )
        fused = build_fcm_kernel(
            FcmType.DWPW, p1, p2, {"tile_h": 4, "tile_w": 4, "tile_m": 8}
        ).simulate(x, RTX_A4000)
        np.testing.assert_array_equal(fused.output, l2.output)

    def test_pwpw(self):
        pw1 = pw_spec("pw1", c_in=8, c_out=24, h=10, w=10, dtype=DType.INT8)
        pw2 = pw_spec("pw2", c_in=24, c_out=16, h=10, w=10, dtype=DType.INT8)
        p1, p2, x, _ = _pair(pw1, pw2)
        l1 = build_lbl_kernel(p1, {"tile_m": 8, "tile_hw": 25}).simulate(x, RTX_A4000)
        l2 = build_lbl_kernel(p2, {"tile_m": 8, "tile_hw": 25}).simulate(
            l1.output, RTX_A4000
        )
        fused = build_fcm_kernel(
            FcmType.PWPW, p1, p2, {"tile_hw": 25, "tile_m": 8}
        ).simulate(x, RTX_A4000)
        np.testing.assert_array_equal(fused.output, l2.output)


class TestFusedCapacity:
    def test_comm_buffer_overflow(self, tiny_gpu):
        pw = pw_spec(c_in=16, c_out=256, h=32, w=32)
        dw = dw_spec(c=256, h=32, w=32)
        p1, p2, x, _ = _pair(pw, dw)
        k = build_fcm_kernel(FcmType.PWDW, p1, p2, {"tile_f": 256})
        with pytest.raises(CapacityError):
            k.simulate(x, tiny_gpu)
