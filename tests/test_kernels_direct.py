"""Functional correctness of the layer-by-layer kernels against the reference."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import dw_spec, pw_spec, random_ifm, ref_layer
from repro.core.dtypes import DType
from repro.errors import CapacityError, ShapeError
from repro.gpu.specs import RTX_A4000
from repro.kernels.params import make_layer_params
from repro.kernels.registry import build_lbl_kernel


def _run_pw(spec, tiling, seed=0):
    params = make_layer_params(spec, seed=seed)
    x = random_ifm(spec, seed)
    res = build_lbl_kernel(params, tiling).simulate(x, RTX_A4000)
    return res, ref_layer(params, x)


class TestPwDirect:
    @pytest.mark.parametrize("tile_m,tile_hw", [(4, 16), (16, 144), (3, 7), (64, 1024)])
    def test_matches_reference_fp32(self, tile_m, tile_hw):
        res, ref = _run_pw(pw_spec(), {"tile_m": tile_m, "tile_hw": tile_hw})
        np.testing.assert_allclose(res.output, ref, rtol=1e-5, atol=1e-5)

    def test_matches_reference_int8_bitexact(self):
        res, ref = _run_pw(
            pw_spec(dtype=DType.INT8), {"tile_m": 8, "tile_hw": 32}
        )
        np.testing.assert_array_equal(res.output, ref)

    def test_strided_pw(self):
        res, ref = _run_pw(pw_spec(stride=2), {"tile_m": 8, "tile_hw": 16})
        assert res.output.shape == ref.shape == (16, 6, 6)
        np.testing.assert_allclose(res.output, ref, rtol=1e-5, atol=1e-5)

    def test_no_norm_no_act(self):
        res, ref = _run_pw(
            pw_spec(norm=False, activation=None), {"tile_m": 8, "tile_hw": 16}
        )
        np.testing.assert_allclose(res.output, ref, rtol=1e-5, atol=1e-5)

    def test_ofm_written_once(self):
        res, _ = _run_pw(pw_spec(), {"tile_m": 4, "tile_hw": 16})
        spec = pw_spec()
        assert res.counters.global_writes["ofm"] == spec.ofm.nbytes

    def test_launch_counted(self):
        res, _ = _run_pw(pw_spec(), {"tile_m": 4, "tile_hw": 16})
        assert res.counters.kernel_launches == 1

    def test_wrong_dtype_input_rejected(self):
        spec = pw_spec()
        params = make_layer_params(spec)
        k = build_lbl_kernel(params, {"tile_m": 4, "tile_hw": 16})
        with pytest.raises(ShapeError):
            k.simulate(np.zeros(spec.ifm.shape, dtype=np.int8), RTX_A4000)

    def test_wrong_shape_rejected(self):
        params = make_layer_params(pw_spec())
        k = build_lbl_kernel(params, {"tile_m": 4, "tile_hw": 16})
        with pytest.raises(ShapeError):
            k.simulate(np.zeros((8, 5, 5), np.float32), RTX_A4000)

    def test_capacity_enforced(self, tiny_gpu):
        spec = pw_spec(c_in=64, c_out=256, h=32, w=32)
        params = make_layer_params(spec)
        k = build_lbl_kernel(params, {"tile_m": 256, "tile_hw": 1024})
        with pytest.raises(CapacityError):
            k.simulate(random_ifm(spec), tiny_gpu)


class TestDwDirect:
    @pytest.mark.parametrize(
        "kernel,stride", [(3, 1), (3, 2), (5, 1), (5, 2), (7, 1)]
    )
    def test_matches_reference_geometries(self, kernel, stride):
        spec = dw_spec(kernel=kernel, stride=stride, h=16, w=16)
        params = make_layer_params(spec)
        x = random_ifm(spec)
        res = build_lbl_kernel(
            params, {"tile_c": 4, "tile_h": 5, "tile_w": 5}
        ).simulate(x, RTX_A4000)
        np.testing.assert_allclose(res.output, ref_layer(params, x), rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("tile", [(1, 1, 1), (8, 12, 12), (3, 5, 7)])
    def test_tile_shapes(self, tile):
        spec = dw_spec()
        params = make_layer_params(spec)
        x = random_ifm(spec)
        tc, th, tw = tile
        res = build_lbl_kernel(
            params, {"tile_c": tc, "tile_h": th, "tile_w": tw}
        ).simulate(x, RTX_A4000)
        np.testing.assert_allclose(res.output, ref_layer(params, x), rtol=1e-4, atol=1e-4)

    def test_int8_bitexact(self):
        spec = dw_spec(dtype=DType.INT8)
        params = make_layer_params(spec)
        x = random_ifm(spec)
        res = build_lbl_kernel(
            params, {"tile_c": 4, "tile_h": 4, "tile_w": 4}
        ).simulate(x, RTX_A4000)
        np.testing.assert_array_equal(res.output, ref_layer(params, x))

    def test_halo_traffic_grows_with_smaller_tiles(self):
        spec = dw_spec(c=8, h=24, w=24)
        params = make_layer_params(spec)
        x = random_ifm(spec)
        big = build_lbl_kernel(params, {"tile_c": 8, "tile_h": 24, "tile_w": 24}).simulate(
            x, RTX_A4000
        )
        small = build_lbl_kernel(params, {"tile_c": 8, "tile_h": 4, "tile_w": 4}).simulate(
            x, RTX_A4000
        )
        assert small.counters.global_reads["ifm"] > big.counters.global_reads["ifm"]
        # OFM writes identical regardless of tiling (output stationary).
        assert small.counters.global_writes["ofm"] == big.counters.global_writes["ofm"]

    def test_weights_reread_per_spatial_tile(self):
        spec = dw_spec(c=8, h=16, w=16)
        params = make_layer_params(spec)
        x = random_ifm(spec)
        res = build_lbl_kernel(params, {"tile_c": 8, "tile_h": 8, "tile_w": 8}).simulate(
            x, RTX_A4000
        )
        # 4 spatial tiles x full filter bank.
        assert res.counters.global_reads["weights"] == 4 * spec.weights_bytes

    def test_kind_mismatch(self):
        params = make_layer_params(pw_spec())
        with pytest.raises(KeyError):
            build_lbl_kernel(params, {"tile_c": 4, "tile_h": 4, "tile_w": 4})
