"""Fleet serving tests: plan-affinity routing, deterministic multi-GPU
replay, scaling, and the PlanCache behavior the fleet depends on.

Uses the tiny zoo from helpers so planning stays subsecond; the full-size
scaling sweep lives in benchmarks/bench_fleet_scaling.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import register_tiny_zoo

from repro.core.dtypes import DType
from repro.errors import PlanError
from repro.gpu.specs import GTX1660, ORIN, RTX_A4000
from repro.serve import (
    FakeClock,
    Fleet,
    FleetScheduler,
    PlanCache,
    fleet_replay,
)

HETERO = (GTX1660, RTX_A4000, ORIN, RTX_A4000)


@pytest.fixture(autouse=True)
def tiny_zoo(monkeypatch):
    register_tiny_zoo(monkeypatch)


def _fleet(gpus, **kw) -> Fleet:
    clock = FakeClock()
    kw.setdefault("clock", clock)
    kw.setdefault("sleep", clock.sleep)
    fleet = Fleet(gpus, **kw)
    fleet.test_clock = clock  # convenience handle for tests
    return fleet


class TestPlanCacheFleetContract:
    """The PlanCache behavior fleet routing and accounting lean on."""

    def test_interleaved_multi_key_eviction_order(self):
        cache = PlanCache(capacity=3)
        cache.get("tiny_a", DType.FP32, GTX1660)
        cache.get("tiny_b", DType.FP32, GTX1660)
        cache.get("tiny_c", DType.FP32, GTX1660)
        # Interleave hits so recency diverges from insertion order.
        cache.get("tiny_a", DType.FP32, GTX1660)
        cache.get("tiny_b", DType.FP32, GTX1660)
        cache.get("tiny_a", DType.FP32, GTX1660)
        # LRU order is now c < b < a: a fourth key evicts c first.
        cache.get("tiny_a", DType.INT8, GTX1660)
        models = [(k.model, k.dtype) for k in cache.keys()]
        assert models == [("tiny_b", "fp32"), ("tiny_a", "fp32"), ("tiny_a", "int8")]
        # Next eviction takes b, never the freshly-hit a.
        cache.get("tiny_c", DType.FP32, GTX1660)
        assert ("tiny_b", "fp32") not in [(k.model, k.dtype) for k in cache.keys()]

    def test_hit_rate_and_eviction_accounting(self):
        cache = PlanCache(capacity=2)
        cache.get("tiny_a", DType.FP32, GTX1660)  # miss
        cache.get("tiny_a", DType.FP32, GTX1660)  # hit
        cache.get("tiny_b", DType.FP32, GTX1660)  # miss
        cache.get("tiny_c", DType.FP32, GTX1660)  # miss, evicts a
        cache.get("tiny_a", DType.FP32, GTX1660)  # miss again (was evicted)
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 4)
        assert stats.evictions == 2
        assert stats.lookups == 5
        assert stats.hit_rate == pytest.approx(1 / 5)
        assert stats.planner_invocations == 4

    def test_peek_does_not_touch_stats_or_recency(self):
        cache = PlanCache(capacity=2)
        entry = cache.get("tiny_a", DType.FP32, GTX1660)
        cache.get("tiny_b", DType.FP32, GTX1660)
        before = (cache.stats.hits, cache.stats.misses)
        key_a = cache.keys()[0]  # tiny_a is LRU
        assert cache.peek(key_a) is entry
        assert (cache.stats.hits, cache.stats.misses) == before
        # Recency unchanged: tiny_a is still first out.
        cache.get("tiny_c", DType.FP32, GTX1660)
        assert all(k.model != "tiny_a" for k in cache.keys())

    def test_workers_with_different_gpus_never_share_a_key(self):
        fleet = _fleet([GTX1660, ORIN])
        for worker in fleet.workers:
            worker.server.submit_analytic("tiny_a", 1)
        keys = [set(w.server.cache.keys()) for w in fleet.workers]
        assert keys[0].isdisjoint(keys[1])
        gpus = {k.gpu for keys_ in keys for k in keys_}
        assert gpus == {"GTX", "Orin"}


class TestFleetConstruction:
    def test_heterogeneous_workers_are_first_class(self):
        fleet = _fleet(HETERO)
        assert [w.name for w in fleet.workers] == ["GTX#0", "RTX#1", "Orin#2", "RTX#3"]
        assert len({id(w.server.cache) for w in fleet.workers}) == 4
        assert fleet.policy == "affinity"

    def test_empty_fleet_rejected(self):
        with pytest.raises(PlanError):
            Fleet([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(PlanError):
            Fleet([GTX1660], policy="random")

    def test_scheduler_validates_spill_factor(self):
        fleet = _fleet([GTX1660])
        with pytest.raises(PlanError):
            FleetScheduler(fleet.workers, spill_factor=-1.0)


class TestRouting:
    def test_affinity_prefers_plan_holder(self):
        fleet = _fleet([GTX1660, RTX_A4000], trace=True)
        # Warm worker 1 only; routing must then stick to it.
        fleet.workers[1].server.submit_analytic("tiny_a", 1)
        worker, _ = fleet.submit_analytic("tiny_a", 1)
        assert worker.name == "RTX#1"
        decision = fleet.trace[-1]
        assert decision.affinity_hit and not decision.spilled
        assert decision.worker == "RTX#1"

    def test_unplanned_model_routes_to_least_backlog(self):
        fleet = _fleet([GTX1660, RTX_A4000], trace=True)
        fleet.workers[0].busy_until = 1.0  # worker 0 is occupied
        worker, _ = fleet.submit_analytic("tiny_a", 1)
        assert worker.name == "RTX#1"
        assert not fleet.trace[-1].affinity_hit

    def test_overloaded_holder_spills(self):
        fleet = _fleet([GTX1660, RTX_A4000], trace=True)
        fleet.workers[0].server.submit_analytic("tiny_a", 1)
        # Pin a backlog on the holder far beyond the spill threshold.
        fleet.workers[0].busy_until = 10.0
        worker, _ = fleet.submit_analytic("tiny_a", 1)
        assert worker.name == "RTX#1"
        decision = fleet.trace[-1]
        assert decision.spilled and not decision.affinity_hit
        assert "spill" in decision.describe()

    def test_round_robin_cycles_workers(self):
        fleet = _fleet(HETERO, policy="round_robin")
        names = [fleet.submit_analytic("tiny_a", 1)[0].name for _ in range(6)]
        assert names == ["GTX#0", "RTX#1", "Orin#2", "RTX#3", "GTX#0", "RTX#1"]

    def test_routing_probe_does_not_perturb_cache_stats(self):
        fleet = _fleet([GTX1660, RTX_A4000])
        fleet.workers[0].server.submit_analytic("tiny_a", 1)
        before = [
            (w.server.cache.stats.hits, w.server.cache.stats.misses)
            for w in fleet.workers
        ]
        fleet.scheduler.route("tiny_a", DType.FP32, 0.0)
        after = [
            (w.server.cache.stats.hits, w.server.cache.stats.misses)
            for w in fleet.workers
        ]
        assert before == after

    def test_queued_fleet_path_attributes_workers(self):
        fleet = _fleet([GTX1660, RTX_A4000])
        for _ in range(4):
            fleet.enqueue("tiny_a")
        assert fleet.pending() == 4
        flushed = fleet.step(force=True)
        assert len(flushed) == 4
        assert fleet.pending() == 0
        workers = {worker.name for worker, _ in flushed}
        assert workers <= {"GTX#0", "RTX#1"}
        stats = fleet.stats()
        assert stats.requests == 4 and stats.images_served == 4


class TestFleetReplay:
    def test_replay_is_deterministic(self):
        """Acceptance: the same Poisson stream over a 4-worker fleet twice
        yields identical FleetStreamReports (shared FakeClock, no real time)."""
        kw = dict(n_requests=48, rate_rps=2e5, poisson=True, max_batch=8)
        first = fleet_replay(HETERO, ["tiny_a", "tiny_b"], **kw)
        second = fleet_replay(HETERO, ["tiny_a", "tiny_b"], **kw)
        assert first == second

    def test_homogeneous_fleet_scales_throughput(self):
        """Acceptance: 4 identical workers reach >= 3x single-worker
        throughput on the same saturating stream."""
        kw = dict(n_requests=512, rate_rps=1e8, max_batch=8, max_delay_s=5e-5)
        one = fleet_replay([RTX_A4000], "tiny_a", **kw)
        four = fleet_replay([RTX_A4000] * 4, "tiny_a", **kw)
        assert four.throughput_img_s >= 3 * one.throughput_img_s
        # The spread is real: every worker served a meaningful share.
        shares = [w.requests for w in four.per_worker]
        assert min(shares) >= 512 // 8

    def test_affinity_beats_round_robin_hit_rate(self):
        """Acceptance: plan-affinity routing yields a strictly higher
        fleet-wide PlanCache hit rate than round-robin on a multi-model
        trace."""
        kw = dict(n_requests=192, rate_rps=2e4, max_batch=8)
        models = ["tiny_a", "tiny_b", "tiny_c"]
        affinity = fleet_replay(HETERO, models, **kw)
        rr = fleet_replay(HETERO, models, policy="round_robin", **kw)
        assert affinity.plan_hit_rate > rr.plan_hit_rate
        # Affinity also plans less: plans replicate only on spill, while
        # round-robin forces every worker to plan every model.
        assert affinity.planner_invocations < rr.planner_invocations
        assert rr.planner_invocations == len(HETERO) * len(models)

    def test_fleet_of_one_matches_worker_accounting(self):
        report = fleet_replay([GTX1660], "tiny_a", 32, 1e7, max_batch=8)
        assert report.n_requests == 32
        assert len(report.per_worker) == 1
        w = report.per_worker[0]
        assert w.requests == 32 and w.planner_invocations == 1
        assert report.mean_batch == pytest.approx(8.0)
        assert report.latency_p99_s >= report.latency_p50_s > 0

    def test_per_worker_breakdown_sums_to_fleet(self):
        report = fleet_replay(HETERO, ["tiny_a", "tiny_b"], 64, 5e4)
        assert sum(w.requests for w in report.per_worker) == 64
        total_batches = sum(w.batches for w in report.per_worker)
        assert report.mean_batch == pytest.approx(64 / total_batches)

    def test_device_wait_shows_in_latency(self):
        # One worker, burst arrivals: later batches queue behind the device,
        # so the latency tail must exceed a lone batch's latency.
        shallow = fleet_replay([GTX1660], "tiny_a", 8, 1e9, max_batch=8)
        deep = fleet_replay([GTX1660], "tiny_a", 64, 1e9, max_batch=8)
        assert deep.latency_p99_s > 2 * shallow.latency_p99_s

    def test_trace_records_every_request(self):
        report = fleet_replay(
            HETERO, ["tiny_a", "tiny_b"], 16, 5e4, trace=True
        )
        assert len(report.routing_trace) == 16
        assert [d.seq for d in report.routing_trace] == list(range(16))
        assert {d.model for d in report.routing_trace} == {"tiny_a", "tiny_b"}
        assert all(d.describe() for d in report.routing_trace)

    def test_mixed_dtype_streams_use_distinct_plans(self):
        fp32 = fleet_replay([GTX1660, RTX_A4000], "tiny_a", 16, 1e6)
        int8 = fleet_replay([GTX1660, RTX_A4000], "tiny_a", 16, 1e6, dtype=DType.INT8)
        assert fp32.dtype == "fp32" and int8.dtype == "int8"
        assert fp32.n_requests == int8.n_requests == 16

    def test_needs_a_model(self):
        with pytest.raises(PlanError):
            fleet_replay([GTX1660], [], 4, 100.0)

    def test_rejects_realtime_fleet(self):
        import time

        fleet = Fleet([GTX1660], clock=time.monotonic)
        with pytest.raises(PlanError):
            fleet_replay([GTX1660], "tiny_a", 4, 100.0, fleet=fleet)


class TestFleetFunctionalPath:
    def test_sync_path_charges_occupancy(self):
        """Synchronous submits must load the chosen worker, so a second cold
        model routes to a different worker instead of pinning everything to
        worker 0 (whose backlog would otherwise always read 0)."""
        fleet = _fleet([GTX1660, RTX_A4000])
        w_a, report = fleet.submit_analytic("tiny_a", 8)
        assert w_a.name == "GTX#0"
        assert w_a.busy_until == pytest.approx(report.latency_s)
        assert w_a.busy_s == pytest.approx(report.latency_s)
        w_b, _ = fleet.submit_analytic("tiny_b", 8)
        assert w_b.name == "RTX#1"

    def test_routed_submit_returns_outputs(self, rng):
        fleet = _fleet([GTX1660, RTX_A4000])
        x = rng.standard_normal((2, 3, 32, 32)).astype(np.float32)
        worker, report = fleet.submit("tiny_a", x)
        assert report.output.shape[0] == 2
        # Affinity keeps the follow-up on the same worker.
        worker2, _ = fleet.submit("tiny_a", x)
        assert worker2 is worker
