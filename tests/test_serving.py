"""Serving subsystem tests: plan cache, batched execution, micro-batching.

Registers tiny synthetic models into the zoo so planning stays subsecond;
the full-size acceptance sweep lives in benchmarks/bench_serving_throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import register_tiny_zoo, tiny_model_builder

from repro.core.dtypes import DType
from repro.errors import PlanError, ShapeError
from repro.gpu.specs import GTX1660
from repro.planner.planner import FusePlanner
from repro.runtime.network_params import materialize_network
from repro.runtime.session import InferenceSession
from repro.serve import FakeClock, ModelServer, PlanCache, replay


@pytest.fixture(autouse=True)
def tiny_zoo(monkeypatch):
    """Register fast-to-plan models the cache/server tests serve."""
    register_tiny_zoo(monkeypatch)


def _toy_session(dtype=DType.FP32):
    g = tiny_model_builder("toy", 16)(dtype)
    net = materialize_network(g, dtype)
    plan = FusePlanner(GTX1660).plan(g)
    return InferenceSession(g, plan, net)


def _server(**kw) -> ModelServer:
    clock = FakeClock()
    kw.setdefault("clock", clock)
    kw.setdefault("sleep", clock.sleep)
    srv = ModelServer(GTX1660, **kw)
    srv.test_clock = clock  # convenience handle for tests
    return srv


class TestPlanCache:
    def test_hit_miss_accounting(self):
        cache = PlanCache(capacity=4)
        a1 = cache.get("tiny_a", DType.FP32, GTX1660)
        a2 = cache.get("tiny_a", DType.FP32, GTX1660)
        assert a1 is a2
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.stats.planner_invocations == 1
        cache.get("tiny_a", DType.INT8, GTX1660)  # dtype is part of the key
        assert cache.stats.misses == 2
        assert cache.stats.planner_invocations == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.get("tiny_a", DType.FP32, GTX1660)
        cache.get("tiny_b", DType.FP32, GTX1660)
        cache.get("tiny_a", DType.FP32, GTX1660)  # refresh a's recency
        cache.get("tiny_c", DType.FP32, GTX1660)  # evicts b, not a
        models = [k.model for k in cache.keys()]
        assert models == ["tiny_a", "tiny_c"]
        assert cache.stats.evictions == 1
        cache.get("tiny_b", DType.FP32, GTX1660)  # re-planned after eviction
        assert cache.stats.planner_invocations == 4

    def test_capacity_validated(self):
        with pytest.raises(PlanError):
            PlanCache(capacity=0)

    def test_32_requests_plan_once(self):
        """Acceptance: serving N=32 requests invokes FusePlanner exactly once."""
        srv = _server(max_batch=8)
        for _ in range(32):
            srv.enqueue("tiny_a")
        results = srv.serve_forever()
        assert len(results) == 32
        assert srv.cache.stats.planner_invocations == 1
        assert srv.stats.batches == 4 and srv.stats.images_served == 32


class TestBatchedExecution:
    @pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8])
    def test_batched_equals_sequential(self, dtype, rng):
        sess = _toy_session(dtype)
        x = (
            rng.integers(-128, 128, (3, 3, 32, 32)).astype(np.int8)
            if dtype is DType.INT8
            else rng.standard_normal((3, 3, 32, 32)).astype(np.float32)
        )
        batched = sess.run_batch(x)
        assert batched.batch_size == 3 and batched.output.shape[0] == 3
        for i in range(3):
            np.testing.assert_array_equal(batched.output[i], sess.run(x[i]).output)

    def test_batched_accounting(self, rng):
        sess = _toy_session()
        x = rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
        per_image = sess.run(x[0])
        batched = sess.run_batch(x)
        # One launch per step regardless of batch; GMA scales with the batch.
        assert batched.kernel_launches == per_image.kernel_launches
        assert batched.total_gma_bytes == 4 * per_image.total_gma_bytes
        # Launch overhead + weight re-stream amortization: the batch runs
        # strictly faster and cheaper per image than four sequential passes.
        assert batched.latency_per_image_s < per_image.latency_s
        assert batched.energy_per_image_j < per_image.energy_j

    def test_analytic_matches_functional_batched(self, rng):
        sess = _toy_session()
        x = rng.standard_normal((4, 3, 32, 32)).astype(np.float32)
        functional = sess.run_batch(x)
        analytic = sess.run_analytic_batch(4)
        assert functional.total_gma_bytes == analytic.total_gma_bytes
        assert functional.kernel_launches == analytic.kernel_launches
        assert functional.latency_s == pytest.approx(analytic.latency_s, rel=1e-6)

    def test_batch_one_reduces_to_single_image(self):
        sess = _toy_session()
        single = sess.run_analytic()
        b1 = sess.run_analytic_batch(1)
        assert b1.total_gma_bytes == single.total_gma_bytes
        assert b1.latency_s == pytest.approx(single.latency_s, rel=1e-12)

    def test_throughput_strictly_improves(self):
        sess = _toy_session()
        tp = [sess.run_analytic_batch(b).throughput_img_s for b in (1, 2, 4, 8)]
        assert all(b > a for a, b in zip(tp, tp[1:])), tp

    def test_run_batch_rejects_unbatched_input(self, rng):
        sess = _toy_session()
        with pytest.raises(ShapeError):
            sess.run_batch(rng.standard_normal((3, 32, 32)).astype(np.float32))


class TestMicroBatching:
    def test_deadline_flushes_partial_batch(self):
        srv = _server(max_batch=8, max_delay_s=0.01)
        for _ in range(3):
            srv.enqueue("tiny_a")
        assert srv.step() == []  # neither full nor past deadline
        srv.test_clock.advance(0.011)
        results = srv.step()
        assert len(results) == 3
        assert {r.batch_seq for r in results} == {results[0].batch_seq}
        assert all(r.batch_size == 3 for r in results)
        assert all(r.wait_s >= 0.01 for r in results)

    def test_flush_exactly_at_deadline(self):
        # Regression: a clock pinned to next_deadline() must flush even when
        # float rounding makes (enqueued + delay) - enqueued < delay.
        srv = _server(max_batch=8, max_delay_s=2e-3)
        srv.test_clock.t = 0.02327244060848874
        srv.enqueue("tiny_a")
        srv.test_clock.t = srv.next_deadline()
        assert len(srv.step()) == 1

    def test_full_batches_flush_immediately(self):
        srv = _server(max_batch=4, max_delay_s=10.0)
        for _ in range(8):
            srv.enqueue("tiny_a")
        results = srv.step()  # no clock movement needed: two full batches
        assert len(results) == 8
        assert sorted({r.batch_seq for r in results}) == [0, 1]
        assert all(r.batch_size == 4 for r in results)

    def test_models_never_share_a_batch(self):
        srv = _server(max_batch=8)
        srv.enqueue("tiny_a"), srv.enqueue("tiny_b"), srv.enqueue("tiny_a")
        results = srv.step(force=True)
        by_model = {r.model: r.batch_seq for r in results}
        assert by_model["tiny_a"] != by_model["tiny_b"]
        assert sum(r.model == "tiny_a" for r in results) == 2

    def test_serve_forever_drains_via_deadline(self):
        srv = _server(max_batch=8, max_delay_s=0.005)
        for _ in range(5):
            srv.enqueue("tiny_a")
        results = srv.serve_forever()  # FakeClock sleep ages the batch out
        assert len(results) == 5 and srv.pending() == 0

    def test_functional_queue_returns_outputs(self, rng):
        srv = _server(max_batch=2, max_delay_s=10.0)
        xs = [rng.standard_normal((3, 32, 32)).astype(np.float32) for _ in range(2)]
        ids = [srv.enqueue("tiny_a", x) for x in xs]
        results = {r.request_id: r for r in srv.step()}
        want = srv.submit("tiny_a", np.stack(xs))
        for i, rid in enumerate(ids):
            np.testing.assert_array_equal(results[rid].output, want.output[i])

    def test_submit_single_image(self, rng):
        srv = _server()
        rep = srv.submit("tiny_a", rng.standard_normal((3, 32, 32)).astype(np.float32))
        assert rep.batch_size == 1 and rep.output.shape[0] == 1

    def test_mixed_batch_returns_real_outputs(self, rng):
        """Regression: an analytic placeholder in the queue must not demote
        real-tensor requests to output=None — the flush partitions by kind."""
        srv = _server(max_batch=8)
        xs = [rng.standard_normal((3, 32, 32)).astype(np.float32) for _ in range(2)]
        rid_real0 = srv.enqueue("tiny_a", xs[0])
        rid_analytic = srv.enqueue("tiny_a")
        rid_real1 = srv.enqueue("tiny_a", xs[1])
        results = {r.request_id: r for r in srv.step(force=True)}
        assert len(results) == 3
        # Interleaved kinds split into three homogeneous micro-batches.
        assert len({r.batch_seq for r in results.values()}) == 3
        assert results[rid_analytic].output is None
        # Real outputs must match the synchronous batched path exactly.
        ref = srv.submit("tiny_a", np.stack(xs))
        np.testing.assert_array_equal(results[rid_real0].output, ref.output[0])
        np.testing.assert_array_equal(results[rid_real1].output, ref.output[1])

    def test_mixed_batch_preserves_contiguous_runs(self, rng):
        """Contiguous same-kind requests stay in one micro-batch: the split
        is per run, not per request."""
        srv = _server(max_batch=8)
        xs = [rng.standard_normal((3, 32, 32)).astype(np.float32) for _ in range(2)]
        real_ids = [srv.enqueue("tiny_a", x) for x in xs]
        analytic_ids = [srv.enqueue("tiny_a") for _ in range(3)]
        results = {r.request_id: r for r in srv.step(force=True)}
        real_seqs = {results[i].batch_seq for i in real_ids}
        analytic_seqs = {results[i].batch_seq for i in analytic_ids}
        assert len(real_seqs) == 1 and len(analytic_seqs) == 1
        assert real_seqs != analytic_seqs
        assert all(results[i].batch_size == 2 for i in real_ids)
        assert all(results[i].batch_size == 3 for i in analytic_ids)
        assert all(results[i].output is not None for i in real_ids)


class TestServeForeverCap:
    def test_max_batches_one_is_exact(self):
        """Regression: max_batches=1 must flush exactly one micro-batch even
        when several full batches are already due."""
        srv = _server(max_batch=4)
        for _ in range(12):
            srv.enqueue("tiny_a")
        results = srv.serve_forever(max_batches=1)
        assert len(results) == 4
        assert {r.batch_seq for r in results} == {results[0].batch_seq}
        assert srv.stats.batches == 1 and srv.pending() == 8

    def test_max_batches_all_but_one(self):
        """Regression: stopping one short of the drain leaves exactly one
        batch's worth of requests queued (N = batches - 1 boundary)."""
        srv = _server(max_batch=4)
        for _ in range(12):  # 3 full batches
            srv.enqueue("tiny_a")
        results = srv.serve_forever(max_batches=2)
        assert len(results) == 8 and srv.stats.batches == 2
        assert srv.pending() == 4
        rest = srv.serve_forever()  # no cap: drains the remainder
        assert len(rest) == 4 and srv.pending() == 0
        assert srv.stats.batches == 3

    def test_max_batches_cap_spans_models(self):
        """The cap is global across per-model queues, not per queue."""
        srv = _server(max_batch=2)
        for _ in range(2):
            srv.enqueue("tiny_a")
        for _ in range(2):
            srv.enqueue("tiny_b")
        results = srv.serve_forever(max_batches=1)
        assert len(results) == 2
        assert {r.model for r in results} == {"tiny_a"}
        assert srv.pending() == 2

    def test_max_batches_validated(self):
        srv = _server()
        srv.enqueue("tiny_a")
        with pytest.raises(PlanError):
            srv.serve_forever(max_batches=0)


class TestReplay:
    def test_replay_saturates_batches(self):
        report = replay(GTX1660, "tiny_a", n_requests=32, rate_rps=1e7, max_batch=8)
        assert report.planner_invocations == 1
        assert report.mean_batch == pytest.approx(8.0)
        assert report.latency_p99_s >= report.latency_p50_s > 0
        assert report.throughput_img_s > 0

    def test_overload_latency_reflects_backlog(self):
        # All requests arrive at once; a deeper backlog must surface as a
        # worse latency tail (device-busy wait counts toward latency).
        shallow = replay(GTX1660, "tiny_a", n_requests=8, rate_rps=1e9, max_batch=8)
        deep = replay(GTX1660, "tiny_a", n_requests=64, rate_rps=1e9, max_batch=8)
        assert deep.latency_p99_s > 2 * shallow.latency_p99_s

    def test_slow_arrivals_flush_by_deadline(self):
        # At 10 req/s every request ages out alone: batches of 1.
        report = replay(
            GTX1660, "tiny_a", n_requests=4, rate_rps=10.0,
            max_batch=8, max_delay_s=1e-3,
        )
        assert report.mean_batch == pytest.approx(1.0)
        assert report.n_requests == 4

    def test_p99_nearest_rank_on_small_stream(self):
        """Regression: p99 on a 10-sample stream must be the worst observed
        latency (nearest-rank-above), not an optimistic interpolation below
        it."""
        # Burst arrivals with max_batch=1 serialize on the device, so the 10
        # latencies form a strictly increasing staircase — distinct samples.
        report = replay(GTX1660, "tiny_a", n_requests=10, rate_rps=1e9, max_batch=1)
        latencies = report.latencies_s
        assert len(latencies) == 10
        assert len(set(latencies)) == 10
        assert report.latency_p99_s == latencies[-1]
        # Linear interpolation would have under-reported the tail.
        assert float(np.percentile(latencies, 99)) < report.latency_p99_s
        # p50 follows the same convention: an observed sample, rank above.
        assert report.latency_p50_s == latencies[5]

    def test_percentile_helper_convention(self):
        from repro.serve import percentile

        samples = [1.0, 2.0, 3.0, 4.0]
        # "higher" rounds the interpolated rank up to an observed sample.
        assert percentile(samples, 50) == 3.0
        assert percentile(samples, 99) == 4.0
        assert percentile([7.0], 99) == 7.0
